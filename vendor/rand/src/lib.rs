//! Offline stand-in for the crates.io `rand` crate.
//!
//! The build environment has no network access and no registry cache, so
//! the workspace vendors the subset of `rand 0.8`'s API it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] / [`Rng::gen_bool`] and
//! [`seq::SliceRandom::shuffle`]. The generator is xoshiro256++ seeded via
//! SplitMix64 — not the same stream as upstream `StdRng` (ChaCha12), but
//! every consumer in this workspace only relies on determinism per seed,
//! which this provides.

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (only the `seed_from_u64` entry point is needed).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling helpers, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open numeric ranges).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// `u64 -> [0, 1)` with 53 bits of precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges a single value can be drawn from ([`Rng::gen_range`]).
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased-enough integer draw in `[0, span)` via 128-bit widening
/// multiply (Lemire); span of 0 is a caller bug.
fn index_below(rng: &mut (impl RngCore + ?Sized), span: u64) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + index_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty gen_range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as i128 + index_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let u = unit_f64(rng.next_u64()) as $t;
                let v = self.start + (self.end - self.start) * u;
                // Rounding can land exactly on `end`; clamp back inside.
                if v >= self.end {
                    self.start
                } else {
                    v
                }
            }
        }
    )*};
}

float_range!(f32, f64);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (fast, 256-bit
    /// state, plenty for simulation and tests).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                Self::splitmix(&mut sm),
                Self::splitmix(&mut sm),
                Self::splitmix(&mut sm),
                Self::splitmix(&mut sm),
            ];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Slice helpers; only `shuffle` is needed.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Uniform Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
            let g = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&g));
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }
}
