//! Offline stand-in for the crates.io `proptest` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the subset of proptest's API its tests use: the [`proptest!`] macro
//! (with optional `#![proptest_config(...)]`), [`Strategy`] with
//! `prop_map` / `prop_filter`, numeric-range and tuple strategies,
//! [`arbitrary::any`], [`collection::vec`] and the `prop_assert*` macros.
//!
//! Differences from upstream: failing cases are *not* shrunk (the seed and
//! case index are printed instead, and every run is deterministic per test
//! name, so failures reproduce exactly), and `prop_assert!` panics rather
//! than returning `Err` — upstream semantics the tests here don't rely on.

use rand::rngs::StdRng;
use rand::{Rng, SampleRange, SeedableRng};

/// Runner configuration; only the case count is configurable.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// The RNG handed to strategies. Newtyped so strategy implementations
/// stay decoupled from the backing generator.
pub struct TestRunner {
    rng: StdRng,
}

impl TestRunner {
    /// A deterministic runner; `salt` is derived from the test name so
    /// sibling properties see different streams.
    pub fn deterministic(salt: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(0xD6CC_5EED ^ salt),
        }
    }

    /// The underlying generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

/// FNV-1a, used to salt each property's RNG stream by its name.
pub fn fnv1a(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A recipe for random values (no shrinking in this stand-in).
pub trait Strategy {
    /// The produced value type.
    type Value;

    /// Draws one value.
    fn new_value(&self, runner: &mut TestRunner) -> Self::Value;

    /// Maps produced values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Rejects values failing `pred`, retrying (upstream whines about
    /// excessive rejection; here it panics after a large retry budget).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn new_value(&self, runner: &mut TestRunner) -> O {
        (self.f)(self.inner.new_value(runner))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn new_value(&self, runner: &mut TestRunner) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.new_value(runner);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter '{}' rejected 10000 samples", self.whence);
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn new_value(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn new_value(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident/$i:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
                ($(self.$i.new_value(runner),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A/0);
    (A/0, B/1);
    (A/0, B/1, C/2);
    (A/0, B/1, C/2, D/3);
    (A/0, B/1, C/2, D/3, E/4);
    (A/0, B/1, C/2, D/3, E/4, F/5);
}

pub mod arbitrary {
    use super::{SampleRange, Strategy, TestRunner};

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// The canonical strategy for the type.
        type Strategy: Strategy<Value = Self>;

        /// Builds that strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// The canonical whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }

    /// Strategy covering a primitive type's full domain.
    pub struct AnyPrimitive<T>(core::marker::PhantomData<T>);

    macro_rules! any_int {
        ($($t:ty),*) => {$(
            impl Strategy for AnyPrimitive<$t> {
                type Value = $t;

                fn new_value(&self, runner: &mut TestRunner) -> $t {
                    (<$t>::MIN..=<$t>::MAX).sample_single(runner.rng())
                }
            }
            impl Arbitrary for $t {
                type Strategy = AnyPrimitive<$t>;

                fn arbitrary() -> Self::Strategy {
                    AnyPrimitive(core::marker::PhantomData)
                }
            }
        )*};
    }

    any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for AnyPrimitive<bool> {
        type Value = bool;

        fn new_value(&self, runner: &mut TestRunner) -> bool {
            use rand::RngCore;
            runner.rng().next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyPrimitive<bool>;

        fn arbitrary() -> Self::Strategy {
            AnyPrimitive(core::marker::PhantomData)
        }
    }
}

pub mod collection {
    use super::{Strategy, TestRunner};

    /// Lengths accepted by [`vec`]: a fixed size or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for vectors whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec<T>` with a length drawn from `size` and elements from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, runner: &mut TestRunner) -> Vec<S::Value> {
            use rand::Rng;
            let len = runner.rng().gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.new_value(runner)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property (panics with context here;
/// upstream returns an error the runner shrinks on).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// [`prop_assert!`] for equality.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+)
    };
}

/// [`prop_assert!`] for inequality.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+)
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (@impl ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut runner =
                $crate::TestRunner::deterministic($crate::fnv1a(stringify!($name)));
            for case in 0..config.cases {
                let run = || {
                    $(let $arg = $crate::Strategy::new_value(&($strat), &mut runner);)+
                    $body
                };
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(run));
                if let Err(payload) = outcome {
                    eprintln!(
                        "proptest {} failed at case {}/{} (deterministic per test name)",
                        stringify!($name),
                        case,
                        config.cases
                    );
                    std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()) $(
            $(#[$meta])*
            fn $name($($arg in $strat),+) $body
        )*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_even() -> impl Strategy<Value = u64> {
        (0u64..1000).prop_map(|v| v * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(v in 5usize..10) {
            prop_assert!((5..10).contains(&v));
        }

        #[test]
        fn mapped_strategies_apply(v in arb_even()) {
            prop_assert_eq!(v % 2, 0);
        }

        #[test]
        fn filters_hold(v in (0i32..100).prop_filter("odd", |v| v % 2 == 1)) {
            prop_assert_ne!(v % 2, 0);
        }

        #[test]
        fn tuples_and_any_compose((a, b) in (0usize..4, any::<bool>()), s in any::<u64>()) {
            prop_assert!(a < 4);
            let _ = (b, s);
        }

        #[test]
        fn vecs_respect_sizes(v in collection::vec(0u32..7, 3..6)) {
            prop_assert!((3..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 7));
        }
    }

    #[test]
    fn deterministic_across_runners() {
        let s = (0u64..1_000_000, 0u64..1_000_000);
        let mut a = crate::TestRunner::deterministic(9);
        let mut b = crate::TestRunner::deterministic(9);
        for _ in 0..50 {
            assert_eq!(s.new_value(&mut a), s.new_value(&mut b));
        }
    }
}
