//! Offline stand-in for the crates.io `criterion` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! a minimal wall-clock harness behind criterion's entry-point API:
//! [`Criterion::bench_function`] / [`Criterion::benchmark_group`],
//! [`Bencher::iter`], [`BenchmarkId`] and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Each benchmark runs `sample_size` samples
//! after one warm-up and prints min/mean/max per-iteration times; there is
//! no statistical analysis, HTML report or regression store.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier of one benchmark within a group: `name/parameter`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A `name/parameter` id.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `sample_size` calls of `routine` (after one warm-up call),
    /// recording one sample per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        hint::black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn report(id: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("bench {id:<40} (no samples)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().expect("non-empty");
    let max = samples.iter().max().expect("non-empty");
    println!(
        "bench {id:<40} mean {mean:>12?}  min {min:>12?}  max {max:>12?}  ({} samples)",
        samples.len()
    );
}

/// A named set of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets samples per benchmark (criterion enforces >= 10; so does
    /// this stand-in, by clamping).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(10);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &b.samples);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (upstream flushes reports here; nothing to do).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Parses criterion CLI args (accepted and ignored here, so `cargo
    /// bench -- <filter>` does not error).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 100,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: 100,
        };
        f(&mut b);
        report(id, &b.samples);
        self
    }
}

/// Bundles benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_requested_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        let mut calls = 0u32;
        group.bench_with_input(BenchmarkId::new("count", 1), &(), |b, _| {
            b.iter(|| calls += 1)
        });
        group.finish();
        // One warm-up plus ten timed samples.
        assert_eq!(calls, 11);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("spst", 8).to_string(), "spst/8");
    }
}
