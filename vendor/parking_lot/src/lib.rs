//! Offline stand-in for the crates.io `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's ergonomics: no
//! lock poisoning (`lock()` returns the guard directly; a poisoned std
//! lock is recovered, matching parking_lot's panic-transparent
//! behaviour) and `Condvar::wait` taking `&mut MutexGuard` instead of
//! consuming it.

use std::ops::{Deref, DerefMut};
use std::sync::{self, TryLockError};
use std::time::Duration;

/// A mutex that hands out guards without a poison `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]. Holds an `Option` internally so
/// [`Condvar::wait`] can temporarily take the std guard out.
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Wraps `value` in a mutex.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns its value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        MutexGuard { inner: Some(guard) }
    }

    /// Acquires the lock if free.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(TryLockError::Poisoned(poisoned)) => Some(MutexGuard {
                inner: Some(poisoned.into_inner()),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (the borrow proves uniqueness).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> MutexGuard<'_, T> {
    fn guard(&self) -> &sync::MutexGuard<'_, T> {
        self.inner.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.guard()
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside wait")
    }
}

/// Condition variable working on [`MutexGuard`] in place.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

/// Result of [`Condvar::wait_for`]: whether the wait timed out.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// `true` if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

impl Condvar {
    /// An empty condvar.
    pub const fn new() -> Self {
        Self {
            inner: sync::Condvar::new(),
        }
    }

    /// Atomically releases the guard's lock and blocks until notified,
    /// reacquiring before returning (spurious wakeups possible, as
    /// upstream).
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present before wait");
        let inner = match self.inner.wait(inner) {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        guard.inner = Some(inner);
    }

    /// [`Condvar::wait`] with a timeout.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard present before wait");
        let (inner, result) = match self.inner.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(poisoned) => {
                let (g, r) = poisoned.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Arc::new(Mutex::new(0u64));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("no panic");
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn condvar_wait_in_place() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let waiter = {
            let pair = pair.clone();
            std::thread::spawn(move || {
                let (lock, cv) = &*pair;
                let mut ready = lock.lock();
                while !*ready {
                    cv.wait(&mut ready);
                }
                *ready
            })
        };
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        assert!(waiter.join().expect("no panic"));
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(1);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
