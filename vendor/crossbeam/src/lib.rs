//! Offline stand-in for the crates.io `crossbeam` crate.
//!
//! Only [`thread::scope`] is used by this workspace; since Rust 1.63 the
//! standard library provides scoped threads, so the shim is a thin
//! adapter that keeps crossbeam's call shape (`scope(..)` returns a
//! `Result`, spawn closures receive the scope as an argument).

pub mod thread {
    use std::any::Any;
    use std::thread as std_thread;

    /// Scope handle passed to the [`scope`] closure and to spawned
    /// closures.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std_thread::Scope<'scope, 'env>,
    }

    /// Join handle of a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std_thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread and returns its result (`Err` holds the
        /// panic payload).
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope again
        /// (crossbeam's signature) so nested spawns are possible.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Runs `f` with a scope in which borrowing threads can be spawned;
    /// all are joined before this returns. Unlike upstream (which
    /// collects panics of unjoined threads into the `Err` variant), a
    /// panic of an unjoined thread propagates out of the std scope —
    /// every caller in this workspace joins explicitly, where panics
    /// surface through [`ScopedJoinHandle::join`].
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std_thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total = thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("no panic"))
                .sum::<u64>()
        })
        .expect("scope");
        assert_eq!(total, 10);
    }

    #[test]
    fn join_surfaces_panics() {
        let result = thread::scope(|s| {
            let h = s.spawn(|_| panic!("boom"));
            h.join()
        })
        .expect("scope itself succeeds");
        assert!(result.is_err());
    }
}
