//! Umbrella crate for the DGCL reproduction workspace.
//!
//! This crate exists to host the cross-crate integration tests under
//! `tests/` and the runnable examples under `examples/`. The library
//! surface simply re-exports the workspace crates so that examples can
//! use one coherent namespace.

pub use dgcl;
pub use dgcl_gnn as gnn;
pub use dgcl_graph as graph;
pub use dgcl_partition as partition;
pub use dgcl_plan as plan;
pub use dgcl_sim as sim;
pub use dgcl_tensor as tensor;
pub use dgcl_topology as topology;
