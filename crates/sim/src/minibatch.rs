//! Offline cost models for mini-batch sampling and batched serving.
//!
//! Two planning questions ride on the sampled pipeline (DistDGL-style
//! blocks, `dgcl::sampling`):
//!
//! * **Training** — how much communication does a fanout bound save?
//!   [`SamplingModel`] prices a sampled epoch against the full-batch
//!   epoch from the expected block source-set sizes, so fanouts and
//!   batch sizes can be compared without running the cluster.
//! * **Serving** — how large should the inference micro-batch be?
//!   [`ServingModel`] prices a flush as a fixed cost plus a per-request
//!   cost (the measured shape of `dgcl::serving`'s flush: one sparse
//!   k-hop expansion amortized over the batch, then per-row layer
//!   work), yielding the sustainable QPS of a `max_batch` setting and
//!   the largest batch that still meets a latency SLO.

/// Expected communication volume of sampled mini-batch training.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplingModel {
    /// Vertices in the graph.
    pub num_vertices: usize,
    /// Average out-degree.
    pub avg_degree: f64,
    /// Feature/embedding width in f32 elements (per-layer widths are
    /// close enough for a volume model; use the widest).
    pub width: usize,
    /// Fraction of a block's source rows that live on a remote rank
    /// (`1 - 1/p` under a uniform random partition of `p` parts).
    pub remote_fraction: f64,
}

impl SamplingModel {
    /// Expected source-set size of the block chain for one batch of
    /// `batch` seeds under `fanouts` (input-closest layer first;
    /// `None` = the full neighborhood). Row counts grow top-down by the
    /// per-vertex branching factor, capped at the vertex count — the
    /// saturation that makes deep full-fanout blocks as expensive as
    /// full-batch layers.
    pub fn expected_src_rows(&self, batch: usize, fanouts: &[Option<usize>]) -> f64 {
        let n = self.num_vertices as f64;
        let mut rows = (batch as f64).min(n);
        for fanout in fanouts.iter().rev() {
            let branch = match fanout {
                Some(f) => self.avg_degree.min(*f as f64),
                None => self.avg_degree,
            };
            rows = (rows * (1.0 + branch)).min(n);
        }
        rows
    }

    /// Expected bytes moved by one batch's input-layer row exchange
    /// (the dominant transfer: deeper layers reuse shrinking sets).
    pub fn batch_exchange_bytes(&self, batch: usize, fanouts: &[Option<usize>]) -> f64 {
        self.expected_src_rows(batch, fanouts) * self.remote_fraction * (4 * self.width) as f64
    }

    /// Expected bytes one sampled epoch moves: every vertex is a seed
    /// exactly once, split into `ceil(n / batch)` batches.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub fn epoch_exchange_bytes(&self, batch: usize, fanouts: &[Option<usize>]) -> f64 {
        assert!(batch > 0, "batch size must be positive");
        let batches = self.num_vertices.div_ceil(batch) as f64;
        batches * self.batch_exchange_bytes(batch, fanouts)
    }

    /// Bytes a full-batch epoch moves per layer crossing: every remote
    /// row, once per layer.
    pub fn full_batch_epoch_bytes(&self, layers: usize) -> f64 {
        self.num_vertices as f64 * self.remote_fraction * (4 * self.width) as f64 * layers as f64
    }

    /// Communication ratio of a sampled epoch to the full-batch epoch;
    /// below 1.0 the fanout bound is saving volume.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero or `fanouts` is empty.
    pub fn epoch_volume_ratio(&self, batch: usize, fanouts: &[Option<usize>]) -> f64 {
        assert!(!fanouts.is_empty(), "need at least one layer");
        self.epoch_exchange_bytes(batch, fanouts) / self.full_batch_epoch_bytes(fanouts.len())
    }
}

/// Affine flush-cost model of the batched inference server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServingModel {
    /// Fixed seconds per flush (sparse closure expansion, dispatch).
    pub flush_seconds: f64,
    /// Seconds per request within a flush (per-row aggregation and
    /// layer compute).
    pub per_request_seconds: f64,
}

impl ServingModel {
    /// Latency of a flush serving `batch` requests.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub fn batch_latency(&self, batch: usize) -> f64 {
        assert!(batch > 0, "a flush serves at least one request");
        self.flush_seconds + batch as f64 * self.per_request_seconds
    }

    /// Sustainable requests per second at `max_batch`: back-to-back
    /// full flushes, `batch / latency(batch)` — monotone in the batch
    /// size whenever the fixed cost is nonzero.
    pub fn capacity_qps(&self, max_batch: usize) -> f64 {
        max_batch as f64 / self.batch_latency(max_batch)
    }

    /// The largest batch in `1..=limit` whose flush latency stays
    /// within `slo_seconds` — the capacity-maximal setting under a
    /// latency SLO. `None` if even an unbatched flush misses it.
    pub fn best_batch(&self, limit: usize, slo_seconds: f64) -> Option<usize> {
        (1..=limit)
            .rev()
            .find(|&b| self.batch_latency(b) <= slo_seconds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sampling() -> SamplingModel {
        SamplingModel {
            num_vertices: 100_000,
            avg_degree: 16.0,
            width: 64,
            remote_fraction: 0.75,
        }
    }

    #[test]
    fn tighter_fanouts_shrink_the_exchange() {
        let m = sampling();
        let loose = m.epoch_exchange_bytes(512, &[Some(10), Some(10)]);
        let tight = m.epoch_exchange_bytes(512, &[Some(2), Some(2)]);
        assert!(tight < loose, "tight {tight} vs loose {loose}");
    }

    #[test]
    fn src_rows_saturate_at_the_vertex_count() {
        let m = sampling();
        let rows = m.expected_src_rows(50_000, &[None, None, None]);
        assert_eq!(rows, m.num_vertices as f64);
    }

    #[test]
    fn per_update_volume_is_a_fraction_of_the_full_batch_epoch() {
        // Sampling's win is per *update*: one batch's exchange is tiny
        // next to the epoch-sized transfer a full-batch step needs.
        let m = sampling();
        let step = m.batch_exchange_bytes(256, &[Some(2), Some(2)]);
        let full = m.full_batch_epoch_bytes(2);
        assert!(step < 0.05 * full, "step {step} vs full {full}");
    }

    #[test]
    fn full_fanout_tiny_batches_amplify_volume() {
        // Sampling with no fanout bound re-fetches overlapping halos per
        // batch: strictly worse than one full-batch exchange.
        let m = sampling();
        let ratio = m.epoch_volume_ratio(64, &[None, None]);
        assert!(ratio > 1.0, "ratio {ratio}");
    }

    fn serving() -> ServingModel {
        ServingModel {
            flush_seconds: 2e-3,
            per_request_seconds: 1e-4,
        }
    }

    #[test]
    fn batching_raises_capacity() {
        let m = serving();
        assert!(m.capacity_qps(16) > 2.0 * m.capacity_qps(1));
        let mut prev = m.capacity_qps(1);
        for b in [2, 4, 8, 16, 32] {
            let q = m.capacity_qps(b);
            assert!(q > prev, "capacity fell at batch {b}");
            prev = q;
        }
    }

    #[test]
    fn best_batch_respects_the_slo() {
        let m = serving();
        let b = m.best_batch(1024, 5e-3).expect("slo is reachable");
        assert!(m.batch_latency(b) <= 5e-3);
        assert!(m.batch_latency(b + 1) > 5e-3, "not maximal: {b}");
    }

    #[test]
    fn impossible_slo_is_none() {
        let m = serving();
        assert_eq!(m.best_batch(64, 1e-6), None);
    }
}
