//! GPU memory accounting and out-of-memory detection.
//!
//! Full-graph GNN training keeps every layer's activations (and their
//! gradients) resident for the backward pass, which is what makes
//! replication run out of memory on the larger graphs in Figure 7. The
//! model here charges adjacency storage plus two copies (activation +
//! gradient) of every layer's embeddings, scaled by a framework overhead
//! factor covering workspace, fragmentation and optimizer state.

/// Multiplier covering allocator slack, aggregation workspace and
/// framework bookkeeping on top of the raw tensor bytes.
pub const FRAMEWORK_OVERHEAD: f64 = 2.0;

/// Estimated bytes to train a `layers`-deep GNN over `vertices` visible
/// vertices and `edges` adjacency entries with the given input/hidden
/// widths.
pub fn training_bytes(
    vertices: u64,
    edges: u64,
    feature_size: usize,
    hidden_size: usize,
    layers: usize,
) -> u64 {
    let adjacency = edges * 8;
    // Stored activation widths: the input features plus each layer's
    // output.
    let dims = feature_size as u64 + hidden_size as u64 * layers as u64;
    let activations = vertices * 4 * dims;
    let gradients = activations;
    adjacency + ((activations + gradients) as f64 * FRAMEWORK_OVERHEAD) as u64
}

/// Whether a workload fits in a GPU with `capacity_bytes` of memory.
pub fn fits(required: u64, capacity_bytes: u64) -> bool {
    required <= capacity_bytes
}

#[cfg(test)]
mod tests {
    use super::*;

    const GIB: u64 = 1 << 30;

    #[test]
    fn full_reddit_fits_a_v100() {
        // Replicating all of Reddit (230k vertices, 110M edges, 602 in,
        // 256 hidden) stays within 16 GB — the paper's Replication runs
        // on Reddit, slowly but without OOM.
        let b = training_bytes(230_000, 110_000_000, 602, 256, 2);
        assert!(fits(b, 16 * GIB), "{} GiB", b / GIB);
    }

    #[test]
    fn full_com_orkut_overflows_a_v100() {
        // Replicating all of Com-Orkut (3.07M vertices, 117M edges) blows
        // past 16 GB — the paper's Replication OOMs there (Figure 7b).
        let b = training_bytes(3_070_000, 117_000_000, 128, 128, 2);
        assert!(!fits(b, 16 * GIB), "{} GiB", b / GIB);
    }

    #[test]
    fn partitioned_com_orkut_fits() {
        // An eighth of Com-Orkut per device fits comfortably.
        let b = training_bytes(3_070_000 / 8 + 400_000, 117_000_000 / 8, 128, 128, 2);
        assert!(fits(b, 16 * GIB), "{} GiB", b / GIB);
    }

    #[test]
    fn memory_grows_with_layers() {
        let two = training_bytes(1_000_000, 5_000_000, 256, 256, 2);
        let three = training_bytes(1_000_000, 5_000_000, 256, 256, 3);
        assert!(three > two);
    }
}
