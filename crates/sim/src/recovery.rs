//! Offline cost model for elastic recovery.
//!
//! The runtime's elastic driver (in `dgcl`) checkpoints every epoch in
//! memory and serializes every `k` epochs; a crash costs one replan
//! plus the recomputation of whatever the resumed checkpoint had not
//! captured. This model prices that trade-off so the serialization
//! cadence `k` can be chosen offline — a discrete cousin of the
//! Young/Daly optimal-checkpoint-interval analysis, specialized to
//! epoch-granular training where snapshots can only happen at epoch
//! boundaries.

/// Per-epoch cost parameters of one training deployment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryModel {
    /// Wall-clock of one training epoch.
    pub epoch_seconds: f64,
    /// Wall-clock of serializing one checkpoint to the sink.
    pub checkpoint_seconds: f64,
    /// Wall-clock of the survivor replan (repartition + warm SPST +
    /// table compilation).
    pub replan_seconds: f64,
}

impl RecoveryModel {
    /// Expected seconds lost to one crash when the driver resumes from
    /// the serialized tier with cadence `every`: the replan, the
    /// in-flight half epoch, plus on average `(every - 1) / 2` fully
    /// recomputed epochs (a crash lands uniformly within the cadence
    /// window).
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    pub fn expected_crash_seconds(&self, every: usize) -> f64 {
        assert!(every > 0, "cadence must be at least one epoch");
        let recompute = (every - 1) as f64 / 2.0;
        self.replan_seconds + (0.5 + recompute) * self.epoch_seconds
    }

    /// Expected wall-clock of an `epochs`-epoch run with serialization
    /// cadence `every` and `crashes_per_epoch` expected failures per
    /// epoch: the epochs themselves, the amortized serialization
    /// overhead, and the expected crash losses.
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    pub fn expected_run_seconds(&self, epochs: usize, every: usize, crashes_per_epoch: f64) -> f64 {
        let productive = epochs as f64 * self.epoch_seconds;
        let snapshots = (epochs / every) as f64 * self.checkpoint_seconds;
        let crashes = epochs as f64 * crashes_per_epoch * self.expected_crash_seconds(every);
        productive + snapshots + crashes
    }

    /// The serialization cadence in `1..=epochs` minimizing
    /// [`RecoveryModel::expected_run_seconds`] (ties go to the shorter
    /// cadence — fresher snapshots at equal cost).
    ///
    /// # Panics
    ///
    /// Panics if `epochs` is zero.
    pub fn best_cadence(&self, epochs: usize, crashes_per_epoch: f64) -> usize {
        assert!(epochs > 0, "need at least one epoch");
        (1..=epochs)
            .min_by(|&a, &b| {
                self.expected_run_seconds(epochs, a, crashes_per_epoch)
                    .total_cmp(&self.expected_run_seconds(epochs, b, crashes_per_epoch))
            })
            .expect("non-empty range")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> RecoveryModel {
        RecoveryModel {
            epoch_seconds: 2.0,
            checkpoint_seconds: 0.3,
            replan_seconds: 0.8,
        }
    }

    #[test]
    fn crash_cost_grows_with_cadence() {
        let m = model();
        assert!(m.expected_crash_seconds(1) < m.expected_crash_seconds(4));
        // Cadence 1 loses only the replan and the in-flight half epoch.
        let c1 = m.expected_crash_seconds(1);
        assert!((c1 - (0.8 + 0.5 * 2.0)).abs() < 1e-12, "{c1}");
    }

    #[test]
    fn reliable_clusters_prefer_sparse_snapshots() {
        let m = model();
        let rare = m.best_cadence(50, 1e-4);
        let frequent = m.best_cadence(50, 0.5);
        assert!(
            rare > frequent,
            "rare crashes {rare} should allow sparser snapshots than frequent {frequent}"
        );
        assert_eq!(frequent, 1, "at half a crash per epoch, snapshot always");
    }

    #[test]
    fn free_snapshots_mean_cadence_one() {
        let m = RecoveryModel {
            checkpoint_seconds: 0.0,
            ..model()
        };
        assert_eq!(m.best_cadence(30, 0.01), 1);
    }

    #[test]
    fn costly_snapshots_push_cadence_up() {
        let cheap = model();
        let costly = RecoveryModel {
            checkpoint_seconds: 10.0,
            ..model()
        };
        let rate = 0.02;
        assert!(costly.best_cadence(40, rate) > cheap.best_cadence(40, rate));
    }

    #[test]
    fn run_cost_has_productive_floor() {
        let m = model();
        let floor = 20.0 * m.epoch_seconds;
        for every in 1..=10 {
            assert!(m.expected_run_seconds(20, every, 0.0) >= floor);
        }
    }
}
