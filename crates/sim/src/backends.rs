//! Cost models and the offline selector for the aggregation
//! *communication backends*.
//!
//! The runtime ships two ways to compute distributed GNN aggregation:
//!
//! * **Planned** — the paper's SPST-planned gather/scatter. Volume is
//!   proportional to the vertex cut, so it wins when the partitioner
//!   finds real structure (community graphs).
//! * **CAGNET** — 1D/1.5D block-partitioned SpMM (Tripathy et al.),
//!   broadcasting dense feature blocks. Per-device receive volume is
//!   `O(n·f/c)` regardless of the cut, so it wins when the cut is so
//!   large that the planned relation approaches a full allgather.
//!
//! [`BackendSelector::choose`] prices both on the fluid-flow network
//! model and picks per graph. Like
//! [`AlgorithmSelector`](crate::AlgorithmSelector), it is deterministic
//! and offline: every rank that evaluates the same topology and demand
//! summary picks the same backend, with no negotiation round.

use dgcl_topology::Topology;

use crate::collectives::episode;
use crate::transport::stage_barrier_seconds;

/// Which communication backend executes a layer's aggregation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// SPST-planned vertex-cut gather/scatter.
    Planned,
    /// CAGNET block SpMM with `replication`-way replicated rows
    /// (`replication == 1` is the 1D algorithm, `> 1` the 1.5D one).
    Cagnet {
        /// Replication factor `c`; must divide the device count.
        replication: usize,
    },
}

impl BackendKind {
    /// Stable name for tables and JSON (`planned`, `cagnet-1d`,
    /// `cagnet-1.5d/c2`, …).
    pub fn label(self) -> String {
        match self {
            BackendKind::Planned => "planned".to_string(),
            BackendKind::Cagnet { replication: 1 } => "cagnet-1d".to_string(),
            BackendKind::Cagnet { replication } => format!("cagnet-1.5d/c{replication}"),
        }
    }
}

/// The verdict of [`BackendSelector::choose`], with the priced
/// alternatives kept for reports.
#[derive(Debug, Clone, PartialEq)]
pub struct BackendChoice {
    /// The cheapest backend.
    pub kind: BackendKind,
    /// Predicted per-layer gather cost of the planned backend.
    pub planned_seconds: f64,
    /// Predicted per-layer cost of every CAGNET candidate, as
    /// `(replication, seconds)` with replication ascending.
    pub cagnet: Vec<(usize, f64)>,
}

impl BackendChoice {
    /// The predicted cost of the chosen backend.
    pub fn chosen_seconds(&self) -> f64 {
        match self.kind {
            BackendKind::Planned => self.planned_seconds,
            BackendKind::Cagnet { replication } => self
                .cagnet
                .iter()
                .find(|&&(c, _)| c == replication)
                .map(|&(_, s)| s)
                .unwrap_or(f64::INFINITY),
        }
    }
}

/// Predicted per-layer cost of the planned gather: all cross-device
/// demand flows released together under max-min fair sharing, plus the
/// closing barrier. `demand_pairs` is `(src, dst, bytes)` — the
/// communication relation `|V_ij| · bytes_per_vertex`.
pub fn planned_gather_cost(topology: &Topology, demand_pairs: &[(usize, usize, u64)]) -> f64 {
    episode(topology, demand_pairs, false) + stage_barrier_seconds()
}

/// First-`rem`-one-longer block sizes: the owned-row count of thin block
/// `t` when `n` rows are block-partitioned over `parts`.
fn thin_rows(n: usize, parts: usize, t: usize) -> usize {
    n / parts + usize::from(t < n % parts)
}

/// Predicted per-layer cost of CAGNET aggregation over GPUs
/// `0..devices` with replication `c`: the broadcast waves (every grid
/// column concurrently), and for `c > 1` the fat-row assembly, the
/// chain combine and the thin return. Each phase is one cold flow
/// episode plus the stage barrier.
///
/// # Panics
///
/// Panics if `c` does not divide `devices`.
pub fn cagnet_aggregate_cost(
    topology: &Topology,
    devices: usize,
    c: usize,
    n_rows: usize,
    bytes_per_row: u64,
) -> f64 {
    assert!(
        c >= 1 && devices.is_multiple_of(c),
        "replication must divide devices"
    );
    let p = devices;
    if p < 2 {
        return 0.0;
    }
    let r = p / c; // grid rows == fat blocks == broadcast rounds total
    let thin = |t: usize| thin_rows(n_rows, p, t) as u64 * bytes_per_row;
    let fat = |f: usize| -> u64 { (f * c..(f + 1) * c).map(thin).sum() };
    let mut total = 0.0;
    let mut ops = 0u64;
    // Assembly: c rounds; in round j the rank at column j of every fat
    // row flat-broadcasts its thin block to its c−1 grid-row mates.
    if c > 1 {
        for j in 0..c {
            let flows: Vec<(usize, usize, u64)> = (0..r)
                .flat_map(|f| {
                    let root = f * c + j;
                    (f * c..(f + 1) * c)
                        .filter(move |&m| m != root)
                        .map(move |m| (root, m, thin(root)))
                })
                .collect();
            total += episode(topology, &flows, false);
            ops += 1;
        }
    }
    // Broadcast waves: column j handles rounds Q_j (contiguous split of
    // 0..r); in wave w every column with a w-th round has its root
    // flat-broadcast a fat block down the column.
    let waves = r.div_ceil(c);
    for w in 0..waves {
        let flows: Vec<(usize, usize, u64)> = (0..c)
            .filter_map(|j| {
                let (start, len) = contiguous_split(r, c, j);
                (w < len).then_some((j, start + w))
            })
            .flat_map(|(j, t)| {
                let root = t * c + j;
                (0..r)
                    .map(move |f| f * c + j)
                    .filter(move |&m| m != root)
                    .map(move |m| (root, m, fat(t)))
            })
            .collect();
        total += episode(topology, &flows, false);
        ops += 1;
    }
    if c > 1 {
        // Chain combine: c−1 sequential fat-Z hops along each fat row.
        for j in 0..c - 1 {
            let flows: Vec<(usize, usize, u64)> =
                (0..r).map(|f| (f * c + j, f * c + j + 1, fat(f))).collect();
            total += episode(topology, &flows, false);
            ops += 1;
        }
        // Return: the chain tail hands each mate its thin Z slice.
        let flows: Vec<(usize, usize, u64)> = (0..r)
            .flat_map(|f| {
                let tail = f * c + c - 1;
                (f * c..(f + 1) * c)
                    .filter(move |&m| m != tail)
                    .map(move |m| (tail, m, thin(m)))
            })
            .collect();
        total += episode(topology, &flows, false);
        ops += 1;
    }
    total + ops as f64 * stage_barrier_seconds()
}

/// `(start, len)` of the `j`-th contiguous piece when `n` items are
/// split over `parts` (first `n % parts` pieces one longer) — the same
/// convention the executor uses for round assignment.
pub fn contiguous_split(n: usize, parts: usize, j: usize) -> (usize, usize) {
    let base = n / parts;
    let rem = n % parts;
    let start = j * base + j.min(rem);
    (start, base + usize::from(j < rem))
}

/// Deterministic offline backend chooser (the backend-level analogue of
/// [`AlgorithmSelector`](crate::AlgorithmSelector)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackendSelector;

impl BackendSelector {
    /// Prices the planned gather against every CAGNET replication
    /// candidate (`c = 1` plus each divisor `c` of `devices` with
    /// `c² ≤ devices`) and returns the cheapest, ties going to the
    /// planned backend. One device always chooses planned (there is
    /// nothing to communicate).
    pub fn choose(
        topology: &Topology,
        devices: usize,
        n_rows: usize,
        bytes_per_row: u64,
        demand_pairs: &[(usize, usize, u64)],
    ) -> BackendChoice {
        let planned_seconds = planned_gather_cost(topology, demand_pairs);
        if devices < 2 {
            return BackendChoice {
                kind: BackendKind::Planned,
                planned_seconds,
                cagnet: Vec::new(),
            };
        }
        let cagnet: Vec<(usize, f64)> = (1..=devices)
            .filter(|&c| devices.is_multiple_of(c) && (c == 1 || c * c <= devices))
            .map(|c| {
                (
                    c,
                    cagnet_aggregate_cost(topology, devices, c, n_rows, bytes_per_row),
                )
            })
            .collect();
        let (best_c, best_seconds) = cagnet
            .iter()
            .copied()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("c = 1 is always a candidate");
        let kind = if best_seconds < planned_seconds {
            BackendKind::Cagnet {
                replication: best_c,
            }
        } else {
            BackendKind::Planned
        };
        BackendChoice {
            kind,
            planned_seconds,
            cagnet,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_split_covers_everything_in_order() {
        for n in 0..12usize {
            for parts in 1..5usize {
                let mut next = 0usize;
                for j in 0..parts {
                    let (start, len) = contiguous_split(n, parts, j);
                    assert_eq!(start, next, "n {n} parts {parts} j {j}");
                    next += len;
                }
                assert_eq!(next, n);
            }
        }
    }

    #[test]
    fn cagnet_cost_is_positive_and_replication_helps_broadcast_volume() {
        let topo = Topology::dgx1();
        let c1 = cagnet_aggregate_cost(&topo, 8, 1, 4096, 1024);
        let c2 = cagnet_aggregate_cost(&topo, 8, 2, 4096, 1024);
        assert!(c1.is_finite() && c1 > 0.0);
        assert!(c2.is_finite() && c2 > 0.0);
    }

    #[test]
    fn tiny_cut_prefers_planned_and_huge_cut_prefers_cagnet() {
        let topo = Topology::dgx1();
        let n = 1 << 14;
        let bpr = 4 * 64u64;
        // A token cut: a few hundred vertices cross partitions.
        let small: Vec<(usize, usize, u64)> = (0..8)
            .flat_map(|i| {
                (0..8)
                    .filter(move |&j| j != i)
                    .map(move |j| (i, j, 40 * bpr))
            })
            .collect();
        let choice = BackendSelector::choose(&topo, 8, n, bpr, &small);
        assert_eq!(choice.kind, BackendKind::Planned, "{choice:?}");
        // A worst-case cut: everyone needs nearly everything.
        let huge: Vec<(usize, usize, u64)> = (0..8)
            .flat_map(|i| {
                (0..8)
                    .filter(move |&j| j != i)
                    .map(move |j| (i, j, (n as u64 / 8) * bpr))
            })
            .collect();
        let choice = BackendSelector::choose(&topo, 8, n, bpr, &huge);
        assert!(
            matches!(choice.kind, BackendKind::Cagnet { .. }),
            "{choice:?}"
        );
        assert!(choice.chosen_seconds() <= choice.planned_seconds);
    }

    #[test]
    fn one_device_always_chooses_planned() {
        let topo = Topology::dgx1();
        let choice = BackendSelector::choose(&topo, 1, 100, 256, &[]);
        assert_eq!(choice.kind, BackendKind::Planned);
    }

    #[test]
    fn selector_is_deterministic() {
        let topo = Topology::pcie_host(8);
        let pairs: Vec<(usize, usize, u64)> = (0..8)
            .flat_map(|i| {
                (0..8)
                    .filter(move |&j| j != i)
                    .map(move |j| (i, j, 1 << 16))
            })
            .collect();
        let a = BackendSelector::choose(&topo, 8, 10_000, 512, &pairs);
        let b = BackendSelector::choose(&topo, 8, 10_000, 512, &pairs);
        assert_eq!(a, b);
    }
}
