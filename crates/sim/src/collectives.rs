//! Cost models for the fabric's collective algorithm zoo, and the
//! autotuner that picks an algorithm per message size.
//!
//! The runtime (in `dgcl-core`) ships three allreduce algorithms — the
//! centralized rendezvous reference, a chain-pipelined ring and
//! recursive halving/doubling — plus flat, chain and binomial-tree
//! broadcasts. This module prices each of them on the fluid-flow
//! network model so an [`AlgorithmSelector`] can be tuned offline, per
//! topology and device count, from a simulated sweep.
//!
//! Every model follows the shape of
//! [`simulate_plan_pipelined`](crate::network::simulate_plan_pipelined):
//! the payload is split into `C` chunks, the *fill* term runs each
//! stage's chunk-sized flow episode once with the per-transport startup
//! overhead (α), the *steady* term re-runs the busiest concurrent
//! episode overhead-free (warm links, the β term under max-min fair
//! sharing), and the total is
//!
//! ```text
//! T = fill + (C − 1) · (steady + flag) + barrier
//! ```
//!
//! The rendezvous reference is not chunk-pipelined — it is priced as
//! two barriered flat episodes (gather to rank 0, broadcast back),
//! which is exactly why it loses at scale.

use dgcl_topology::Topology;

use crate::network::{simulate_flows, Flow, CHUNK_FLAG_SECONDS};
use crate::transport::{flow_overhead_seconds, stage_barrier_seconds};

/// The allreduce algorithms the fabric implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AllreduceAlgo {
    /// Centralized rendezvous on rank 0 (the reference implementation).
    Rendezvous,
    /// Chain-pipelined ring: reduce 0→…→n−1, broadcast back.
    Ring,
    /// Direct-exchange reduce-scatter + recursive-doubling allgather.
    HalvingDoubling,
}

impl AllreduceAlgo {
    /// All algorithms, in a fixed order for sweeps and reports.
    pub const ALL: [AllreduceAlgo; 3] = [
        AllreduceAlgo::Rendezvous,
        AllreduceAlgo::Ring,
        AllreduceAlgo::HalvingDoubling,
    ];

    /// Stable name for tables and JSON.
    pub fn name(self) -> &'static str {
        match self {
            AllreduceAlgo::Rendezvous => "rendezvous",
            AllreduceAlgo::Ring => "ring",
            AllreduceAlgo::HalvingDoubling => "halving-doubling",
        }
    }
}

/// The broadcast algorithms the fabric implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BroadcastAlgo {
    /// Root sends directly to every peer (the reference).
    Flat,
    /// Chain relay root→…→last, chunk-pipelined.
    Chain,
    /// Binomial tree, chunk-pipelined.
    BinomialTree,
}

impl BroadcastAlgo {
    /// All algorithms, in a fixed order for sweeps and reports.
    pub const ALL: [BroadcastAlgo; 3] = [
        BroadcastAlgo::Flat,
        BroadcastAlgo::Chain,
        BroadcastAlgo::BinomialTree,
    ];

    /// Stable name for tables and JSON.
    pub fn name(self) -> &'static str {
        match self {
            BroadcastAlgo::Flat => "flat",
            BroadcastAlgo::Chain => "chain",
            BroadcastAlgo::BinomialTree => "binomial-tree",
        }
    }
}

/// One flow episode over `(src, dst, bytes)` pairs; `warm` drops the
/// per-flow startup overhead (steady-state chunks over established
/// transfers). Self-pairs are local copies and cost nothing here.
pub(crate) fn episode(topology: &Topology, pairs: &[(usize, usize, u64)], warm: bool) -> f64 {
    let flows: Vec<Flow> = pairs
        .iter()
        .enumerate()
        .filter(|(_, &(src, dst, bytes))| src != dst && bytes > 0)
        .map(|(tag, &(src, dst, bytes))| Flow {
            route: topology.route(src, dst).clone(),
            bytes,
            overhead_seconds: if warm {
                0.0
            } else {
                flow_overhead_seconds(topology, src, dst)
            },
            tag,
        })
        .collect();
    if flows.is_empty() {
        return 0.0;
    }
    simulate_flows(topology, &flows).0
}

/// Number of pipeline chunks for `bytes` at `chunk_bytes` granularity,
/// clamped like the executor (at least one, at most 64 in the model).
fn chunks(bytes: u64, chunk_bytes: u64) -> u64 {
    bytes.div_ceil(chunk_bytes.max(1)).clamp(1, 64)
}

/// Pipelined makespan from a fill cost, a steady-state chunk cost and a
/// chunk count: `fill + (C − 1)(steady + flag) + barrier`.
fn pipelined(fill: f64, steady: f64, chunks: u64) -> f64 {
    fill + (chunks - 1) as f64 * (steady + CHUNK_FLAG_SECONDS) + stage_barrier_seconds()
}

/// Predicted latency of one `bytes`-sized allreduce over GPUs
/// `0..devices` of `topology` with `algo`, assuming the executor's
/// `chunk_bytes` pipelining granularity.
pub fn allreduce_cost(
    topology: &Topology,
    devices: usize,
    bytes: u64,
    chunk_bytes: u64,
    algo: AllreduceAlgo,
) -> f64 {
    let n = devices;
    if n < 2 || bytes == 0 {
        return 0.0;
    }
    match algo {
        AllreduceAlgo::Rendezvous => {
            // Flat gather into rank 0, then flat broadcast back; one
            // barrier after each phase, no chunk pipelining.
            let gather: Vec<_> = (1..n).map(|d| (d, 0, bytes)).collect();
            let bcast: Vec<_> = (1..n).map(|d| (0, d, bytes)).collect();
            episode(topology, &gather, false)
                + episode(topology, &bcast, false)
                + 2.0 * stage_barrier_seconds()
        }
        AllreduceAlgo::Ring => {
            // 2(n−1) chain hops: reduce 0→…→n−1, broadcast back. The
            // fill walks the chain hop by hop; at steady state every
            // hop streams a chunk concurrently.
            let c = chunks(bytes, chunk_bytes);
            let cb = bytes.div_ceil(c);
            let mut hops: Vec<(usize, usize, u64)> = Vec::new();
            for d in 0..n - 1 {
                hops.push((d, d + 1, cb));
            }
            for d in (1..n).rev() {
                hops.push((d, d - 1, cb));
            }
            let fill: f64 = hops.iter().map(|&h| episode(topology, &[h], false)).sum();
            let steady = episode(topology, &hops, true);
            pipelined(fill, steady, c)
        }
        AllreduceAlgo::HalvingDoubling => {
            // Direct-exchange reduce-scatter (all-to-all of 1/n-sized
            // segments) followed by ⌈log2 n⌉ recursive-doubling
            // allgather rounds; each phase is chunk-pipelined.
            let seg = bytes.div_ceil(n as u64);
            let c = chunks(seg, chunk_bytes);
            let cb = seg.div_ceil(c);
            let scatter: Vec<(usize, usize, u64)> = (0..n)
                .flat_map(|d| (0..n).map(move |p| (d, p, cb)))
                .collect();
            let mut fill = episode(topology, &scatter, false);
            let mut steady = episode(topology, &scatter, true);
            let mut k = 0usize;
            while (1usize << k) < n {
                let cnt = (1usize << k).min(n - (1 << k)) as u64;
                let round: Vec<(usize, usize, u64)> = (0..n)
                    .map(|d| (d, (d + n - (1 << k)) % n, cnt * cb))
                    .collect();
                fill += episode(topology, &round, false);
                steady = steady.max(episode(topology, &round, true));
                k += 1;
            }
            pipelined(fill, steady, c)
        }
    }
}

/// Predicted latency of one `bytes`-sized broadcast from rank 0 over
/// GPUs `0..devices` of `topology` with `algo`.
pub fn broadcast_cost(
    topology: &Topology,
    devices: usize,
    bytes: u64,
    chunk_bytes: u64,
    algo: BroadcastAlgo,
) -> f64 {
    let n = devices;
    if n < 2 || bytes == 0 {
        return 0.0;
    }
    let c = chunks(bytes, chunk_bytes);
    let cb = bytes.div_ceil(c);
    match algo {
        BroadcastAlgo::Flat => {
            let flows: Vec<_> = (1..n).map(|d| (0, d, cb)).collect();
            let fill = episode(topology, &flows, false);
            let steady = episode(topology, &flows, true);
            pipelined(fill, steady, c)
        }
        BroadcastAlgo::Chain => {
            let hops: Vec<_> = (0..n - 1).map(|d| (d, d + 1, cb)).collect();
            let fill: f64 = hops.iter().map(|&h| episode(topology, &[h], false)).sum();
            let steady = episode(topology, &hops, true);
            pipelined(fill, steady, c)
        }
        BroadcastAlgo::BinomialTree => {
            let mut fill = 0.0;
            let mut steady = 0.0f64;
            let mut edges: Vec<(usize, usize, u64)> = Vec::new();
            let mut k = 0usize;
            while (1usize << k) < n {
                let round: Vec<(usize, usize, u64)> = (0..1usize << k)
                    .filter(|r| r + (1 << k) < n)
                    .map(|r| (r, r + (1 << k), cb))
                    .collect();
                fill += episode(topology, &round, false);
                edges.extend(&round);
                k += 1;
            }
            steady = steady.max(episode(topology, &edges, true));
            pipelined(fill, steady, c)
        }
    }
}

/// Cost of every allreduce algorithm at one point, in
/// [`AllreduceAlgo::ALL`] order.
pub fn allreduce_costs(
    topology: &Topology,
    devices: usize,
    bytes: u64,
    chunk_bytes: u64,
) -> Vec<(AllreduceAlgo, f64)> {
    AllreduceAlgo::ALL
        .iter()
        .map(|&a| (a, allreduce_cost(topology, devices, bytes, chunk_bytes, a)))
        .collect()
}

/// Message-size grid the tuner sweeps: 1 KiB → 256 MiB in powers of 2.
/// One octave between points bounds the interpolation error near an
/// algorithm crossover — the cost curves are smooth in log-size, so
/// the losing algorithm is within a few percent of the winner for at
/// least half an octave around the crossing. Off-grid sizes (the
/// benchmark sweeps half-octave points) stay within the 10% acceptance
/// band of the per-size best.
const TUNE_GRID: [u64; 19] = [
    1 << 10,
    1 << 11,
    1 << 12,
    1 << 13,
    1 << 14,
    1 << 15,
    1 << 16,
    1 << 17,
    1 << 18,
    1 << 19,
    1 << 20,
    1 << 21,
    1 << 22,
    1 << 23,
    1 << 24,
    1 << 25,
    1 << 26,
    1 << 27,
    1 << 28,
];

/// Per-(topology, device count) allreduce algorithm choice, tuned from
/// an offline simulated sweep over message sizes.
///
/// The table maps each tuning-grid upper bound to the cheapest
/// algorithm at that size; [`pick`](Self::pick) selects the first grid
/// point at or above the message size. Tuning is deterministic, so
/// every rank that tunes from the same topology picks identically —
/// which is what keeps a selector-driven cluster in agreement without
/// any negotiation round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlgorithmSelector {
    table: Vec<(u64, AllreduceAlgo)>,
}

impl AlgorithmSelector {
    /// Tunes a selector for GPUs `0..devices` of `topology`, assuming
    /// the executor pipelines at `chunk_bytes` granularity.
    pub fn tune(topology: &Topology, devices: usize, chunk_bytes: u64) -> Self {
        let table = TUNE_GRID
            .iter()
            .map(|&bytes| {
                let best = allreduce_costs(topology, devices, bytes, chunk_bytes)
                    .into_iter()
                    .min_by(|a, b| a.1.total_cmp(&b.1))
                    .map(|(a, _)| a)
                    .unwrap_or(AllreduceAlgo::Rendezvous);
                (bytes, best)
            })
            .collect();
        AlgorithmSelector { table }
    }

    /// A degenerate selector that always answers `algo`.
    pub fn fixed(algo: AllreduceAlgo) -> Self {
        AlgorithmSelector {
            table: vec![(u64::MAX, algo)],
        }
    }

    /// The tuned choice for a `bytes`-sized allreduce.
    pub fn pick(&self, bytes: u64) -> AllreduceAlgo {
        self.table
            .iter()
            .find(|&&(upper, _)| bytes <= upper)
            .or(self.table.last())
            .map(|&(_, algo)| algo)
            .unwrap_or(AllreduceAlgo::Rendezvous)
    }

    /// The tuned `(upper bound, algorithm)` table, for reports.
    pub fn table(&self) -> &[(u64, AllreduceAlgo)] {
        &self.table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CHUNK: u64 = 16 << 10;

    #[test]
    fn costs_are_positive_and_finite() {
        let topo = Topology::dgx1();
        for algo in AllreduceAlgo::ALL {
            let t = allreduce_cost(&topo, 8, 1 << 20, CHUNK, algo);
            assert!(t.is_finite() && t > 0.0, "{algo:?}: {t}");
        }
        for algo in BroadcastAlgo::ALL {
            let t = broadcast_cost(&topo, 8, 1 << 20, CHUNK, algo);
            assert!(t.is_finite() && t > 0.0, "{algo:?}: {t}");
        }
    }

    #[test]
    fn costs_grow_with_message_size() {
        let topo = Topology::pcie_host(8);
        for algo in AllreduceAlgo::ALL {
            let small = allreduce_cost(&topo, 8, 1 << 16, CHUNK, algo);
            let large = allreduce_cost(&topo, 8, 1 << 24, CHUNK, algo);
            assert!(large > small, "{algo:?}: {small} !< {large}");
        }
    }

    #[test]
    fn rendezvous_loses_at_scale() {
        // The whole point of the zoo: on a large message the centralized
        // reference is not the best algorithm on any real topology.
        for topo in [Topology::dgx1(), Topology::pcie_host(8)] {
            let costs = allreduce_costs(&topo, 8, 64 << 20, CHUNK);
            let best = costs
                .iter()
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .expect("non-empty");
            assert_ne!(best.0, AllreduceAlgo::Rendezvous, "{costs:?}");
        }
    }

    #[test]
    fn selector_picks_the_swept_best_on_grid_points() {
        let topo = Topology::dgx1();
        let sel = AlgorithmSelector::tune(&topo, 8, CHUNK);
        for &(bytes, algo) in sel.table() {
            let best = allreduce_costs(&topo, 8, bytes, CHUNK)
                .into_iter()
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .map(|(a, _)| a)
                .expect("non-empty");
            assert_eq!(algo, best, "at {bytes} bytes");
        }
    }

    #[test]
    fn selector_is_deterministic_and_fixed_always_answers() {
        let topo = Topology::dgx1_pair_ib();
        let a = AlgorithmSelector::tune(&topo, 16, CHUNK);
        let b = AlgorithmSelector::tune(&topo, 16, CHUNK);
        assert_eq!(a, b);
        let f = AlgorithmSelector::fixed(AllreduceAlgo::Ring);
        for bytes in [0u64, 1, 1 << 20, u64::MAX] {
            assert_eq!(f.pick(bytes), AllreduceAlgo::Ring);
        }
    }

    #[test]
    fn degenerate_sizes_cost_nothing() {
        let topo = Topology::dgx1();
        assert_eq!(
            allreduce_cost(&topo, 1, 1 << 20, CHUNK, AllreduceAlgo::Ring),
            0.0
        );
        assert_eq!(allreduce_cost(&topo, 8, 0, CHUNK, AllreduceAlgo::Ring), 0.0);
    }
}
