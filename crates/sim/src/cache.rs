//! Offline sizing model for the remote-feature cache (`dgcl::featcache`).
//!
//! Layer-0 feature rows are immutable during training, so a per-rank
//! cache of hot remote rows converts repeated gather traffic into local
//! reads. The open question is *capacity*: every cached row costs
//! resident memory forever but only pays back proportionally to how
//! often the sampler would have re-fetched it. [`CacheModel`] prices
//! that trade-off offline from the same per-vertex demand statistics the
//! deterministic admission ranking uses, so every rank derives the same
//! capacity without negotiation — the same pattern as the collective
//! autotuner and the backend selector.
//!
//! The model is an α–β shape: candidate `i` (descending expected
//! per-epoch fetch frequency `gains[i]`) saves `gains[i] · row_bytes`
//! wire bytes per epoch and costs `alpha · row_bytes` of amortised
//! residency. Net benefit is maximised by admitting exactly the prefix
//! with `gains[i] > alpha` — capacity selection degenerates to counting,
//! which is deterministic, monotone in `alpha`, and trivially identical
//! across ranks.

/// Prices a feature-cache capacity against the volume it saves.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheModel {
    /// Bytes per cached feature row (`4 · width`).
    pub row_bytes: f64,
    /// Per candidate row, the expected remote fetches avoided per epoch,
    /// sorted descending (the admission ranking's order).
    pub gains: Vec<f64>,
    /// Residency cost weight α: the fetches-per-epoch a row must save to
    /// justify staying resident. Larger α shrinks the cache.
    pub alpha: f64,
}

impl CacheModel {
    /// A model over `gains` (any order; sorted internally) with the
    /// given α and row width in f32 elements.
    pub fn new(width: usize, mut gains: Vec<f64>, alpha: f64) -> Self {
        gains.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
        Self {
            row_bytes: (4 * width) as f64,
            gains,
            alpha,
        }
    }

    /// The net-benefit-maximising capacity: the length of the prefix
    /// whose per-row gain strictly exceeds α. Deterministic (first
    /// argmax) and monotone nonincreasing in α.
    pub fn choose_capacity(&self) -> usize {
        self.gains.iter().take_while(|&&g| g > self.alpha).count()
    }

    /// Expected wire bytes one epoch saves at capacity `c`.
    pub fn bytes_saved_per_epoch(&self, c: usize) -> f64 {
        let c = c.min(self.gains.len());
        self.gains[..c].iter().sum::<f64>() * self.row_bytes
    }

    /// Expected fraction of remote-row fetches served from the cache at
    /// capacity `c` (0.0 when there is nothing to fetch).
    pub fn hit_fraction(&self, c: usize) -> f64 {
        let total: f64 = self.gains.iter().sum();
        if total <= 0.0 {
            return 0.0;
        }
        let c = c.min(self.gains.len());
        self.gains[..c].iter().sum::<f64>() / total
    }

    /// Expected remaining gather volume at capacity `c` relative to the
    /// uncached epoch (1.0 at capacity 0, falling monotonically).
    pub fn volume_ratio(&self, c: usize) -> f64 {
        1.0 - self.hit_fraction(c)
    }

    /// Net benefit (bytes saved minus amortised residency cost) at
    /// capacity `c` — what [`CacheModel::choose_capacity`] maximises.
    pub fn net_benefit(&self, c: usize) -> f64 {
        let c = c.min(self.gains.len());
        self.bytes_saved_per_epoch(c) - self.alpha * c as f64 * self.row_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CacheModel {
        CacheModel::new(64, vec![9.0, 5.0, 3.0, 1.0, 0.5, 0.5], 1.0)
    }

    #[test]
    fn chosen_capacity_is_the_strict_prefix() {
        // gains > 1.0 are 9, 5, 3 — exactly three rows pay their way.
        assert_eq!(model().choose_capacity(), 3);
    }

    #[test]
    fn chosen_capacity_maximises_net_benefit() {
        let m = model();
        let best = m.choose_capacity();
        for c in 0..=m.gains.len() {
            assert!(
                m.net_benefit(best) >= m.net_benefit(c),
                "capacity {c} beats the chosen {best}"
            );
        }
    }

    #[test]
    fn volume_ratio_falls_monotonically_with_capacity() {
        let m = model();
        let mut prev = m.volume_ratio(0);
        assert_eq!(prev, 1.0);
        for c in 1..=m.gains.len() {
            let r = m.volume_ratio(c);
            assert!(r <= prev, "ratio rose at capacity {c}");
            prev = r;
        }
        assert_eq!(prev, 0.0, "full capacity caches every fetch");
    }

    #[test]
    fn larger_alpha_never_grows_the_cache() {
        let gains = vec![9.0, 5.0, 3.0, 1.0];
        let mut prev = usize::MAX;
        for alpha in [0.0, 0.5, 2.0, 4.0, 10.0] {
            let c = CacheModel::new(8, gains.clone(), alpha).choose_capacity();
            assert!(c <= prev, "alpha {alpha} grew the cache");
            prev = c;
        }
    }

    #[test]
    fn unsorted_gains_are_ranked() {
        let m = CacheModel::new(8, vec![0.1, 7.0, 2.0], 1.0);
        assert_eq!(m.gains, vec![7.0, 2.0, 0.1]);
        assert_eq!(m.choose_capacity(), 2);
    }

    #[test]
    fn empty_candidate_set_is_a_zero_cache() {
        let m = CacheModel::new(8, Vec::new(), 1.0);
        assert_eq!(m.choose_capacity(), 0);
        assert_eq!(m.hit_fraction(5), 0.0);
        assert_eq!(m.bytes_saved_per_epoch(5), 0.0);
    }
}
