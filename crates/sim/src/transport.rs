//! Transport selection and fixed overheads (§6.2 of the paper).
//!
//! DGCL picks a different peer-to-peer mechanism per GPU pair: CUDA
//! virtual memory under one socket, pinned host memory across sockets, and
//! a helper thread through the NIC across machines. The mechanisms differ
//! mainly in their fixed per-transfer cost, which this module models; the
//! sustained bandwidth is carried by the topology's connection model.

use dgcl_topology::Topology;

/// The communication mechanism automatically selected for a GPU pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transport {
    /// CUDA virtual-memory peer access (same socket).
    CudaVirtualMemory,
    /// Pinned CPU memory with DMA (same machine, different sockets).
    PinnedHostMemory,
    /// Helper thread through the NIC (different machines).
    NicHelperThread,
}

impl Transport {
    /// Fixed per-transfer startup cost in seconds.
    pub fn overhead_seconds(self) -> f64 {
        match self {
            Transport::CudaVirtualMemory => 5e-6,
            Transport::PinnedHostMemory => 15e-6,
            Transport::NicHelperThread => 50e-6,
        }
    }
}

/// Selects the transport for a GPU pair as §6.2 describes.
///
/// # Panics
///
/// Panics if a rank is out of range.
pub fn select_transport(topology: &Topology, src: usize, dst: usize) -> Transport {
    if topology.machine_of(src) != topology.machine_of(dst) {
        Transport::NicHelperThread
    } else if topology.socket_of(src) != topology.socket_of(dst)
        && !topology.is_nvlink_pair(src, dst)
    {
        Transport::PinnedHostMemory
    } else {
        Transport::CudaVirtualMemory
    }
}

/// Per-flow startup overhead for a transfer between two GPU ranks.
pub fn flow_overhead_seconds(topology: &Topology, src: usize, dst: usize) -> f64 {
    select_transport(topology, src, dst).overhead_seconds()
}

/// Cost of the decentralized ready/done flag synchronisation between
/// stages (§6.1). Flags are single words exchanged over peer-accessible
/// memory, so the barrier is cheap and independent of payloads.
pub fn stage_barrier_seconds() -> f64 {
    10e-6
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgcl_topology::Topology;

    #[test]
    fn same_socket_uses_cuda_vm() {
        let topo = Topology::dgx1();
        assert_eq!(select_transport(&topo, 0, 1), Transport::CudaVirtualMemory);
    }

    #[test]
    fn nvlinked_cross_socket_pair_uses_cuda_vm() {
        // GPU 0 and 4 sit under different sockets but share NVLink; peer
        // access goes over NVLink, not pinned memory.
        let topo = Topology::dgx1();
        assert_eq!(select_transport(&topo, 0, 4), Transport::CudaVirtualMemory);
    }

    #[test]
    fn cross_socket_without_nvlink_uses_pinned_memory() {
        let topo = Topology::pcie_host(8);
        assert_eq!(select_transport(&topo, 0, 7), Transport::PinnedHostMemory);
    }

    #[test]
    fn cross_machine_uses_nic() {
        let topo = Topology::dgx1_pair_ib();
        assert_eq!(select_transport(&topo, 0, 8), Transport::NicHelperThread);
    }

    #[test]
    fn overheads_are_ordered() {
        assert!(
            Transport::CudaVirtualMemory.overhead_seconds()
                < Transport::PinnedHostMemory.overhead_seconds()
        );
        assert!(
            Transport::PinnedHostMemory.overhead_seconds()
                < Transport::NicHelperThread.overhead_seconds()
        );
    }
}
