//! End-to-end per-epoch simulation for every communication method.
//!
//! Combines partitioning, planning, the fluid network simulation, the
//! compute model and the memory model into the per-epoch and
//! communication-time numbers that Figures 7–9 and Tables 5–9 report.
//!
//! Experiments usually run on scaled-down graph instances; the
//! [`EpochConfig::upscale`] factor projects volumes and work back to full
//! scale (payload bytes, vertex/edge counts and memory all scale
//! linearly, while the plan structure and the contention pattern are
//! scale-invariant), so the reported milliseconds are directly comparable
//! with the paper's tables.

use dgcl_graph::khop::k_hop_closure;
use dgcl_graph::CsrGraph;
use dgcl_partition::hierarchical::{hierarchical, induced_subgraph};
use dgcl_partition::multilevel::kway;
use dgcl_partition::PartitionedGraph;
use dgcl_plan::baselines::{peer_to_peer, replication, swap};
use dgcl_plan::{spst_plan, CommPlan, SendRecvTables};
use dgcl_topology::Topology;

use crate::compute::{GnnModel, GpuProfile};
use crate::memory::{fits, training_bytes};
use crate::network::{simulate_flows, simulate_plan, simulate_plan_pipelined, Flow};
use crate::transport::stage_barrier_seconds;

/// The communication schemes compared in §7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// SPST-planned communication (this paper).
    Dgcl,
    /// Direct peer-to-peer fetches (ROC/Lux style).
    PeerToPeer,
    /// Exchange through CPU memory (NeuGraph style).
    Swap,
    /// Full K-hop replication, no communication (Medusa style).
    Replication,
    /// Replication across machines, DGCL planning within each machine
    /// (Table 5's DGCL-R).
    DgclR,
}

impl Method {
    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            Method::Dgcl => "DGCL",
            Method::PeerToPeer => "Peer-to-peer",
            Method::Swap => "Swap",
            Method::Replication => "Replication",
            Method::DgclR => "DGCL-R",
        }
    }
}

/// Configuration of one simulated training setup.
#[derive(Debug, Clone, Copy)]
pub struct EpochConfig {
    /// GNN model.
    pub model: GnnModel,
    /// Number of GNN layers (the paper uses 2).
    pub layers: usize,
    /// Input feature width (Table 4).
    pub feature_size: usize,
    /// Hidden width (Table 4).
    pub hidden_size: usize,
    /// GPU performance profile.
    pub profile: GpuProfile,
    /// Full-scale projection factor (1 / graph scale).
    pub upscale: f64,
    /// Whether the backward pass uses the non-atomic sub-stage split.
    pub non_atomic: bool,
    /// Seed for partitioning and planning.
    pub seed: u64,
}

impl EpochConfig {
    /// A 2-layer configuration on V100s with no upscaling.
    pub fn new(model: GnnModel, feature_size: usize, hidden_size: usize) -> Self {
        Self {
            model,
            layers: 2,
            feature_size,
            hidden_size,
            profile: GpuProfile::v100(),
            upscale: 1.0,
            non_atomic: true,
            seed: 42,
        }
    }

    /// `(fin, fout)` per layer.
    pub fn layer_dims(&self) -> Vec<(usize, usize)> {
        (0..self.layers)
            .map(|l| {
                if l == 0 {
                    (self.feature_size, self.hidden_size)
                } else {
                    (self.hidden_size, self.hidden_size)
                }
            })
            .collect()
    }
}

/// Simulated per-epoch outcome.
#[derive(Debug, Clone)]
pub struct EpochBreakdown {
    /// The method simulated.
    pub method: Method,
    /// Embedding/gradient passing time per epoch, in seconds.
    pub comm_seconds: f64,
    /// Computation time per epoch (critical path), in seconds.
    pub compute_seconds: f64,
    /// Whether any device exceeds its memory capacity (at full scale).
    pub oom: bool,
    /// Average per-GPU communication volume per epoch in bytes.
    pub avg_comm_volume_bytes: u64,
    /// Planning wall-clock (zero for plan-free methods).
    pub planning_seconds: f64,
}

impl EpochBreakdown {
    /// Total per-epoch time in seconds.
    pub fn total_seconds(&self) -> f64 {
        self.comm_seconds + self.compute_seconds
    }

    /// An OOM placeholder result.
    fn oom(method: Method) -> Self {
        Self {
            method,
            comm_seconds: 0.0,
            compute_seconds: 0.0,
            oom: true,
            avg_comm_volume_bytes: 0,
            planning_seconds: 0.0,
        }
    }
}

/// Partitions `graph` for `topology` the way the paper does: hierarchical
/// (machine-first) when the topology spans machines, flat k-way otherwise.
pub fn partition_for(graph: &CsrGraph, topology: &Topology, seed: u64) -> PartitionedGraph {
    let groups = topology.gpus_by_machine();
    let sizes: Vec<usize> = groups.iter().map(|g| g.len()).collect();
    let parts = if topology.num_gpus() == 1 {
        vec![0u32; graph.num_vertices()]
    } else {
        hierarchical(graph, &sizes, seed)
    };
    PartitionedGraph::new(graph, parts, topology.num_gpus())
}

fn scaled(count: usize, upscale: f64) -> usize {
    (count as f64 * upscale).round() as usize
}

/// Per-epoch compute time for partitioned (non-replicated) training:
/// every device computes exactly its local vertices each layer; per layer
/// the slowest device gates progress (allgather is a barrier).
fn partitioned_compute_seconds(pg: &PartitionedGraph, cfg: &EpochConfig) -> f64 {
    let mut total = 0.0;
    for &(fin, fout) in &cfg.layer_dims() {
        let mut fwd_max = 0.0f64;
        let mut bwd_max = 0.0f64;
        for d in 0..pg.num_parts {
            let lg = pg.local_graph(d);
            let vertices = scaled(lg.num_local, cfg.upscale);
            let edges = scaled(lg.graph.num_edges(), cfg.upscale);
            fwd_max = fwd_max.max(
                cfg.profile
                    .layer_forward_seconds(cfg.model, vertices, edges, fin, fout),
            );
            bwd_max = bwd_max.max(
                cfg.profile
                    .layer_backward_seconds(cfg.model, vertices, edges, fin, fout),
            );
        }
        total += fwd_max + bwd_max;
    }
    total
}

/// Per-epoch communication cost of a staged plan, split into the parts
/// the overlap model hides differently.
struct PlanCommParts {
    /// Forward + backward wire time across all layers.
    transfer_seconds: f64,
    /// Gradient-apply time across all layers (the part bucketed
    /// allreduce overlap can hide behind backward compute).
    apply_seconds: f64,
    /// Extra sub-stage barrier cost of the non-atomic split.
    substage_seconds: f64,
    /// Average per-GPU volume in bytes.
    avg_volume: u64,
}

impl PlanCommParts {
    fn total_seconds(&self) -> f64 {
        self.transfer_seconds + self.apply_seconds + self.substage_seconds
    }
}

/// Communication cost for one forward + backward epoch of a staged plan:
/// each layer runs the plan forward (embedding allgather) and reversed
/// (gradient scatter), with the gradient-apply cost and, when enabled,
/// the extra sub-stage barriers of the non-atomic split. With
/// `chunk_rows` set, transfers go through the chunk-pipelined model
/// ([`simulate_plan_pipelined`]) instead of the barriered one.
fn plan_comm_parts(
    plan: &CommPlan,
    pg: &PartitionedGraph,
    topology: &Topology,
    cfg: &EpochConfig,
    chunk_rows: Option<usize>,
) -> PlanCommParts {
    let mut transfer = 0.0;
    let mut apply_total = 0.0;
    let mut substage_total = 0.0;
    let mut volume_total = 0u64;
    let reversed = plan.reversed();
    let extra_substages = if cfg.non_atomic {
        SendRecvTables::from_plan(&reversed)
            .split_substages()
            .num_substages
            .saturating_sub(1)
    } else {
        0
    };
    let run = |p: &CommPlan, bytes: u64| match chunk_rows {
        Some(rows) => simulate_plan_pipelined(p, topology, bytes, rows).total_seconds,
        None => simulate_plan(p, topology, bytes).total_seconds,
    };
    for &(fin, _) in &cfg.layer_dims() {
        let bytes = (4.0 * fin as f64 * cfg.upscale) as u64;
        let fwd = run(plan, bytes);
        let bwd = run(&reversed, bytes);
        // In the backward pass, each device folds the received gradients
        // into its embedding buffer; atomics throttle the receive path
        // of every stage, sub-stages pay extra barriers instead.
        let recv_max = plan
            .sent_bytes_per_gpu(bytes)
            .into_iter()
            .max()
            .unwrap_or(0);
        let (bwd_transfer, apply, substage_cost) = if cfg.non_atomic {
            (
                bwd,
                cfg.profile.gradient_apply_seconds(recv_max, false),
                extra_substages as f64 * stage_barrier_seconds(),
            )
        } else {
            (
                bwd * cfg.profile.atomic_comm_slowdown(),
                cfg.profile.gradient_apply_seconds(recv_max, true),
                0.0,
            )
        };
        transfer += fwd + bwd_transfer;
        apply_total += apply;
        substage_total += substage_cost;
        volume_total += 2 * plan.total_transfers() as u64 * bytes;
    }
    PlanCommParts {
        transfer_seconds: transfer,
        apply_seconds: apply_total,
        substage_seconds: substage_total,
        avg_volume: volume_total / pg.num_parts.max(1) as u64,
    }
}

/// Barriered communication time for one epoch (see [`plan_comm_parts`]).
fn plan_comm_seconds(
    plan: &CommPlan,
    pg: &PartitionedGraph,
    topology: &Topology,
    cfg: &EpochConfig,
) -> (f64, u64) {
    let parts = plan_comm_parts(plan, pg, topology, cfg, None);
    (parts.total_seconds(), parts.avg_volume)
}

/// Barriered vs pipelined epoch time for DGCL's plan on one setup (the
/// `BENCH_overlap.json` experiment).
#[derive(Debug, Clone)]
pub struct OverlapBreakdown {
    /// Number of simulated devices.
    pub devices: usize,
    /// Per-epoch compute time (identical in both schedules).
    pub compute_seconds: f64,
    /// Communication per epoch under the barriered schedule.
    pub comm_barriered_seconds: f64,
    /// Communication per epoch under the chunk-pipelined schedule, with
    /// the overlappable gradient-apply already subtracted.
    pub comm_pipelined_seconds: f64,
    /// Gradient-apply time hidden behind backward compute by the
    /// bucketed-allreduce overlap.
    pub hidden_apply_seconds: f64,
}

impl OverlapBreakdown {
    /// Epoch time with barriered collectives and serial communication.
    pub fn barriered_epoch_seconds(&self) -> f64 {
        self.compute_seconds + self.comm_barriered_seconds
    }

    /// Epoch time with chunk pipelining and communication–compute
    /// overlap.
    pub fn pipelined_epoch_seconds(&self) -> f64 {
        self.compute_seconds + self.comm_pipelined_seconds
    }
}

/// Simulates one DGCL epoch twice — barriered (PR 2's serial schedule)
/// and pipelined (chunked transfers via [`simulate_plan_pipelined`] plus
/// the trainer's bucketed-allreduce overlap, which hides gradient-apply
/// behind the backward half of compute) — and reports both.
///
/// # Panics
///
/// Panics if the configuration is inconsistent (zero layers).
pub fn simulate_overlap(
    graph: &CsrGraph,
    topology: &Topology,
    cfg: &EpochConfig,
    chunk_rows: usize,
) -> OverlapBreakdown {
    assert!(cfg.layers > 0, "a GNN has at least one layer");
    let pg = partition_for(graph, topology, cfg.seed);
    let compute = partitioned_compute_seconds(&pg, cfg);
    let outcome = spst_plan(&pg, topology, 4 * cfg.feature_size as u64, cfg.seed);
    let barriered = plan_comm_parts(&outcome.plan, &pg, topology, cfg, None);
    let pipelined = plan_comm_parts(&outcome.plan, &pg, topology, cfg, Some(chunk_rows));
    // The worker applies each layer's reduced gradients while the next
    // layer's backward matmuls run; the backward half of the epoch's
    // compute bounds what can be hidden.
    let hidden = pipelined.apply_seconds.min(0.5 * compute);
    OverlapBreakdown {
        devices: topology.num_gpus(),
        compute_seconds: compute,
        comm_barriered_seconds: barriered.total_seconds(),
        comm_pipelined_seconds: pipelined.total_seconds() - hidden,
        hidden_apply_seconds: hidden,
    }
}

fn partitioned_memory_ok(pg: &PartitionedGraph, cfg: &EpochConfig) -> bool {
    (0..pg.num_parts).all(|d| {
        let lg = pg.local_graph(d);
        let need = training_bytes(
            scaled(lg.num_total(), cfg.upscale) as u64,
            scaled(lg.graph.num_edges(), cfg.upscale) as u64,
            cfg.feature_size,
            cfg.hidden_size,
            cfg.layers,
        );
        fits(need, cfg.profile.memory_bytes)
    })
}

/// Simulates one training epoch of `method` over `graph` on `topology`.
///
/// # Panics
///
/// Panics if the configuration is inconsistent (e.g. zero layers) or the
/// topology lacks host memory when `method` is [`Method::Swap`].
pub fn simulate_epoch(
    method: Method,
    graph: &CsrGraph,
    topology: &Topology,
    cfg: &EpochConfig,
) -> EpochBreakdown {
    assert!(cfg.layers > 0, "a GNN has at least one layer");
    match method {
        Method::DgclR => return simulate_dgcl_r(graph, topology, cfg),
        Method::Replication => return simulate_replication(graph, topology, cfg),
        _ => {}
    }
    let pg = partition_for(graph, topology, cfg.seed);
    if !partitioned_memory_ok(&pg, cfg) {
        return EpochBreakdown::oom(method);
    }
    let compute = partitioned_compute_seconds(&pg, cfg);
    let (comm, volume, planning) = match method {
        Method::Dgcl => {
            let outcome = spst_plan(&pg, topology, 4 * cfg.feature_size as u64, cfg.seed);
            let (c, v) = plan_comm_seconds(&outcome.plan, &pg, topology, cfg);
            (c, v, outcome.planning_seconds)
        }
        Method::PeerToPeer => {
            let plan = peer_to_peer(&pg);
            let (c, v) = plan_comm_seconds(&plan, &pg, topology, cfg);
            (c, v, 0.0)
        }
        Method::Swap => {
            let mut comm = 0.0;
            let mut volume = 0u64;
            for &(fin, _) in &cfg.layer_dims() {
                let bytes = (4.0 * fin as f64 * cfg.upscale) as u64;
                let sp = swap(&pg, bytes);
                comm += 2.0 * swap_network_seconds(&sp, topology);
                let dumped: u64 = sp.dump_bytes.iter().sum();
                let loaded: u64 = sp.loads.iter().map(|&(_, _, b)| b).sum();
                volume += 2 * (dumped + loaded);
            }
            (comm, volume / pg.num_parts as u64, 0.0)
        }
        Method::Replication | Method::DgclR => unreachable!("handled above"),
    };
    EpochBreakdown {
        method,
        comm_seconds: comm,
        compute_seconds: compute,
        oom: false,
        avg_comm_volume_bytes: volume,
        planning_seconds: planning,
    }
}

/// Runs the swap schedule through the fluid network simulation: stage 0
/// dumps, stage 1 loads.
fn swap_network_seconds(sp: &dgcl_plan::baselines::SwapPlan, topology: &Topology) -> f64 {
    let mut total = 0.0;
    let dump_flows: Vec<Flow> = sp
        .dump_bytes
        .iter()
        .enumerate()
        .filter(|&(_, &b)| b > 0)
        .map(|(gpu, &bytes)| Flow {
            route: topology
                .route_nodes(
                    topology.gpu_node(gpu),
                    topology.host_memory_of(gpu).expect("host memory present"),
                )
                .expect("host memory reachable"),
            bytes,
            overhead_seconds: 15e-6,
            tag: gpu,
        })
        .collect();
    if !dump_flows.is_empty() {
        total += simulate_flows(topology, &dump_flows).0 + stage_barrier_seconds();
    }
    let load_flows: Vec<Flow> = sp
        .loads
        .iter()
        .enumerate()
        .map(|(i, &(owner, loader, bytes))| Flow {
            route: topology
                .route_nodes(
                    topology.host_memory_of(owner).expect("host memory present"),
                    topology.gpu_node(loader),
                )
                .expect("host memory reachable"),
            bytes,
            overhead_seconds: 15e-6,
            tag: i,
        })
        .collect();
    if !load_flows.is_empty() {
        total += simulate_flows(topology, &load_flows).0 + stage_barrier_seconds();
    }
    total
}

fn simulate_replication(
    graph: &CsrGraph,
    topology: &Topology,
    cfg: &EpochConfig,
) -> EpochBreakdown {
    let pg = partition_for(graph, topology, cfg.seed);
    let plan = replication(graph, &pg, cfg.layers);
    // Memory: every device stores its full K-hop closure.
    let ok = (0..pg.num_parts).all(|d| {
        let need = training_bytes(
            scaled(plan.stored_vertices[d], cfg.upscale) as u64,
            scaled(plan.stored_edges[d], cfg.upscale) as u64,
            cfg.feature_size,
            cfg.hidden_size,
            cfg.layers,
        );
        fits(need, cfg.profile.memory_bytes)
    });
    if !ok {
        return EpochBreakdown::oom(Method::Replication);
    }
    let dims = cfg.layer_dims();
    let mut compute = 0.0;
    for (l, &(fin, fout)) in dims.iter().enumerate() {
        let mut fwd_max = 0.0f64;
        let mut bwd_max = 0.0f64;
        for work in &plan.layer_work {
            let (vertices, edges) = work[l];
            let v = scaled(vertices, cfg.upscale);
            let e = scaled(edges, cfg.upscale);
            fwd_max = fwd_max.max(
                cfg.profile
                    .layer_forward_seconds(cfg.model, v, e, fin, fout),
            );
            bwd_max = bwd_max.max(
                cfg.profile
                    .layer_backward_seconds(cfg.model, v, e, fin, fout),
            );
        }
        compute += fwd_max + bwd_max;
    }
    let _ = topology;
    EpochBreakdown {
        method: Method::Replication,
        comm_seconds: 0.0,
        compute_seconds: compute,
        oom: false,
        avg_comm_volume_bytes: 0,
        planning_seconds: 0.0,
    }
}

/// DGCL-R (Table 5): machines replicate each other's K-hop frontier so no
/// traffic crosses the slow inter-machine link; inside each machine the
/// replicated subgraph is partitioned across the local GPUs with DGCL
/// planning the intra-machine exchange.
fn simulate_dgcl_r(graph: &CsrGraph, topology: &Topology, cfg: &EpochConfig) -> EpochBreakdown {
    let groups = topology.gpus_by_machine();
    if groups.len() <= 1 {
        return simulate_epoch(Method::Dgcl, graph, topology, cfg);
    }
    let machine_parts = kway(graph, groups.len(), cfg.seed);
    let mut comm_max = 0.0f64;
    let mut compute_max = 0.0f64;
    let mut planning = 0.0;
    let mut volume = 0u64;
    let mut oom = false;
    for (m, group) in groups.iter().enumerate() {
        let owned: Vec<dgcl_graph::VertexId> = machine_parts
            .iter()
            .enumerate()
            .filter(|&(_, &p)| p as usize == m)
            .map(|(v, _)| v as dgcl_graph::VertexId)
            .collect();
        // The machine stores and computes over the K-hop closure of its
        // share (per-layer shrinking closures like plain replication).
        let closures: Vec<Vec<bool>> = (0..=cfg.layers)
            .map(|h| k_hop_closure(graph, &owned, h).expect("owned vertices are in range"))
            .collect();
        let members: Vec<dgcl_graph::VertexId> = closures[cfg.layers]
            .iter()
            .enumerate()
            .filter(|(_, &x)| x)
            .map(|(v, _)| v as dgcl_graph::VertexId)
            .collect();
        let (sub, _) = induced_subgraph(graph, &members);
        let g = group.len();
        let sub_parts = kway(&sub, g.min(sub.num_vertices().max(1)), cfg.seed + m as u64);
        let sub_pg = PartitionedGraph::new(&sub, sub_parts, g);
        // Memory per GPU inside the machine.
        let mem_ok = (0..g).all(|d| {
            let lg = sub_pg.local_graph(d);
            let need = training_bytes(
                scaled(lg.num_total(), cfg.upscale) as u64,
                scaled(lg.graph.num_edges(), cfg.upscale) as u64,
                cfg.feature_size,
                cfg.hidden_size,
                cfg.layers,
            );
            fits(need, cfg.profile.memory_bytes)
        });
        if !mem_ok {
            oom = true;
            continue;
        }
        // Intra-machine planning and exchange on a single-machine
        // topology of the same size.
        let intra_topo = Topology::dgx1_subset(g.min(8));
        let outcome = spst_plan(&sub_pg, &intra_topo, 4 * cfg.feature_size as u64, cfg.seed);
        planning += outcome.planning_seconds;
        let (comm, vol) = plan_comm_seconds(&outcome.plan, &sub_pg, &intra_topo, cfg);
        volume += vol;
        // Compute: per layer, the machine must produce the shrinking
        // closure; work spreads over its GPUs following the intra-machine
        // sub-partition (inheriting its realistic imbalance — the slowest
        // GPU gates each layer, exactly as in partitioned training).
        let closure_total = members.len().max(1);
        let max_local = (0..g).map(|d| sub_pg.local[d].len()).max().unwrap_or(0);
        let max_edges = (0..g)
            .map(|d| sub_pg.local_graph(d).graph.num_edges())
            .max()
            .unwrap_or(0);
        let dims = cfg.layer_dims();
        let mut compute = 0.0;
        for (l, &(fin, fout)) in dims.iter().enumerate() {
            let need = &closures[cfg.layers - 1 - l];
            let vertices: usize = need.iter().filter(|&&x| x).count();
            let edges: usize = need
                .iter()
                .enumerate()
                .filter(|(_, &x)| x)
                .map(|(v, _)| graph.out_degree(v as dgcl_graph::VertexId))
                .sum();
            // Fraction of the stored closure this layer touches; the
            // per-GPU share follows the heaviest sub-partition.
            let v_frac = vertices as f64 / closure_total as f64;
            let e_frac = edges as f64 / sub.num_edges().max(1) as f64;
            let v = scaled((max_local as f64 * v_frac) as usize, cfg.upscale);
            let e = scaled((max_edges as f64 * e_frac) as usize, cfg.upscale);
            compute += cfg
                .profile
                .layer_forward_seconds(cfg.model, v, e, fin, fout)
                + cfg
                    .profile
                    .layer_backward_seconds(cfg.model, v, e, fin, fout);
        }
        comm_max = comm_max.max(comm);
        compute_max = compute_max.max(compute);
    }
    if oom {
        return EpochBreakdown::oom(Method::DgclR);
    }
    EpochBreakdown {
        method: Method::DgclR,
        comm_seconds: comm_max,
        compute_seconds: compute_max,
        oom: false,
        avg_comm_volume_bytes: volume / topology.num_gpus() as u64,
        planning_seconds: planning,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgcl_graph::Dataset;

    fn cfg_for(d: Dataset, model: GnnModel, scale: f64) -> EpochConfig {
        let stats = d.stats();
        let mut c = EpochConfig::new(model, stats.feature_size, stats.hidden_size);
        c.upscale = 1.0 / scale;
        c
    }

    #[test]
    fn dgcl_beats_peer_to_peer_on_dgx1() {
        let scale = 0.002;
        let graph = Dataset::WebGoogle.generate(scale, 1);
        let topo = Topology::dgx1();
        let cfg = cfg_for(Dataset::WebGoogle, GnnModel::Gcn, scale);
        let dgcl = simulate_epoch(Method::Dgcl, &graph, &topo, &cfg);
        let p2p = simulate_epoch(Method::PeerToPeer, &graph, &topo, &cfg);
        assert!(!dgcl.oom && !p2p.oom);
        assert!(
            dgcl.comm_seconds < p2p.comm_seconds,
            "DGCL {} vs P2P {}",
            dgcl.comm_seconds,
            p2p.comm_seconds
        );
        // Compute time is identical: same partition, same engine.
        assert!((dgcl.compute_seconds - p2p.compute_seconds).abs() < 1e-9);
    }

    #[test]
    fn swap_is_worst_on_sparse_graphs() {
        let scale = 0.002;
        let graph = Dataset::WikiTalk.generate(scale, 2);
        let topo = Topology::dgx1();
        let cfg = cfg_for(Dataset::WikiTalk, GnnModel::Gcn, scale);
        let swap = simulate_epoch(Method::Swap, &graph, &topo, &cfg);
        let p2p = simulate_epoch(Method::PeerToPeer, &graph, &topo, &cfg);
        assert!(
            swap.comm_seconds > p2p.comm_seconds,
            "swap {} vs p2p {}",
            swap.comm_seconds,
            p2p.comm_seconds
        );
    }

    #[test]
    fn replication_ooms_on_com_orkut() {
        let scale = 0.002;
        let graph = Dataset::ComOrkut.generate(scale, 3);
        let topo = Topology::dgx1();
        let cfg = cfg_for(Dataset::ComOrkut, GnnModel::Gcn, scale);
        let rep = simulate_epoch(Method::Replication, &graph, &topo, &cfg);
        assert!(rep.oom, "Com-Orkut replication should OOM at full scale");
    }

    #[test]
    fn replication_runs_on_web_google_without_communication() {
        let scale = 0.002;
        let graph = Dataset::WebGoogle.generate(scale, 4);
        let topo = Topology::dgx1();
        let cfg = cfg_for(Dataset::WebGoogle, GnnModel::Gcn, scale);
        let rep = simulate_epoch(Method::Replication, &graph, &topo, &cfg);
        assert!(!rep.oom);
        assert_eq!(rep.comm_seconds, 0.0);
        assert!(rep.compute_seconds > 0.0);
    }

    #[test]
    fn single_gpu_has_no_communication() {
        let scale = 0.002;
        let graph = Dataset::WebGoogle.generate(scale, 5);
        let topo = Topology::dgx1_subset(1);
        let cfg = cfg_for(Dataset::WebGoogle, GnnModel::Gin, scale);
        let out = simulate_epoch(Method::Dgcl, &graph, &topo, &cfg);
        assert!(!out.oom);
        assert_eq!(out.comm_seconds, 0.0);
    }

    #[test]
    fn communication_grows_with_gpu_count() {
        // Figure 2: aggregate communication (and with slow links, time)
        // grows with the number of GPUs.
        let scale = 0.004;
        let graph = Dataset::Reddit.generate(scale, 6);
        let cfg = cfg_for(Dataset::Reddit, GnnModel::Gcn, scale);
        let t8 = simulate_epoch(Method::PeerToPeer, &graph, &Topology::dgx1_subset(8), &cfg);
        let t2 = simulate_epoch(Method::PeerToPeer, &graph, &Topology::dgx1_subset(2), &cfg);
        assert!(t8.comm_seconds > t2.comm_seconds);
    }

    #[test]
    fn dgcl_r_eliminates_cross_machine_traffic_cost() {
        let scale = 0.002;
        let graph = Dataset::WebGoogle.generate(scale, 7);
        let topo = Topology::dgx1_pair_ib();
        let cfg = cfg_for(Dataset::WebGoogle, GnnModel::Gcn, scale);
        let dgcl = simulate_epoch(Method::Dgcl, &graph, &topo, &cfg);
        let dgcl_r = simulate_epoch(Method::DgclR, &graph, &topo, &cfg);
        assert!(!dgcl.oom && !dgcl_r.oom);
        // Table 5: for GCN on the sparse Web-Google, replication across
        // machines wins because IB dominates DGCL's epoch.
        assert!(
            dgcl_r.total_seconds() < dgcl.total_seconds(),
            "DGCL-R {} vs DGCL {}",
            dgcl_r.total_seconds(),
            dgcl.total_seconds()
        );
    }

    #[test]
    fn pipelined_overlap_beats_barriered_epoch() {
        // The acceptance shape of BENCH_overlap.json: strictly faster
        // pipelined epochs on both datasets at 4 and 8 devices.
        let scale = 0.002;
        for dataset in [Dataset::WikiTalk, Dataset::WebGoogle] {
            let graph = dataset.generate(scale, 9);
            let cfg = cfg_for(dataset, GnnModel::Gcn, scale);
            for devices in [4usize, 8] {
                let topo = Topology::dgx1_subset(devices);
                let b = simulate_overlap(&graph, &topo, &cfg, 64);
                assert!(
                    b.pipelined_epoch_seconds() < b.barriered_epoch_seconds(),
                    "{dataset:?} at {devices} devices: pipelined {} vs barriered {}",
                    b.pipelined_epoch_seconds(),
                    b.barriered_epoch_seconds()
                );
                assert!(b.hidden_apply_seconds > 0.0);
            }
        }
    }

    #[test]
    fn non_atomic_backward_is_faster() {
        let scale = 0.002;
        let graph = Dataset::WebGoogle.generate(scale, 8);
        let topo = Topology::dgx1();
        let mut cfg = cfg_for(Dataset::WebGoogle, GnnModel::Gcn, scale);
        cfg.non_atomic = true;
        let fast = simulate_epoch(Method::Dgcl, &graph, &topo, &cfg);
        cfg.non_atomic = false;
        let slow = simulate_epoch(Method::Dgcl, &graph, &topo, &cfg);
        assert!(
            fast.comm_seconds < slow.comm_seconds,
            "non-atomic {} vs atomic {}",
            fast.comm_seconds,
            slow.comm_seconds
        );
    }
}
