//! Roofline-style GNN compute-time model.
//!
//! GNN layer time on a GPU splits into a memory-bound neighbour
//! aggregation (gather `feat` floats per edge, write one row per vertex)
//! and flop-bound dense updates (the layer's matrix multiplies). The model
//! charges each part against the profile's memory bandwidth or peak
//! flops, plus a fixed kernel-launch overhead — enough to reproduce the
//! paper's compute/communication ratios across GCN, CommNet and GIN
//! (GCN < CommNet < GIN in compute intensity, §7).

/// The three GNN models the paper evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GnnModel {
    /// Graph convolutional network: one dense update per layer.
    Gcn,
    /// CommNet: separate self/neighbour transforms (two updates).
    CommNet,
    /// Graph isomorphism network: a two-layer MLP update (heaviest).
    Gin,
}

impl GnnModel {
    /// All models in the paper's order.
    pub fn all() -> [GnnModel; 3] {
        [GnnModel::Gcn, GnnModel::CommNet, GnnModel::Gin]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            GnnModel::Gcn => "GCN",
            GnnModel::CommNet => "CommNet",
            GnnModel::Gin => "GIN",
        }
    }

    /// Number of dense `in x out` matrix multiplies per layer.
    pub fn dense_updates(self) -> usize {
        match self {
            GnnModel::Gcn => 1,
            GnnModel::CommNet => 2,
            // GIN's MLP: two stacked transforms, plus the epsilon-weighted
            // self term folded into the first.
            GnnModel::Gin => 3,
        }
    }
}

/// Performance profile of a simulated GPU.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuProfile {
    /// Effective memory bandwidth in bytes/second.
    pub mem_bandwidth: f64,
    /// Effective dense throughput in flops/second.
    pub flops: f64,
    /// Fixed kernel-launch overhead in seconds.
    pub kernel_overhead: f64,
    /// GPU memory capacity in bytes.
    pub memory_bytes: u64,
    /// Slowdown multiplier on gradient accumulation when atomics are
    /// needed (Table 9 removes it via sub-stages).
    pub atomic_penalty: f64,
}

impl GpuProfile {
    /// NVIDIA V100 16 GB (the paper's default configuration). The flop
    /// rate is an *effective* GNN-workload rate (small per-vertex
    /// matrices reach a fraction of the 14 TFLOPS peak), calibrated so
    /// the GCN/CommNet/GIN compute spread matches §7.
    pub fn v100() -> Self {
        Self {
            mem_bandwidth: 1000e9,
            flops: 3.0e12,
            kernel_overhead: 10e-6,
            memory_bytes: 16 * (1 << 30),
            atomic_penalty: 2.5,
        }
    }

    /// NVIDIA GTX 1080-Ti 12 GB (the paper's PCIe-only configuration).
    pub fn gtx1080ti() -> Self {
        Self {
            mem_bandwidth: 484e9,
            flops: 2.2e12,
            kernel_overhead: 10e-6,
            memory_bytes: 12 * (1 << 30),
            atomic_penalty: 2.5,
        }
    }

    /// Seconds for the neighbour aggregation of one layer: gather `feat`
    /// floats along every edge and write one accumulated row per vertex.
    pub fn aggregate_seconds(&self, edges: usize, vertices: usize, feat: usize) -> f64 {
        let bytes = (edges + vertices) as f64 * feat as f64 * 4.0;
        bytes / self.mem_bandwidth + self.kernel_overhead
    }

    /// Seconds for one dense `rows x fin -> rows x fout` update.
    pub fn dense_seconds(&self, rows: usize, fin: usize, fout: usize) -> f64 {
        let flops = 2.0 * rows as f64 * fin as f64 * fout as f64;
        flops / self.flops + self.kernel_overhead
    }

    /// Forward time of one GNN layer over `vertices` output rows and
    /// `edges` aggregated edges.
    pub fn layer_forward_seconds(
        &self,
        model: GnnModel,
        vertices: usize,
        edges: usize,
        fin: usize,
        fout: usize,
    ) -> f64 {
        let mut t = self.aggregate_seconds(edges, vertices, fin);
        for _ in 0..model.dense_updates() {
            t += self.dense_seconds(vertices, fin, fout);
        }
        t
    }

    /// Backward time of one layer: gradient flows re-traverse the edges
    /// (scatter instead of gather) and every dense update needs both a
    /// data-gradient and a weight-gradient multiply.
    pub fn layer_backward_seconds(
        &self,
        model: GnnModel,
        vertices: usize,
        edges: usize,
        fin: usize,
        fout: usize,
    ) -> f64 {
        let mut t = self.aggregate_seconds(edges, vertices, fin);
        for _ in 0..model.dense_updates() {
            t += 2.0 * self.dense_seconds(vertices, fin, fout);
        }
        t
    }

    /// Seconds to apply `bytes` of received gradients into the embedding
    /// buffer, optionally with the atomic penalty.
    pub fn gradient_apply_seconds(&self, bytes: u64, atomic: bool) -> f64 {
        let factor = if atomic { self.atomic_penalty } else { 1.0 };
        bytes as f64 * factor / self.mem_bandwidth
    }

    /// Slowdown multiplier on the backward transfer itself when received
    /// gradients are folded in with atomic operations: the accumulation
    /// kernel sits on the critical path of every stage, throttling the
    /// receive side (the paper measures 25-36% end-to-end, Table 9).
    pub fn atomic_comm_slowdown(&self) -> f64 {
        1.0 + (self.atomic_penalty - 1.0) * 0.25
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_complexity_order_matches_paper() {
        // From GCN to CommNet and GIN, compute per layer increases (§7).
        let p = GpuProfile::v100();
        let t = |m| p.layer_forward_seconds(m, 10_000, 500_000, 256, 256);
        assert!(t(GnnModel::Gcn) < t(GnnModel::CommNet));
        assert!(t(GnnModel::CommNet) < t(GnnModel::Gin));
    }

    #[test]
    fn backward_costs_more_than_forward() {
        let p = GpuProfile::v100();
        let fwd = p.layer_forward_seconds(GnnModel::Gcn, 10_000, 500_000, 256, 256);
        let bwd = p.layer_backward_seconds(GnnModel::Gcn, 10_000, 500_000, 256, 256);
        assert!(bwd > fwd);
    }

    #[test]
    fn aggregation_scales_with_edges() {
        let p = GpuProfile::v100();
        let small = p.aggregate_seconds(1_000, 100, 64);
        let large = p.aggregate_seconds(2_000, 100, 64);
        assert!(large > small);
    }

    #[test]
    fn atomic_apply_is_slower() {
        let p = GpuProfile::v100();
        assert!(p.gradient_apply_seconds(1 << 20, true) > p.gradient_apply_seconds(1 << 20, false));
    }

    #[test]
    fn v100_outruns_1080ti() {
        let a = GpuProfile::v100();
        let b = GpuProfile::gtx1080ti();
        assert!(
            a.layer_forward_seconds(GnnModel::Gin, 10_000, 100_000, 128, 128)
                < b.layer_forward_seconds(GnnModel::Gin, 10_000, 100_000, 128, 128)
        );
    }

    #[test]
    fn names_and_order() {
        let names: Vec<_> = GnnModel::all().iter().map(|m| m.name()).collect();
        assert_eq!(names, vec!["GCN", "CommNet", "GIN"]);
    }
}
