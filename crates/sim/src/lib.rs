//! Execution simulation for the DGCL reproduction.
//!
//! The paper's numbers come from real V100/1080-Ti clusters; this crate
//! substitutes a deterministic simulator with three parts:
//!
//! * [`network`] — a fluid-flow model of staged transfers with *max-min
//!   fair sharing* on every directed physical hop plus per-flow transport
//!   overheads. Where the planner's cost model (in `dgcl-plan`) makes the
//!   simplifying stage-max assumption, this simulator resolves contention
//!   continuously — the divergence between the two is exactly what
//!   Figure 10 of the paper studies.
//! * [`compute`] — a roofline-style GNN compute-time model (memory-bound
//!   aggregation, flop-bound dense updates) with V100 and 1080-Ti
//!   profiles.
//! * [`memory`] — per-GPU memory accounting with out-of-memory detection
//!   (replication OOMs on the large graphs in Figure 7, as in the paper).
//! * [`epoch`] — end-to-end per-epoch simulation combining the three for
//!   every communication method the paper evaluates.
//! * [`faults`] — fault events mirrored from the runtime's fault-injection
//!   plans, replayed against the fluid network model (delays stretch
//!   stages, crashes truncate the plan where the rank died).
//! * [`recovery`] — a discrete Young/Daly-style model pricing the
//!   elastic-recovery trade-off: checkpoint-serialization cadence versus
//!   expected work lost per crash.
//! * [`minibatch`] — cost models for sampled mini-batch training
//!   (expected block volumes per fanout/batch setting) and batched
//!   inference serving (flush latency vs sustainable QPS).
//! * [`cache`] — an α–β sizing model for the hot-vertex remote feature
//!   cache (hit rate vs capacity vs gather volume saved).

pub mod backends;
pub mod cache;
pub mod collectives;
pub mod compute;
pub mod epoch;
pub mod faults;
pub mod memory;
pub mod minibatch;
pub mod network;
pub mod recovery;
pub mod transport;

pub use backends::{
    cagnet_aggregate_cost, planned_gather_cost, BackendChoice, BackendKind, BackendSelector,
};
pub use cache::CacheModel;
pub use collectives::{
    allreduce_cost, allreduce_costs, broadcast_cost, AlgorithmSelector, AllreduceAlgo,
    BroadcastAlgo,
};
pub use compute::{GnnModel, GpuProfile};
pub use epoch::{
    simulate_epoch, simulate_overlap, EpochBreakdown, EpochConfig, Method, OverlapBreakdown,
};
pub use faults::{simulate_plan_faulted, FaultedReport, SimFault, SimFaultPlan};
pub use minibatch::{SamplingModel, ServingModel};
pub use network::{simulate_flows, simulate_plan, simulate_plan_pipelined, Flow, NetworkReport};
pub use recovery::RecoveryModel;
