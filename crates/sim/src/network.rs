//! Fluid-flow network simulation with max-min fair sharing.
//!
//! Each stage of a plan is a set of concurrent flows. A flow follows its
//! route's directed physical hops; every hop divides its bandwidth among
//! the flows crossing it by progressive filling (max-min fairness), which
//! reproduces the contention behaviour the paper measures in Table 3
//! (n GPUs sharing the QPI each attain roughly `1/n` of it). Flows also
//! pay a transport-dependent startup overhead (§6.2). Stages execute
//! sequentially, separated by the decentralized flag synchronisation,
//! which is modelled as a fixed per-stage barrier cost.

use dgcl_plan::CommPlan;
use dgcl_topology::{Route, Topology};

use crate::transport::stage_barrier_seconds;

/// One simulated transfer: `bytes` over `route`, starting after
/// `overhead_seconds` of setup.
#[derive(Debug, Clone)]
pub struct Flow {
    /// The directed physical path.
    pub route: Route,
    /// Payload size in bytes.
    pub bytes: u64,
    /// Per-flow startup overhead in seconds (transport dependent).
    pub overhead_seconds: f64,
    /// Caller tag used to attribute completion times in reports.
    pub tag: usize,
}

/// Result of simulating one stage or a whole plan.
#[derive(Debug, Clone)]
pub struct NetworkReport {
    /// Total simulated time in seconds.
    pub total_seconds: f64,
    /// Per-stage times in seconds.
    pub stage_seconds: Vec<f64>,
    /// Completion time of every flow, as `(tag, seconds within its
    /// stage)`.
    pub flow_completions: Vec<(usize, f64)>,
}

/// Simulates a set of concurrent flows, returning the stage makespan and
/// per-flow completion times.
///
/// Local flows (empty routes) complete at their overhead time.
pub fn simulate_flows(topology: &Topology, flows: &[Flow]) -> (f64, Vec<(usize, f64)>) {
    #[derive(Debug)]
    struct Live {
        idx: usize,
        remaining: f64,
        start: f64,
        rate: f64,
        done: Option<f64>,
    }
    let slots = topology.conns().len() * 2;
    let capacity: Vec<f64> = topology
        .conns()
        .iter()
        .flat_map(|c| [c.bandwidth_gbps * 1e9, c.bandwidth_gbps * 1e9])
        .collect();
    let slot_of =
        |hop: &dgcl_topology::DirectedHop| hop.conn.index() * 2 + usize::from(hop.forward);

    let mut live: Vec<Live> = flows
        .iter()
        .enumerate()
        .map(|(idx, f)| Live {
            idx,
            remaining: f.bytes as f64,
            start: f.overhead_seconds,
            rate: 0.0,
            done: None,
        })
        .collect();
    let mut now = 0.0f64;
    loop {
        // Active = started, not finished, with bytes left.
        let mut active: Vec<usize> = Vec::new();
        let mut next_start = f64::INFINITY;
        for (i, l) in live.iter().enumerate() {
            if l.done.is_some() {
                continue;
            }
            if l.start > now + 1e-15 {
                next_start = next_start.min(l.start);
            } else if l.remaining > 0.0 {
                active.push(i);
            } else {
                // Zero-byte or local flow: completes at start.
            }
        }
        // Flows with no bytes or no hops complete instantly once started.
        for l in live.iter_mut() {
            if l.done.is_none()
                && l.start <= now + 1e-15
                && (l.remaining <= 0.0 || flows[l.idx].route.hops.is_empty())
            {
                l.done = Some(now.max(l.start));
            }
        }
        active.retain(|&i| live[i].done.is_none());
        if active.is_empty() {
            if next_start.is_finite() {
                now = next_start;
                continue;
            }
            break;
        }
        // Max-min fair rates by progressive filling.
        let mut rate = vec![0.0f64; live.len()];
        let mut frozen = vec![false; live.len()];
        let mut hop_used = vec![0.0f64; slots];
        let mut hop_flows: Vec<Vec<usize>> = vec![Vec::new(); slots];
        for &i in &active {
            for hop in &flows[live[i].idx].route.hops {
                hop_flows[slot_of(hop)].push(i);
            }
        }
        loop {
            // Fair share per hop among its unfrozen flows.
            let mut best: Option<(f64, usize)> = None;
            for s in 0..slots {
                let unfrozen = hop_flows[s].iter().filter(|&&i| !frozen[i]).count();
                if unfrozen == 0 {
                    continue;
                }
                let share = (capacity[s] - hop_used[s]) / unfrozen as f64;
                match best {
                    Some((b, _)) if b <= share => {}
                    _ => best = Some((share, s)),
                }
            }
            let Some((share, bottleneck)) = best else {
                break;
            };
            // Freeze all unfrozen flows through the bottleneck at the
            // fair share.
            let to_freeze: Vec<usize> = hop_flows[bottleneck]
                .iter()
                .copied()
                .filter(|&i| !frozen[i])
                .collect();
            // Freezing all n unfrozen flows adds n * (cap - used) / n to
            // the bottleneck hop, leaving it exactly saturated.
            for i in to_freeze {
                frozen[i] = true;
                rate[i] = share;
                for hop in &flows[live[i].idx].route.hops {
                    hop_used[slot_of(hop)] += share;
                }
            }
        }
        for &i in &active {
            live[i].rate = rate[i].max(1e-3);
        }
        // Advance to the next event: a flow finishing or a flow starting.
        let mut dt = f64::INFINITY;
        for &i in &active {
            dt = dt.min(live[i].remaining / live[i].rate);
        }
        if next_start.is_finite() {
            dt = dt.min(next_start - now);
        }
        for &i in &active {
            live[i].remaining -= live[i].rate * dt;
            if live[i].remaining <= 1e-9 {
                live[i].remaining = 0.0;
                live[i].done = Some(now + dt);
            }
        }
        now += dt;
    }
    let completions: Vec<(usize, f64)> = live
        .iter()
        .map(|l| (flows[l.idx].tag, l.done.unwrap_or(0.0)))
        .collect();
    let makespan = completions.iter().map(|&(_, t)| t).fold(0.0, f64::max);
    (makespan, completions)
}

/// Simulates a staged communication plan, one fair-sharing episode per
/// stage plus the inter-stage barrier. Flow tags are the step indices in
/// `plan.steps`.
pub fn simulate_plan(plan: &CommPlan, topology: &Topology, bytes_per_vertex: u64) -> NetworkReport {
    let mut stage_seconds = Vec::with_capacity(plan.num_stages);
    let mut flow_completions = Vec::new();
    for stage in 0..plan.num_stages {
        let flows: Vec<Flow> = plan
            .steps
            .iter()
            .enumerate()
            .filter(|(_, s)| s.stage == stage)
            .map(|(idx, s)| Flow {
                route: topology.route(s.src, s.dst).clone(),
                bytes: s.vertices.len() as u64 * bytes_per_vertex,
                overhead_seconds: crate::transport::flow_overhead_seconds(topology, s.src, s.dst),
                tag: idx,
            })
            .collect();
        if flows.is_empty() {
            stage_seconds.push(0.0);
            continue;
        }
        let (t, completions) = simulate_flows(topology, &flows);
        stage_seconds.push(t + stage_barrier_seconds());
        flow_completions.extend(completions);
    }
    NetworkReport {
        total_seconds: stage_seconds.iter().sum(),
        stage_seconds,
        flow_completions,
    }
}

/// Per-chunk flag cost of the pipelined executor: each extra chunk pays
/// one decentralized ready-flag check instead of a full stage barrier.
pub(crate) const CHUNK_FLAG_SECONDS: f64 = 1e-6;

/// Simulates a staged plan executed by the chunk pipeline: payloads are
/// split into `chunks` equal parts (sized so the largest step moves
/// `chunk_rows` vertices per chunk), and a relay forwards chunk `k`
/// while chunk `k + 1` is still in flight. With per-chunk stage times
/// `t_s`, the classic pipeline makespan applies:
///
/// ```text
/// T = Σ_s t_s  +  (C − 1) · max_s t_s  +  (C − 1) · flag  +  barrier
/// ```
///
/// — one chunk rippling through every stage, the remaining `C − 1`
/// chunks draining behind the slowest stage, a per-chunk flag cost, and
/// a single end-of-operation barrier (the per-stage barriers of
/// [`simulate_plan`] disappear: chunk dependencies replace them). The
/// fill term pays each stage's flow-setup overhead once; the drain term
/// uses overhead-free chunk times, because successive chunks stream over
/// already-established transfers (the NCCL pipelining argument).
///
/// `stage_seconds` in the returned report holds the *per-chunk* stage
/// times `t_s` (they do not sum to `total_seconds`); `flow_completions`
/// come from the chunk-sized episodes.
pub fn simulate_plan_pipelined(
    plan: &CommPlan,
    topology: &Topology,
    bytes_per_vertex: u64,
    chunk_rows: usize,
) -> NetworkReport {
    let chunk_rows = chunk_rows.max(1);
    let largest_step = plan
        .steps
        .iter()
        .map(|s| s.vertices.len())
        .max()
        .unwrap_or(0);
    let chunks = largest_step.div_ceil(chunk_rows).clamp(1, 64) as u64;
    let mut stage_seconds = Vec::with_capacity(plan.num_stages);
    let mut steady_seconds = Vec::with_capacity(plan.num_stages);
    let mut flow_completions = Vec::new();
    for stage in 0..plan.num_stages {
        let flows: Vec<Flow> = plan
            .steps
            .iter()
            .enumerate()
            .filter(|(_, s)| s.stage == stage)
            .map(|(idx, s)| Flow {
                route: topology.route(s.src, s.dst).clone(),
                bytes: (s.vertices.len() as u64 * bytes_per_vertex).div_ceil(chunks),
                overhead_seconds: crate::transport::flow_overhead_seconds(topology, s.src, s.dst),
                tag: idx,
            })
            .collect();
        if flows.is_empty() {
            stage_seconds.push(0.0);
            steady_seconds.push(0.0);
            continue;
        }
        let (t, completions) = simulate_flows(topology, &flows);
        stage_seconds.push(t);
        flow_completions.extend(completions);
        // Steady-state chunk time: the same episode without setup
        // overhead, for chunks streaming over established transfers.
        let steady: Vec<Flow> = flows
            .iter()
            .map(|f| Flow {
                overhead_seconds: 0.0,
                ..f.clone()
            })
            .collect();
        steady_seconds.push(simulate_flows(topology, &steady).0);
    }
    let fill: f64 = stage_seconds.iter().sum();
    let slowest = steady_seconds.iter().copied().fold(0.0, f64::max);
    let drain = (chunks - 1) as f64 * (slowest + CHUNK_FLAG_SECONDS);
    NetworkReport {
        total_seconds: fill + drain + stage_barrier_seconds(),
        stage_seconds,
        flow_completions,
    }
}

impl NetworkReport {
    /// Splits a peer-to-peer stage's completion times into NVLink pairs
    /// and the rest (Table 2): returns `(nvlink_seconds, other_seconds)`,
    /// each the latest completion among flows of that class.
    pub fn nvlink_split(&self, plan: &CommPlan, topology: &Topology) -> (f64, f64) {
        let mut nvlink = 0.0f64;
        let mut other = 0.0f64;
        for &(tag, t) in &self.flow_completions {
            let step = &plan.steps[tag];
            if topology.is_nvlink_pair(step.src, step.dst) {
                nvlink = nvlink.max(t);
            } else {
                other = other.max(t);
            }
        }
        (nvlink, other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgcl_topology::Topology;

    fn flow(topo: &Topology, src: usize, dst: usize, bytes: u64, tag: usize) -> Flow {
        Flow {
            route: topo.route(src, dst).clone(),
            bytes,
            overhead_seconds: 0.0,
            tag,
        }
    }

    #[test]
    fn single_flow_runs_at_bottleneck() {
        let topo = Topology::fig6();
        // 9.56 MB over the QPI path: 1 ms.
        let (t, _) = simulate_flows(&topo, &[flow(&topo, 0, 2, 9_560_000, 0)]);
        assert!((t - 1e-3).abs() < 1e-6, "t = {t}");
    }

    #[test]
    fn two_flows_share_the_qpi_fairly() {
        let topo = Topology::fig6();
        let flows = [
            flow(&topo, 0, 2, 9_560_000, 0),
            flow(&topo, 1, 3, 9_560_000, 1),
        ];
        let (t, _) = simulate_flows(&topo, &flows);
        // Equal flows at half rate: 2 ms, like the cost model.
        assert!((t - 2e-3).abs() < 1e-5, "t = {t}");
    }

    #[test]
    fn attainable_bandwidth_drops_with_sharers() {
        // Table 3's shape: per-GPU attainable bandwidth over QPI drops
        // roughly as 1/n.
        let topo = Topology::fig6();
        let bytes = 9_560_000u64;
        let mut last = f64::INFINITY;
        for n in 1..=2 {
            let flows: Vec<Flow> = (0..n).map(|i| flow(&topo, i, 2 + i, bytes, i)).collect();
            let (t, _) = simulate_flows(&topo, &flows);
            let per_gpu = bytes as f64 / t;
            assert!(per_gpu < last, "bandwidth should drop with sharers");
            last = per_gpu;
        }
    }

    #[test]
    fn unequal_flows_let_the_short_one_finish_early() {
        let topo = Topology::fig6();
        let flows = [
            flow(&topo, 0, 2, 9_560_000, 0),
            flow(&topo, 1, 3, 956_000, 1),
        ];
        let (t, completions) = simulate_flows(&topo, &flows);
        let t_small = completions
            .iter()
            .find(|&&(tag, _)| tag == 1)
            .expect("completion for the small flow (tag 1)")
            .1;
        let t_big = completions
            .iter()
            .find(|&&(tag, _)| tag == 0)
            .expect("completion for the big flow (tag 0)")
            .1;
        assert!(t_small < t_big);
        assert!((t - t_big).abs() < 1e-12);
        // The big flow speeds up after the small one leaves: total under
        // 2 ms but above 1 ms.
        assert!(t_big > 1.0e-3 && t_big < 2.0e-3, "t_big = {t_big}");
    }

    #[test]
    fn disjoint_flows_run_in_parallel() {
        let topo = Topology::fig6();
        let flows = [
            flow(&topo, 0, 1, 24_220_000, 0), // NVLink pair 0-1.
            flow(&topo, 2, 3, 24_220_000, 1), // NVLink pair 2-3.
        ];
        let (t, _) = simulate_flows(&topo, &flows);
        assert!((t - 1e-3).abs() < 1e-6, "t = {t}");
    }

    #[test]
    fn overhead_delays_start() {
        let topo = Topology::fig6();
        let mut f = flow(&topo, 0, 1, 24_220_000, 0);
        f.overhead_seconds = 5e-3;
        let (t, _) = simulate_flows(&topo, &[f]);
        assert!((t - 6e-3).abs() < 1e-6, "t = {t}");
    }

    #[test]
    fn zero_byte_flow_completes_at_start() {
        let topo = Topology::fig6();
        let mut f = flow(&topo, 0, 1, 0, 7);
        f.overhead_seconds = 1e-4;
        let (t, completions) = simulate_flows(&topo, &[f]);
        assert!((t - 1e-4).abs() < 1e-12);
        assert_eq!(completions[0].0, 7);
    }

    #[test]
    fn pipelined_relay_plan_beats_barriered() {
        use dgcl_plan::CommPlan;
        let topo = Topology::fig6();
        // 256 vertices hop 0 → 2 in stage 0, then relay 2 → 3 in stage 1:
        // exactly the shape where chunk streaming hides the relay hop.
        let edges: Vec<_> = (0..256)
            .flat_map(|v| [(v, 0usize, 2usize, 0usize), (v, 2, 3, 1)])
            .collect();
        let plan = CommPlan::from_edges(4, edges);
        let barriered = simulate_plan(&plan, &topo, 1 << 16).total_seconds;
        let pipelined = simulate_plan_pipelined(&plan, &topo, 1 << 16, 16).total_seconds;
        assert!(
            pipelined < barriered,
            "pipelined {pipelined} should beat barriered {barriered}"
        );
    }

    #[test]
    fn single_chunk_pipeline_matches_barriered_minus_barriers() {
        use dgcl_plan::CommPlan;
        let topo = Topology::fig6();
        let edges: Vec<_> = (0..64)
            .flat_map(|v| [(v, 0usize, 2usize, 0usize), (v, 2, 3, 1)])
            .collect();
        let plan = CommPlan::from_edges(4, edges);
        let barriered = simulate_plan(&plan, &topo, 1 << 12);
        let single = simulate_plan_pipelined(&plan, &topo, 1 << 12, usize::MAX);
        // One chunk: same episodes, but per-stage barriers collapse into
        // one end-of-op barrier.
        let expect = barriered.total_seconds
            - (plan.num_stages as f64 - 1.0) * crate::transport::stage_barrier_seconds();
        assert!(
            (single.total_seconds - expect).abs() < 1e-9,
            "{} vs {expect}",
            single.total_seconds
        );
    }

    #[test]
    fn simulated_time_tracks_cost_model_shape() {
        // The fluid simulation and the staged cost model should agree
        // within a small factor on a simple plan (Figure 10's linearity).
        use dgcl_plan::CommPlan;
        let topo = Topology::fig6();
        let plan = CommPlan::from_edges(4, vec![(0, 0, 2, 0), (1, 1, 3, 0), (2, 2, 3, 1)]);
        let est = plan.estimated_time(&topo, 1 << 20);
        let act = simulate_plan(&plan, &topo, 1 << 20).total_seconds;
        let ratio = act / est;
        assert!(ratio > 0.8 && ratio < 1.6, "ratio = {ratio}");
    }
}
