//! Fault events mirrored into the fluid network simulation.
//!
//! The real runtime injects faults at the fabric boundary
//! (`dgcl::fault::FaultPlan`); this module replays the same scenario
//! against the performance model, so the simulator predicts how a fault
//! shapes wall-clock: a delayed link stretches its stage, a duplicate
//! retransmits the payload (contending for bandwidth), a reorder is
//! invisible to the stage's concurrent fluid flows, and a crash truncates
//! the plan at the stage where the rank died — every later stage never
//! completes, which is exactly the hang the abortable runtime converts
//! into an error.

use crate::network::{simulate_flows, Flow, NetworkReport};
use crate::transport::stage_barrier_seconds;
use dgcl_plan::CommPlan;
use dgcl_topology::Topology;

/// One simulated fault event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SimFault {
    /// `rank` dies at the start of `stage`; no flow involving it (nor any
    /// later stage, since stages barrier) completes.
    Crash {
        /// The crashed rank.
        rank: usize,
        /// The plan stage at which it dies.
        stage: usize,
    },
    /// Flows from `src` to `dst` in `stage` start `seconds` late.
    Delay {
        /// Sending rank.
        src: usize,
        /// Receiving rank.
        dst: usize,
        /// Plan stage.
        stage: usize,
        /// Added latency in seconds.
        seconds: f64,
    },
    /// Flows from `src` to `dst` in `stage` are transmitted twice.
    Duplicate {
        /// Sending rank.
        src: usize,
        /// Receiving rank.
        dst: usize,
        /// Plan stage.
        stage: usize,
    },
    /// Flows from `src` to `dst` in `stage` arrive out of order — a
    /// no-op for concurrent fluid flows, modelled as submission-order
    /// reversal (the simulation must be order-invariant).
    Reorder {
        /// Sending rank.
        src: usize,
        /// Receiving rank.
        dst: usize,
        /// Plan stage.
        stage: usize,
    },
}

/// A set of fault events for one simulated plan execution.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimFaultPlan {
    /// The events to apply.
    pub events: Vec<SimFault>,
}

impl SimFaultPlan {
    /// A plan with no faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// The earliest stage at which any rank crashes, with the rank.
    pub fn first_crash(&self) -> Option<(usize, usize)> {
        self.events
            .iter()
            .filter_map(|e| match e {
                SimFault::Crash { rank, stage } => Some((*stage, *rank)),
                _ => None,
            })
            .min()
    }
}

/// Outcome of a fault-injected plan simulation.
#[derive(Debug, Clone)]
pub struct FaultedReport {
    /// The network report over the stages that completed.
    pub report: NetworkReport,
    /// `Some((rank, stage))` if a crash truncated the plan: `stage` and
    /// everything after it never completed.
    pub failed: Option<(usize, usize)>,
    /// Tags of plan steps whose payload was delivered.
    pub delivered: Vec<usize>,
}

/// Simulates `plan` under `faults`. Benign faults (delay, duplicate,
/// reorder) change only timing: the delivered step set must equal the
/// fault-free run's. A crash truncates the plan at the crash stage.
pub fn simulate_plan_faulted(
    plan: &CommPlan,
    topology: &Topology,
    bytes_per_vertex: u64,
    faults: &SimFaultPlan,
) -> FaultedReport {
    let crash = faults.first_crash();
    let mut stage_seconds = Vec::with_capacity(plan.num_stages);
    let mut flow_completions = Vec::new();
    let mut delivered = Vec::new();
    let mut failed = None;
    for stage in 0..plan.num_stages {
        if let Some((crash_stage, rank)) = crash {
            if stage >= crash_stage {
                failed = Some((rank, crash_stage));
                break;
            }
        }
        let mut flows: Vec<Flow> = Vec::new();
        let mut reversed = false;
        for (idx, s) in plan.steps.iter().enumerate() {
            if s.stage != stage {
                continue;
            }
            let extra: f64 = faults
                .events
                .iter()
                .filter_map(|e| match e {
                    SimFault::Delay {
                        src,
                        dst,
                        stage: st,
                        seconds,
                    } if (*src, *dst, *st) == (s.src, s.dst, stage) => Some(*seconds),
                    _ => None,
                })
                .sum();
            let duplicated = faults.events.iter().any(|e| {
                matches!(e, SimFault::Duplicate { src, dst, stage: st }
                    if (*src, *dst, *st) == (s.src, s.dst, stage))
            });
            reversed |= faults.events.iter().any(|e| {
                matches!(e, SimFault::Reorder { src, dst, stage: st }
                    if (*src, *dst, *st) == (s.src, s.dst, stage))
            });
            let flow = Flow {
                route: topology.route(s.src, s.dst).clone(),
                bytes: s.vertices.len() as u64 * bytes_per_vertex,
                overhead_seconds: crate::transport::flow_overhead_seconds(topology, s.src, s.dst)
                    + extra,
                tag: idx,
            };
            if duplicated {
                flows.push(flow.clone());
            }
            flows.push(flow);
            delivered.push(idx);
        }
        if reversed {
            flows.reverse();
        }
        if flows.is_empty() {
            stage_seconds.push(0.0);
            continue;
        }
        let (t, completions) = simulate_flows(topology, &flows);
        stage_seconds.push(t + stage_barrier_seconds());
        flow_completions.extend(completions);
    }
    FaultedReport {
        report: NetworkReport {
            total_seconds: stage_seconds.iter().sum(),
            stage_seconds,
            flow_completions,
        },
        failed,
        delivered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::simulate_plan;

    fn fig6_plan() -> (CommPlan, Topology) {
        let topo = Topology::fig6();
        let plan = CommPlan::from_edges(
            4,
            vec![(0, 0, 2, 0), (1, 1, 3, 0), (2, 2, 3, 1), (3, 3, 0, 1)],
        );
        (plan, topo)
    }

    #[test]
    fn benign_faults_deliver_the_same_steps() {
        let (plan, topo) = fig6_plan();
        let clean = simulate_plan_faulted(&plan, &topo, 1 << 20, &SimFaultPlan::none());
        let faults = SimFaultPlan {
            events: vec![
                SimFault::Delay {
                    src: 0,
                    dst: 2,
                    stage: 0,
                    seconds: 2e-3,
                },
                SimFault::Duplicate {
                    src: 1,
                    dst: 3,
                    stage: 0,
                },
                SimFault::Reorder {
                    src: 2,
                    dst: 3,
                    stage: 1,
                },
            ],
        };
        let faulted = simulate_plan_faulted(&plan, &topo, 1 << 20, &faults);
        assert!(faulted.failed.is_none());
        assert_eq!(faulted.delivered, clean.delivered, "same steps delivered");
        assert!(
            faulted.report.total_seconds >= clean.report.total_seconds,
            "faults only slow the plan down"
        );
    }

    #[test]
    fn delay_stretches_exactly_its_stage() {
        let (plan, topo) = fig6_plan();
        let clean = simulate_plan_faulted(&plan, &topo, 1 << 20, &SimFaultPlan::none());
        let faults = SimFaultPlan {
            events: vec![SimFault::Delay {
                src: 0,
                dst: 2,
                stage: 0,
                seconds: 5e-3,
            }],
        };
        let faulted = simulate_plan_faulted(&plan, &topo, 1 << 20, &faults);
        assert!(faulted.report.stage_seconds[0] > clean.report.stage_seconds[0] + 4e-3);
        assert!(
            (faulted.report.stage_seconds[1] - clean.report.stage_seconds[1]).abs() < 1e-9,
            "later stages unaffected"
        );
    }

    #[test]
    fn reorder_is_timing_invariant() {
        let (plan, topo) = fig6_plan();
        let clean = simulate_plan_faulted(&plan, &topo, 1 << 20, &SimFaultPlan::none());
        let faults = SimFaultPlan {
            events: vec![SimFault::Reorder {
                src: 0,
                dst: 2,
                stage: 0,
            }],
        };
        let faulted = simulate_plan_faulted(&plan, &topo, 1 << 20, &faults);
        assert!(
            (faulted.report.total_seconds - clean.report.total_seconds).abs() < 1e-12,
            "fluid flows are submission-order invariant"
        );
    }

    #[test]
    fn crash_truncates_at_the_crash_stage() {
        let (plan, topo) = fig6_plan();
        let faults = SimFaultPlan {
            events: vec![SimFault::Crash { rank: 3, stage: 1 }],
        };
        let faulted = simulate_plan_faulted(&plan, &topo, 1 << 20, &faults);
        assert_eq!(faulted.failed, Some((3, 1)));
        assert_eq!(faulted.report.stage_seconds.len(), 1, "stage 1 never ran");
        assert!(
            faulted.delivered.iter().all(|&i| plan.steps[i].stage == 0),
            "only stage-0 steps delivered"
        );
    }

    #[test]
    fn faultless_report_matches_simulate_plan() {
        let (plan, topo) = fig6_plan();
        let clean = simulate_plan_faulted(&plan, &topo, 1 << 20, &SimFaultPlan::none());
        let base = simulate_plan(&plan, &topo, 1 << 20);
        assert!((clean.report.total_seconds - base.total_seconds).abs() < 1e-12);
    }
}
