//! Activation functions and their derivatives.

use crate::Matrix;

/// Point-wise activation functions used by the GNN layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// The identity function (no non-linearity).
    Identity,
    /// Rectified linear unit: `max(0, x)`.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
}

impl Activation {
    /// Applies the activation element-wise.
    pub fn forward(self, x: &Matrix) -> Matrix {
        let mut out = x.clone();
        match self {
            Activation::Identity => {}
            Activation::Relu => {
                for v in out.as_mut_slice() {
                    if *v < 0.0 {
                        *v = 0.0;
                    }
                }
            }
            Activation::Tanh => {
                for v in out.as_mut_slice() {
                    *v = v.tanh();
                }
            }
            Activation::Sigmoid => {
                for v in out.as_mut_slice() {
                    *v = 1.0 / (1.0 + (-*v).exp());
                }
            }
        }
        out
    }

    /// Gradient of the activation with respect to its input.
    ///
    /// `output` must be the value returned by [`Activation::forward`] for the
    /// same input; the derivative is expressed in terms of the output, which
    /// is exact for all supported activations.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn backward(self, output: &Matrix, upstream: &Matrix) -> Matrix {
        assert_eq!(
            output.shape(),
            upstream.shape(),
            "activation backward shape mismatch"
        );
        let mut grad = upstream.clone();
        match self {
            Activation::Identity => {}
            Activation::Relu => {
                for (g, &o) in grad.as_mut_slice().iter_mut().zip(output.as_slice()) {
                    if o <= 0.0 {
                        *g = 0.0;
                    }
                }
            }
            Activation::Tanh => {
                for (g, &o) in grad.as_mut_slice().iter_mut().zip(output.as_slice()) {
                    *g *= 1.0 - o * o;
                }
            }
            Activation::Sigmoid => {
                for (g, &o) in grad.as_mut_slice().iter_mut().zip(output.as_slice()) {
                    *g *= o * (1.0 - o);
                }
            }
        }
        grad
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let x = Matrix::from_rows(&[&[-1.0, 0.0, 2.0]]);
        let y = Activation::Relu.forward(&x);
        assert_eq!(y.as_slice(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn relu_backward_masks_gradient() {
        let x = Matrix::from_rows(&[&[-1.0, 3.0]]);
        let y = Activation::Relu.forward(&x);
        let up = Matrix::from_rows(&[&[5.0, 5.0]]);
        let g = Activation::Relu.backward(&y, &up);
        assert_eq!(g.as_slice(), &[0.0, 5.0]);
    }

    #[test]
    fn sigmoid_is_bounded() {
        let x = Matrix::from_rows(&[&[-100.0, 0.0, 100.0]]);
        let y = Activation::Sigmoid.forward(&x);
        assert!(y.as_slice()[0] < 1e-6);
        assert!((y.as_slice()[1] - 0.5).abs() < 1e-6);
        assert!(y.as_slice()[2] > 1.0 - 1e-6);
    }

    #[test]
    fn tanh_gradient_matches_finite_difference() {
        let x = Matrix::from_rows(&[&[0.3]]);
        let y = Activation::Tanh.forward(&x);
        let up = Matrix::from_rows(&[&[1.0]]);
        let g = Activation::Tanh.backward(&y, &up);
        let eps = 1e-3;
        let xp = Matrix::from_rows(&[&[0.3 + eps]]);
        let xm = Matrix::from_rows(&[&[0.3 - eps]]);
        let fd = (Activation::Tanh.forward(&xp).as_slice()[0]
            - Activation::Tanh.forward(&xm).as_slice()[0])
            / (2.0 * eps);
        assert!((g.as_slice()[0] - fd).abs() < 1e-4);
    }

    #[test]
    fn identity_is_a_no_op() {
        let x = Matrix::from_rows(&[&[1.0, -2.0]]);
        assert_eq!(Activation::Identity.forward(&x), x);
    }
}
