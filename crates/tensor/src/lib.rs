//! Dense `f32` tensor substrate for the DGCL reproduction.
//!
//! The original DGCL delegates dense math to DGL/PyTorch on the GPU. This
//! crate provides the minimal CPU replacement the reproduction needs: a
//! row-major [`Matrix`] with the linear-algebra and activation kernels used
//! by the GNN layers in `dgcl-gnn`, written so that distributed training can
//! be checked for numerical parity against single-device training.
//!
//! # Examples
//!
//! ```
//! use dgcl_tensor::Matrix;
//!
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = Matrix::eye(2);
//! assert_eq!(a.matmul(&b), a);
//! ```

mod activation;
mod init;
mod matrix;
mod ops;
pub mod pool;
mod reduce;
pub mod spmm;

pub use activation::Activation;
pub use init::XavierInit;
pub use matrix::Matrix;
pub use pool::{compute_threads, set_compute_threads};
pub use spmm::{spmm_csr_dense_into, CsrBlock};
