//! Reductions over matrices.

use crate::Matrix;

impl Matrix {
    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.as_slice().iter().sum()
    }

    /// Mean of all elements; zero for an empty matrix.
    pub fn mean(&self) -> f32 {
        if self.is_empty() {
            0.0
        } else {
            self.sum() / self.len() as f32
        }
    }

    /// Column-wise sum as a `1 x cols` row vector.
    pub fn sum_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols());
        for r in 0..self.rows() {
            for (o, &v) in out.row_mut(0).iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
        out
    }

    /// Squared Frobenius norm.
    pub fn norm_sq(&self) -> f32 {
        self.as_slice().iter().map(|v| v * v).sum()
    }

    /// Index of the maximum element in each row.
    pub fn argmax_rows(&self) -> Vec<usize> {
        (0..self.rows())
            .map(|r| {
                let row = self.row(r);
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_and_mean() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.sum(), 10.0);
        assert_eq!(m.mean(), 2.5);
    }

    #[test]
    fn sum_rows_collapses_to_row_vector() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.sum_rows().as_slice(), &[4.0, 6.0]);
    }

    #[test]
    fn norm_sq_is_sum_of_squares() {
        let m = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(m.norm_sq(), 25.0);
    }

    #[test]
    fn argmax_rows_picks_largest() {
        let m = Matrix::from_rows(&[&[0.1, 0.9, 0.2], &[5.0, 1.0, 2.0]]);
        assert_eq!(m.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn mean_of_empty_matrix_is_zero() {
        assert_eq!(Matrix::zeros(0, 3).mean(), 0.0);
    }
}
