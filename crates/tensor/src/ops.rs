//! Linear-algebra kernels on [`Matrix`].

use crate::Matrix;

impl Matrix {
    /// Matrix product `self * rhs`.
    ///
    /// Uses an i-k-j loop order so the inner loop streams over contiguous
    /// rows of both the output and `rhs`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols(),
            rhs.rows(),
            "matmul shape mismatch: {:?} x {:?}",
            self.shape(),
            rhs.shape()
        );
        let (m, k) = self.shape();
        let n = rhs.cols();
        let mut out = Matrix::zeros(m, n);
        for i in 0..m {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (p, &a) in a_row.iter().enumerate().take(k) {
                if a == 0.0 {
                    continue;
                }
                let b_row = rhs.row(p);
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self^T * rhs` without materialising the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows() != rhs.rows()`.
    pub fn matmul_tn(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.rows(),
            rhs.rows(),
            "matmul_tn shape mismatch: {:?} x {:?}",
            self.shape(),
            rhs.shape()
        );
        let m = self.cols();
        let n = rhs.cols();
        let mut out = Matrix::zeros(m, n);
        for p in 0..self.rows() {
            let a_row = self.row(p);
            let b_row = rhs.row(p);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self * rhs^T` without materialising the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.cols()`.
    pub fn matmul_nt(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols(),
            rhs.cols(),
            "matmul_nt shape mismatch: {:?} x {:?}",
            self.shape(),
            rhs.shape()
        );
        let m = self.rows();
        let n = rhs.rows();
        let mut out = Matrix::zeros(m, n);
        for i in 0..m {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (j, o) in out_row.iter_mut().enumerate().take(n) {
                let b_row = rhs.row(j);
                let mut acc = 0.0;
                for (&a, &b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                *o = acc;
            }
        }
        out
    }

    /// Element-wise sum `self + rhs`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add(&self, rhs: &Matrix) -> Matrix {
        let mut out = self.clone();
        out.add_assign(rhs);
        out
    }

    /// In-place element-wise `self += rhs`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "add shape mismatch");
        for (a, &b) in self.as_mut_slice().iter_mut().zip(rhs.as_slice()) {
            *a += b;
        }
    }

    /// In-place `self += alpha * rhs` (axpy).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn axpy(&mut self, alpha: f32, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "axpy shape mismatch");
        for (a, &b) in self.as_mut_slice().iter_mut().zip(rhs.as_slice()) {
            *a += alpha * b;
        }
    }

    /// Element-wise difference `self - rhs`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn sub(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "sub shape mismatch");
        let mut out = self.clone();
        for (a, &b) in out.as_mut_slice().iter_mut().zip(rhs.as_slice()) {
            *a -= b;
        }
        out
    }

    /// Scalar product `alpha * self`.
    pub fn scale(&self, alpha: f32) -> Matrix {
        let mut out = self.clone();
        out.scale_assign(alpha);
        out
    }

    /// In-place scalar product `self *= alpha`.
    pub fn scale_assign(&mut self, alpha: f32) {
        for a in self.as_mut_slice() {
            *a *= alpha;
        }
    }

    /// Element-wise (Hadamard) product `self .* rhs`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn hadamard(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "hadamard shape mismatch");
        let mut out = self.clone();
        for (a, &b) in out.as_mut_slice().iter_mut().zip(rhs.as_slice()) {
            *a *= b;
        }
        out
    }

    /// Adds `bias` (a `1 x cols` row vector) to every row.
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not a single row of matching width.
    pub fn add_row_broadcast(&self, bias: &Matrix) -> Matrix {
        assert_eq!(bias.rows(), 1, "bias must be a row vector");
        assert_eq!(bias.cols(), self.cols(), "bias width mismatch");
        let mut out = self.clone();
        for r in 0..out.rows() {
            for (o, &b) in out.row_mut(r).iter_mut().zip(bias.row(0)) {
                *o += b;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a() -> Matrix {
        Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])
    }

    fn b() -> Matrix {
        Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]])
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let c = a().matmul(&b());
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_tn_equals_explicit_transpose() {
        let lhs = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let rhs = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        assert_eq!(lhs.matmul_tn(&rhs), lhs.transpose().matmul(&rhs));
    }

    #[test]
    fn matmul_nt_equals_explicit_transpose() {
        let lhs = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let rhs = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0], &[9.0, 10.0]]);
        assert_eq!(lhs.matmul_nt(&rhs), lhs.matmul(&rhs.transpose()));
    }

    #[test]
    fn add_and_sub_are_inverse() {
        let s = a().add(&b()).sub(&b());
        assert_eq!(s, a());
    }

    #[test]
    fn axpy_accumulates_scaled() {
        let mut m = a();
        m.axpy(2.0, &b());
        assert_eq!(m.as_slice(), &[11.0, 14.0, 17.0, 20.0]);
    }

    #[test]
    fn hadamard_multiplies_elementwise() {
        let h = a().hadamard(&b());
        assert_eq!(h.as_slice(), &[5.0, 12.0, 21.0, 32.0]);
    }

    #[test]
    fn row_broadcast_adds_bias_to_each_row() {
        let bias = Matrix::from_rows(&[&[10.0, 20.0]]);
        let out = a().add_row_broadcast(&bias);
        assert_eq!(out.as_slice(), &[11.0, 22.0, 13.0, 24.0]);
    }

    #[test]
    fn scale_by_zero_gives_zeros() {
        assert_eq!(a().scale(0.0), Matrix::zeros(2, 2));
    }
}
