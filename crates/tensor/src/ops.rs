//! Linear-algebra kernels on [`Matrix`].
//!
//! The three matmul variants are cache-blocked and run on the compute
//! worker pool ([`crate::pool`]): output rows are split into fixed
//! chunks processed by scoped workers. Per output element the reduction
//! over the shared dimension always runs in ascending index order, so
//! results are bitwise identical at every thread count *and* to the
//! original unblocked sequential kernels.

use crate::pool;
use crate::Matrix;

/// Cache block over the shared (reduction) dimension: a `BLOCK_K x cols`
/// window of the streamed operand stays hot across the rows of a chunk.
const BLOCK_K: usize = 128;

/// Minimum multiply-add count before a kernel spawns workers; below this
/// the spawn overhead dominates. Gating only changes scheduling, never
/// results.
const PAR_FLOPS_MIN: usize = 1 << 16;

impl Matrix {
    /// Matrix product `self * rhs`, on the global worker count
    /// ([`pool::compute_threads`]).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        self.matmul_threads(rhs, pool::compute_threads())
    }

    /// [`Matrix::matmul`] with an explicit worker count. Results are
    /// bitwise identical for every `threads` value.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul_threads(&self, rhs: &Matrix, threads: usize) -> Matrix {
        assert_eq!(
            self.cols(),
            rhs.rows(),
            "matmul shape mismatch: {:?} x {:?}",
            self.shape(),
            rhs.shape()
        );
        let (m, k) = self.shape();
        let n = rhs.cols();
        let mut out = Matrix::zeros(m, n);
        let threads = if m * k * n < PAR_FLOPS_MIN {
            1
        } else {
            threads
        };
        let lhs = self.as_slice();
        let rhs_data = rhs.as_slice();
        pool::par_row_chunks(threads, out.as_mut_slice(), n.max(1), |row0, chunk| {
            // Blocked i-k-j: for each k block, stream the block's rhs rows
            // over every row of the chunk. Per output element the adds run
            // in ascending k order (blocks ascending, k within a block
            // ascending) — the unblocked kernel's exact order.
            for kb in (0..k).step_by(BLOCK_K) {
                let kend = (kb + BLOCK_K).min(k);
                for (i, out_row) in chunk.chunks_mut(n).enumerate() {
                    let a_row = &lhs[(row0 + i) * k..(row0 + i + 1) * k];
                    for (p, &a) in a_row[kb..kend].iter().enumerate() {
                        if a == 0.0 {
                            continue;
                        }
                        let b_row = &rhs_data[(kb + p) * n..(kb + p + 1) * n];
                        for (o, &b) in out_row.iter_mut().zip(b_row) {
                            *o += a * b;
                        }
                    }
                }
            }
        });
        out
    }

    /// `self^T * rhs` without materialising the transpose, on the global
    /// worker count.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows() != rhs.rows()`.
    pub fn matmul_tn(&self, rhs: &Matrix) -> Matrix {
        self.matmul_tn_threads(rhs, pool::compute_threads())
    }

    /// [`Matrix::matmul_tn`] with an explicit worker count. Results are
    /// bitwise identical for every `threads` value.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows() != rhs.rows()`.
    pub fn matmul_tn_threads(&self, rhs: &Matrix, threads: usize) -> Matrix {
        assert_eq!(
            self.rows(),
            rhs.rows(),
            "matmul_tn shape mismatch: {:?} x {:?}",
            self.shape(),
            rhs.shape()
        );
        let rows = self.rows();
        let m = self.cols();
        let n = rhs.cols();
        let mut out = Matrix::zeros(m, n);
        let threads = if rows * m * n < PAR_FLOPS_MIN {
            1
        } else {
            threads
        };
        let lhs = self.as_slice();
        let rhs_data = rhs.as_slice();
        pool::par_row_chunks(threads, out.as_mut_slice(), n.max(1), |row0, chunk| {
            // Output row i is the reduction over p of lhs[p][i] * rhs[p].
            // Blocking over p keeps a BLOCK_K x n window of rhs hot across
            // the chunk's rows; per element the adds stay in ascending p
            // order — the sequential p-i-j kernel's exact order.
            for pb in (0..rows).step_by(BLOCK_K) {
                let pend = (pb + BLOCK_K).min(rows);
                for (i, out_row) in chunk.chunks_mut(n).enumerate() {
                    let col = row0 + i;
                    for p in pb..pend {
                        let a = lhs[p * m + col];
                        if a == 0.0 {
                            continue;
                        }
                        let b_row = &rhs_data[p * n..(p + 1) * n];
                        for (o, &b) in out_row.iter_mut().zip(b_row) {
                            *o += a * b;
                        }
                    }
                }
            }
        });
        out
    }

    /// `self * rhs^T` without materialising the transpose, on the global
    /// worker count.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.cols()`.
    pub fn matmul_nt(&self, rhs: &Matrix) -> Matrix {
        self.matmul_nt_threads(rhs, pool::compute_threads())
    }

    /// [`Matrix::matmul_nt`] with an explicit worker count. Results are
    /// bitwise identical for every `threads` value.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.cols()`.
    pub fn matmul_nt_threads(&self, rhs: &Matrix, threads: usize) -> Matrix {
        assert_eq!(
            self.cols(),
            rhs.cols(),
            "matmul_nt shape mismatch: {:?} x {:?}",
            self.shape(),
            rhs.shape()
        );
        let m = self.rows();
        let k = self.cols();
        let n = rhs.rows();
        let mut out = Matrix::zeros(m, n);
        let threads = if m * k * n < PAR_FLOPS_MIN {
            1
        } else {
            threads
        };
        let lhs = self.as_slice();
        let rhs_data = rhs.as_slice();
        pool::par_row_chunks(threads, out.as_mut_slice(), n.max(1), |row0, chunk| {
            for (i, out_row) in chunk.chunks_mut(n).enumerate() {
                let a_row = &lhs[(row0 + i) * k..(row0 + i + 1) * k];
                for (j, o) in out_row.iter_mut().enumerate() {
                    let b_row = &rhs_data[j * k..(j + 1) * k];
                    let mut acc = 0.0;
                    for (&a, &b) in a_row.iter().zip(b_row) {
                        acc += a * b;
                    }
                    *o = acc;
                }
            }
        });
        out
    }

    /// Element-wise sum `self + rhs`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add(&self, rhs: &Matrix) -> Matrix {
        let mut out = self.clone();
        out.add_assign(rhs);
        out
    }

    /// In-place element-wise `self += rhs`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "add shape mismatch");
        for (a, &b) in self.as_mut_slice().iter_mut().zip(rhs.as_slice()) {
            *a += b;
        }
    }

    /// In-place `self += alpha * rhs` (axpy).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn axpy(&mut self, alpha: f32, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "axpy shape mismatch");
        for (a, &b) in self.as_mut_slice().iter_mut().zip(rhs.as_slice()) {
            *a += alpha * b;
        }
    }

    /// Element-wise difference `self - rhs`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn sub(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "sub shape mismatch");
        let mut out = self.clone();
        for (a, &b) in out.as_mut_slice().iter_mut().zip(rhs.as_slice()) {
            *a -= b;
        }
        out
    }

    /// Scalar product `alpha * self`.
    pub fn scale(&self, alpha: f32) -> Matrix {
        let mut out = self.clone();
        out.scale_assign(alpha);
        out
    }

    /// In-place scalar product `self *= alpha`.
    pub fn scale_assign(&mut self, alpha: f32) {
        for a in self.as_mut_slice() {
            *a *= alpha;
        }
    }

    /// Element-wise (Hadamard) product `self .* rhs`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn hadamard(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "hadamard shape mismatch");
        let mut out = self.clone();
        for (a, &b) in out.as_mut_slice().iter_mut().zip(rhs.as_slice()) {
            *a *= b;
        }
        out
    }

    /// Adds `bias` (a `1 x cols` row vector) to every row.
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not a single row of matching width.
    pub fn add_row_broadcast(&self, bias: &Matrix) -> Matrix {
        assert_eq!(bias.rows(), 1, "bias must be a row vector");
        assert_eq!(bias.cols(), self.cols(), "bias width mismatch");
        let mut out = self.clone();
        for r in 0..out.rows() {
            for (o, &b) in out.row_mut(r).iter_mut().zip(bias.row(0)) {
                *o += b;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a() -> Matrix {
        Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])
    }

    fn b() -> Matrix {
        Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]])
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let c = a().matmul(&b());
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_tn_equals_explicit_transpose() {
        let lhs = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let rhs = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        assert_eq!(lhs.matmul_tn(&rhs), lhs.transpose().matmul(&rhs));
    }

    #[test]
    fn matmul_nt_equals_explicit_transpose() {
        let lhs = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let rhs = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0], &[9.0, 10.0]]);
        assert_eq!(lhs.matmul_nt(&rhs), lhs.matmul(&rhs.transpose()));
    }

    #[test]
    fn add_and_sub_are_inverse() {
        let s = a().add(&b()).sub(&b());
        assert_eq!(s, a());
    }

    #[test]
    fn axpy_accumulates_scaled() {
        let mut m = a();
        m.axpy(2.0, &b());
        assert_eq!(m.as_slice(), &[11.0, 14.0, 17.0, 20.0]);
    }

    #[test]
    fn hadamard_multiplies_elementwise() {
        let h = a().hadamard(&b());
        assert_eq!(h.as_slice(), &[5.0, 12.0, 21.0, 32.0]);
    }

    #[test]
    fn row_broadcast_adds_bias_to_each_row() {
        let bias = Matrix::from_rows(&[&[10.0, 20.0]]);
        let out = a().add_row_broadcast(&bias);
        assert_eq!(out.as_slice(), &[11.0, 22.0, 13.0, 24.0]);
    }

    #[test]
    fn scale_by_zero_gives_zeros() {
        assert_eq!(a().scale(0.0), Matrix::zeros(2, 2));
    }
}
