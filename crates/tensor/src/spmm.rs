//! Sparse-matrix × dense-matrix multiply for the CAGNET aggregation
//! backend.
//!
//! The CAGNET algorithms (Tripathy et al., *Reducing Communication in
//! Graph Neural Network Training*) drive GNN aggregation as a sequence of
//! broadcasts interleaved with local SpMM over block-partitioned
//! adjacency. This module supplies the block type ([`CsrBlock`]) and the
//! threaded accumulate kernel ([`spmm_csr_dense_into`]).
//!
//! Blocks are *pattern-only*: GNN adjacency is unweighted, so every
//! stored entry has the implicit value `1.0` and a multiply is a plain
//! gather-and-add. Mean normalization is applied by the caller (it
//! depends on the *global* degree, which a block cannot know).
//!
//! # Determinism contract
//!
//! The kernel accumulates each output row sequentially, in stored column
//! order, split over threads with [`pool::par_row_chunks`] — so results
//! are bitwise identical at every thread count, and bitwise identical to
//! a single-device fold *if* the caller presents blocks whose columns
//! appear in ascending global order and accumulates blocks in ascending
//! global column-range order.

use crate::pool;

/// A pattern-only CSR block: `rows × cols`, entries implicitly `1.0`.
///
/// Column indices are local to the block (in `0..cols`). Within each row
/// they are stored in whatever order the builder supplied — the CAGNET
/// builders keep them ascending so accumulation order matches the
/// single-device reference.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CsrBlock {
    rows: usize,
    cols: usize,
    offsets: Vec<usize>,
    indices: Vec<u32>,
}

impl CsrBlock {
    /// Builds a block from raw CSR parts.
    ///
    /// # Panics
    ///
    /// Panics if the offsets are not a valid monotone CSR index of
    /// `indices`, or if any column index is out of range.
    pub fn from_parts(rows: usize, cols: usize, offsets: Vec<usize>, indices: Vec<u32>) -> Self {
        assert_eq!(offsets.len(), rows + 1, "offsets must have rows+1 entries");
        assert_eq!(offsets[0], 0, "offsets must start at 0");
        assert_eq!(
            *offsets.last().expect("non-empty offsets"),
            indices.len(),
            "offsets must end at indices.len()"
        );
        assert!(
            offsets.windows(2).all(|w| w[0] <= w[1]),
            "offsets must be monotone"
        );
        assert!(
            indices.iter().all(|&c| (c as usize) < cols),
            "column index out of range"
        );
        CsrBlock {
            rows,
            cols,
            offsets,
            indices,
        }
    }

    /// An all-zero block.
    pub fn empty(rows: usize, cols: usize) -> Self {
        CsrBlock {
            rows,
            cols,
            offsets: vec![0; rows + 1],
            indices: Vec::new(),
        }
    }

    /// Builds a block from per-row column lists (kept in given order).
    pub fn from_rows(cols: usize, rows: &[Vec<u32>]) -> Self {
        let mut offsets = Vec::with_capacity(rows.len() + 1);
        offsets.push(0usize);
        let mut indices = Vec::new();
        for row in rows {
            indices.extend_from_slice(row);
            offsets.push(indices.len());
        }
        Self::from_parts(rows.len(), cols, offsets, indices)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// The column indices of row `r`, in stored order.
    pub fn row(&self, r: usize) -> &[u32] {
        &self.indices[self.offsets[r]..self.offsets[r + 1]]
    }
}

/// `out += block · dense`, threaded and bitwise-deterministic.
///
/// `dense` is row-major `block.cols() × cols`; `out` is row-major
/// `block.rows() × cols`. Each output row `r` accumulates the dense rows
/// named by `block.row(r)` in stored order, after whatever `out` already
/// holds — callers chain calls over several blocks to extend the fold.
///
/// # Panics
///
/// Panics if the buffer shapes do not match the block.
pub fn spmm_csr_dense_into(
    block: &CsrBlock,
    dense: &[f32],
    cols: usize,
    out: &mut [f32],
    threads: usize,
) {
    assert_eq!(
        dense.len(),
        block.cols() * cols,
        "dense shape mismatch: {} != {} x {cols}",
        dense.len(),
        block.cols(),
    );
    assert_eq!(
        out.len(),
        block.rows() * cols,
        "output shape mismatch: {} != {} x {cols}",
        out.len(),
        block.rows(),
    );
    if cols == 0 || block.rows() == 0 {
        return;
    }
    // Same parallelism threshold shape as the aggregation kernels: tiny
    // blocks are not worth a scoped spawn.
    let threads = if block.nnz().saturating_mul(cols) < PAR_WORK_MIN {
        1
    } else {
        threads
    };
    pool::par_row_chunks(threads, out, cols, |first_row, chunk| {
        for (i, orow) in chunk.chunks_mut(cols).enumerate() {
            for &c in block.row(first_row + i) {
                let src = &dense[c as usize * cols..(c as usize + 1) * cols];
                for (o, x) in orow.iter_mut().zip(src) {
                    *o += *x;
                }
            }
        }
    });
}

/// Work threshold (entries × feature width) below which the kernel stays
/// sequential.
const PAR_WORK_MIN: usize = 1 << 15;

#[cfg(test)]
mod tests {
    use super::*;

    fn reference(block: &CsrBlock, dense: &[f32], cols: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; block.rows() * cols];
        for r in 0..block.rows() {
            for &c in block.row(r) {
                for k in 0..cols {
                    out[r * cols + k] += dense[c as usize * cols + k];
                }
            }
        }
        out
    }

    fn arbitrary_block(rows: usize, cols: usize, seed: u64) -> (CsrBlock, Vec<f32>) {
        // Tiny deterministic LCG so the test needs no RNG dependency.
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        let mut row_lists = Vec::with_capacity(rows);
        for _ in 0..rows {
            let deg = next() % (cols + 1);
            let mut row: Vec<u32> = (0..deg).map(|_| (next() % cols) as u32).collect();
            row.sort_unstable();
            row.dedup();
            row_lists.push(row);
        }
        let block = CsrBlock::from_rows(cols, &row_lists);
        let feat = 5;
        let dense: Vec<f32> = (0..cols * feat)
            .map(|i| (next() % 97) as f32 - 48.0 + i as f32 * 0.25)
            .collect();
        (block, dense)
    }

    #[test]
    fn matches_reference_fold() {
        for seed in 0..8u64 {
            let (block, dense) = arbitrary_block(23, 11, seed);
            let cols = 5;
            let want = reference(&block, &dense, cols);
            let mut got = vec![0.0f32; block.rows() * cols];
            spmm_csr_dense_into(&block, &dense, cols, &mut got, 1);
            assert_eq!(got, want, "seed {seed}");
        }
    }

    #[test]
    fn bitwise_identical_at_every_thread_count() {
        let (block, dense) = arbitrary_block(70, 40, 3);
        let cols = 5;
        let mut base = vec![0.0f32; block.rows() * cols];
        spmm_csr_dense_into(&block, &dense, cols, &mut base, 1);
        for &threads in &[2usize, 3, 4, 8] {
            let mut got = vec![0.0f32; block.rows() * cols];
            spmm_csr_dense_into(&block, &dense, cols, &mut got, threads);
            assert_eq!(got, base, "threads {threads}");
        }
    }

    #[test]
    fn accumulates_into_existing_output() {
        let block = CsrBlock::from_rows(2, &[vec![0, 1], vec![1]]);
        let dense = vec![1.0, 2.0, 10.0, 20.0];
        let mut out = vec![100.0, 200.0, 300.0, 400.0];
        spmm_csr_dense_into(&block, &dense, 2, &mut out, 1);
        assert_eq!(out, vec![111.0, 222.0, 310.0, 420.0]);
    }

    #[test]
    fn empty_block_is_identity() {
        let block = CsrBlock::empty(3, 4);
        let dense = vec![1.0f32; 8];
        let mut out = vec![7.0f32; 6];
        spmm_csr_dense_into(&block, &dense, 2, &mut out, 4);
        assert_eq!(out, vec![7.0f32; 6]);
        assert_eq!(block.nnz(), 0);
    }

    #[test]
    #[should_panic(expected = "column index out of range")]
    fn out_of_range_column_is_rejected() {
        CsrBlock::from_parts(1, 2, vec![0, 1], vec![2]);
    }
}
