//! Row-major dense matrix storage.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major `f32` matrix.
///
/// Rows typically index vertices and columns index feature dimensions.
/// The storage is a single contiguous `Vec<f32>` of length `rows * cols`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix from a slice of row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows do not all share the same length.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows are not allowed");
            data.extend_from_slice(row);
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` shape tuple.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The flat row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// The flat row-major buffer, mutably.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns its flat row-major buffer (the
    /// inverse of [`Matrix::from_vec`]), letting callers recycle the
    /// storage without a copy.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(
            r < self.rows,
            "row {} out of bounds ({} rows)",
            r,
            self.rows
        );
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(
            r < self.rows,
            "row {} out of bounds ({} rows)",
            r,
            self.rows
        );
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies `src` into row `r`.
    ///
    /// # Panics
    ///
    /// Panics if the row index or row length mismatch.
    pub fn set_row(&mut self, r: usize, src: &[f32]) {
        self.row_mut(r).copy_from_slice(src);
    }

    /// Returns a new matrix containing the rows selected by `indices`,
    /// in order (a gather along the row axis).
    pub fn gather_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (dst, &src) in indices.iter().enumerate() {
            out.set_row(dst, self.row(src));
        }
        out
    }

    /// Returns the first `n` rows as a new matrix.
    ///
    /// # Panics
    ///
    /// Panics if `n > rows`.
    pub fn head_rows(&self, n: usize) -> Matrix {
        assert!(n <= self.rows, "cannot take {} of {} rows", n, self.rows);
        Matrix::from_vec(n, self.cols, self.data[..n * self.cols].to_vec())
    }

    /// Stacks `self` on top of `other` along the row axis.
    ///
    /// # Panics
    ///
    /// Panics if the column counts differ.
    pub fn vstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "column mismatch in vstack");
        let mut data = Vec::with_capacity(self.data.len() + other.data.len());
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Matrix::from_vec(self.rows + other.rows, self.cols, data)
    }

    /// Concatenates `self` and `other` along the column axis.
    ///
    /// # Panics
    ///
    /// Panics if the row counts differ.
    pub fn hstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "row mismatch in hstack");
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            let row = out.row_mut(r);
            row[..self.cols].copy_from_slice(&self.data[r * self.cols..(r + 1) * self.cols]);
            row[self.cols..].copy_from_slice(&other.data[r * other.cols..(r + 1) * other.cols]);
        }
        out
    }

    /// Splits the matrix at column `at` into `(left, right)`.
    ///
    /// # Panics
    ///
    /// Panics if `at > cols`.
    pub fn split_cols(&self, at: usize) -> (Matrix, Matrix) {
        assert!(
            at <= self.cols,
            "split point {} beyond {} cols",
            at,
            self.cols
        );
        let mut left = Matrix::zeros(self.rows, at);
        let mut right = Matrix::zeros(self.rows, self.cols - at);
        for r in 0..self.rows {
            let row = self.row(r);
            left.row_mut(r).copy_from_slice(&row[..at]);
            right.row_mut(r).copy_from_slice(&row[at..]);
        }
        (left, right)
    }

    /// The transpose of the matrix, on the global worker count
    /// ([`crate::pool::compute_threads`]).
    pub fn transpose(&self) -> Matrix {
        self.transpose_threads(crate::pool::compute_threads())
    }

    /// [`Matrix::transpose`] with an explicit worker count. A pure
    /// permutation: results are identical for every `threads` value.
    pub fn transpose_threads(&self, threads: usize) -> Matrix {
        // Blocked: each output chunk (a band of source columns) walks the
        // source rows in 64-row tiles so the strided reads of one tile
        // share cache lines before they are evicted.
        const TILE_ROWS: usize = 64;
        let (rows, cols) = (self.rows, self.cols);
        let mut out = Matrix::zeros(cols, rows);
        let threads = if rows * cols < 1 << 15 { 1 } else { threads };
        let src = &self.data;
        crate::pool::par_row_chunks(threads, &mut out.data, rows.max(1), |c0, chunk| {
            for rb in (0..rows).step_by(TILE_ROWS) {
                let rend = (rb + TILE_ROWS).min(rows);
                for (i, out_row) in chunk.chunks_mut(rows).enumerate() {
                    let c = c0 + i;
                    for r in rb..rend {
                        out_row[r] = src[r * cols + c];
                    }
                }
            }
        });
        out
    }

    /// Maximum absolute difference to `other`, used by parity checks.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, other: &Matrix) -> f32 {
        assert_eq!(self.shape(), other.shape(), "shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0_f32, f32::max)
    }

    /// Whether every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;

    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show = self.rows.min(6);
        for r in 0..show {
            write!(f, "  [")?;
            let cols = self.cols.min(8);
            for c in 0..cols {
                write!(f, "{:8.4}", self[(r, c)])?;
                if c + 1 < cols {
                    write!(f, ", ")?;
                }
            }
            if self.cols > 8 {
                write!(f, ", ...")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > show {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_shape_and_zero_content() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn eye_is_identity() {
        let m = Matrix::eye(3);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(m[(r, c)], if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_rows_round_trips() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.row(0), &[1.0, 2.0]);
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_rejects_ragged_input() {
        let _ = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]);
    }

    #[test]
    fn gather_rows_selects_in_order() {
        let m = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        let g = m.gather_rows(&[2, 0, 2]);
        assert_eq!(g.as_slice(), &[3.0, 1.0, 3.0]);
    }

    #[test]
    fn vstack_concatenates_rows() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0], &[5.0, 6.0]]);
        let s = a.vstack(&b);
        assert_eq!(s.shape(), (3, 2));
        assert_eq!(s.row(2), &[5.0, 6.0]);
    }

    #[test]
    fn hstack_and_split_round_trip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0], &[6.0]]);
        let joined = a.hstack(&b);
        assert_eq!(joined.shape(), (2, 3));
        assert_eq!(joined.row(1), &[3.0, 4.0, 6.0]);
        let (left, right) = joined.split_cols(2);
        assert_eq!(left, a);
        assert_eq!(right, b);
    }

    #[test]
    fn transpose_twice_is_identity() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn head_rows_truncates() {
        let m = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        assert_eq!(m.head_rows(2).as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn max_abs_diff_detects_divergence() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[1.5, 2.0]]);
        assert!((a.max_abs_diff(&b) - 0.5).abs() < 1e-6);
    }
}
