//! Random weight initialisation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::Matrix;

/// Xavier/Glorot uniform initialiser.
///
/// Samples from `U(-limit, limit)` with `limit = sqrt(6 / (fan_in + fan_out))`,
/// the standard initialisation for GNN layer weights. All randomness flows
/// through an explicit seed so runs are reproducible.
#[derive(Debug, Clone)]
pub struct XavierInit {
    rng: StdRng,
}

impl XavierInit {
    /// Creates an initialiser from a fixed seed.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Samples a `fan_in x fan_out` weight matrix.
    pub fn weight(&mut self, fan_in: usize, fan_out: usize) -> Matrix {
        let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
        let mut m = Matrix::zeros(fan_in, fan_out);
        for v in m.as_mut_slice() {
            *v = self.rng.gen_range(-limit..limit);
        }
        m
    }

    /// Samples a `rows x cols` feature matrix from `U(-1, 1)`, used for graphs
    /// without input features (the paper generates 0-th layer embeddings
    /// randomly).
    pub fn features(&mut self, rows: usize, cols: usize) -> Matrix {
        let mut m = Matrix::zeros(rows, cols);
        for v in m.as_mut_slice() {
            *v = self.rng.gen_range(-1.0..1.0);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_weights() {
        let a = XavierInit::new(7).weight(4, 5);
        let b = XavierInit::new(7).weight(4, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seed_different_weights() {
        let a = XavierInit::new(7).weight(4, 5);
        let b = XavierInit::new(8).weight(4, 5);
        assert_ne!(a, b);
    }

    #[test]
    fn weights_respect_xavier_bound() {
        let m = XavierInit::new(1).weight(10, 10);
        let limit = (6.0 / 20.0_f32).sqrt();
        assert!(m.as_slice().iter().all(|v| v.abs() <= limit));
    }

    #[test]
    fn features_are_in_unit_range() {
        let m = XavierInit::new(3).features(20, 8);
        assert!(m.as_slice().iter().all(|v| v.abs() <= 1.0));
    }
}
