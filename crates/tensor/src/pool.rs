//! The compute worker pool: deterministic row-range parallelism for the
//! dense and sparse kernels of the training hot path.
//!
//! The pool mirrors the planner's thread tier (`SpstConfig::batched`): it
//! spawns scoped workers on the vendored `crossbeam` shim, so borrowed
//! inputs flow into workers without `Arc` plumbing and every worker is
//! joined before the kernel returns.
//!
//! # Determinism contract
//!
//! Work is split into *fixed-size row chunks* ([`CHUNK_ROWS`]) whose
//! boundaries depend only on the output shape — never on the thread
//! count — and every output row is written by exactly one chunk, in the
//! same inner loop order the sequential kernel uses. Each output element
//! therefore sees an identical sequence of floating-point operations at
//! every thread count, making kernel results *bitwise identical* for
//! `threads = 1, 2, 4, …` (property-tested in
//! `tests/compute_engine.rs`). Parallelism changes wall-clock only.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Rows per work chunk. Fixed so chunk boundaries are a function of the
/// output shape only (see the determinism contract above).
pub const CHUNK_ROWS: usize = 16;

/// `0` means "resolve from the machine" (see [`compute_threads`]).
static COMPUTE_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Sets the global worker count used by the parallel kernels when no
/// explicit count is passed. `0` restores the default
/// (`available_parallelism`, clamped to 8 like the planner tier).
pub fn set_compute_threads(threads: usize) {
    COMPUTE_THREADS.store(threads, Ordering::SeqCst);
}

/// The global worker count the parallel kernels use by default.
pub fn compute_threads() -> usize {
    match COMPUTE_THREADS.load(Ordering::SeqCst) {
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .clamp(1, 8),
        n => n,
    }
}

/// Splits `out` (a row-major `rows x cols` buffer) into fixed
/// [`CHUNK_ROWS`]-row chunks and runs `body(first_row, chunk)` for every
/// chunk, distributing contiguous runs of chunks over at most `threads`
/// scoped workers. With one effective worker the chunks run inline on the
/// caller's thread — no spawning, no allocation.
///
/// `body` must compute each chunk independently of every other chunk (it
/// receives disjoint `&mut` windows, so the borrow checker enforces the
/// writes; reads of shared inputs are the caller's contract).
///
/// # Panics
///
/// Panics if `out.len()` is not a multiple of `cols` (when `cols > 0`) or
/// if a worker panics.
pub fn par_row_chunks<F>(threads: usize, out: &mut [f32], cols: usize, body: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    if out.is_empty() || cols == 0 {
        return;
    }
    assert_eq!(out.len() % cols, 0, "buffer is not a whole number of rows");
    let chunk_len = CHUNK_ROWS * cols;
    let num_chunks = out.len().div_ceil(chunk_len);
    let workers = threads.max(1).min(num_chunks);
    if workers <= 1 {
        for (c, chunk) in out.chunks_mut(chunk_len).enumerate() {
            body(c * CHUNK_ROWS, chunk);
        }
        return;
    }
    // Contiguous runs of chunks per worker: worker w takes chunks
    // [w * per, (w + 1) * per). Assignment affects scheduling only; the
    // chunk boundaries and per-chunk work are identical at every count.
    let per = num_chunks.div_ceil(workers);
    let body = &body;
    crossbeam::thread::scope(|scope| {
        let mut joins = Vec::with_capacity(workers);
        let mut rest = out;
        let mut first_chunk = 0usize;
        while !rest.is_empty() {
            let take = (per * chunk_len).min(rest.len());
            let (run, tail) = rest.split_at_mut(take);
            rest = tail;
            let start = first_chunk;
            joins.push(scope.spawn(move |_| {
                for (c, chunk) in run.chunks_mut(chunk_len).enumerate() {
                    body((start + c) * CHUNK_ROWS, chunk);
                }
            }));
            first_chunk += take.div_ceil(chunk_len);
        }
        for join in joins {
            join.join().expect("compute pool worker panicked");
        }
    })
    .expect("compute pool scope");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_every_row_once() {
        for &threads in &[1usize, 2, 3, 8] {
            let rows = 67;
            let cols = 3;
            let mut out = vec![0.0f32; rows * cols];
            par_row_chunks(threads, &mut out, cols, |first_row, chunk| {
                for (i, row) in chunk.chunks_mut(cols).enumerate() {
                    for x in row.iter_mut() {
                        *x += (first_row + i) as f32 + 1.0;
                    }
                }
            });
            for r in 0..rows {
                for c in 0..cols {
                    assert_eq!(out[r * cols + c], r as f32 + 1.0, "threads {threads}");
                }
            }
        }
    }

    #[test]
    fn empty_buffer_is_a_no_op() {
        let mut out: Vec<f32> = Vec::new();
        par_row_chunks(4, &mut out, 5, |_, _| panic!("must not run"));
    }

    #[test]
    #[should_panic(expected = "whole number of rows")]
    fn ragged_buffer_is_rejected() {
        let mut out = vec![0.0f32; 7];
        par_row_chunks(2, &mut out, 3, |_, _| {});
    }

    #[test]
    fn global_thread_setting_round_trips() {
        let before = compute_threads();
        set_compute_threads(3);
        assert_eq!(compute_threads(), 3);
        set_compute_threads(0);
        assert!(compute_threads() >= 1);
        set_compute_threads(before);
    }
}
