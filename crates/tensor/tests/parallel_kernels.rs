//! Property tests: every threaded kernel is bitwise-identical to its
//! sequential form at every worker count.
//!
//! The compute pool's determinism contract (fixed chunk boundaries, one
//! writer per output element, fixed per-element reduction order) means
//! the thread count may change scheduling but never bits. These
//! properties pin that contract so a future "optimisation" that reorders
//! a reduction fails loudly instead of silently breaking distributed /
//! single-device training parity.

use dgcl_tensor::Matrix;
use proptest::prelude::*;

/// Random matrix with dimensions crossing several chunk boundaries
/// (`CHUNK_ROWS` is 16) and values including exact zeros, so the
/// zero-skip fast path is exercised.
fn arb_matrix(
    rows: core::ops::Range<usize>,
    cols: core::ops::Range<usize>,
) -> impl Strategy<Value = Matrix> {
    (rows, cols).prop_map(|(r, c)| {
        // Deterministic pseudo-random fill derived from the index; a
        // quarter of entries are exactly zero.
        let data: Vec<f32> = (0..r * c)
            .map(|i| {
                let h = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40;
                if h.is_multiple_of(4) {
                    0.0
                } else {
                    (h % 1000) as f32 / 250.0 - 2.0
                }
            })
            .collect();
        Matrix::from_vec(r, c, data)
    })
}

const THREADS: [usize; 5] = [1, 2, 3, 4, 8];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn matmul_is_thread_count_invariant(
        (a, b) in (arb_matrix(1..70, 1..20), 1usize..20)
            .prop_map(|(a, n)| { let k = a.cols(); (a, arb_fixed(k, n)) })
    ) {
        let reference = a.matmul_threads(&b, 1);
        prop_assert_eq!(&a.matmul(&b), &reference, "auto thread count");
        for t in THREADS {
            prop_assert_eq!(&a.matmul_threads(&b, t), &reference, "threads={}", t);
        }
    }

    #[test]
    fn matmul_tn_is_thread_count_invariant(
        (a, b) in (arb_matrix(1..50, 1..20), 1usize..16)
            .prop_map(|(a, n)| { let m = a.rows(); (a, arb_fixed(m, n)) })
    ) {
        let reference = a.matmul_tn_threads(&b, 1);
        prop_assert_eq!(&a.matmul_tn(&b), &reference, "auto thread count");
        for t in THREADS {
            prop_assert_eq!(&a.matmul_tn_threads(&b, t), &reference, "threads={}", t);
        }
    }

    #[test]
    fn matmul_nt_is_thread_count_invariant(
        (a, b) in (arb_matrix(1..50, 1..20), 1usize..16)
            .prop_map(|(a, n)| { let k = a.cols(); (a, arb_fixed(n, k)) })
    ) {
        let reference = a.matmul_nt_threads(&b, 1);
        prop_assert_eq!(&a.matmul_nt(&b), &reference, "auto thread count");
        for t in THREADS {
            prop_assert_eq!(&a.matmul_nt_threads(&b, t), &reference, "threads={}", t);
        }
    }

    #[test]
    fn transpose_is_thread_count_invariant(a in arb_matrix(1..90, 1..40)) {
        let reference = a.transpose_threads(1);
        prop_assert_eq!(&a.transpose(), &reference, "auto thread count");
        for t in THREADS {
            prop_assert_eq!(&a.transpose_threads(t), &reference, "threads={}", t);
        }
        prop_assert_eq!(&reference.transpose(), &a, "involution");
    }
}

/// Deterministic matrix of a fixed shape (used where one operand's shape
/// must match the other's draw).
fn arb_fixed(rows: usize, cols: usize) -> Matrix {
    let data: Vec<f32> = (0..rows * cols)
        .map(|i| {
            let h = (i as u64 ^ 0xABCD).wrapping_mul(0x2545_F491_4F6C_DD1D) >> 41;
            if h.is_multiple_of(5) {
                0.0
            } else {
                (h % 777) as f32 / 111.0 - 3.5
            }
        })
        .collect();
    Matrix::from_vec(rows, cols, data)
}
