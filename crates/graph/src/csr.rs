//! Compressed-sparse-row graph storage.

use std::sync::OnceLock;

use crate::VertexId;

/// A directed graph in compressed-sparse-row form.
///
/// `offsets` has `n + 1` entries; the out-neighbours of vertex `v` are
/// `targets[offsets[v]..offsets[v + 1]]`, sorted ascending with no
/// duplicates and no self-loops (the builder enforces this). GNN training
/// in this reproduction always uses symmetric graphs, but the type itself
/// supports arbitrary directed graphs.
///
/// The edge-reversed graph used by the gather-form aggregation backward
/// is computed once on first use and cached ([`CsrGraph::reversed`]);
/// equality, cloning and formatting ignore the cache.
pub struct CsrGraph {
    offsets: Vec<usize>,
    targets: Vec<VertexId>,
    reversed: OnceLock<Box<CsrGraph>>,
}

impl Clone for CsrGraph {
    fn clone(&self) -> Self {
        // The clone recomputes its reverse lazily if it needs one.
        Self {
            offsets: self.offsets.clone(),
            targets: self.targets.clone(),
            reversed: OnceLock::new(),
        }
    }
}

impl PartialEq for CsrGraph {
    fn eq(&self, other: &Self) -> bool {
        self.offsets == other.offsets && self.targets == other.targets
    }
}

impl Eq for CsrGraph {}

impl std::fmt::Debug for CsrGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CsrGraph")
            .field("offsets", &self.offsets)
            .field("targets", &self.targets)
            .finish()
    }
}

impl CsrGraph {
    /// Constructs a graph directly from CSR arrays.
    ///
    /// # Panics
    ///
    /// Panics if the arrays are inconsistent: `offsets` must be non-empty,
    /// monotonically non-decreasing, start at 0 and end at `targets.len()`,
    /// and every target must be a valid vertex id.
    pub fn from_parts(offsets: Vec<usize>, targets: Vec<VertexId>) -> Self {
        assert!(!offsets.is_empty(), "offsets must have at least one entry");
        assert_eq!(offsets[0], 0, "offsets must start at 0");
        assert_eq!(
            *offsets.last().expect("non-empty"),
            targets.len(),
            "offsets must end at targets.len()"
        );
        assert!(
            offsets.windows(2).all(|w| w[0] <= w[1]),
            "offsets must be non-decreasing"
        );
        let n = offsets.len() - 1;
        assert!(
            targets.iter().all(|&t| (t as usize) < n),
            "target out of range"
        );
        Self {
            offsets,
            targets,
            reversed: OnceLock::new(),
        }
    }

    /// A graph with `n` vertices and no edges.
    pub fn empty(n: usize) -> Self {
        Self {
            offsets: vec![0; n + 1],
            targets: Vec::new(),
            reversed: OnceLock::new(),
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Out-degree of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn out_degree(&self, v: VertexId) -> usize {
        let v = v as usize;
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Out-neighbours of vertex `v`, sorted ascending.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        &self.targets[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Iterates over all directed edges as `(src, dst)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        (0..self.num_vertices() as VertexId)
            .flat_map(move |v| self.neighbors(v).iter().map(move |&u| (v, u)))
    }

    /// Average out-degree.
    pub fn avg_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            self.num_edges() as f64 / self.num_vertices() as f64
        }
    }

    /// Whether edge `(u, v)` exists.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Builds the transpose (all edges reversed).
    pub fn reverse(&self) -> CsrGraph {
        let n = self.num_vertices();
        let mut in_degree = vec![0usize; n];
        for &t in &self.targets {
            in_degree[t as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0);
        for d in &in_degree {
            offsets.push(offsets.last().expect("non-empty") + d);
        }
        let mut cursor = offsets[..n].to_vec();
        let mut targets = vec![0 as VertexId; self.targets.len()];
        for v in 0..n as VertexId {
            for &u in self.neighbors(v) {
                targets[cursor[u as usize]] = v;
                cursor[u as usize] += 1;
            }
        }
        // Per-row targets come out sorted because source vertices are
        // visited in ascending order.
        CsrGraph {
            offsets,
            targets,
            reversed: OnceLock::new(),
        }
    }

    /// The transpose, computed once on first call and cached for the
    /// graph's lifetime. The gather-form aggregation backward walks this
    /// on every layer of every epoch, so the O(V + E) build must not
    /// recur (clones start with an empty cache).
    pub fn reversed(&self) -> &CsrGraph {
        self.reversed.get_or_init(|| Box::new(self.reverse()))
    }

    /// Whether the graph equals its own transpose (undirected storage).
    pub fn is_symmetric(&self) -> bool {
        *self == self.reverse()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain3() -> CsrGraph {
        // 0 -> 1 -> 2
        CsrGraph::from_parts(vec![0, 1, 2, 2], vec![1, 2])
    }

    #[test]
    fn basic_accessors() {
        let g = chain3();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.out_degree(0), 1);
        assert_eq!(g.out_degree(2), 0);
        assert_eq!(g.neighbors(1), &[2]);
    }

    #[test]
    fn edges_iterates_all_pairs() {
        let g = chain3();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn reverse_flips_edges() {
        let g = chain3();
        let r = g.reverse();
        assert_eq!(r.neighbors(1), &[0]);
        assert_eq!(r.neighbors(2), &[1]);
        assert_eq!(r.out_degree(0), 0);
    }

    #[test]
    fn cached_reversed_matches_reverse() {
        let g = chain3();
        assert_eq!(*g.reversed(), g.reverse());
        assert!(std::ptr::eq(g.reversed(), g.reversed()), "cache is stable");
        // Clones drop the cache but recompute the same transpose.
        assert_eq!(*g.clone().reversed(), g.reverse());
    }

    #[test]
    fn reverse_twice_is_identity() {
        let g = chain3();
        assert_eq!(g.reverse().reverse(), g);
    }

    #[test]
    fn has_edge_uses_binary_search() {
        let g = chain3();
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
    }

    #[test]
    fn symmetric_detection() {
        assert!(!chain3().is_symmetric());
        let sym = CsrGraph::from_parts(vec![0, 1, 2], vec![1, 0]);
        assert!(sym.is_symmetric());
    }

    #[test]
    #[should_panic(expected = "target out of range")]
    fn from_parts_rejects_bad_target() {
        let _ = CsrGraph::from_parts(vec![0, 1], vec![5]);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::empty(4);
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.avg_degree(), 0.0);
    }
}
