//! Graph substrate for the DGCL reproduction.
//!
//! Provides compressed-sparse-row graph storage ([`CsrGraph`]), an edge-list
//! [`builder::GraphBuilder`], synthetic graph [`generators`] (R-MAT,
//! Barabási–Albert, Erdős–Rényi), the paper's dataset catalog
//! ([`datasets::Dataset`], Table 4 of the paper) and k-hop neighbourhood
//! expansion used for replication-factor analysis (Figure 4).
//!
//! # Examples
//!
//! ```
//! use dgcl_graph::builder::GraphBuilder;
//!
//! let mut b = GraphBuilder::new(4);
//! b.add_edge(0, 1);
//! b.add_edge(1, 2);
//! b.add_edge(2, 3);
//! let g = b.build_symmetric();
//! assert_eq!(g.num_vertices(), 4);
//! assert_eq!(g.out_degree(1), 2);
//! ```

pub mod builder;
pub mod csr;
pub mod datasets;
pub mod generators;
pub mod io;
pub mod khop;
pub mod sample;
pub mod stats;

pub use builder::GraphBuilder;
pub use csr::CsrGraph;
pub use datasets::Dataset;
pub use khop::{
    k_hop_closure, k_hop_closure_sparse, replication_factor, GraphError, SparseClosure,
};
pub use sample::{sample_blocks, sampled_src, seed_batches, BlockPool, LayerBlock};

/// Vertex identifier within a graph.
pub type VertexId = u32;
