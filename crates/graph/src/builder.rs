//! Edge-list builder for [`CsrGraph`].

use crate::{CsrGraph, VertexId};

/// Accumulates an edge list and finalises it into CSR form.
///
/// The builder removes self-loops and duplicate edges, and can optionally
/// symmetrise the edge set (adding the reverse of every edge), which is the
/// form GNN training uses.
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    num_vertices: usize,
    edges: Vec<(VertexId, VertexId)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        Self {
            num_vertices,
            edges: Vec::new(),
        }
    }

    /// Creates a builder with pre-allocated capacity for `num_edges` edges.
    pub fn with_capacity(num_vertices: usize, num_edges: usize) -> Self {
        Self {
            num_vertices,
            edges: Vec::with_capacity(num_edges),
        }
    }

    /// Number of vertices the final graph will have.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of raw (possibly duplicate) edges added so far.
    pub fn num_raw_edges(&self) -> usize {
        self.edges.len()
    }

    /// Records a directed edge `src -> dst`. Self-loops are dropped.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, src: VertexId, dst: VertexId) {
        assert!(
            (src as usize) < self.num_vertices && (dst as usize) < self.num_vertices,
            "edge ({src}, {dst}) out of range for {} vertices",
            self.num_vertices
        );
        if src != dst {
            self.edges.push((src, dst));
        }
    }

    /// Finalises into a directed CSR graph, deduplicating edges.
    pub fn build_directed(mut self) -> CsrGraph {
        Self::finish(self.num_vertices, std::mem::take(&mut self.edges))
    }

    /// Finalises into a symmetric CSR graph: the reverse of every edge is
    /// added before deduplication.
    pub fn build_symmetric(mut self) -> CsrGraph {
        let mut edges = std::mem::take(&mut self.edges);
        let forward = edges.len();
        edges.reserve(forward);
        for i in 0..forward {
            let (s, d) = edges[i];
            edges.push((d, s));
        }
        Self::finish(self.num_vertices, edges)
    }

    fn finish(n: usize, mut edges: Vec<(VertexId, VertexId)>) -> CsrGraph {
        edges.sort_unstable();
        edges.dedup();
        let mut degree = vec![0usize; n];
        for &(s, _) in &edges {
            degree[s as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0);
        for d in &degree {
            offsets.push(offsets.last().copied().expect("non-empty") + d);
        }
        let targets = edges.into_iter().map(|(_, d)| d).collect();
        CsrGraph::from_parts(offsets, targets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_and_self_loop_removal() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        b.add_edge(0, 1);
        b.add_edge(1, 1);
        b.add_edge(2, 0);
        let g = b.build_directed();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(2), &[0]);
    }

    #[test]
    fn symmetric_build_adds_reverse_edges() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        let g = b.build_symmetric();
        assert!(g.is_symmetric());
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.neighbors(1), &[0, 2]);
    }

    #[test]
    fn isolated_vertices_keep_zero_degree() {
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 4);
        let g = b.build_directed();
        assert_eq!(g.out_degree(1), 0);
        assert_eq!(g.out_degree(2), 0);
        assert_eq!(g.out_degree(3), 0);
        assert_eq!(g.neighbors(0), &[4]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_edge() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 2);
    }
}
