//! Graph I/O: edge-list and METIS file formats.
//!
//! Real deployments of DGCL load graphs from disk; this module supports
//! the two formats the paper's datasets ship in — whitespace-separated
//! edge lists (SNAP style, `#` comments) and the METIS adjacency format —
//! so users can run the library on their own data.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};

use crate::{CsrGraph, GraphBuilder, VertexId};

/// Errors arising while reading a graph file.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file content is malformed.
    Parse {
        /// 1-based line number of the problem.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "I/O error: {e}"),
            IoError::Parse { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

fn parse_error(line: usize, message: impl Into<String>) -> IoError {
    IoError::Parse {
        line,
        message: message.into(),
    }
}

/// Reads a whitespace-separated edge list (`src dst` per line, `#`
/// comments, SNAP style) into a symmetric CSR graph. Vertex ids are used
/// as-is; the vertex count is `max id + 1`.
///
/// # Errors
///
/// Returns [`IoError`] on I/O failures or malformed lines.
pub fn read_edge_list<R: Read>(reader: R) -> Result<CsrGraph, IoError> {
    let reader = BufReader::new(reader);
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    let mut max_id: VertexId = 0;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let src: VertexId = parts
            .next()
            .ok_or_else(|| parse_error(idx + 1, "missing source id"))?
            .parse()
            .map_err(|e| parse_error(idx + 1, format!("bad source id: {e}")))?;
        let dst: VertexId = parts
            .next()
            .ok_or_else(|| parse_error(idx + 1, "missing destination id"))?
            .parse()
            .map_err(|e| parse_error(idx + 1, format!("bad destination id: {e}")))?;
        max_id = max_id.max(src).max(dst);
        edges.push((src, dst));
    }
    let mut b = GraphBuilder::with_capacity(max_id as usize + 1, edges.len());
    for (s, d) in edges {
        if s != d {
            b.add_edge(s, d);
        }
    }
    Ok(b.build_symmetric())
}

/// Writes a graph as an edge list (one `src dst` line per directed edge).
///
/// # Errors
///
/// Returns [`IoError`] on I/O failures.
pub fn write_edge_list<W: Write>(graph: &CsrGraph, writer: W) -> Result<(), IoError> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "# {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    )?;
    for (s, d) in graph.edges() {
        writeln!(w, "{s} {d}")?;
    }
    w.flush()?;
    Ok(())
}

/// Reads the METIS adjacency format: a header `n m [fmt]` followed by one
/// line per vertex listing its (1-based) neighbours. Only the unweighted
/// format (`fmt` 0 or absent) is supported.
///
/// # Errors
///
/// Returns [`IoError`] on I/O failures, malformed content, or weighted
/// formats.
pub fn read_metis<R: Read>(reader: R) -> Result<CsrGraph, IoError> {
    let reader = BufReader::new(reader);
    let mut lines = reader.lines().enumerate();
    let (header_idx, header) = loop {
        match lines.next() {
            Some((idx, line)) => {
                let line = line?;
                let t = line.trim().to_string();
                if !t.is_empty() && !t.starts_with('%') {
                    break (idx, t);
                }
            }
            None => return Err(parse_error(1, "empty file")),
        }
    };
    let fields: Vec<&str> = header.split_whitespace().collect();
    if fields.len() < 2 {
        return Err(parse_error(header_idx + 1, "header needs `n m`"));
    }
    let n: usize = fields[0]
        .parse()
        .map_err(|e| parse_error(header_idx + 1, format!("bad vertex count: {e}")))?;
    let m: usize = fields[1]
        .parse()
        .map_err(|e| parse_error(header_idx + 1, format!("bad edge count: {e}")))?;
    if fields.len() > 2 && fields[2] != "0" && fields[2] != "00" && fields[2] != "000" {
        return Err(parse_error(
            header_idx + 1,
            "weighted METIS formats are not supported",
        ));
    }
    let mut b = GraphBuilder::with_capacity(n, 2 * m);
    let mut vertex: usize = 0;
    for (idx, line) in lines {
        let line = line?;
        let t = line.trim();
        if t.starts_with('%') {
            continue;
        }
        if vertex >= n {
            if t.is_empty() {
                continue;
            }
            return Err(parse_error(idx + 1, "more adjacency lines than vertices"));
        }
        for tok in t.split_whitespace() {
            let neighbor: usize = tok
                .parse()
                .map_err(|e| parse_error(idx + 1, format!("bad neighbour id: {e}")))?;
            if neighbor == 0 || neighbor > n {
                return Err(parse_error(
                    idx + 1,
                    format!("neighbour {neighbor} out of range 1..={n}"),
                ));
            }
            b.add_edge(vertex as VertexId, (neighbor - 1) as VertexId);
        }
        vertex += 1;
    }
    if vertex != n {
        return Err(parse_error(
            0,
            format!("expected {n} adjacency lines, found {vertex}"),
        ));
    }
    Ok(b.build_symmetric())
}

/// Writes a graph in the METIS adjacency format (unweighted).
///
/// # Errors
///
/// Returns [`IoError`] on I/O failures or if the graph is not symmetric
/// (METIS files describe undirected graphs).
pub fn write_metis<W: Write>(graph: &CsrGraph, writer: W) -> Result<(), IoError> {
    if !graph.is_symmetric() {
        return Err(parse_error(0, "METIS format requires a symmetric graph"));
    }
    let mut w = BufWriter::new(writer);
    writeln!(w, "{} {}", graph.num_vertices(), graph.num_edges() / 2)?;
    for v in 0..graph.num_vertices() as VertexId {
        let line: Vec<String> = graph
            .neighbors(v)
            .iter()
            .map(|&u| (u + 1).to_string())
            .collect();
        writeln!(w, "{}", line.join(" "))?;
    }
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_list_round_trip() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, 3);
        let g = b.build_symmetric();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).expect("write");
        let back = read_edge_list(&buf[..]).expect("read");
        assert_eq!(back, g);
    }

    #[test]
    fn edge_list_skips_comments_and_blank_lines() {
        let text = "# a comment\n\n0 1\n1 2\n";
        let g = read_edge_list(text.as_bytes()).expect("read");
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 4);
    }

    #[test]
    fn edge_list_reports_bad_lines() {
        let text = "0 1\nnot numbers\n";
        let err = read_edge_list(text.as_bytes()).expect_err("must fail");
        match err {
            IoError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn metis_round_trip() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, 3);
        b.add_edge(3, 0);
        let g = b.build_symmetric();
        let mut buf = Vec::new();
        write_metis(&g, &mut buf).expect("write");
        let back = read_metis(&buf[..]).expect("read");
        assert_eq!(back, g);
    }

    #[test]
    fn metis_parses_reference_example() {
        // 3-vertex triangle in METIS format.
        let text = "3 3\n2 3\n1 3\n1 2\n";
        let g = read_metis(text.as_bytes()).expect("read");
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 6);
        assert!(g.has_edge(0, 2));
    }

    #[test]
    fn metis_rejects_out_of_range_neighbor() {
        let text = "2 1\n2\n3\n";
        assert!(read_metis(text.as_bytes()).is_err());
    }

    #[test]
    fn metis_rejects_weighted_format() {
        let text = "2 1 011\n2 5\n1 5\n";
        assert!(read_metis(text.as_bytes()).is_err());
    }

    #[test]
    fn metis_write_rejects_directed_graphs() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1);
        let g = b.build_directed();
        assert!(write_metis(&g, Vec::new()).is_err());
    }
}
