//! Degree statistics for generated graphs.

use crate::CsrGraph;

/// Summary of a graph's degree distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    /// Minimum out-degree.
    pub min: usize,
    /// Maximum out-degree.
    pub max: usize,
    /// Mean out-degree.
    pub mean: f64,
    /// Median out-degree.
    pub median: usize,
    /// Fraction of vertices with degree greater than `4 * mean`
    /// (a crude hub-share indicator of skew).
    pub hub_share: f64,
}

/// Computes [`DegreeStats`] for a graph.
pub fn degree_stats(graph: &CsrGraph) -> DegreeStats {
    let n = graph.num_vertices();
    if n == 0 {
        return DegreeStats {
            min: 0,
            max: 0,
            mean: 0.0,
            median: 0,
            hub_share: 0.0,
        };
    }
    let mut degrees: Vec<usize> = (0..n as u32).map(|v| graph.out_degree(v)).collect();
    degrees.sort_unstable();
    let mean = graph.avg_degree();
    let hub_threshold = 4.0 * mean;
    let hubs = degrees
        .iter()
        .filter(|&&d| d as f64 > hub_threshold)
        .count();
    DegreeStats {
        min: degrees[0],
        max: degrees[n - 1],
        mean,
        median: degrees[n / 2],
        hub_share: hubs as f64 / n as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn star_graph_stats() {
        // Star: centre 0 connected to 1..=4.
        let mut b = GraphBuilder::new(5);
        for v in 1..5 {
            b.add_edge(0, v);
        }
        let g = b.build_symmetric();
        let s = degree_stats(&g);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 4);
        assert!((s.mean - 1.6).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_stats_are_zero() {
        let g = CsrGraph::empty(0);
        let s = degree_stats(&g);
        assert_eq!(s.max, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn hub_share_detects_star_centre() {
        let mut b = GraphBuilder::new(20);
        for v in 1..20 {
            b.add_edge(0, v);
        }
        let g = b.build_symmetric();
        let s = degree_stats(&g);
        assert!(s.hub_share > 0.0);
        assert!(s.hub_share < 0.2);
    }
}
