//! K-hop neighbourhood expansion.
//!
//! Training a K-layer GNN for a vertex set requires the embeddings of the
//! set's K-hop neighbourhood (§2 of the paper). Replication-based
//! distributed training stores that whole neighbourhood per device, and the
//! *replication factor* — total stored vertices across devices divided by
//! the graph's vertex count — measures its cost (Figure 4).
//!
//! Two expansions are provided: the dense [`k_hop_closure`] mask, right
//! for whole-graph analyses like [`replication_factor`] where the closure
//! covers most vertices anyway, and the sparse [`k_hop_closure_sparse`]
//! visited-set, right for per-batch sampling where a handful of seeds on a
//! huge graph must not pay an `O(|V|)` allocation per call. Both return
//! [`GraphError`] on bad input instead of panicking, so a malformed batch
//! surfaces as a typed error through the runtime's poison protocol rather
//! than aborting the rank thread.

use std::collections::HashSet;
use std::fmt;

use crate::{CsrGraph, VertexId};

/// A malformed input to a graph traversal: out-of-range seeds or an
/// inconsistent partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A seed vertex id is `>=` the graph's vertex count.
    SeedOutOfRange {
        /// The offending seed.
        seed: VertexId,
        /// The graph's vertex count.
        num_vertices: usize,
    },
    /// The partition vector's length differs from the vertex count.
    PartitionLengthMismatch {
        /// The partition vector's length.
        partition_len: usize,
        /// The graph's vertex count.
        num_vertices: usize,
    },
    /// A part id in the partition vector is `>= num_parts`.
    PartIdOutOfRange {
        /// The offending part id.
        part: u32,
        /// The number of parts.
        num_parts: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::SeedOutOfRange { seed, num_vertices } => {
                write!(f, "seed {seed} out of range for {num_vertices} vertices")
            }
            GraphError::PartitionLengthMismatch {
                partition_len,
                num_vertices,
            } => write!(
                f,
                "partition length {partition_len} does not match vertex count {num_vertices}"
            ),
            GraphError::PartIdOutOfRange { part, num_parts } => {
                write!(f, "part id {part} out of range for {num_parts} parts")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// Returns the set of vertices within `hops` of `seeds` (including the
/// seeds themselves), as a boolean membership mask.
///
/// Costs `O(|V|)` per call for the mask alone; per-batch sampling over a
/// few seeds should use [`k_hop_closure_sparse`] instead.
pub fn k_hop_closure(
    graph: &CsrGraph,
    seeds: &[VertexId],
    hops: usize,
) -> Result<Vec<bool>, GraphError> {
    let n = graph.num_vertices();
    let mut member = vec![false; n];
    let mut frontier: Vec<VertexId> = Vec::new();
    for &s in seeds {
        if (s as usize) >= n {
            return Err(GraphError::SeedOutOfRange {
                seed: s,
                num_vertices: n,
            });
        }
        if !member[s as usize] {
            member[s as usize] = true;
            frontier.push(s);
        }
    }
    for _ in 0..hops {
        let mut next = Vec::new();
        for &v in &frontier {
            for &u in graph.neighbors(v) {
                if !member[u as usize] {
                    member[u as usize] = true;
                    next.push(u);
                }
            }
        }
        if next.is_empty() {
            break;
        }
        frontier = next;
    }
    Ok(member)
}

/// The k-hop neighbourhood of a seed set as a sorted visited-vertex list
/// with `O(log n)` membership queries — the cost scales with the closure,
/// not with the graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparseClosure {
    /// Visited vertices, sorted ascending, deduplicated.
    visited: Vec<VertexId>,
}

impl SparseClosure {
    /// The visited vertices, sorted ascending.
    pub fn visited(&self) -> &[VertexId] {
        &self.visited
    }

    /// Consumes the closure, returning the sorted visited list.
    pub fn into_visited(self) -> Vec<VertexId> {
        self.visited
    }

    /// Whether `v` is in the closure.
    pub fn contains(&self, v: VertexId) -> bool {
        self.visited.binary_search(&v).is_ok()
    }

    /// Number of visited vertices.
    pub fn len(&self) -> usize {
        self.visited.len()
    }

    /// Whether the closure is empty (no seeds).
    pub fn is_empty(&self) -> bool {
        self.visited.is_empty()
    }

    /// Expands to the dense membership mask (for parity checks).
    pub fn to_mask(&self, num_vertices: usize) -> Vec<bool> {
        let mut mask = vec![false; num_vertices];
        for &v in &self.visited {
            mask[v as usize] = true;
        }
        mask
    }
}

/// Sparse variant of [`k_hop_closure`]: expands the k-hop neighbourhood
/// touching only visited vertices and their edges, `O(closure + edges)`
/// rather than `O(|V|)`.
pub fn k_hop_closure_sparse(
    graph: &CsrGraph,
    seeds: &[VertexId],
    hops: usize,
) -> Result<SparseClosure, GraphError> {
    let n = graph.num_vertices();
    let mut seen: HashSet<VertexId> = HashSet::with_capacity(seeds.len() * 2);
    let mut frontier: Vec<VertexId> = Vec::with_capacity(seeds.len());
    for &s in seeds {
        if (s as usize) >= n {
            return Err(GraphError::SeedOutOfRange {
                seed: s,
                num_vertices: n,
            });
        }
        if seen.insert(s) {
            frontier.push(s);
        }
    }
    let mut visited: Vec<VertexId> = frontier.clone();
    for _ in 0..hops {
        let mut next = Vec::new();
        for &v in &frontier {
            for &u in graph.neighbors(v) {
                if seen.insert(u) {
                    next.push(u);
                }
            }
        }
        if next.is_empty() {
            break;
        }
        visited.extend_from_slice(&next);
        frontier = next;
    }
    visited.sort_unstable();
    Ok(SparseClosure { visited })
}

/// Computes the replication factor for a partitioned graph and a K-layer
/// GNN: the total number of (assigned plus replicated) vertices kept by all
/// devices, divided by the vertex count.
///
/// `partition[v]` is the device owning vertex `v`; `num_parts` is the
/// device count.
pub fn replication_factor(
    graph: &CsrGraph,
    partition: &[u32],
    num_parts: usize,
    hops: usize,
) -> Result<f64, GraphError> {
    let n = graph.num_vertices();
    if partition.len() != n {
        return Err(GraphError::PartitionLengthMismatch {
            partition_len: partition.len(),
            num_vertices: n,
        });
    }
    if n == 0 {
        return Ok(0.0);
    }
    let mut seeds: Vec<Vec<VertexId>> = vec![Vec::new(); num_parts];
    for (v, &p) in partition.iter().enumerate() {
        if (p as usize) >= num_parts {
            return Err(GraphError::PartIdOutOfRange { part: p, num_parts });
        }
        seeds[p as usize].push(v as VertexId);
    }
    let mut total_stored = 0usize;
    for part_seeds in &seeds {
        let member = k_hop_closure(graph, part_seeds, hops)?;
        total_stored += member.iter().filter(|&&m| m).count();
    }
    Ok(total_stored as f64 / n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::hub_attachment;
    use crate::GraphBuilder;

    fn path5() -> CsrGraph {
        // 0 - 1 - 2 - 3 - 4 (undirected path).
        let mut b = GraphBuilder::new(5);
        for v in 0..4 {
            b.add_edge(v, v + 1);
        }
        b.build_symmetric()
    }

    #[test]
    fn zero_hops_is_just_seeds() {
        let g = path5();
        let m = k_hop_closure(&g, &[2], 0).unwrap();
        assert_eq!(m, vec![false, false, true, false, false]);
    }

    #[test]
    fn one_hop_adds_neighbors() {
        let g = path5();
        let m = k_hop_closure(&g, &[2], 1).unwrap();
        assert_eq!(m, vec![false, true, true, true, false]);
    }

    #[test]
    fn closure_saturates() {
        let g = path5();
        let m = k_hop_closure(&g, &[2], 10).unwrap();
        assert!(m.iter().all(|&x| x));
    }

    #[test]
    fn bad_seed_is_a_typed_error() {
        let g = path5();
        let err = k_hop_closure(&g, &[2, 9], 1).unwrap_err();
        assert_eq!(
            err,
            GraphError::SeedOutOfRange {
                seed: 9,
                num_vertices: 5
            }
        );
        let err = k_hop_closure_sparse(&g, &[9], 0).unwrap_err();
        assert!(err.to_string().contains("seed 9 out of range"));
    }

    #[test]
    fn sparse_matches_dense_on_path() {
        let g = path5();
        for hops in 0..4 {
            let dense = k_hop_closure(&g, &[0, 3], hops).unwrap();
            let sparse = k_hop_closure_sparse(&g, &[0, 3], hops).unwrap();
            assert_eq!(sparse.to_mask(5), dense, "hops {hops}");
            for v in 0..5u32 {
                assert_eq!(sparse.contains(v), dense[v as usize]);
            }
        }
    }

    #[test]
    fn sparse_matches_dense_on_hub_graph() {
        // A skewed graph where the closure explodes quickly: the sparse
        // and dense expansions must agree vertex-for-vertex.
        let g = hub_attachment(2_000, 20, 0.8, 11);
        let seeds: Vec<VertexId> = (0..g.num_vertices() as u32)
            .filter(|v| v % 97 == 5)
            .collect();
        for hops in 0..3 {
            let dense = k_hop_closure(&g, &seeds, hops).unwrap();
            let sparse = k_hop_closure_sparse(&g, &seeds, hops).unwrap();
            assert_eq!(sparse.to_mask(g.num_vertices()), dense, "hops {hops}");
            assert_eq!(
                sparse.len(),
                dense.iter().filter(|&&m| m).count(),
                "hops {hops}"
            );
        }
    }

    #[test]
    fn sparse_visited_is_sorted_and_deduped() {
        let g = path5();
        let c = k_hop_closure_sparse(&g, &[3, 1, 3, 1], 1).unwrap();
        assert_eq!(c.visited(), &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn replication_factor_one_when_no_cut() {
        let g = path5();
        // All vertices in one part: nothing replicated.
        let f = replication_factor(&g, &[0, 0, 0, 0, 0], 1, 2).unwrap();
        assert!((f - 1.0).abs() < 1e-12);
    }

    #[test]
    fn replication_factor_grows_with_hops() {
        let g = path5();
        let partition = [0, 0, 0, 1, 1];
        let f1 = replication_factor(&g, &partition, 2, 1).unwrap();
        let f2 = replication_factor(&g, &partition, 2, 2).unwrap();
        assert!(f2 >= f1);
        assert!(f1 > 1.0);
    }

    #[test]
    fn replication_factor_exact_on_path() {
        let g = path5();
        let partition = [0, 0, 0, 1, 1];
        // 1-hop: part 0 stores {0,1,2} + {3}; part 1 stores {3,4} + {2}.
        let f = replication_factor(&g, &partition, 2, 1).unwrap();
        assert!((f - 7.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn replication_factor_rejects_bad_partition() {
        let g = path5();
        let err = replication_factor(&g, &[0, 0, 0], 2, 1).unwrap_err();
        assert_eq!(
            err,
            GraphError::PartitionLengthMismatch {
                partition_len: 3,
                num_vertices: 5
            }
        );
        let err = replication_factor(&g, &[0, 0, 0, 5, 0], 2, 1).unwrap_err();
        assert_eq!(
            err,
            GraphError::PartIdOutOfRange {
                part: 5,
                num_parts: 2
            }
        );
    }
}
