//! K-hop neighbourhood expansion.
//!
//! Training a K-layer GNN for a vertex set requires the embeddings of the
//! set's K-hop neighbourhood (§2 of the paper). Replication-based
//! distributed training stores that whole neighbourhood per device, and the
//! *replication factor* — total stored vertices across devices divided by
//! the graph's vertex count — measures its cost (Figure 4).

use crate::{CsrGraph, VertexId};

/// Returns the set of vertices within `hops` of `seeds` (including the
/// seeds themselves), as a boolean membership mask.
///
/// # Panics
///
/// Panics if any seed is out of range.
pub fn k_hop_closure(graph: &CsrGraph, seeds: &[VertexId], hops: usize) -> Vec<bool> {
    let n = graph.num_vertices();
    let mut member = vec![false; n];
    let mut frontier: Vec<VertexId> = Vec::new();
    for &s in seeds {
        assert!((s as usize) < n, "seed {s} out of range for {n} vertices");
        if !member[s as usize] {
            member[s as usize] = true;
            frontier.push(s);
        }
    }
    for _ in 0..hops {
        let mut next = Vec::new();
        for &v in &frontier {
            for &u in graph.neighbors(v) {
                if !member[u as usize] {
                    member[u as usize] = true;
                    next.push(u);
                }
            }
        }
        if next.is_empty() {
            break;
        }
        frontier = next;
    }
    member
}

/// Computes the replication factor for a partitioned graph and a K-layer
/// GNN: the total number of (assigned plus replicated) vertices kept by all
/// devices, divided by the vertex count.
///
/// `partition[v]` is the device owning vertex `v`; `num_parts` is the
/// device count.
///
/// # Panics
///
/// Panics if `partition.len() != graph.num_vertices()` or any part id is
/// `>= num_parts`.
pub fn replication_factor(
    graph: &CsrGraph,
    partition: &[u32],
    num_parts: usize,
    hops: usize,
) -> f64 {
    assert_eq!(
        partition.len(),
        graph.num_vertices(),
        "partition length must match vertex count"
    );
    let n = graph.num_vertices();
    if n == 0 {
        return 0.0;
    }
    let mut seeds: Vec<Vec<VertexId>> = vec![Vec::new(); num_parts];
    for (v, &p) in partition.iter().enumerate() {
        assert!((p as usize) < num_parts, "part id {p} out of range");
        seeds[p as usize].push(v as VertexId);
    }
    let mut total_stored = 0usize;
    for part_seeds in &seeds {
        let member = k_hop_closure(graph, part_seeds, hops);
        total_stored += member.iter().filter(|&&m| m).count();
    }
    total_stored as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn path5() -> CsrGraph {
        // 0 - 1 - 2 - 3 - 4 (undirected path).
        let mut b = GraphBuilder::new(5);
        for v in 0..4 {
            b.add_edge(v, v + 1);
        }
        b.build_symmetric()
    }

    #[test]
    fn zero_hops_is_just_seeds() {
        let g = path5();
        let m = k_hop_closure(&g, &[2], 0);
        assert_eq!(m, vec![false, false, true, false, false]);
    }

    #[test]
    fn one_hop_adds_neighbors() {
        let g = path5();
        let m = k_hop_closure(&g, &[2], 1);
        assert_eq!(m, vec![false, true, true, true, false]);
    }

    #[test]
    fn closure_saturates() {
        let g = path5();
        let m = k_hop_closure(&g, &[2], 10);
        assert!(m.iter().all(|&x| x));
    }

    #[test]
    fn replication_factor_one_when_no_cut() {
        let g = path5();
        // All vertices in one part: nothing replicated.
        let f = replication_factor(&g, &[0, 0, 0, 0, 0], 1, 2);
        assert!((f - 1.0).abs() < 1e-12);
    }

    #[test]
    fn replication_factor_grows_with_hops() {
        let g = path5();
        let partition = [0, 0, 0, 1, 1];
        let f1 = replication_factor(&g, &partition, 2, 1);
        let f2 = replication_factor(&g, &partition, 2, 2);
        assert!(f2 >= f1);
        assert!(f1 > 1.0);
    }

    #[test]
    fn replication_factor_exact_on_path() {
        let g = path5();
        let partition = [0, 0, 0, 1, 1];
        // 1-hop: part 0 stores {0,1,2} + {3}; part 1 stores {3,4} + {2}.
        let f = replication_factor(&g, &partition, 2, 1);
        assert!((f - 7.0 / 5.0).abs() < 1e-12);
    }
}
