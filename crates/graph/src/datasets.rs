//! Calibrated synthetic stand-ins for the paper's evaluation datasets.
//!
//! Table 4 of the paper lists four graphs. The real datasets are not
//! shipped with this reproduction; instead each is generated with a model
//! whose output matches the published statistics. The shape of every
//! experiment depends on size, density and skew — all preserved here:
//!
//! | Dataset    | Vertices | Edges | Avg. deg | Feature | Hidden | Generator |
//! |------------|----------|-------|----------|---------|--------|-----------|
//! | Reddit     | 0.23M    | 110M  | 478      | 602     | 256    | community R-MAT (dense, diagonal skew) |
//! | Com-Orkut  | 3.07M    | 117M  | 38.1     | 128     | 128    | community R-MAT (diagonal skew) |
//! | Web-Google | 0.87M    | 5.1M  | 5.86     | 256     | 256    | community R-MAT (strong locality) |
//! | Wiki-Talk  | 2.39M    | 5.0M  | 2.09     | 256     | 256    | hub attachment (extreme hubs) |
//!
//! Experiments run on scaled-down instances by default (`scale < 1.0`)
//! because the planner and simulator behave identically at reduced size;
//! `scale = 1.0` reproduces paper-scale statistics.

use crate::generators::{community_rmat, hub_attachment, RmatConfig};
use crate::CsrGraph;

/// The four evaluation graphs of the paper (Table 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Post-to-post graph; small and very dense.
    Reddit,
    /// Social network; large and dense.
    ComOrkut,
    /// Web graph; small and sparse.
    WebGoogle,
    /// Communication graph; large, sparse, extremely skewed.
    WikiTalk,
}

/// Published statistics and model configuration for a dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetStats {
    /// Vertex count at full scale.
    pub vertices: usize,
    /// Directed edge count at full scale.
    pub edges: usize,
    /// Average degree reported in the paper.
    pub avg_degree: f64,
    /// Input feature dimension (0-th layer embedding width).
    pub feature_size: usize,
    /// Hidden embedding dimension.
    pub hidden_size: usize,
}

impl Dataset {
    /// All four datasets in the paper's column order.
    pub fn all() -> [Dataset; 4] {
        [
            Dataset::Reddit,
            Dataset::ComOrkut,
            Dataset::WebGoogle,
            Dataset::WikiTalk,
        ]
    }

    /// Human-readable name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::Reddit => "Reddit",
            Dataset::ComOrkut => "Com-Orkut",
            Dataset::WebGoogle => "Web-Google",
            Dataset::WikiTalk => "Wiki-Talk",
        }
    }

    /// Full-scale statistics from Table 4.
    pub fn stats(self) -> DatasetStats {
        match self {
            Dataset::Reddit => DatasetStats {
                vertices: 230_000,
                edges: 110_000_000,
                avg_degree: 478.0,
                feature_size: 602,
                hidden_size: 256,
            },
            Dataset::ComOrkut => DatasetStats {
                vertices: 3_070_000,
                edges: 117_000_000,
                avg_degree: 38.1,
                feature_size: 128,
                hidden_size: 128,
            },
            Dataset::WebGoogle => DatasetStats {
                vertices: 870_000,
                edges: 5_100_000,
                avg_degree: 5.86,
                feature_size: 256,
                hidden_size: 256,
            },
            Dataset::WikiTalk => DatasetStats {
                vertices: 2_390_000,
                edges: 5_000_000,
                avg_degree: 2.09,
                feature_size: 256,
                hidden_size: 256,
            },
        }
    }

    /// Whether the paper classifies the graph as dense.
    pub fn is_dense(self) -> bool {
        matches!(self, Dataset::Reddit | Dataset::ComOrkut)
    }

    /// Generates the synthetic stand-in at `scale` (fraction of full size).
    ///
    /// The vertex count scales linearly; the edge count scales so that the
    /// average degree stays at the published value. The result is symmetric
    /// (undirected storage) as required by GNN aggregation.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not in `(0, 1]`.
    pub fn generate(self, scale: f64, seed: u64) -> CsrGraph {
        assert!(
            scale > 0.0 && scale <= 1.0,
            "scale must be in (0, 1], got {scale}"
        );
        let stats = self.stats();
        let n = ((stats.vertices as f64 * scale) as usize).max(64);
        // `edges` in Table 4 counts directed edges; generators take the
        // number of undirected samples, and symmetric storage doubles them.
        let undirected = ((stats.avg_degree * n as f64) / 2.0) as usize;
        match self {
            // Social graphs: skewed degrees plus planted communities so
            // that partitioners find the cuts METIS finds on the real
            // data.
            // The block count adapts to the instance size so a block
            // always has room for the target intra-community density (a
            // fixed 128 blocks would saturate and dedup away Reddit's
            // 478 average degree at small scales).
            Dataset::Reddit | Dataset::ComOrkut => community_rmat(
                n,
                undirected.max(n),
                (n / 600).clamp(8, 128),
                0.9,
                0.3,
                RmatConfig::diagonal(),
                seed,
            ),
            // Web graph: power-law degrees but strong link locality —
            // real web graphs cut cheaply, unlike expander-like BA.
            Dataset::WebGoogle => community_rmat(
                n,
                undirected.max(n),
                (n / 200).clamp(8, 128),
                0.85,
                0.15,
                RmatConfig::diagonal(),
                seed,
            ),
            // Communication graph: extreme hubs make the 2-hop closure
            // cover most of the graph (replication OOMs on it, Fig. 7).
            Dataset::WikiTalk => hub_attachment(n, (n / 200).max(4), 0.8, seed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_match_table4() {
        assert_eq!(Dataset::Reddit.stats().feature_size, 602);
        assert_eq!(Dataset::ComOrkut.stats().hidden_size, 128);
        assert_eq!(Dataset::WebGoogle.stats().vertices, 870_000);
        assert_eq!(Dataset::WikiTalk.stats().edges, 5_000_000);
    }

    #[test]
    fn generated_graphs_have_expected_density_order() {
        // Density needs enough room per community block; use the scale
        // the bench harness uses for Reddit.
        let reddit = Dataset::Reddit.generate(0.02, 1);
        let google = Dataset::WebGoogle.generate(0.02, 1);
        let wiki = Dataset::WikiTalk.generate(0.02, 1);
        assert!(
            reddit.avg_degree() > 10.0 * google.avg_degree(),
            "reddit {} vs google {}",
            reddit.avg_degree(),
            google.avg_degree()
        );
        assert!(google.avg_degree() > wiki.avg_degree());
    }

    #[test]
    fn wiki_talk_is_sparse_and_skewed() {
        let g = Dataset::WikiTalk.generate(0.002, 2);
        assert!(g.avg_degree() < 4.0);
        let n = g.num_vertices();
        let max_deg = (0..n as u32).map(|v| g.out_degree(v)).max().unwrap_or(0);
        assert!(max_deg as f64 > 10.0 * g.avg_degree());
    }

    #[test]
    fn scale_controls_size() {
        let small = Dataset::WebGoogle.generate(0.001, 3);
        let large = Dataset::WebGoogle.generate(0.002, 3);
        assert!(large.num_vertices() > small.num_vertices());
    }

    #[test]
    #[should_panic(expected = "scale must be in")]
    fn rejects_zero_scale() {
        let _ = Dataset::Reddit.generate(0.0, 0);
    }

    #[test]
    fn names_match_paper() {
        let names: Vec<_> = Dataset::all().iter().map(|d| d.name()).collect();
        assert_eq!(
            names,
            vec!["Reddit", "Com-Orkut", "Web-Google", "Wiki-Talk"]
        );
    }
}
