//! Synthetic graph generators.
//!
//! The paper evaluates on four real graphs (Reddit, Com-Orkut, Web-Google,
//! Wiki-Talk). Those datasets are not redistributable here, so the
//! reproduction substitutes generators whose output matches each graph's
//! published statistics: vertex count, edge count, average degree and degree
//! skew. See `datasets` for the calibrated configurations.

mod ba;
mod community;
mod er;
mod hub;
mod rmat;

pub use ba::barabasi_albert;
pub use community::community_rmat;
pub use er::erdos_renyi;
pub use hub::hub_attachment;
pub use rmat::{rmat, RmatConfig};
