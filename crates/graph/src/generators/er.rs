//! Erdős–Rényi G(n, m) generator.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{CsrGraph, GraphBuilder, VertexId};

/// Generates a symmetric Erdős–Rényi graph with `num_vertices` vertices and
/// approximately `num_edges` undirected edges sampled uniformly.
///
/// # Panics
///
/// Panics if `num_vertices < 2`.
pub fn erdos_renyi(num_vertices: usize, num_edges: usize, seed: u64) -> CsrGraph {
    assert!(num_vertices >= 2, "need at least two vertices");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::with_capacity(num_vertices, num_edges);
    for _ in 0..num_edges {
        let s = rng.gen_range(0..num_vertices) as VertexId;
        let d = rng.gen_range(0..num_vertices) as VertexId;
        if s != d {
            builder.add_edge(s, d);
        }
    }
    builder.build_symmetric()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degree_distribution_is_flat() {
        let g = erdos_renyi(2000, 20000, 17);
        let max_deg = (0..2000).map(|v| g.out_degree(v)).max().unwrap_or(0);
        let avg = g.avg_degree();
        // A uniform graph has no heavy hubs.
        assert!(
            (max_deg as f64) < 3.0 * avg,
            "unexpected hub: max {max_deg}, avg {avg}"
        );
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        assert_eq!(erdos_renyi(100, 400, 2), erdos_renyi(100, 400, 2));
    }

    #[test]
    fn symmetric_output() {
        assert!(erdos_renyi(50, 200, 4).is_symmetric());
    }
}
