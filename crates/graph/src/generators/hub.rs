//! Hub-attachment generator for communication-style graphs (Wiki-Talk).
//!
//! Wiki-Talk's defining property is a small set of extremely popular talk
//! pages that a large share of users have touched: the average degree is
//! only ~2, yet the 2-hop neighbourhood of any sizeable vertex sample
//! covers most of the graph (which is why replication OOMs on it in the
//! paper's Figure 7). A plain preferential-attachment tree has the right
//! average degree but far too shallow hubs; this generator attaches most
//! vertices directly to a Zipf-weighted hub set instead.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{CsrGraph, GraphBuilder, VertexId};

/// Generates a symmetric hub-attachment graph.
///
/// Vertices `0..num_hubs` are hubs. Every other vertex draws one edge:
/// with probability `hub_prob` to a hub chosen with Zipf weights (rank
/// `r` has weight `1 / r`), otherwise to a uniformly random earlier
/// vertex (keeping the graph connected). The expected average degree is
/// 2 (each vertex contributes one undirected edge), matching Wiki-Talk's
/// 2.09.
///
/// # Panics
///
/// Panics if `num_hubs == 0`, `num_hubs >= num_vertices` or `hub_prob`
/// is outside `[0, 1]`.
pub fn hub_attachment(num_vertices: usize, num_hubs: usize, hub_prob: f64, seed: u64) -> CsrGraph {
    assert!(num_hubs > 0, "need at least one hub");
    assert!(num_hubs < num_vertices, "hubs must be a strict subset");
    assert!((0.0..=1.0).contains(&hub_prob), "hub_prob must be in [0,1]");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::with_capacity(num_vertices, num_vertices);
    // Cumulative Zipf weights over hub ranks.
    let mut cumulative = Vec::with_capacity(num_hubs);
    let mut total = 0.0f64;
    for r in 1..=num_hubs {
        total += 1.0 / r as f64;
        cumulative.push(total);
    }
    // Chain the hubs so they form one component even without attachments.
    for h in 1..num_hubs {
        builder.add_edge(h as VertexId, (h - 1) as VertexId);
    }
    for v in num_hubs..num_vertices {
        let target = if rng.gen_bool(hub_prob) {
            let x = rng.gen_range(0.0..total);
            let idx = cumulative.partition_point(|&c| c < x);
            idx.min(num_hubs - 1) as VertexId
        } else {
            rng.gen_range(0..v) as VertexId
        };
        builder.add_edge(v as VertexId, target);
    }
    builder.build_symmetric()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::khop::k_hop_closure;

    #[test]
    fn average_degree_is_about_two() {
        let g = hub_attachment(10_000, 50, 0.8, 3);
        let avg = g.avg_degree();
        assert!((avg - 2.0).abs() < 0.1, "avg degree {avg}");
    }

    #[test]
    fn top_hub_is_extreme() {
        let g = hub_attachment(10_000, 50, 0.8, 5);
        let top = (0..50).map(|h| g.out_degree(h)).max().unwrap_or(0);
        assert!(top > 500, "top hub degree {top}");
    }

    #[test]
    fn two_hop_closure_covers_most_of_the_graph() {
        // The property that makes replication OOM on Wiki-Talk: from any
        // modest vertex sample, two hops reach the hub set and through it
        // most of the graph.
        let n = 10_000;
        let g = hub_attachment(n, 50, 0.8, 7);
        let sample: Vec<u32> = (0..n as u32).filter(|v| v % 8 == 3).collect();
        let closure = k_hop_closure(&g, &sample, 2).unwrap();
        let covered = closure.iter().filter(|&&m| m).count();
        assert!(
            covered as f64 > 0.6 * n as f64,
            "2-hop closure covers only {covered}/{n}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(
            hub_attachment(1000, 20, 0.7, 9),
            hub_attachment(1000, 20, 0.7, 9)
        );
    }

    #[test]
    #[should_panic(expected = "strict subset")]
    fn rejects_all_hub_graph() {
        let _ = hub_attachment(10, 10, 0.5, 0);
    }
}
