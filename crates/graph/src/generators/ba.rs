//! Barabási–Albert preferential-attachment generator.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{CsrGraph, GraphBuilder, VertexId};

/// Generates a symmetric Barabási–Albert graph.
///
/// Each new vertex attaches to `edges_per_vertex` existing vertices with
/// probability proportional to their degree, which yields the power-law
/// degree distribution typical of web and communication graphs
/// (Web-Google, Wiki-Talk in the paper).
///
/// # Panics
///
/// Panics if `num_vertices < 2` or `edges_per_vertex == 0`.
pub fn barabasi_albert(num_vertices: usize, edges_per_vertex: usize, seed: u64) -> CsrGraph {
    assert!(num_vertices >= 2, "need at least two vertices");
    assert!(edges_per_vertex >= 1, "need at least one edge per vertex");
    let m = edges_per_vertex;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::with_capacity(num_vertices, num_vertices * m);
    // `endpoints` holds one entry per edge endpoint; sampling uniformly from
    // it implements preferential attachment.
    let mut endpoints: Vec<VertexId> = Vec::with_capacity(2 * num_vertices * m);
    let seed_size = (m + 1).min(num_vertices);
    for v in 1..seed_size {
        builder.add_edge(v as VertexId, (v - 1) as VertexId);
        endpoints.push(v as VertexId);
        endpoints.push((v - 1) as VertexId);
    }
    for v in seed_size..num_vertices {
        let v = v as VertexId;
        let mut chosen = Vec::with_capacity(m);
        let mut guard = 0;
        while chosen.len() < m && guard < 32 * m {
            guard += 1;
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if t != v && !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for &t in &chosen {
            builder.add_edge(v, t);
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    builder.build_symmetric()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn average_degree_close_to_2m() {
        let g = barabasi_albert(5000, 3, 11);
        let avg = g.avg_degree();
        assert!(
            (avg - 6.0).abs() < 0.5,
            "expected avg degree near 6, got {avg}"
        );
    }

    #[test]
    fn graph_is_connected_enough() {
        // Every vertex past the seed attaches to existing vertices, so no
        // isolated vertices should exist.
        let g = barabasi_albert(1000, 2, 5);
        assert!((0..1000).all(|v| g.out_degree(v) > 0));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        assert_eq!(barabasi_albert(400, 2, 9), barabasi_albert(400, 2, 9));
    }

    #[test]
    fn hub_emerges() {
        let g = barabasi_albert(3000, 2, 21);
        let max_deg = (0..3000).map(|v| g.out_degree(v)).max().unwrap_or(0);
        assert!(max_deg > 30, "expected a hub, max degree {max_deg}");
    }
}
