//! Community-structured R-MAT: a planted-partition overlay.
//!
//! Pure R-MAT has essentially no cuttable structure — a balanced k-way
//! cut removes close to the random-partition share of edges, which makes
//! every communication baseline look uniformly bad. Real social graphs
//! (Reddit, Com-Orkut) have communities that METIS exploits: the paper's
//! per-GPU communication volume *drops* as the GPU count grows. This
//! generator mixes R-MAT with intra-block edges so partitioners find real
//! cuts while the degree distribution stays skewed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::generators::rmat::RmatConfig;
use crate::{CsrGraph, GraphBuilder, VertexId};

/// Generates a symmetric graph mixing intra-community edges with global
/// R-MAT edges.
///
/// `community_fraction` of the roughly `num_edges` undirected samples are
/// drawn uniformly inside one of `num_blocks` contiguous equal blocks;
/// the rest follow the R-MAT quadrant model — but only over the
/// `global_share` fraction of vertices (spread evenly across blocks).
/// Restricting global participation mirrors real social/web graphs,
/// where low-degree vertices keep all their links local and only a hub
/// minority spans communities; it is what keeps the cross-partition
/// *vertex* demand (and hence the communication relation) well below the
/// vertex count.
///
/// # Panics
///
/// Panics if `num_blocks == 0`, a fraction is outside its range, or the
/// R-MAT parameters are invalid.
pub fn community_rmat(
    num_vertices: usize,
    num_edges: usize,
    num_blocks: usize,
    community_fraction: f64,
    global_share: f64,
    config: RmatConfig,
    seed: u64,
) -> CsrGraph {
    assert!(num_blocks > 0, "need at least one block");
    assert!(
        (0.0..=1.0).contains(&community_fraction),
        "community_fraction must be in [0,1]"
    );
    assert!(
        global_share > 0.0 && global_share <= 1.0,
        "global_share must be in (0,1]"
    );
    let global_edges = ((1.0 - community_fraction) * num_edges as f64) as usize;
    let local_edges = num_edges - global_edges;
    // Global edges live on a strided subset of vertex ids so hubs spread
    // across all blocks.
    let stride = (1.0 / global_share).round().max(1.0) as usize;
    let num_active = num_vertices.div_ceil(stride);
    let global = crate::generators::rmat(num_active.max(2), global_edges.max(1), config, seed);
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(0x9e3779b97f4a7c15));
    let mut builder = GraphBuilder::with_capacity(num_vertices, num_edges);
    for (s, d) in global.edges() {
        let (s, d) = (s as usize * stride, d as usize * stride);
        if s < d && d < num_vertices {
            builder.add_edge(s as VertexId, d as VertexId);
        }
    }
    let block_size = num_vertices.div_ceil(num_blocks);
    for _ in 0..local_edges {
        let block = rng.gen_range(0..num_blocks);
        let lo = (block * block_size).min(num_vertices);
        let hi = ((block + 1) * block_size).min(num_vertices);
        if hi.saturating_sub(lo) < 2 {
            continue;
        }
        let a = rng.gen_range(lo..hi) as VertexId;
        let b = rng.gen_range(lo..hi) as VertexId;
        if a != b {
            builder.add_edge(a, b);
        }
    }
    builder.build_symmetric()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_cuttable_structure() {
        use crate::generators::rmat;
        let n = 4000;
        let e = 40_000;
        let mixed = community_rmat(n, e, 16, 0.7, 0.3, RmatConfig::social(), 3);
        let pure = rmat(n, e, RmatConfig::social(), 3);
        // Block partitioning (aligned with the planted blocks) cuts far
        // fewer edges of the mixed graph than of the pure one,
        // proportionally.
        let cut_share = |g: &CsrGraph| {
            let k = 4;
            let bs = n / k;
            g.edges()
                .filter(|&(s, d)| (s as usize / bs).min(k - 1) != (d as usize / bs).min(k - 1))
                .count() as f64
                / g.num_edges() as f64
        };
        assert!(
            cut_share(&mixed) < 0.6 * cut_share(&pure),
            "mixed {} vs pure {}",
            cut_share(&mixed),
            cut_share(&pure)
        );
    }

    #[test]
    fn edge_count_roughly_matches() {
        let g = community_rmat(2000, 20_000, 8, 0.5, 1.0, RmatConfig::social(), 1);
        assert!(g.num_edges() > 20_000, "edges {}", g.num_edges());
        assert!(g.num_edges() < 42_000, "edges {}", g.num_edges());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = community_rmat(500, 2000, 4, 0.5, 0.5, RmatConfig::social(), 7);
        let b = community_rmat(500, 2000, 4, 0.5, 0.5, RmatConfig::social(), 7);
        assert_eq!(a, b);
    }

    #[test]
    fn degree_skew_is_preserved() {
        let g = community_rmat(4000, 40_000, 16, 0.6, 0.25, RmatConfig::social(), 9);
        let max_deg = (0..4000).map(|v| g.out_degree(v)).max().unwrap_or(0);
        assert!(
            max_deg as f64 > 3.0 * g.avg_degree(),
            "max {} vs avg {}",
            max_deg,
            g.avg_degree()
        );
    }
}
