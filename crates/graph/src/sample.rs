//! Deterministic k-hop neighbor sampling for mini-batch training.
//!
//! DistDGL-style sampled training (PAPERS.md) replaces the full K-hop
//! closure with per-layer *fanout*-bounded neighborhoods: a batch of seed
//! vertices expands layer by layer into a chain of compact bipartite
//! [`LayerBlock`]s (message-flow graphs), each mapping a sorted global
//! destination set onto the sorted global source set feeding it.
//!
//! Everything here is **deterministic and replicable**: neighbor choices
//! are keyed per `(seed, layer, vertex)` by a splitmix64 stream, never by
//! global RNG state, so any rank — or any thread — can reconstruct any
//! other rank's sample without communication. That property is what lets
//! the distributed trainer compute halo-exchange row lists on both sides
//! of every link independently.
//!
//! A fanout of `None` means ∞: the block contains the full neighborhood
//! and the chain degenerates to the exact k-hop closure of the batch.

use crate::khop::GraphError;
use crate::{CsrGraph, VertexId};

const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// splitmix64 finalizer: a cheap, high-quality 64-bit mixer.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(GOLDEN);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A tiny deterministic RNG stream (splitmix64), keyed so that every
/// `(seed, layer, vertex)` triple gets an independent stream.
struct SampleRng {
    state: u64,
}

impl SampleRng {
    fn for_vertex(seed: u64, layer: usize, v: VertexId) -> Self {
        Self {
            state: mix(seed ^ mix(((layer as u64 + 1) << 32) ^ u64::from(v))),
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN);
        mix(self.state)
    }

    /// A value in `0..bound` (`bound` > 0). The modulo bias is
    /// irrelevant here — only determinism matters.
    fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }
}

/// The per-batch round seed: decorrelates batches and epochs while
/// staying a pure function of `(seed, epoch, batch)`.
pub fn round_seed(seed: u64, epoch: usize, batch: usize) -> u64 {
    mix(seed ^ mix((epoch as u64) << 32 ^ batch as u64))
}

/// One bipartite sampled block: the adjacency from a sorted global
/// destination set to the sorted global source set feeding it.
///
/// Aggregating for `dst[i]` reads source rows `targets[offsets[i]..
/// offsets[i+1]]` (positions into `src`); the vertex's own input row sits
/// at `src[dst_pos[i]]`. `src` always contains every `dst` vertex, so a
/// layer's self-path input is available without a second fetch.
///
/// This is deliberately *not* a [`CsrGraph`]: the block is rectangular
/// (`targets` index `src` rows, of which there are more than `dst` rows),
/// which the square CSR invariants reject.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LayerBlock {
    /// Destination (output) vertices, global ids, sorted ascending.
    pub dst: Vec<VertexId>,
    /// Source (input) vertices, global ids, sorted ascending; a superset
    /// of `dst`.
    pub src: Vec<VertexId>,
    /// `dst_pos[i]` is the position of `dst[i]` within `src`.
    pub dst_pos: Vec<u32>,
    /// Row offsets into `targets`; `len == dst.len() + 1`.
    pub offsets: Vec<usize>,
    /// Sampled in-neighbors as positions into `src`, per row in the
    /// source graph's adjacency order.
    pub targets: Vec<u32>,
}

impl LayerBlock {
    /// Number of destination (output) rows.
    pub fn num_dst(&self) -> usize {
        self.dst.len()
    }

    /// Number of source (input) rows.
    pub fn num_src(&self) -> usize {
        self.src.len()
    }

    /// The sampled neighbors of destination row `i`, as positions into
    /// `src`.
    pub fn row(&self, i: usize) -> &[u32] {
        &self.targets[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Total sampled edges in the block.
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }
}

/// Chooses the sampled neighbor *positions* (indices into `v`'s
/// adjacency list) for one vertex into `idx`: all of them when `fanout`
/// is `None` or the degree fits, otherwise a partial Fisher–Yates draw
/// of `f` distinct positions, emitted in ascending position order so the
/// surviving neighbors keep the adjacency list's order.
fn chosen_positions(deg: usize, fanout: Option<usize>, rng: &mut SampleRng, idx: &mut Vec<usize>) {
    idx.clear();
    idx.extend(0..deg);
    if let Some(f) = fanout {
        if deg > f {
            for i in 0..f {
                let j = i + rng.below(deg - i);
                idx.swap(i, j);
            }
            idx.truncate(f);
            idx.sort_unstable();
        }
    }
}

/// [`build_block`] into a recycled carcass: fills `block` in place
/// (every `Vec` is `clear()`ed, keeping its capacity) using `flat` /
/// `idx` as scratch. Identical output to a fresh build.
#[allow(clippy::too_many_arguments)]
fn build_block_into(
    graph: &CsrGraph,
    dst: &[VertexId],
    fanout: Option<usize>,
    seed: u64,
    layer: usize,
    block: &mut LayerBlock,
    flat: &mut Vec<VertexId>,
    idx: &mut Vec<usize>,
) -> Result<(), GraphError> {
    let n = graph.num_vertices();
    debug_assert!(dst.windows(2).all(|w| w[0] < w[1]), "dst sorted + deduped");
    block.offsets.clear();
    block.offsets.push(0usize);
    // Chosen neighbors by global id, flat, rows delimited by `offsets`.
    flat.clear();
    for &v in dst {
        if (v as usize) >= n {
            return Err(GraphError::SeedOutOfRange {
                seed: v,
                num_vertices: n,
            });
        }
        let neigh = graph.neighbors(v);
        let mut rng = SampleRng::for_vertex(seed, layer, v);
        chosen_positions(neigh.len(), fanout, &mut rng, idx);
        for &p in idx.iter() {
            flat.push(neigh[p]);
        }
        block.offsets.push(flat.len());
    }
    block.dst.clear();
    block.dst.extend_from_slice(dst);
    block.src.clear();
    block.src.extend_from_slice(dst);
    block.src.extend_from_slice(flat);
    block.src.sort_unstable();
    block.src.dedup();
    let LayerBlock {
        src,
        dst_pos,
        targets,
        ..
    } = block;
    let pos = |v: VertexId| src.binary_search(&v).expect("member of src") as u32;
    dst_pos.clear();
    dst_pos.extend(dst.iter().map(|&v| pos(v)));
    targets.clear();
    targets.extend(flat.iter().map(|&v| pos(v)));
    Ok(())
}

/// Builds the sampled block for one layer: `dst` (sorted, deduplicated
/// global ids) expands to its sampled in-neighborhood under `fanout`.
/// `seed` and `layer` key the per-vertex draws.
///
/// # Errors
///
/// [`GraphError::SeedOutOfRange`] if any `dst` vertex is out of range.
pub fn build_block(
    graph: &CsrGraph,
    dst: &[VertexId],
    fanout: Option<usize>,
    seed: u64,
    layer: usize,
) -> Result<LayerBlock, GraphError> {
    let mut block = LayerBlock::default();
    build_block_into(
        graph,
        dst,
        fanout,
        seed,
        layer,
        &mut block,
        &mut Vec::new(),
        &mut Vec::new(),
    )?;
    Ok(block)
}

/// The sorted global source set [`build_block`] would produce for the
/// same inputs, without materialising the adjacency — for cost models
/// and peer-need replication.
///
/// # Errors
///
/// [`GraphError::SeedOutOfRange`] if any `dst` vertex is out of range.
pub fn sampled_src(
    graph: &CsrGraph,
    dst: &[VertexId],
    fanout: Option<usize>,
    seed: u64,
    layer: usize,
) -> Result<Vec<VertexId>, GraphError> {
    Ok(build_block(graph, dst, fanout, seed, layer)?.src)
}

/// Samples the full block chain for one batch: `fanouts.len()` layers,
/// returned in forward order (`blocks[0]` touches the raw features). The
/// chain invariant is `blocks[l].dst == blocks[l + 1].src`, and
/// `blocks.last().dst` is the sorted, deduplicated batch.
///
/// # Errors
///
/// [`GraphError::SeedOutOfRange`] if any seed is out of range.
pub fn sample_blocks(
    graph: &CsrGraph,
    seeds: &[VertexId],
    fanouts: &[Option<usize>],
    seed: u64,
) -> Result<Vec<LayerBlock>, GraphError> {
    let n = graph.num_vertices();
    let mut dst: Vec<VertexId> = seeds.to_vec();
    dst.sort_unstable();
    dst.dedup();
    if let Some(&bad) = dst.iter().find(|&&v| (v as usize) >= n) {
        return Err(GraphError::SeedOutOfRange {
            seed: bad,
            num_vertices: n,
        });
    }
    let mut rev: Vec<LayerBlock> = Vec::with_capacity(fanouts.len());
    for layer in (0..fanouts.len()).rev() {
        let block = build_block(graph, &dst, fanouts[layer], seed, layer)?;
        dst = block.src.clone();
        rev.push(block);
    }
    rev.reverse();
    Ok(rev)
}

/// Recycles per-batch sampling allocations across batches: finished
/// chains return their block carcasses (every `Vec` keeps its capacity)
/// and the pool's internal scratch is reused, so a warm pool samples a
/// steady-state batch with **zero** heap allocations — pinned by the
/// counting-allocator regression test in `dgcl-core`.
#[derive(Debug, Default)]
pub struct BlockPool {
    /// Spare block carcasses, fields cleared but capacity retained.
    spares: Vec<LayerBlock>,
    /// Spare chain containers.
    chains: Vec<Vec<LayerBlock>>,
    dst: Vec<VertexId>,
    flat: Vec<VertexId>,
    idx: Vec<usize>,
}

impl BlockPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a finished chain — blocks and container alike — to the
    /// pool for the next batch.
    pub fn recycle(&mut self, mut chain: Vec<LayerBlock>) {
        self.spares.append(&mut chain);
        self.chains.push(chain);
    }

    /// [`sample_blocks`] drawing every allocation from the pool:
    /// identical output, but a warm pool (after [`BlockPool::recycle`])
    /// allocates nothing.
    ///
    /// # Errors
    ///
    /// [`GraphError::SeedOutOfRange`] if any seed is out of range.
    pub fn sample_blocks(
        &mut self,
        graph: &CsrGraph,
        seeds: &[VertexId],
        fanouts: &[Option<usize>],
        seed: u64,
    ) -> Result<Vec<LayerBlock>, GraphError> {
        let n = graph.num_vertices();
        self.dst.clear();
        self.dst.extend_from_slice(seeds);
        self.dst.sort_unstable();
        self.dst.dedup();
        if let Some(&bad) = self.dst.iter().find(|&&v| (v as usize) >= n) {
            return Err(GraphError::SeedOutOfRange {
                seed: bad,
                num_vertices: n,
            });
        }
        let mut chain = self.chains.pop().unwrap_or_default();
        debug_assert!(chain.is_empty(), "recycled chains come back empty");
        for layer in (0..fanouts.len()).rev() {
            let mut block = self.spares.pop().unwrap_or_default();
            if let Err(e) = build_block_into(
                graph,
                &self.dst,
                fanouts[layer],
                seed,
                layer,
                &mut block,
                &mut self.flat,
                &mut self.idx,
            ) {
                chain.push(block);
                self.recycle(chain);
                return Err(e);
            }
            self.dst.clear();
            self.dst.extend_from_slice(&block.src);
            chain.push(block);
        }
        chain.reverse();
        Ok(chain)
    }
}

/// Splits `seeds` into deterministic mini-batches for one epoch: a
/// Fisher–Yates shuffle keyed by `(seed, epoch)`, chunked into
/// `batch_size` pieces (the last may be short). `batch_size == 0` is
/// treated as one batch of everything.
pub fn seed_batches(
    seeds: &[VertexId],
    batch_size: usize,
    seed: u64,
    epoch: usize,
) -> Vec<Vec<VertexId>> {
    let mut order: Vec<VertexId> = seeds.to_vec();
    let mut rng = SampleRng {
        state: mix(seed ^ mix(0xBA7C_0000 ^ epoch as u64)),
    };
    for i in (1..order.len()).rev() {
        let j = rng.below(i + 1);
        order.swap(i, j);
    }
    let size = if batch_size == 0 {
        order.len().max(1)
    } else {
        batch_size
    };
    order.chunks(size).map(<[VertexId]>::to_vec).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::hub_attachment;
    use crate::khop::k_hop_closure_sparse;

    fn graph() -> CsrGraph {
        hub_attachment(500, 10, 0.8, 3)
    }

    #[test]
    fn infinite_fanout_is_the_exact_closure() {
        let g = graph();
        let seeds = [3, 77, 410];
        let blocks = sample_blocks(&g, &seeds, &[None, None], 9).unwrap();
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[1].dst, vec![3, 77, 410]);
        // Block src sets walk the exact 1- and 2-hop closures.
        let hop1 = k_hop_closure_sparse(&g, &seeds, 1).unwrap();
        let hop2 = k_hop_closure_sparse(&g, &seeds, 2).unwrap();
        assert_eq!(blocks[1].src, hop1.visited());
        assert_eq!(blocks[0].src, hop2.visited());
        // Every row carries the full neighborhood, in adjacency order.
        for (i, &v) in blocks[1].dst.iter().enumerate() {
            let row: Vec<VertexId> = blocks[1]
                .row(i)
                .iter()
                .map(|&t| blocks[1].src[t as usize])
                .collect();
            assert_eq!(row, g.neighbors(v), "vertex {v}");
        }
    }

    #[test]
    fn chain_invariant_holds() {
        let g = graph();
        let blocks = sample_blocks(&g, &[5, 9, 200], &[Some(3), Some(2), None], 4).unwrap();
        for l in 0..blocks.len() - 1 {
            assert_eq!(blocks[l].dst, blocks[l + 1].src, "layer {l}");
        }
        for b in &blocks {
            for (i, &v) in b.dst.iter().enumerate() {
                assert_eq!(b.src[b.dst_pos[i] as usize], v);
            }
        }
    }

    #[test]
    fn fanout_bounds_row_length() {
        let g = graph();
        let b = build_block(&g, &[0, 1, 2, 3], Some(2), 7, 0).unwrap();
        for i in 0..b.num_dst() {
            let deg = g.out_degree(b.dst[i]);
            assert!(b.row(i).len() <= 2);
            assert_eq!(b.row(i).len(), deg.min(2), "vertex {}", b.dst[i]);
        }
    }

    #[test]
    fn sampling_is_deterministic_across_threads() {
        let g = std::sync::Arc::new(graph());
        let seeds: Vec<VertexId> = (0..50).map(|i| i * 7 % 500).collect();
        let reference = sample_blocks(&g, &seeds, &[Some(4), Some(3)], 123).unwrap();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let g = g.clone();
                let seeds = seeds.clone();
                std::thread::spawn(move || sample_blocks(&g, &seeds, &[Some(4), Some(3)], 123))
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap().unwrap(), reference);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let g = graph();
        let a = sample_blocks(&g, &[0, 1, 2, 3, 4], &[Some(2)], 1).unwrap();
        let b = sample_blocks(&g, &[0, 1, 2, 3, 4], &[Some(2)], 2).unwrap();
        assert_ne!(a, b, "distinct seeds should draw distinct samples");
    }

    #[test]
    fn sampled_src_matches_block() {
        let g = graph();
        let b = build_block(&g, &[10, 20, 30], Some(3), 55, 1).unwrap();
        assert_eq!(
            sampled_src(&g, &[10, 20, 30], Some(3), 55, 1).unwrap(),
            b.src
        );
    }

    #[test]
    fn pooled_sampling_matches_plain() {
        let g = graph();
        let seeds: Vec<VertexId> = (0..40).map(|i| i * 11 % 500).collect();
        let mut pool = BlockPool::new();
        for round in 0u64..3 {
            let plain = sample_blocks(&g, &seeds, &[Some(4), Some(3)], 100 + round).unwrap();
            let pooled = pool
                .sample_blocks(&g, &seeds, &[Some(4), Some(3)], 100 + round)
                .unwrap();
            assert_eq!(pooled, plain, "round {round}");
            pool.recycle(pooled);
        }
    }

    #[test]
    fn pooled_bad_seed_is_typed() {
        let g = graph();
        let mut pool = BlockPool::new();
        let err = pool
            .sample_blocks(&g, &[1, 5000], &[Some(2)], 0)
            .unwrap_err();
        assert_eq!(
            err,
            GraphError::SeedOutOfRange {
                seed: 5000,
                num_vertices: 500
            }
        );
    }

    #[test]
    fn bad_seed_is_typed() {
        let g = graph();
        let err = sample_blocks(&g, &[1, 5000], &[Some(2)], 0).unwrap_err();
        assert_eq!(
            err,
            GraphError::SeedOutOfRange {
                seed: 5000,
                num_vertices: 500
            }
        );
    }

    #[test]
    fn batches_partition_the_seed_set() {
        let seeds: Vec<VertexId> = (0..103).collect();
        let batches = seed_batches(&seeds, 10, 42, 1);
        assert_eq!(batches.len(), 11);
        assert!(batches[..10].iter().all(|b| b.len() == 10));
        assert_eq!(batches[10].len(), 3);
        let mut all: Vec<VertexId> = batches.concat();
        all.sort_unstable();
        assert_eq!(all, seeds);
        assert_eq!(batches, seed_batches(&seeds, 10, 42, 1), "deterministic");
        assert_ne!(batches, seed_batches(&seeds, 10, 42, 2), "epochs reshuffle");
    }

    #[test]
    fn zero_batch_size_is_one_batch() {
        let seeds: Vec<VertexId> = (0..7).collect();
        let batches = seed_batches(&seeds, 0, 1, 0);
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].len(), 7);
    }

    #[test]
    fn round_seed_decorrelates() {
        assert_ne!(round_seed(1, 0, 0), round_seed(1, 0, 1));
        assert_ne!(round_seed(1, 0, 0), round_seed(1, 1, 0));
        assert_ne!(round_seed(1, 0, 0), round_seed(2, 0, 0));
    }
}
