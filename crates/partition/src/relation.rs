//! Communication relation derived from a graph partition.
//!
//! For a GPU `d`, the paper defines `V_l(d)` — its local vertices, `V_r(d)`
//! — the remote vertices whose embeddings it needs (direct neighbours of
//! local vertices owned elsewhere), and records a tuple `(d_i, d_j, V_ij)`
//! per GPU pair with the embeddings `d_i` must send `d_j` (§4.1).
//! [`PartitionedGraph`] computes all of that, plus the re-indexed local
//! graph each simulated device trains on.

use dgcl_graph::{CsrGraph, VertexId};

use crate::Partition;

/// One multicast equivalence class: every vertex in `vertices` is owned
/// by part `src` and must reach exactly the parts in `dsts` (sorted
/// ascending). Produced by
/// [`PartitionedGraph::grouped_multicast_demands`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DemandClass {
    /// Owning part of every member vertex.
    pub src: u32,
    /// Destination parts, sorted ascending, never containing `src`.
    pub dsts: Vec<u32>,
    /// Member vertices, ascending.
    pub vertices: Vec<VertexId>,
}

/// A graph partitioned across `num_parts` devices, with the derived
/// communication relation.
#[derive(Debug, Clone)]
pub struct PartitionedGraph {
    /// Number of parts (GPUs).
    pub num_parts: usize,
    /// Owner of every vertex.
    pub partition: Partition,
    /// Per part: owned vertices, sorted by global id.
    pub local: Vec<Vec<VertexId>>,
    /// Per part: remote vertices required as inputs, sorted by global id.
    pub remote: Vec<Vec<VertexId>>,
    /// `demands[i][j]`: vertices owned by `i` whose embeddings `j` needs
    /// (the paper's `V_ij`), sorted by global id. Empty when `i == j`.
    pub demands: Vec<Vec<Vec<VertexId>>>,
    local_graphs: Vec<LocalGraph>,
}

/// The re-indexed graph a single device trains on.
///
/// Local ids `0..num_local` are the device's own vertices (sorted by global
/// id), followed by its remote vertices (also sorted by global id).
/// Adjacency is stored for local vertices only — a device aggregates into
/// vertices it owns; remote rows are empty.
#[derive(Debug, Clone)]
pub struct LocalGraph {
    /// Adjacency over local ids. Rows for remote vertices are empty.
    pub graph: CsrGraph,
    /// How many of the ids are local (owned) vertices.
    pub num_local: usize,
    /// Local id to global id (locals first, then remotes).
    pub global_ids: Vec<VertexId>,
}

impl LocalGraph {
    /// Total vertices visible to the device (local + remote).
    pub fn num_total(&self) -> usize {
        self.global_ids.len()
    }

    /// Number of remote vertices.
    pub fn num_remote(&self) -> usize {
        self.num_total() - self.num_local
    }

    /// Maps a global vertex id to the device-local id, or `None` if the
    /// vertex is not visible on this device.
    pub fn local_id(&self, global: VertexId) -> Option<usize> {
        let locals = &self.global_ids[..self.num_local];
        if let Ok(i) = locals.binary_search(&global) {
            return Some(i);
        }
        let remotes = &self.global_ids[self.num_local..];
        remotes
            .binary_search(&global)
            .ok()
            .map(|i| self.num_local + i)
    }
}

impl PartitionedGraph {
    /// Builds the communication relation for `graph` under `partition`.
    ///
    /// # Panics
    ///
    /// Panics if the partition length mismatches the vertex count or a
    /// part id is out of range.
    pub fn new(graph: &CsrGraph, partition: Partition, num_parts: usize) -> Self {
        assert_eq!(
            partition.len(),
            graph.num_vertices(),
            "partition length must match vertex count"
        );
        assert!(
            partition.iter().all(|&p| (p as usize) < num_parts),
            "part id out of range"
        );
        let mut local: Vec<Vec<VertexId>> = vec![Vec::new(); num_parts];
        for (v, &p) in partition.iter().enumerate() {
            local[p as usize].push(v as VertexId);
        }
        // Remote vertices: neighbours of local vertices owned elsewhere.
        let mut remote: Vec<Vec<VertexId>> = vec![Vec::new(); num_parts];
        for (d, owned) in local.iter().enumerate() {
            let mut set = Vec::new();
            for &v in owned {
                for &u in graph.neighbors(v) {
                    if partition[u as usize] as usize != d {
                        set.push(u);
                    }
                }
            }
            set.sort_unstable();
            set.dedup();
            remote[d] = set;
        }
        // Demands: V_ij = local[i] ∩ remote[j].
        let mut demands: Vec<Vec<Vec<VertexId>>> = vec![vec![Vec::new(); num_parts]; num_parts];
        for (j, remotes) in remote.iter().enumerate() {
            for &u in remotes {
                let i = partition[u as usize] as usize;
                demands[i][j].push(u);
            }
        }
        let local_graphs = (0..num_parts)
            .map(|d| build_local_graph(graph, &local[d], &remote[d]))
            .collect();
        Self {
            num_parts,
            partition,
            local,
            remote,
            demands,
            local_graphs,
        }
    }

    /// The owner (GPU rank) of a global vertex.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn owner(&self, v: VertexId) -> u32 {
        self.partition[v as usize]
    }

    /// The re-indexed graph for device `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d` is out of range.
    pub fn local_graph(&self, d: usize) -> &LocalGraph {
        &self.local_graphs[d]
    }

    /// All multicast demands: for every vertex with at least one remote
    /// consumer, `(vertex, source part, destination parts)`. Destinations
    /// are sorted ascending.
    pub fn multicast_demands(&self) -> Vec<(VertexId, u32, Vec<u32>)> {
        let n = self.partition.len();
        let mut dests: Vec<Vec<u32>> = vec![Vec::new(); n];
        for row in &self.demands {
            for (j, vs) in row.iter().enumerate() {
                for &v in vs {
                    dests[v as usize].push(j as u32);
                }
            }
        }
        dests
            .into_iter()
            .enumerate()
            .filter(|(_, d)| !d.is_empty())
            .map(|(v, mut d)| {
                d.sort_unstable();
                (v as VertexId, self.partition[v], d)
            })
            .collect()
    }

    /// [`PartitionedGraph::multicast_demands`] grouped by multicast
    /// signature: all vertices sharing a `(source part, destination
    /// parts)` pair form one [`DemandClass`].
    ///
    /// A partition onto `k` parts admits at most `k * 2^(k-1)` distinct
    /// signatures, so on real graphs thousands of vertices collapse into
    /// a few hundred classes — the SPST planner exploits this to reuse
    /// one planned tree across a whole class. Classes are sorted by
    /// `(src, dsts)` and their member vertices ascending, so the result
    /// is deterministic.
    pub fn grouped_multicast_demands(&self) -> Vec<DemandClass> {
        use std::collections::HashMap;
        let mut index: HashMap<(u32, Vec<u32>), usize> = HashMap::new();
        let mut classes: Vec<DemandClass> = Vec::new();
        for (v, src, dsts) in self.multicast_demands() {
            match index.get(&(src, dsts.clone())) {
                Some(&c) => classes[c].vertices.push(v),
                None => {
                    index.insert((src, dsts.clone()), classes.len());
                    classes.push(DemandClass {
                        src,
                        dsts,
                        vertices: vec![v],
                    });
                }
            }
        }
        classes.sort_by(|a, b| (a.src, &a.dsts).cmp(&(b.src, &b.dsts)));
        classes
    }

    /// Per remote vertex of part `d` (aligned with `remote[d]`): how
    /// many of `d`'s local vertices list it as a neighbour. This is the
    /// number of local aggregation rows that consume the remote row —
    /// the sampler-hit-frequency proxy the feature-cache admission score
    /// multiplies by degree.
    ///
    /// # Panics
    ///
    /// Panics if `d` is out of range.
    pub fn remote_ref_counts(&self, graph: &CsrGraph, d: usize) -> Vec<u32> {
        let remotes = &self.remote[d];
        let mut counts = vec![0u32; remotes.len()];
        for &v in &self.local[d] {
            for &u in graph.neighbors(v) {
                if self.partition[u as usize] as usize != d {
                    let i = remotes
                        .binary_search(&u)
                        .expect("neighbour owned elsewhere must be in the remote set");
                    counts[i] += 1;
                }
            }
        }
        counts
    }

    /// Total number of vertex embeddings crossing partitions per layer
    /// (the sum of all `|V_ij|`).
    pub fn total_demand(&self) -> usize {
        self.demands
            .iter()
            .flat_map(|row| row.iter())
            .map(|v| v.len())
            .sum()
    }
}

fn build_local_graph(graph: &CsrGraph, local: &[VertexId], remote: &[VertexId]) -> LocalGraph {
    let num_local = local.len();
    let mut global_ids = Vec::with_capacity(num_local + remote.len());
    global_ids.extend_from_slice(local);
    global_ids.extend_from_slice(remote);
    let lookup = |global: VertexId| -> u32 {
        if let Ok(i) = local.binary_search(&global) {
            i as u32
        } else {
            let i = remote
                .binary_search(&global)
                .expect("neighbour must be local or remote");
            (num_local + i) as u32
        }
    };
    let total = global_ids.len();
    let mut offsets = Vec::with_capacity(total + 1);
    offsets.push(0usize);
    let mut targets = Vec::new();
    for &v in local {
        // Keep each row in the global graph's (ascending global id)
        // neighbour order rather than sorting the mapped local ids: the
        // aggregation kernels fold each row sequentially, so this makes
        // local aggregation accumulate in exactly the single-device
        // order — bitwise parity instead of a mere commutation.
        let row: Vec<u32> = graph.neighbors(v).iter().map(|&u| lookup(u)).collect();
        targets.extend_from_slice(&row);
        offsets.push(targets.len());
    }
    for _ in 0..remote.len() {
        offsets.push(targets.len());
    }
    LocalGraph {
        graph: CsrGraph::from_parts(offsets, targets),
        num_local,
        global_ids,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgcl_graph::GraphBuilder;

    /// The running example of Figure 1b: 12 vertices a..l partitioned onto
    /// 4 GPUs. Vertex ids: a=0 b=1 c=2 d=3 e=4 f=5 g=6 h=7 i=8 j=9 k=10
    /// l=11.
    fn fig1_graph() -> CsrGraph {
        let mut b = GraphBuilder::new(12);
        // Edges from Figure 1a (undirected reading of the example):
        // a-b, a-c, a-d, a-f, a-j, b-c, d-e, d-f, e-h, e-i, f-h, g-i,
        // h-i, j-k, j-l, k-l.
        for &(s, d) in &[
            (0, 1),
            (0, 2),
            (0, 3),
            (0, 5),
            (0, 9),
            (1, 2),
            (3, 4),
            (3, 5),
            (4, 7),
            (4, 8),
            (5, 7),
            (6, 8),
            (7, 8),
            (9, 10),
            (9, 11),
            (10, 11),
        ] {
            b.add_edge(s, d);
        }
        b.build_symmetric()
    }

    fn fig1_partition() -> Partition {
        // GPU1: {a,b,c}, GPU2: {d,e,f}, GPU3: {g,h,i}, GPU4: {j,k,l}.
        vec![0, 0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 3]
    }

    #[test]
    fn fig1_local_and_remote_sets_match_paper() {
        let g = fig1_graph();
        let pg = PartitionedGraph::new(&g, fig1_partition(), 4);
        // §4.1: V_l(1) = {a, b, c} and V_r(1) = {d, f, j} (neighbours of
        // a on other GPUs; the paper also lists k — k is 2 hops from a in
        // Figure 1a, so the direct-neighbour set here is {d, f, j}).
        assert_eq!(pg.local[0], vec![0, 1, 2]);
        assert_eq!(pg.remote[0], vec![3, 5, 9]);
    }

    #[test]
    fn demands_are_symmetric_for_symmetric_graphs() {
        let g = fig1_graph();
        let pg = PartitionedGraph::new(&g, fig1_partition(), 4);
        // If i needs nothing from j, j needs nothing from i (the graph is
        // symmetric, so a cut edge creates demand both ways).
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(
                    pg.demands[i][j].is_empty(),
                    pg.demands[j][i].is_empty(),
                    "asymmetric emptiness {i}->{j}"
                );
            }
        }
    }

    #[test]
    fn demand_vertices_are_owned_by_sender() {
        let g = fig1_graph();
        let pg = PartitionedGraph::new(&g, fig1_partition(), 4);
        for (i, row) in pg.demands.iter().enumerate() {
            for vs in row {
                for &v in vs {
                    assert_eq!(pg.owner(v) as usize, i);
                }
            }
        }
    }

    #[test]
    fn no_self_demand() {
        let g = fig1_graph();
        let pg = PartitionedGraph::new(&g, fig1_partition(), 4);
        for i in 0..4 {
            assert!(pg.demands[i][i].is_empty());
        }
    }

    #[test]
    fn multicast_demands_cover_total_demand() {
        let g = fig1_graph();
        let pg = PartitionedGraph::new(&g, fig1_partition(), 4);
        let multicast = pg.multicast_demands();
        let spread: usize = multicast.iter().map(|(_, _, d)| d.len()).sum();
        assert_eq!(spread, pg.total_demand());
        for (v, src, dsts) in &multicast {
            assert_eq!(pg.owner(*v), *src);
            assert!(!dsts.contains(src));
        }
    }

    #[test]
    fn grouped_demands_partition_the_multicast_set() {
        let g = fig1_graph();
        let pg = PartitionedGraph::new(&g, fig1_partition(), 4);
        let flat = pg.multicast_demands();
        let grouped = pg.grouped_multicast_demands();
        // Every flat demand appears in exactly one class with a matching
        // signature.
        let total: usize = grouped.iter().map(|c| c.vertices.len()).sum();
        assert_eq!(total, flat.len());
        for class in &grouped {
            assert!(!class.dsts.contains(&class.src));
            assert!(class.dsts.windows(2).all(|w| w[0] < w[1]));
            assert!(class.vertices.windows(2).all(|w| w[0] < w[1]));
            for &v in &class.vertices {
                let (_, src, dsts) = flat
                    .iter()
                    .find(|(fv, _, _)| *fv == v)
                    .expect("class member is a demand");
                assert_eq!(*src, class.src);
                assert_eq!(*dsts, class.dsts);
            }
        }
        // Signatures are unique and sorted.
        let sigs: Vec<_> = grouped.iter().map(|c| (c.src, c.dsts.clone())).collect();
        let mut sorted = sigs.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sigs, sorted);
    }

    #[test]
    fn grouped_demands_merge_shared_signatures() {
        // Two hub vertices on part 0 with identical destination sets must
        // land in one class.
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 2);
        b.add_edge(0, 3);
        b.add_edge(1, 2);
        b.add_edge(1, 3);
        let g = b.build_symmetric();
        let pg = PartitionedGraph::new(&g, vec![0, 0, 1, 1], 2);
        let grouped = pg.grouped_multicast_demands();
        let class0 = grouped
            .iter()
            .find(|c| c.src == 0)
            .expect("part 0 has demands");
        assert_eq!(class0.vertices, vec![0, 1]);
        assert_eq!(class0.dsts, vec![1]);
    }

    #[test]
    fn remote_ref_counts_count_consuming_local_rows() {
        let g = fig1_graph();
        let pg = PartitionedGraph::new(&g, fig1_partition(), 4);
        // GPU1 remotes are {d=3, f=5, j=9}; each is referenced only by
        // local vertex a=0.
        assert_eq!(pg.remote_ref_counts(&g, 0), vec![1, 1, 1]);
        // Sum over all remotes equals the total cut-edge endpoints seen
        // from the local side.
        for d in 0..4 {
            let counts = pg.remote_ref_counts(&g, d);
            assert_eq!(counts.len(), pg.remote[d].len());
            let total: u32 = counts.iter().sum();
            let cut: u32 = pg.local[d]
                .iter()
                .flat_map(|&v| g.neighbors(v))
                .filter(|&&u| pg.partition[u as usize] as usize != d)
                .count() as u32;
            assert_eq!(total, cut, "device {d}");
            assert!(counts.iter().all(|&c| c >= 1));
        }
    }

    #[test]
    fn local_graph_reindexing_round_trips() {
        let g = fig1_graph();
        let pg = PartitionedGraph::new(&g, fig1_partition(), 4);
        let lg = pg.local_graph(0);
        assert_eq!(lg.num_local, 3);
        assert_eq!(lg.num_remote(), 3);
        // Local id of global a=0 is 0; of remote j=9 is 3 + index in
        // remote list {3,5,9} = 5.
        assert_eq!(lg.local_id(0), Some(0));
        assert_eq!(lg.local_id(9), Some(5));
        assert_eq!(lg.local_id(6), None);
    }

    #[test]
    fn local_graph_preserves_degrees() {
        let g = fig1_graph();
        let pg = PartitionedGraph::new(&g, fig1_partition(), 4);
        for d in 0..4 {
            let lg = pg.local_graph(d);
            for (li, &global) in lg.global_ids[..lg.num_local].iter().enumerate() {
                assert_eq!(
                    lg.graph.out_degree(li as u32),
                    g.out_degree(global),
                    "device {d} vertex {global}"
                );
            }
            // Remote rows are empty.
            for li in lg.num_local..lg.num_total() {
                assert_eq!(lg.graph.out_degree(li as u32), 0);
            }
        }
    }

    #[test]
    fn graph_allgather_semantics_on_fig1() {
        // After graph Allgather, GPU 1 holds embeddings of
        // {a, b, c, d, f, j} (§4.2 of the paper).
        let g = fig1_graph();
        let pg = PartitionedGraph::new(&g, fig1_partition(), 4);
        let lg = pg.local_graph(0);
        let mut visible: Vec<VertexId> = lg.global_ids.clone();
        visible.sort_unstable();
        assert_eq!(visible, vec![0, 1, 2, 3, 5, 9]);
    }
}
