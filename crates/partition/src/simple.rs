//! Baseline partitioners: hash and random.
//!
//! These ignore the graph structure and serve as quality baselines for the
//! multilevel partitioner in tests and ablation benches.

use dgcl_graph::CsrGraph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::Partition;

/// Assigns vertex `v` to part `v % num_parts`.
///
/// # Panics
///
/// Panics if `num_parts == 0`.
pub fn hash_partition(graph: &CsrGraph, num_parts: usize) -> Partition {
    assert!(num_parts > 0, "need at least one part");
    (0..graph.num_vertices())
        .map(|v| (v % num_parts) as u32)
        .collect()
}

/// Assigns every vertex to a uniformly random part.
///
/// # Panics
///
/// Panics if `num_parts == 0`.
pub fn random_partition(graph: &CsrGraph, num_parts: usize, seed: u64) -> Partition {
    assert!(num_parts > 0, "need at least one part");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..graph.num_vertices())
        .map(|_| rng.gen_range(0..num_parts) as u32)
        .collect()
}

/// Assigns contiguous vertex-id ranges to parts (block partitioning).
///
/// # Panics
///
/// Panics if `num_parts == 0`.
pub fn block_partition(graph: &CsrGraph, num_parts: usize) -> Partition {
    assert!(num_parts > 0, "need at least one part");
    let n = graph.num_vertices();
    let base = n / num_parts;
    let rem = n % num_parts;
    let mut out = Vec::with_capacity(n);
    for p in 0..num_parts {
        let size = base + usize::from(p < rem);
        out.extend(std::iter::repeat_n(p as u32, size));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{balance, part_sizes};
    use dgcl_graph::generators::erdos_renyi;

    #[test]
    fn hash_is_perfectly_balanced_when_divisible() {
        let g = erdos_renyi(100, 200, 1);
        let p = hash_partition(&g, 4);
        assert_eq!(part_sizes(&p, 4), vec![25; 4]);
    }

    #[test]
    fn random_is_roughly_balanced() {
        let g = erdos_renyi(4000, 8000, 2);
        let p = random_partition(&g, 4, 3);
        assert!(balance(&p, 4) < 1.15);
    }

    #[test]
    fn block_covers_all_vertices_in_order() {
        let g = erdos_renyi(10, 20, 4);
        let p = block_partition(&g, 3);
        assert_eq!(p, vec![0, 0, 0, 0, 1, 1, 1, 2, 2, 2]);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let g = erdos_renyi(50, 100, 5);
        assert_eq!(random_partition(&g, 4, 9), random_partition(&g, 4, 9));
    }
}
