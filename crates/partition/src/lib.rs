//! Graph partitioning for distributed GNN training.
//!
//! DGCL partitions the input graph into one part per GPU, minimising the
//! number of cross-partition edges (which become communication) while
//! keeping parts balanced. The original system calls METIS; this crate
//! implements the same multilevel k-way scheme from scratch
//! ([`multilevel::kway`]): heavy-edge-matching coarsening, greedy-growing
//! initial partitioning and boundary FM refinement.
//!
//! Hierarchical partitioning ([`hierarchical::hierarchical`]) first splits
//! across machines and then within each machine, prioritising communication
//! reduction on slow inter-machine links (§4.1 of the paper).
//!
//! [`relation::PartitionedGraph`] derives everything DGCL needs from a
//! partition: per-GPU local/remote vertex sets, the re-indexed local graphs
//! handed to the single-GPU GNN engine, and the communication relation
//! `(d_i, d_j, V_ij)`.
//!
//! # Examples
//!
//! ```
//! use dgcl_graph::Dataset;
//! use dgcl_partition::multilevel::kway;
//! use dgcl_partition::metrics::{edge_cut, balance};
//!
//! let g = Dataset::WebGoogle.generate(0.002, 1);
//! let parts = kway(&g, 4, 42);
//! assert!(balance(&parts, 4) < 1.1);
//! assert!(edge_cut(&g, &parts) < g.num_edges() / 2);
//! ```

pub mod cagnet;
pub mod hierarchical;
pub mod metrics;
pub mod multilevel;
pub mod relation;
pub mod simple;

pub use cagnet::CagnetBlocks;
pub use relation::{DemandClass, PartitionedGraph};

/// A partition assignment: `partition[v]` is the part (GPU rank) of vertex
/// `v`.
pub type Partition = Vec<u32>;
