//! Hierarchical (machine-aware) partitioning.
//!
//! §4.1 of the paper: "we use hierarchical graph partitioning to prioritize
//! communication reduction on slow links". The graph is first split across
//! machines (minimising traffic over the slow inter-machine links), and the
//! per-machine subgraphs are then split across that machine's GPUs.

use dgcl_graph::{CsrGraph, GraphBuilder, VertexId};

use crate::multilevel::kway;
use crate::Partition;

/// Partitions `graph` for a cluster described by `group_sizes`: one group
/// per machine, each entry the number of GPUs in that machine. Part ids are
/// assigned machine-major: machine 0 owns parts `0..group_sizes[0]`, and so
/// on — matching GPU rank order in `dgcl-topology` builders.
///
/// # Panics
///
/// Panics if `group_sizes` is empty, contains a zero, or the total GPU
/// count exceeds the vertex count of a non-empty graph.
pub fn hierarchical(graph: &CsrGraph, group_sizes: &[usize], seed: u64) -> Partition {
    assert!(!group_sizes.is_empty(), "need at least one machine");
    assert!(
        group_sizes.iter().all(|&g| g > 0),
        "every machine needs at least one GPU"
    );
    let num_machines = group_sizes.len();
    if num_machines == 1 {
        return kway(graph, group_sizes[0], seed);
    }
    // Level 1: split across machines. Equal GPU counts per machine is the
    // only configuration the paper evaluates; enforce it so the equal-size
    // machine split is also an equal-load split.
    assert!(
        group_sizes.windows(2).all(|w| w[0] == w[1]),
        "hierarchical partitioning expects equal GPUs per machine"
    );
    let machine_partition = kway(graph, num_machines, seed);
    // Level 2: split each machine's induced subgraph across its GPUs.
    let mut partition = vec![0u32; graph.num_vertices()];
    let mut rank_base = 0u32;
    for (machine, &gpus) in group_sizes.iter().enumerate() {
        let vertices: Vec<VertexId> = machine_partition
            .iter()
            .enumerate()
            .filter(|&(_, &m)| m as usize == machine)
            .map(|(v, _)| v as VertexId)
            .collect();
        let (sub, _mapping) = induced_subgraph(graph, &vertices);
        let sub_partition = if sub.num_vertices() == 0 {
            Vec::new()
        } else {
            kway(
                &sub,
                gpus.min(sub.num_vertices()),
                seed.wrapping_add(machine as u64 + 1),
            )
        };
        for (local, &global) in vertices.iter().enumerate() {
            partition[global as usize] = rank_base + sub_partition[local];
        }
        rank_base += gpus as u32;
    }
    partition
}

/// Extracts the subgraph induced by `vertices` (which must be sorted and
/// unique). Returns the subgraph (with vertices renumbered `0..len`) and
/// the local-to-global id mapping.
///
/// # Panics
///
/// Panics if `vertices` is not strictly increasing or contains an
/// out-of-range id.
pub fn induced_subgraph(graph: &CsrGraph, vertices: &[VertexId]) -> (CsrGraph, Vec<VertexId>) {
    assert!(
        vertices.windows(2).all(|w| w[0] < w[1]),
        "vertex list must be strictly increasing"
    );
    let n = graph.num_vertices();
    let mut global_to_local = vec![u32::MAX; n];
    for (local, &global) in vertices.iter().enumerate() {
        assert!((global as usize) < n, "vertex {global} out of range");
        global_to_local[global as usize] = local as u32;
    }
    let mut b = GraphBuilder::new(vertices.len());
    for (local, &global) in vertices.iter().enumerate() {
        for &t in graph.neighbors(global) {
            let lt = global_to_local[t as usize];
            if lt != u32::MAX {
                b.add_edge(local as VertexId, lt);
            }
        }
    }
    (b.build_directed(), vertices.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{balance, edge_cut};
    use dgcl_graph::generators::barabasi_albert;

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, 3);
        let g = b.build_symmetric();
        let (sub, map) = induced_subgraph(&g, &[1, 2]);
        assert_eq!(sub.num_vertices(), 2);
        assert_eq!(sub.num_edges(), 2); // 1-2 in both directions.
        assert_eq!(map, vec![1, 2]);
    }

    #[test]
    fn hierarchical_covers_all_ranks() {
        let g = barabasi_albert(2000, 3, 1);
        let p = hierarchical(&g, &[4, 4], 7);
        let mut seen = [false; 8];
        for &x in &p {
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        assert!(balance(&p, 8) < 1.3, "balance {}", balance(&p, 8));
    }

    #[test]
    fn hierarchical_reduces_cross_machine_cut() {
        // Cross-machine cut under hierarchical partitioning should be no
        // worse than the cross-machine cut of a flat 8-way partition
        // grouped arbitrarily into machines.
        let g = barabasi_albert(3000, 3, 5);
        let hier = hierarchical(&g, &[4, 4], 3);
        let machine_of = |p: u32| p / 4;
        let cross = g
            .edges()
            .filter(|&(s, d)| machine_of(hier[s as usize]) != machine_of(hier[d as usize]))
            .count();
        let flat = kway(&g, 8, 3);
        let cross_flat = g
            .edges()
            .filter(|&(s, d)| machine_of(flat[s as usize]) != machine_of(flat[d as usize]))
            .count();
        assert!(
            cross <= cross_flat,
            "hierarchical cross-machine cut {cross} worse than flat {cross_flat}"
        );
        // Total cut should still be sane.
        assert!(edge_cut(&g, &hier) < g.num_edges() / 2);
    }

    #[test]
    fn single_machine_degenerates_to_flat() {
        let g = barabasi_albert(500, 2, 2);
        assert_eq!(hierarchical(&g, &[4], 9), kway(&g, 4, 9));
    }

    #[test]
    #[should_panic(expected = "equal GPUs per machine")]
    fn unequal_machines_rejected() {
        let g = barabasi_albert(100, 2, 0);
        let _ = hierarchical(&g, &[2, 3], 0);
    }
}
