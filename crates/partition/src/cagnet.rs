//! Block-partitioned adjacency for the CAGNET aggregation backend.
//!
//! CAGNET's 1D/1.5D algorithms (Tripathy et al., PAPERS.md) never build
//! the vertex-cut communication relation: they partition the adjacency
//! matrix into row blocks and drive aggregation as broadcasts of dense
//! feature blocks interleaved with local SpMM. This module precomputes
//! the sparse blocks every device needs.
//!
//! Everything is stored at *thin* granularity — one [`CsrBlock`] per
//! `(owner, column-part)` pair. The 1.5D algorithm's *fat* (replicated)
//! blocks are unions of consecutive thin blocks, so a single
//! [`CagnetBlocks`] serves every replication factor: a fat row panel is
//! the stacked thin blocks of the grid-row mates, and a fat column block
//! is a run of consecutive thin column blocks.
//!
//! When ownership is contiguous ascending (see
//! [`crate::simple::block_partition`]), each block's rows keep their
//! columns in ascending *global* order and ascending thin-block order ==
//! ascending global column order — which is what lets the backend's
//! block-by-block accumulation reproduce the single-device aggregation
//! fold bitwise.

use dgcl_graph::{CsrGraph, VertexId};
use dgcl_tensor::CsrBlock;

use crate::relation::PartitionedGraph;

/// Per-device sparse adjacency blocks for CAGNET-style aggregation.
#[derive(Debug, Clone)]
pub struct CagnetBlocks {
    num_parts: usize,
    /// `blocks[d][t]`: rows owned by `d`, columns owned by `t`, from the
    /// forward adjacency. Column ids are positions in `t`'s owned list.
    blocks: Vec<Vec<CsrBlock>>,
    /// Same layout over the reversed adjacency (for backward scatter).
    tblocks: Vec<Vec<CsrBlock>>,
    /// `degrees[d][i]`: global out-degree of `d`'s `i`-th owned vertex
    /// (what mean aggregation normalizes by).
    degrees: Vec<Vec<u32>>,
}

impl CagnetBlocks {
    /// Builds the thin block grid for `graph` under `pg`'s ownership.
    ///
    /// Works for any partition; the bitwise-parity guarantee additionally
    /// requires contiguous ascending ownership (block partitions).
    pub fn new(graph: &CsrGraph, pg: &PartitionedGraph) -> Self {
        let num_parts = pg.num_parts;
        // Global id -> (owner part, position within the owner's list).
        let mut place = vec![(0u32, 0u32); graph.num_vertices()];
        for (t, owned) in pg.local.iter().enumerate() {
            for (pos, &v) in owned.iter().enumerate() {
                place[v as usize] = (t as u32, pos as u32);
            }
        }
        let blocks = split_rows(graph, &pg.local, &place, num_parts);
        let tblocks = split_rows(graph.reversed(), &pg.local, &place, num_parts);
        let degrees = pg
            .local
            .iter()
            .map(|owned| owned.iter().map(|&v| graph.out_degree(v) as u32).collect())
            .collect();
        CagnetBlocks {
            num_parts,
            blocks,
            tblocks,
            degrees,
        }
    }

    /// Number of parts (thin blocks per axis).
    pub fn num_parts(&self) -> usize {
        self.num_parts
    }

    /// Forward-adjacency block: rows owned by `d`, columns owned by `t`.
    pub fn block(&self, d: usize, t: usize) -> &CsrBlock {
        &self.blocks[d][t]
    }

    /// Reversed-adjacency block: rows owned by `d`, columns owned by `t`.
    pub fn tblock(&self, d: usize, t: usize) -> &CsrBlock {
        &self.tblocks[d][t]
    }

    /// Global out-degrees of `d`'s owned vertices, in owned order.
    pub fn degrees(&self, d: usize) -> &[u32] {
        &self.degrees[d]
    }
}

/// Splits `graph`'s rows, restricted to each part's owned vertices, into
/// one thin block per column part. Row order follows the owned lists;
/// column order within a row follows the graph's neighbour order (ascending
/// global in this repo — `GraphBuilder::finish` sorts edges).
fn split_rows(
    graph: &CsrGraph,
    owned: &[Vec<VertexId>],
    place: &[(u32, u32)],
    num_parts: usize,
) -> Vec<Vec<CsrBlock>> {
    owned
        .iter()
        .map(|rows| {
            let mut per_part: Vec<Vec<Vec<u32>>> = vec![Vec::with_capacity(rows.len()); num_parts];
            for &v in rows {
                for part in per_part.iter_mut() {
                    part.push(Vec::new());
                }
                for &u in graph.neighbors(v) {
                    let (t, pos) = place[u as usize];
                    let lists = &mut per_part[t as usize];
                    lists.last_mut().expect("row pushed above").push(pos);
                }
            }
            per_part
                .into_iter()
                .enumerate()
                .map(|(t, row_lists)| CsrBlock::from_rows(owned[t].len(), &row_lists))
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simple::block_partition;
    use dgcl_graph::generators::erdos_renyi;
    use dgcl_graph::GraphBuilder;

    fn blocks_for(graph: &CsrGraph, parts: usize) -> (PartitionedGraph, CagnetBlocks) {
        let partition = block_partition(graph, parts);
        let pg = PartitionedGraph::new(graph, partition, parts);
        let cb = CagnetBlocks::new(graph, &pg);
        (pg, cb)
    }

    /// Every edge (v, u) lands in exactly one forward block, at the row
    /// of v's owned position and the column of u's owned position — and
    /// the reversed edge in exactly one tblock.
    #[test]
    fn blocks_tile_the_adjacency() {
        let graph = erdos_renyi(37, 140, 7);
        for parts in [1usize, 2, 3, 4] {
            let (pg, cb) = blocks_for(&graph, parts);
            let mut fwd = 0usize;
            let mut bwd = 0usize;
            for d in 0..parts {
                for t in 0..parts {
                    fwd += cb.block(d, t).nnz();
                    bwd += cb.tblock(d, t).nnz();
                    for (r, &v) in pg.local[d].iter().enumerate() {
                        let row = cb.block(d, t).row(r);
                        for &c in row {
                            let u = pg.local[t][c as usize];
                            assert!(graph.neighbors(v).contains(&u));
                        }
                        // Ascending-global within a row under block
                        // ownership (owned lists are ascending ranges).
                        assert!(row.windows(2).all(|w| w[0] < w[1]), "parts {parts}");
                    }
                }
            }
            assert_eq!(fwd, graph.num_edges(), "parts {parts}");
            assert_eq!(bwd, graph.num_edges(), "parts {parts}");
        }
    }

    #[test]
    fn degrees_match_the_global_graph() {
        let graph = erdos_renyi(20, 60, 3);
        let (pg, cb) = blocks_for(&graph, 3);
        for d in 0..3 {
            for (i, &v) in pg.local[d].iter().enumerate() {
                assert_eq!(cb.degrees(d)[i] as usize, graph.out_degree(v));
            }
        }
    }

    #[test]
    fn tblocks_are_the_transpose() {
        let mut b = GraphBuilder::new(6);
        // Directed: 0->3, 0->5, 2->4, 4->1.
        for &(s, d) in &[(0u32, 3u32), (0, 5), (2, 4), (4, 1)] {
            b.add_edge(s, d);
        }
        let graph = b.build_directed();
        let (pg, cb) = blocks_for(&graph, 2);
        // Edge 0->3: forward block (owner(0)=0, owner(3)=1); transpose
        // block (owner(3)=1, owner(0)=0) holds (3, 0).
        let pos = |d: usize, v: u32| pg.local[d].iter().position(|&x| x == v).unwrap();
        assert_eq!(
            cb.block(0, 1).row(pos(0, 0)),
            &[pos(1, 3) as u32, pos(1, 5) as u32]
        );
        assert_eq!(cb.tblock(1, 0).row(pos(1, 3)), &[pos(0, 0) as u32]);
        assert_eq!(cb.tblock(0, 1).row(pos(0, 1)), &[pos(1, 4) as u32]);
    }
}
