//! Partition quality metrics.

use dgcl_graph::CsrGraph;

/// Number of directed edges whose endpoints lie in different parts.
///
/// For symmetric graphs this counts each undirected cut edge twice, which
/// matches the communication interpretation: both directions carry an
/// embedding.
///
/// # Panics
///
/// Panics if `partition.len() != graph.num_vertices()`.
pub fn edge_cut(graph: &CsrGraph, partition: &[u32]) -> usize {
    assert_eq!(
        partition.len(),
        graph.num_vertices(),
        "partition length mismatch"
    );
    graph
        .edges()
        .filter(|&(s, d)| partition[s as usize] != partition[d as usize])
        .count()
}

/// Balance factor: largest part size divided by the ideal (average) size.
///
/// A perfectly balanced partition scores 1.0.
///
/// # Panics
///
/// Panics if `num_parts == 0` or a part id is out of range.
pub fn balance(partition: &[u32], num_parts: usize) -> f64 {
    assert!(num_parts > 0, "need at least one part");
    if partition.is_empty() {
        return 1.0;
    }
    let sizes = part_sizes(partition, num_parts);
    let max = *sizes.iter().max().expect("non-empty") as f64;
    let ideal = partition.len() as f64 / num_parts as f64;
    max / ideal
}

/// Vertex count of every part.
///
/// # Panics
///
/// Panics if a part id is `>= num_parts`.
pub fn part_sizes(partition: &[u32], num_parts: usize) -> Vec<usize> {
    let mut sizes = vec![0usize; num_parts];
    for &p in partition {
        assert!((p as usize) < num_parts, "part id {p} out of range");
        sizes[p as usize] += 1;
    }
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgcl_graph::GraphBuilder;

    fn square() -> CsrGraph {
        // 0-1, 1-2, 2-3, 3-0 cycle.
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, 3);
        b.add_edge(3, 0);
        b.build_symmetric()
    }

    #[test]
    fn cut_of_uniform_partition_is_zero() {
        let g = square();
        assert_eq!(edge_cut(&g, &[0, 0, 0, 0]), 0);
    }

    #[test]
    fn cut_counts_directed_edges() {
        let g = square();
        // Parts {0,1} and {2,3}: undirected cut edges 1-2 and 3-0, so 4
        // directed edges.
        assert_eq!(edge_cut(&g, &[0, 0, 1, 1]), 4);
    }

    #[test]
    fn balance_of_even_split_is_one() {
        assert!((balance(&[0, 0, 1, 1], 2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn balance_of_skewed_split() {
        // Three vertices in part 0, one in part 1: 3 / 2 = 1.5.
        assert!((balance(&[0, 0, 0, 1], 2) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn part_sizes_counts() {
        assert_eq!(part_sizes(&[0, 2, 2, 1], 3), vec![1, 1, 2]);
    }
}
