//! Multilevel k-way partitioner (METIS-style).
//!
//! Three phases, as in Karypis & Kumar's multilevel scheme the paper's
//! METIS dependency implements:
//!
//! 1. **Coarsening** — repeated heavy-edge matching collapses the graph
//!    until it is small.
//! 2. **Initial partitioning** — greedy region growing on the coarsest
//!    graph.
//! 3. **Uncoarsening** — the partition is projected back level by level,
//!    with boundary FM refinement and explicit rebalancing at each level.

use dgcl_graph::CsrGraph;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::Partition;

/// Default allowed imbalance: largest part at most 5% above ideal.
pub const DEFAULT_IMBALANCE: f64 = 1.05;

/// Vertex- and edge-weighted graph used internally across coarsening
/// levels.
struct WeightedGraph {
    offsets: Vec<usize>,
    targets: Vec<u32>,
    eweights: Vec<u64>,
    vweights: Vec<u64>,
}

impl WeightedGraph {
    fn from_csr(g: &CsrGraph) -> Self {
        let n = g.num_vertices();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0);
        let mut targets = Vec::with_capacity(g.num_edges());
        for v in 0..n as u32 {
            targets.extend_from_slice(g.neighbors(v));
            offsets.push(targets.len());
        }
        let eweights = vec![1u64; targets.len()];
        let vweights = vec![1u64; n];
        Self {
            offsets,
            targets,
            eweights,
            vweights,
        }
    }

    fn num_vertices(&self) -> usize {
        self.vweights.len()
    }

    fn neighbors(&self, v: u32) -> impl Iterator<Item = (u32, u64)> + '_ {
        let v = v as usize;
        self.targets[self.offsets[v]..self.offsets[v + 1]]
            .iter()
            .zip(&self.eweights[self.offsets[v]..self.offsets[v + 1]])
            .map(|(&t, &w)| (t, w))
    }

    fn total_vweight(&self) -> u64 {
        self.vweights.iter().sum()
    }
}

/// Partitions `graph` into `k` balanced parts minimising the edge cut.
///
/// Uses [`DEFAULT_IMBALANCE`]; see [`kway_with_imbalance`] for control.
///
/// # Panics
///
/// Panics if `k == 0` or `k > graph.num_vertices()` (for non-empty
/// graphs).
pub fn kway(graph: &CsrGraph, k: usize, seed: u64) -> Partition {
    kway_with_imbalance(graph, k, seed, DEFAULT_IMBALANCE)
}

/// Partitions `graph` into `k` parts with an explicit balance bound:
/// every part's vertex count stays at or below `imbalance * n / k`
/// (up to rounding).
///
/// # Panics
///
/// Panics if `k == 0`, `imbalance < 1.0`, or `k > graph.num_vertices()`
/// for a non-empty graph.
pub fn kway_with_imbalance(graph: &CsrGraph, k: usize, seed: u64, imbalance: f64) -> Partition {
    assert!(k > 0, "need at least one part");
    assert!(imbalance >= 1.0, "imbalance bound must be >= 1.0");
    let n = graph.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    assert!(k <= n, "cannot split {n} vertices into {k} parts");
    if k == 1 {
        return vec![0; n];
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let base = WeightedGraph::from_csr(graph);

    // Phase 1: coarsen. Cap coarse vertex weights so hubs cannot swallow
    // whole parts (which would make balanced refinement impossible).
    let coarse_target = (30 * k).max(128);
    let max_vertex_weight = ((n as f64 / k as f64) * 0.6).ceil().max(2.0) as u64;
    let mut levels: Vec<WeightedGraph> = vec![base];
    let mut maps: Vec<Vec<u32>> = Vec::new();
    loop {
        let current = levels.last().expect("at least the base level");
        if current.num_vertices() <= coarse_target {
            break;
        }
        let (coarse, map) = coarsen(current, &mut rng, max_vertex_weight);
        // Stop when matching no longer shrinks the graph meaningfully.
        if coarse.num_vertices() as f64 > 0.95 * current.num_vertices() as f64 {
            break;
        }
        levels.push(coarse);
        maps.push(map);
    }

    // Phase 2: initial partition on the coarsest level.
    let coarsest = levels.last().expect("non-empty");
    let max_weight = max_part_weight(coarsest.total_vweight(), k, imbalance);
    let mut partition = grow_initial(coarsest, k, &mut rng);
    rebalance(coarsest, &mut partition, k, max_weight);
    refine(coarsest, &mut partition, k, max_weight, 8);

    // Phase 3: project back up, refining at each level.
    for level in (0..maps.len()).rev() {
        let fine = &levels[level];
        let map = &maps[level];
        let mut fine_partition = vec![0u32; fine.num_vertices()];
        for (v, p) in fine_partition.iter_mut().enumerate() {
            *p = partition[map[v] as usize];
        }
        partition = fine_partition;
        let max_weight = max_part_weight(fine.total_vweight(), k, imbalance);
        rebalance(fine, &mut partition, k, max_weight);
        refine(fine, &mut partition, k, max_weight, 4);
    }
    partition
}

fn max_part_weight(total: u64, k: usize, imbalance: f64) -> u64 {
    let ideal = total as f64 / k as f64;
    (ideal * imbalance).ceil() as u64 + 1
}

/// Heavy-edge matching: collapse matched pairs into coarse vertices.
/// Pairs whose combined weight would exceed `max_vertex_weight` are not
/// matched.
fn coarsen(
    g: &WeightedGraph,
    rng: &mut StdRng,
    max_vertex_weight: u64,
) -> (WeightedGraph, Vec<u32>) {
    let n = g.num_vertices();
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.shuffle(rng);
    const UNMATCHED: u32 = u32::MAX;
    let mut map = vec![UNMATCHED; n];
    let mut next_coarse = 0u32;
    for &v in &order {
        if map[v as usize] != UNMATCHED {
            continue;
        }
        let mut best: Option<(u32, u64)> = None;
        for (u, w) in g.neighbors(v) {
            if map[u as usize] == UNMATCHED
                && u != v
                && g.vweights[v as usize] + g.vweights[u as usize] <= max_vertex_weight
            {
                match best {
                    Some((_, bw)) if bw >= w => {}
                    _ => best = Some((u, w)),
                }
            }
        }
        map[v as usize] = next_coarse;
        if let Some((u, _)) = best {
            map[u as usize] = next_coarse;
        }
        next_coarse += 1;
    }
    let cn = next_coarse as usize;
    let mut vweights = vec![0u64; cn];
    for v in 0..n {
        vweights[map[v] as usize] += g.vweights[v];
    }
    // Aggregate coarse edges through a sort.
    let mut triples: Vec<(u32, u32, u64)> = Vec::with_capacity(g.targets.len());
    for v in 0..n as u32 {
        let cv = map[v as usize];
        for (u, w) in g.neighbors(v) {
            let cu = map[u as usize];
            if cu != cv {
                triples.push((cv, cu, w));
            }
        }
    }
    triples.sort_unstable_by_key(|&(a, b, _)| (a, b));
    let mut offsets = Vec::with_capacity(cn + 1);
    let mut targets = Vec::new();
    let mut eweights = Vec::new();
    offsets.push(0);
    let mut cursor = 0usize;
    for cv in 0..cn as u32 {
        while cursor < triples.len() && triples[cursor].0 == cv {
            let (_, cu, mut w) = triples[cursor];
            cursor += 1;
            while cursor < triples.len() && triples[cursor].0 == cv && triples[cursor].1 == cu {
                w += triples[cursor].2;
                cursor += 1;
            }
            targets.push(cu);
            eweights.push(w);
        }
        offsets.push(targets.len());
    }
    (
        WeightedGraph {
            offsets,
            targets,
            eweights,
            vweights,
        },
        map,
    )
}

/// Greedy region growing for the initial k-way partition.
fn grow_initial(g: &WeightedGraph, k: usize, rng: &mut StdRng) -> Partition {
    let n = g.num_vertices();
    const FREE: u32 = u32::MAX;
    let mut partition = vec![FREE; n];
    let total = g.total_vweight();
    let target = total / k as u64;
    let mut remaining: Vec<u32> = (0..n as u32).collect();
    for p in 0..(k - 1) as u32 {
        remaining.retain(|&v| partition[v as usize] == FREE);
        if remaining.is_empty() {
            break;
        }
        let seed_vertex = remaining[rng.gen_range(0..remaining.len())];
        let mut weight = 0u64;
        let mut frontier: Vec<u32> = vec![seed_vertex];
        partition[seed_vertex as usize] = p;
        weight += g.vweights[seed_vertex as usize];
        while weight < target {
            // Pick the frontier neighbour with the strongest connection to
            // the region; fall back to any free vertex to guarantee
            // progress in disconnected graphs.
            let mut best: Option<(u32, u64)> = None;
            for &v in &frontier {
                for (u, w) in g.neighbors(v) {
                    if partition[u as usize] == FREE {
                        match best {
                            Some((_, bw)) if bw >= w => {}
                            _ => best = Some((u, w)),
                        }
                    }
                }
            }
            let chosen = match best {
                Some((u, _)) => u,
                None => match remaining.iter().find(|&&v| partition[v as usize] == FREE) {
                    Some(&u) => u,
                    None => break,
                },
            };
            partition[chosen as usize] = p;
            weight += g.vweights[chosen as usize];
            frontier.push(chosen);
            if frontier.len() > 64 {
                // Keep the frontier bounded: old interior vertices rarely
                // have free neighbours left.
                frontier.drain(0..32);
            }
        }
    }
    for p in &mut partition {
        if *p == FREE {
            *p = (k - 1) as u32;
        }
    }
    partition
}

/// Moves vertices out of overweight parts until the bound holds, or no
/// move can make progress (possible when one coarse vertex alone exceeds
/// the bound — later, finer levels fix it).
fn rebalance(g: &WeightedGraph, partition: &mut [u32], k: usize, max_weight: u64) {
    let mut weights = vec![0u64; k];
    for (v, &p) in partition.iter().enumerate() {
        weights[p as usize] += g.vweights[v];
    }
    let mut budget = 4 * g.num_vertices() + 16;
    loop {
        if budget == 0 {
            return;
        }
        budget -= 1;
        let Some(over) = (0..k).find(|&p| weights[p] > max_weight) else {
            return;
        };
        // Move the overweight part's lightest-penalty vertex into the
        // lightest part — but only if that strictly improves the pair's
        // maximum, otherwise the move would ping-pong forever.
        let lightest = (0..k).min_by_key(|&p| weights[p]).expect("k > 0");
        if lightest == over {
            return;
        }
        let mut best: Option<(u32, i64)> = None;
        for (v, &p) in partition.iter().enumerate() {
            if p as usize != over {
                continue;
            }
            if weights[lightest] + g.vweights[v] >= weights[over] {
                continue;
            }
            let mut internal = 0i64;
            let mut to_light = 0i64;
            for (u, w) in g.neighbors(v as u32) {
                if partition[u as usize] as usize == over {
                    internal += w as i64;
                } else if partition[u as usize] as usize == lightest {
                    to_light += w as i64;
                }
            }
            let gain = to_light - internal;
            match best {
                Some((_, bg)) if bg >= gain => {}
                _ => best = Some((v as u32, gain)),
            }
        }
        let Some((v, _)) = best else { return };
        partition[v as usize] = lightest as u32;
        weights[over] -= g.vweights[v as usize];
        weights[lightest] += g.vweights[v as usize];
    }
}

/// Boundary FM refinement: greedily move boundary vertices to the part
/// they are most connected to, subject to the weight bound.
fn refine(g: &WeightedGraph, partition: &mut [u32], k: usize, max_weight: u64, passes: usize) {
    let n = g.num_vertices();
    let mut weights = vec![0u64; k];
    for (v, &p) in partition.iter().enumerate() {
        weights[p as usize] += g.vweights[v];
    }
    let mut conn = vec![0i64; k];
    for _ in 0..passes {
        let mut moved = 0usize;
        for v in 0..n as u32 {
            let current = partition[v as usize] as usize;
            conn.iter_mut().for_each(|c| *c = 0);
            let mut boundary = false;
            for (u, w) in g.neighbors(v) {
                let up = partition[u as usize] as usize;
                conn[up] += w as i64;
                if up != current {
                    boundary = true;
                }
            }
            if !boundary {
                continue;
            }
            let vw = g.vweights[v as usize];
            let mut best = current;
            let mut best_gain = 0i64;
            for p in 0..k {
                if p == current || weights[p] + vw > max_weight {
                    continue;
                }
                let gain = conn[p] - conn[current];
                let better = gain > best_gain
                    || (gain == best_gain && best == current && weights[p] + vw < weights[current]);
                if better {
                    best = p;
                    best_gain = gain;
                }
            }
            if best != current {
                partition[v as usize] = best as u32;
                weights[current] -= vw;
                weights[best] += vw;
                moved += 1;
            }
        }
        if moved == 0 {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{balance, edge_cut};
    use crate::simple::random_partition;
    use dgcl_graph::generators::{barabasi_albert, erdos_renyi};
    use dgcl_graph::GraphBuilder;

    #[test]
    fn two_cliques_split_cleanly() {
        // Two 4-cliques joined by one edge: the optimal 2-way cut is 2
        // directed edges.
        let mut b = GraphBuilder::new(8);
        for i in 0..4u32 {
            for j in (i + 1)..4 {
                b.add_edge(i, j);
                b.add_edge(i + 4, j + 4);
            }
        }
        b.add_edge(0, 4);
        let g = b.build_symmetric();
        let p = kway(&g, 2, 1);
        assert_eq!(edge_cut(&g, &p), 2);
        assert!((balance(&p, 2) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn respects_balance_bound() {
        let g = barabasi_albert(3000, 3, 7);
        for k in [2, 4, 8] {
            let p = kway(&g, k, 11);
            assert!(
                balance(&p, k) <= DEFAULT_IMBALANCE + 0.02,
                "k={k} balance {}",
                balance(&p, k)
            );
        }
    }

    #[test]
    fn beats_random_partitioning() {
        // Barabási–Albert graphs are expanders, so even METIS cannot cut
        // them cheaply; still, multilevel partitioning should clearly beat
        // a random assignment.
        let g = barabasi_albert(2000, 3, 3);
        let smart = edge_cut(&g, &kway(&g, 4, 5));
        let random = edge_cut(&g, &random_partition(&g, 4, 5));
        assert!(
            (smart as f64) < 0.65 * random as f64,
            "cut {smart} not clearly below random {random}"
        );
    }

    #[test]
    fn single_part_is_all_zero() {
        let g = erdos_renyi(100, 300, 2);
        assert!(kway(&g, 1, 0).iter().all(|&p| p == 0));
    }

    #[test]
    fn deterministic_per_seed() {
        let g = erdos_renyi(500, 2000, 9);
        assert_eq!(kway(&g, 4, 42), kway(&g, 4, 42));
    }

    #[test]
    fn every_part_is_used() {
        let g = erdos_renyi(400, 1600, 8);
        let p = kway(&g, 8, 2);
        let mut seen = [false; 8];
        for &x in &p {
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "at least one part")]
    fn zero_parts_panics() {
        let g = erdos_renyi(10, 20, 0);
        let _ = kway(&g, 0, 0);
    }

    #[test]
    fn empty_graph_gives_empty_partition() {
        let g = dgcl_graph::CsrGraph::empty(0);
        assert!(kway(&g, 1, 0).is_empty());
    }
}
