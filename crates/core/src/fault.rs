//! Deterministic fault injection at the fabric boundary.
//!
//! A [`FaultPlan`] is a fixed list of [`FaultEvent`]s applied while the
//! cluster runs: crash a rank when it reaches a given collective, delay a
//! message, deliver it twice, or hold it back past the link's next
//! message (reorder). Plans are plain data — the same plan replays the
//! same faults — and [`FaultPlan::seeded`] derives a random benign
//! (delay/duplicate/reorder only) plan from a seed, which the chaos suite
//! uses to assert the §6.1 flag protocol's central claim: message timing
//! and delivery order never change training results, only crashes do.
//!
//! The same events mirror into the performance simulator via
//! [`FaultPlan::mirror_sim`], so wall-clock models and the real runtime
//! can be subjected to one fault description.

use std::time::Duration;

use dgcl_sim::faults::{SimFault, SimFaultPlan};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One injected fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultEvent {
    /// Rank `rank` fails permanently when it starts collective `at_op`
    /// (1-based operation counter; every collective increments it).
    Crash {
        /// The rank to crash.
        rank: usize,
        /// The operation index at which to crash.
        at_op: u64,
    },
    /// Rank `rank` fails permanently *inside* collective `at_op`, after
    /// executing `after_actions` pipeline actions (chunk sends/receives).
    /// Unlike [`FaultEvent::Crash`], which fires at the operation
    /// boundary, this models a device dying mid-transfer with some chunks
    /// already delivered — peers must still fail within the deadline.
    CrashMidOp {
        /// The rank to crash.
        rank: usize,
        /// The operation index during which to crash.
        at_op: u64,
        /// How many pipeline actions complete before the crash.
        after_actions: usize,
    },
    /// Rank `rank` fails permanently at the *epoch boundary*: the first
    /// thing the trainer does when entering epoch `epoch` (0-based) is
    /// die, before any collective of that epoch starts. This is the clean
    /// half of the recovery test matrix — the last checkpoint is exactly
    /// one epoch behind — where [`FaultEvent::CrashMidOp`] models dying
    /// with an epoch's collectives half-flown.
    CrashAtEpoch {
        /// The rank to crash.
        rank: usize,
        /// The 0-based epoch at whose start the rank dies.
        epoch: usize,
    },
    /// Messages from `src` to `dst` in plan stage `stage` are delayed by
    /// `delay` before delivery (the sender blocks, like a slow link).
    Delay {
        /// Sending rank.
        src: usize,
        /// Receiving rank.
        dst: usize,
        /// Plan stage of the message.
        stage: u32,
        /// Added link latency.
        delay: Duration,
    },
    /// Messages from `src` to `dst` in plan stage `stage` are delivered
    /// twice (the duplicate must be absorbed by the keyed protocol).
    Duplicate {
        /// Sending rank.
        src: usize,
        /// Receiving rank.
        dst: usize,
        /// Plan stage of the message.
        stage: u32,
    },
    /// Messages from `src` to `dst` in plan stage `stage` are held back
    /// until the link's next message (or until the receiver demands
    /// them), arriving out of order.
    Reorder {
        /// Sending rank.
        src: usize,
        /// Receiving rank.
        dst: usize,
        /// Plan stage of the message.
        stage: u32,
    },
}

/// A deterministic set of faults to inject into one cluster run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The events, applied whenever a message or operation matches.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// A plan with no faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// A plan that crashes `rank` when it reaches collective `at_op`.
    pub fn crash(rank: usize, at_op: u64) -> Self {
        Self {
            events: vec![FaultEvent::Crash { rank, at_op }],
        }
    }

    /// A plan that crashes `rank` at the boundary of epoch `epoch`.
    pub fn crash_at_epoch(rank: usize, epoch: usize) -> Self {
        Self {
            events: vec![FaultEvent::CrashAtEpoch { rank, epoch }],
        }
    }

    /// A deterministic single-crash plan derived from `seed`: one rank in
    /// `0..num_devices` dies, either at a random epoch boundary in
    /// `0..max_epoch` or mid-operation (alternating on the seed), so the
    /// recovery suite can sweep seeds and exercise both loss modes.
    ///
    /// # Panics
    ///
    /// Panics if `num_devices` is zero or `max_epoch` is zero.
    pub fn seeded_crash(seed: u64, num_devices: usize, max_epoch: usize) -> Self {
        assert!(num_devices > 0, "need at least one device");
        assert!(max_epoch > 0, "need at least one epoch to crash in");
        let mut rng = StdRng::seed_from_u64(seed);
        let rank = rng.gen_range(0..num_devices);
        let epoch = rng.gen_range(0..max_epoch);
        let event = if rng.gen_range(0..2u8) == 0 {
            FaultEvent::CrashAtEpoch { rank, epoch }
        } else {
            // Mid-op: die inside one of the epoch's first collectives,
            // after a few pipeline actions.
            FaultEvent::CrashMidOp {
                rank,
                at_op: (epoch as u64) * 2 + 1,
                after_actions: rng.gen_range(1..8),
            }
        };
        Self {
            events: vec![event],
        }
    }

    /// A random *benign* plan (delays, duplicates and reorders — no
    /// crashes) over `num_devices` ranks, derived deterministically from
    /// `seed`. Benign plans must never change training results.
    pub fn seeded(seed: u64, num_devices: usize, num_events: usize, max_delay: Duration) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut events = Vec::with_capacity(num_events);
        for _ in 0..num_events {
            if num_devices < 2 {
                break;
            }
            let src = rng.gen_range(0..num_devices);
            let mut dst = rng.gen_range(0..num_devices - 1);
            if dst >= src {
                dst += 1;
            }
            let stage = rng.gen_range(0..4u32);
            events.push(match rng.gen_range(0..3u8) {
                0 => FaultEvent::Delay {
                    src,
                    dst,
                    stage,
                    delay: Duration::from_micros(
                        rng.gen_range(0..max_delay.as_micros().max(1) as u64),
                    ),
                },
                1 => FaultEvent::Duplicate { src, dst, stage },
                _ => FaultEvent::Reorder { src, dst, stage },
            });
        }
        Self { events }
    }

    /// Whether every event is benign (no crashes).
    pub fn is_benign(&self) -> bool {
        !self.events.iter().any(|e| {
            matches!(
                e,
                FaultEvent::Crash { .. }
                    | FaultEvent::CrashMidOp { .. }
                    | FaultEvent::CrashAtEpoch { .. }
            )
        })
    }

    /// The earliest epoch at whose boundary `rank` is scheduled to die,
    /// if a [`FaultEvent::CrashAtEpoch`] names it.
    pub fn crash_epoch(&self, rank: usize) -> Option<usize> {
        self.events
            .iter()
            .filter_map(|e| match e {
                FaultEvent::CrashAtEpoch { rank: r, epoch } if *r == rank => Some(*epoch),
                _ => None,
            })
            .min()
    }

    /// The earliest op at which `rank` is scheduled to crash, if any.
    pub fn crash_at(&self, rank: usize) -> Option<u64> {
        self.events
            .iter()
            .filter_map(|e| match e {
                FaultEvent::Crash { rank: r, at_op } if *r == rank => Some(*at_op),
                _ => None,
            })
            .min()
    }

    /// The `(op, actions-before-crash)` at which `rank` dies mid-operation,
    /// if a [`FaultEvent::CrashMidOp`] is scheduled for it (earliest op
    /// wins).
    pub fn crash_mid(&self, rank: usize) -> Option<(u64, usize)> {
        self.events
            .iter()
            .filter_map(|e| match e {
                FaultEvent::CrashMidOp {
                    rank: r,
                    at_op,
                    after_actions,
                } if *r == rank => Some((*at_op, *after_actions)),
                _ => None,
            })
            .min()
    }

    /// Total injected delay for a `(src, dst, stage)` message.
    pub fn delay_for(&self, src: usize, dst: usize, stage: u32) -> Duration {
        self.events
            .iter()
            .filter_map(|e| match e {
                FaultEvent::Delay {
                    src: s,
                    dst: d,
                    stage: st,
                    delay,
                } if (*s, *d, *st) == (src, dst, stage) => Some(*delay),
                _ => None,
            })
            .sum()
    }

    /// Whether a `(src, dst, stage)` message is delivered twice.
    pub fn duplicates(&self, src: usize, dst: usize, stage: u32) -> bool {
        self.events.iter().any(|e| {
            matches!(e, FaultEvent::Duplicate { src: s, dst: d, stage: st }
                if (*s, *d, *st) == (src, dst, stage))
        })
    }

    /// Whether a `(src, dst, stage)` message is held for reordering.
    pub fn reorders(&self, src: usize, dst: usize, stage: u32) -> bool {
        self.events.iter().any(|e| {
            matches!(e, FaultEvent::Reorder { src: s, dst: d, stage: st }
                if (*s, *d, *st) == (src, dst, stage))
        })
    }

    /// Mirrors the plan into the performance simulator's fault events so
    /// `dgcl-sim` can replay the same scenario against the fluid network
    /// model (crash op indices map onto plan stages 1:1 there).
    pub fn mirror_sim(&self) -> SimFaultPlan {
        SimFaultPlan {
            events: self
                .events
                .iter()
                .map(|e| match *e {
                    FaultEvent::Crash { rank, at_op }
                    | FaultEvent::CrashMidOp { rank, at_op, .. } => SimFault::Crash {
                        rank,
                        stage: at_op.saturating_sub(1) as usize,
                    },
                    // Epoch boundaries precede any collective of the
                    // epoch; the fluid model sees a crash at stage 0.
                    FaultEvent::CrashAtEpoch { rank, .. } => SimFault::Crash { rank, stage: 0 },
                    FaultEvent::Delay {
                        src,
                        dst,
                        stage,
                        delay,
                    } => SimFault::Delay {
                        src,
                        dst,
                        stage: stage as usize,
                        seconds: delay.as_secs_f64(),
                    },
                    FaultEvent::Duplicate { src, dst, stage } => SimFault::Duplicate {
                        src,
                        dst,
                        stage: stage as usize,
                    },
                    FaultEvent::Reorder { src, dst, stage } => SimFault::Reorder {
                        src,
                        dst,
                        stage: stage as usize,
                    },
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_deterministic_and_benign() {
        let a = FaultPlan::seeded(9, 4, 8, Duration::from_millis(5));
        let b = FaultPlan::seeded(9, 4, 8, Duration::from_millis(5));
        assert_eq!(a, b, "same seed, same plan");
        assert!(a.is_benign());
        assert_eq!(a.events.len(), 8);
        let c = FaultPlan::seeded(10, 4, 8, Duration::from_millis(5));
        assert_ne!(a, c, "different seed, different plan");
    }

    #[test]
    fn crash_at_picks_earliest_op() {
        let plan = FaultPlan {
            events: vec![
                FaultEvent::Crash { rank: 1, at_op: 7 },
                FaultEvent::Crash { rank: 1, at_op: 3 },
                FaultEvent::Crash { rank: 2, at_op: 1 },
            ],
        };
        assert_eq!(plan.crash_at(1), Some(3));
        assert_eq!(plan.crash_at(2), Some(1));
        assert_eq!(plan.crash_at(0), None);
        assert!(!plan.is_benign());
    }

    #[test]
    fn crash_at_epoch_is_deterministic_and_not_benign() {
        let plan = FaultPlan::crash_at_epoch(3, 2);
        assert!(!plan.is_benign());
        assert_eq!(plan.crash_epoch(3), Some(2));
        assert_eq!(plan.crash_epoch(0), None);
        let a = FaultPlan::seeded_crash(7, 4, 5);
        let b = FaultPlan::seeded_crash(7, 4, 5);
        assert_eq!(a, b, "same seed, same crash");
        assert!(!a.is_benign());
        assert_eq!(a.events.len(), 1);
        // Across seeds both crash modes appear.
        let modes: Vec<bool> = (0..16)
            .map(|s| {
                matches!(
                    FaultPlan::seeded_crash(s, 4, 5).events[0],
                    FaultEvent::CrashAtEpoch { .. }
                )
            })
            .collect();
        assert!(modes.iter().any(|&m| m) && modes.iter().any(|&m| !m));
    }

    #[test]
    fn crash_epoch_picks_earliest() {
        let plan = FaultPlan {
            events: vec![
                FaultEvent::CrashAtEpoch { rank: 1, epoch: 4 },
                FaultEvent::CrashAtEpoch { rank: 1, epoch: 2 },
            ],
        };
        assert_eq!(plan.crash_epoch(1), Some(2));
    }

    #[test]
    fn delays_accumulate_per_link_stage() {
        let plan = FaultPlan {
            events: vec![
                FaultEvent::Delay {
                    src: 0,
                    dst: 1,
                    stage: 2,
                    delay: Duration::from_millis(3),
                },
                FaultEvent::Delay {
                    src: 0,
                    dst: 1,
                    stage: 2,
                    delay: Duration::from_millis(4),
                },
            ],
        };
        assert_eq!(plan.delay_for(0, 1, 2), Duration::from_millis(7));
        assert_eq!(plan.delay_for(1, 0, 2), Duration::ZERO);
    }

    #[test]
    fn mirror_sim_translates_every_event() {
        let plan = FaultPlan {
            events: vec![
                FaultEvent::Crash { rank: 2, at_op: 3 },
                FaultEvent::Duplicate {
                    src: 0,
                    dst: 1,
                    stage: 0,
                },
            ],
        };
        let sim = plan.mirror_sim();
        assert_eq!(sim.events.len(), 2);
        assert!(matches!(
            sim.events[0],
            SimFault::Crash { rank: 2, stage: 2 }
        ));
    }
}
