//! Hot-vertex remote feature cache: deterministic, offline-sized,
//! bitwise-neutral.
//!
//! Layer-0 feature rows never change during training, yet every sampled
//! mini-batch and every full-batch epoch re-fetches the same hot remote
//! rows over the wire. This module caches the hottest ones per rank:
//!
//! * **Admission is offline and deterministic.** Each rank ranks every
//!   non-owned vertex by `(1 + halo refs) × degree` — the number of its
//!   local aggregation rows that consume the vertex directly
//!   ([`PartitionedGraph::remote_ref_counts`]), plus one, times the
//!   vertex's degree (multi-hop sampled frontiers reach far beyond the
//!   1-hop halo, and a vertex's sampler hit odds scale with its degree
//!   no matter which part pulls it in) — with ascending-id tie-breaks.
//!   Every rank derives every other rank's cached set from
//!   the shared [`CommInfo`], so senders know what receivers hold and
//!   no negotiation round exists (the same pattern as the backend
//!   selector and the collective autotuner).
//! * **Capacity comes from a model, not a guess.**
//!   [`CacheModel`](dgcl_sim::CacheModel) prices each candidate's
//!   expected per-epoch fetch savings against residency and
//!   [`CachePolicy::Auto`] admits exactly the paying prefix. Capacities
//!   are *nested prefixes* of one ranking, so gather volume is monotone
//!   nonincreasing in capacity.
//! * **Cache-on is bitwise cache-off.** Cached rows are plain `f32`
//!   copies of the same global feature rows the wire would deliver;
//!   the executors assemble the identical matrices, so every backend,
//!   device count and architecture produces bit-identical outputs with
//!   the cache on or off — the property `cache_parity` proptests pin.
//!
//! Per-rank [`CacheStats`] count hits, misses and bytes saved; they are
//! the deterministic volume instrument behind `BENCH_cache.json`.

use std::sync::atomic::{AtomicU64, Ordering};

use dgcl_gnn::aggregate::{aggregate_mean, aggregate_sum};
use dgcl_gnn::AggKind;
use dgcl_graph::{CsrGraph, VertexId};
use dgcl_partition::PartitionedGraph;
use dgcl_sim::CacheModel;
use dgcl_tensor::Matrix;

use crate::comm_info::CommInfo;
use crate::error::RuntimeError;
use crate::fabric::{expect_payload, MsgKey};
use crate::runtime::DeviceHandle;

/// How much of the ranked remote set each rank caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CachePolicy {
    /// No cache; every remote row travels every time.
    Off,
    /// Cache the top `n` ranked remote rows per rank (clamped to the
    /// remote set size). `Fixed(0)` keeps the instrumentation active —
    /// stats count every fetch — without saving any volume, which is
    /// the baseline the cache benchmark measures against.
    Fixed(usize),
    /// Let the offline [`CacheModel`](dgcl_sim::CacheModel) pick each
    /// rank's capacity.
    Auto,
}

/// The offline admission ranking and model-chosen capacities, one entry
/// per rank. Built once by
/// [`build_comm_info`](crate::comm_info::build_comm_info) from the
/// partition alone, so every rank reading the [`CommInfo`] agrees on
/// every cache set.
#[derive(Debug, Clone)]
pub struct FeatureCacheSets {
    /// Per rank: every non-owned vertex in descending
    /// `(1 + halo refs) × degree` score order (ascending id on ties).
    /// The set is *all* non-owned vertices, not just the 1-hop halo:
    /// multi-hop sampled frontiers fetch far beyond the halo, and a
    /// high-degree vertex is hot for every rank whose samples reach it.
    pub ranked: Vec<Vec<VertexId>>,
    /// Per rank: the capacity [`CachePolicy::Auto`] resolves to.
    pub auto_capacity: Vec<usize>,
    /// The build-time policy ([`CachePolicy::Off`] unless
    /// `BuildOptions::feature_cache` says otherwise); training may
    /// override it per run.
    pub policy: CachePolicy,
}

impl FeatureCacheSets {
    /// Scores and ranks every rank's remote vertices and sizes the
    /// [`CachePolicy::Auto`] capacities. `width` is the feature row
    /// width in `f32` elements assumed by the sizing model.
    pub fn score(
        graph: &CsrGraph,
        pg: &PartitionedGraph,
        width: usize,
        policy: CachePolicy,
    ) -> Self {
        let mut ranked = Vec::with_capacity(pg.num_parts);
        let mut auto_capacity = Vec::with_capacity(pg.num_parts);
        for d in 0..pg.num_parts {
            let refs = pg.remote_ref_counts(graph, d);
            let n = graph.num_vertices();
            // Every non-owned vertex is a candidate. Direct halo
            // references weight the score where they exist; degree alone
            // carries it for multi-hop vertices the sampler reaches
            // through other parts (each sampled occurrence of `v` draws
            // it with probability ~fanout/deg per adjacent row, so its
            // expected per-epoch fetch count tracks its degree).
            let mut scored: Vec<(u64, VertexId)> = (0..n as VertexId)
                .filter(|&v| pg.partition[v as usize] as usize != d)
                .map(|v| {
                    let r = pg.remote[d].binary_search(&v).map(|i| refs[i]).unwrap_or(0);
                    let score = (u64::from(r) + 1).saturating_mul(graph.out_degree(v) as u64);
                    (score, v)
                })
                .collect();
            scored.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
            // Modelled per-epoch fetch gain: √score, not raw score. The
            // gather plans deduplicate repeated rows per exchange, so a
            // hub's measured fetch frequency saturates at once per batch
            // no matter how many sampled rows consume it — its effective
            // gain grows sublinearly in raw demand. The square root is
            // that saturation's cheap offline stand-in; without it α
            // (the mean gain) sits so far up the hub tail that Auto
            // admits a cache too small to dent deduped volume.
            let gains: Vec<f64> = scored.iter().map(|&(s, _)| (s as f64).sqrt()).collect();
            // α = the mean gain: a row must beat the average candidate
            // to pay for residency.
            let alpha = if gains.is_empty() {
                0.0
            } else {
                gains.iter().sum::<f64>() / gains.len() as f64
            };
            auto_capacity.push(CacheModel::new(width, gains, alpha).choose_capacity());
            ranked.push(scored.into_iter().map(|(_, v)| v).collect());
        }
        Self {
            ranked,
            auto_capacity,
            policy,
        }
    }

    /// The row count `policy` resolves to for `rank`.
    pub fn capacity(&self, rank: usize, policy: CachePolicy) -> usize {
        let cap = match policy {
            CachePolicy::Off => 0,
            CachePolicy::Fixed(n) => n,
            CachePolicy::Auto => self.auto_capacity[rank],
        };
        cap.min(self.ranked[rank].len())
    }

    /// The cached vertex ids for `rank` under `policy`: the ranking's
    /// prefix, returned ascending for binary search.
    pub fn cached_ids(&self, rank: usize, policy: CachePolicy) -> Vec<VertexId> {
        let mut ids = self.ranked[rank][..self.capacity(rank, policy)].to_vec();
        ids.sort_unstable();
        ids
    }
}

/// Lock-free per-rank traffic counters; bumped by the executors, read
/// by reports after the cluster joins.
#[derive(Debug, Default)]
pub struct CacheStats {
    hits: AtomicU64,
    misses: AtomicU64,
    bytes_fetched: AtomicU64,
    bytes_saved: AtomicU64,
}

impl CacheStats {
    /// Records one exchange: `hits` unique rows served locally, `misses`
    /// unique rows fetched over the wire, each `cols` floats wide.
    pub fn record(&self, hits: u64, misses: u64, cols: usize) {
        let row_bytes = 4 * cols as u64;
        self.hits.fetch_add(hits, Ordering::Relaxed);
        self.misses.fetch_add(misses, Ordering::Relaxed);
        self.bytes_fetched
            .fetch_add(misses * row_bytes, Ordering::Relaxed);
        self.bytes_saved
            .fetch_add(hits * row_bytes, Ordering::Relaxed);
    }

    /// Copies out the counters, stamping the holder's capacity.
    pub fn snapshot(&self, capacity_rows: u64) -> CacheStatsSnapshot {
        CacheStatsSnapshot {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            bytes_fetched: self.bytes_fetched.load(Ordering::Relaxed),
            bytes_saved: self.bytes_saved.load(Ordering::Relaxed),
            capacity_rows,
        }
    }
}

/// A point-in-time copy of one rank's (or a whole cluster's) counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStatsSnapshot {
    /// Unique remote rows served from the cache.
    pub hits: u64,
    /// Unique remote rows fetched over the wire.
    pub misses: u64,
    /// Wire bytes actually moved for remote rows.
    pub bytes_fetched: u64,
    /// Wire bytes the cache avoided moving.
    pub bytes_saved: u64,
    /// Resident cache rows (summed across ranks in cluster totals).
    pub capacity_rows: u64,
}

impl CacheStatsSnapshot {
    /// Fraction of remote-row requests served locally (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One rank's resident cache: the admitted remote rows and their feature
/// values, plus traffic counters. Values are gathered once from the
/// global feature matrix — exactly the rows the wire would deliver.
#[derive(Debug)]
pub struct FeatureCache {
    /// Cached global vertex ids, ascending.
    pub ids: Vec<VertexId>,
    /// `rows[i]` is the feature row of `ids[i]`.
    pub rows: Matrix,
    /// Hit/miss/volume counters for this rank.
    pub stats: CacheStats,
}

impl FeatureCache {
    /// The cache row index holding `v`, if admitted.
    pub fn lookup(&self, v: VertexId) -> Option<usize> {
        self.ids.binary_search(&v).ok()
    }

    /// Copies out the counters.
    pub fn snapshot(&self) -> CacheStatsSnapshot {
        self.stats.snapshot(self.ids.len() as u64)
    }
}

/// Every rank's cache, built once at the training driver and shared by
/// the device threads (reads are immutable, counters are atomic).
#[derive(Debug)]
pub struct ClusterCache {
    /// Per-rank caches, indexed by rank.
    pub caches: Vec<FeatureCache>,
}

impl ClusterCache {
    /// Materialises every rank's cache under `policy` from the global
    /// feature matrix. Returns `None` for [`CachePolicy::Off`] — the
    /// trainer then runs the uncached paths untouched.
    ///
    /// # Panics
    ///
    /// Panics if `features` has fewer rows than the graph has vertices.
    pub fn build(info: &CommInfo, features: &Matrix, policy: CachePolicy) -> Option<Self> {
        if policy == CachePolicy::Off {
            return None;
        }
        let sets = &info.feature_cache;
        let caches = (0..info.num_devices())
            .map(|rank| {
                let ids = sets.cached_ids(rank, policy);
                let idx: Vec<usize> = ids.iter().map(|&v| v as usize).collect();
                FeatureCache {
                    rows: features.gather_rows(&idx),
                    ids,
                    stats: CacheStats::default(),
                }
            })
            .collect();
        Some(Self { caches })
    }

    /// Whether `v` sits in `rank`'s cache.
    pub fn contains(&self, rank: usize, v: VertexId) -> bool {
        self.caches[rank].lookup(v).is_some()
    }

    /// Cluster-total counters (capacities summed).
    pub fn snapshot(&self) -> CacheStatsSnapshot {
        let mut total = CacheStatsSnapshot::default();
        for c in &self.caches {
            let s = c.snapshot();
            total.hits += s.hits;
            total.misses += s.misses;
            total.bytes_fetched += s.bytes_fetched;
            total.bytes_saved += s.bytes_saved;
            total.capacity_rows += s.capacity_rows;
        }
        total
    }
}

/// One rank's precomputed full-batch layer-0 halo exchange under a
/// cache: which local rows to send each peer (the peer's demand minus
/// its cache), which full-matrix positions each peer's payload fills
/// (this rank's demand minus its own cache), and which positions the
/// resident cache fills directly. All three derive from the shared
/// demands and cache sets, so the sends and receives pair up across
/// ranks without negotiation — the cached analogue of the SPST tables.
#[derive(Debug)]
pub struct HaloExchange {
    /// Ascending peers and the `h_local` row indices to send each.
    sends: Vec<(usize, Vec<usize>)>,
    /// Ascending peers and the full-matrix row positions their payload
    /// fills, in the sender's (ascending global id) order.
    recvs: Vec<(usize, Vec<usize>)>,
    /// `(full-matrix row, cache row)` pairs the resident cache fills.
    cached_fill: Vec<(usize, usize)>,
}

impl HaloExchange {
    /// Builds `rank`'s exchange against the cluster's cache sets.
    ///
    /// # Panics
    ///
    /// Panics if `cache` was built for a different partition.
    pub fn build(info: &CommInfo, rank: usize, cache: &ClusterCache) -> Self {
        let pg = &info.pg;
        let lg = pg.local_graph(rank);
        let locals = &pg.local[rank];
        let mine = &cache.caches[rank];
        let mut sends = Vec::new();
        let mut recvs = Vec::new();
        for peer in 0..pg.num_parts {
            if peer == rank {
                continue;
            }
            let out: Vec<usize> = pg.demands[rank][peer]
                .iter()
                .filter(|&&v| !cache.contains(peer, v))
                .map(|&v| locals.binary_search(&v).expect("demand rows are owned"))
                .collect();
            if !out.is_empty() {
                sends.push((peer, out));
            }
            let fill: Vec<usize> = pg.demands[peer][rank]
                .iter()
                .filter(|&&v| mine.lookup(v).is_none())
                .map(|&v| lg.local_id(v).expect("demanded row is visible"))
                .collect();
            if !fill.is_empty() {
                recvs.push((peer, fill));
            }
        }
        let cached_fill: Vec<(usize, usize)> = pg.remote[rank]
            .iter()
            .filter_map(|&v| {
                let ci = mine.lookup(v)?;
                Some((lg.local_id(v).expect("remote row is visible"), ci))
            })
            .collect();
        Self {
            sends,
            recvs,
            cached_fill,
        }
    }
}

/// The cached replacement for the planned layer-0 allgather: assembles
/// the full `num_total × cols` visible matrix from local rows, resident
/// cache rows and one op-aligned pairwise exchange of the leftover
/// misses. Every filled row is an `f32` copy of the owner's row — the
/// exact matrix [`graph_allgather`](DeviceHandle::graph_allgather)
/// produces — so downstream aggregation is bitwise unchanged.
///
/// # Errors
///
/// Any [`RuntimeError`]; errors poison the fabric so peers unwind.
pub fn halo_gather(
    dev: &DeviceHandle<'_>,
    h_local: &Matrix,
    halo: &HaloExchange,
    cache: &FeatureCache,
) -> Result<Matrix, RuntimeError> {
    let lg = dev.local_graph();
    let cols = h_local.cols();
    debug_assert_eq!(h_local.rows(), lg.num_local, "expected owned rows only");
    let rank = dev.rank;
    let res = dev.begin_op().and_then(|op| {
        let key: MsgKey = (op, 0, 0, 0);
        let fabric = dev.fabric();
        for (peer, rows) in &halo.sends {
            fabric.wait_ready(*peer, op, rank)?;
            fabric.send(rank, *peer, key, h_local.gather_rows(rows).into_vec())?;
        }
        let mut full = Matrix::zeros(lg.num_total(), cols);
        full.as_mut_slice()[..lg.num_local * cols].copy_from_slice(h_local.as_slice());
        for &(pos, ci) in &halo.cached_fill {
            full.set_row(pos, cache.rows.row(ci));
        }
        let mut fetched = 0u64;
        for (peer, fill) in &halo.recvs {
            let payload = fabric.recv(*peer, rank, key)?;
            expect_payload(rank, payload.len(), fill.len() * cols, key)?;
            let m = Matrix::from_vec(fill.len(), cols, payload);
            for (i, &pos) in fill.iter().enumerate() {
                full.set_row(pos, m.row(i));
            }
            fetched += fill.len() as u64;
        }
        cache
            .stats
            .record(halo.cached_fill.len() as u64, fetched, cols);
        Ok(full)
    });
    dev.poison_on_err(res)
}

/// A rank's bundled layer-0 state for the full-batch planned path: the
/// prebuilt exchange plus its cache. Bodies build one per run and route
/// layer 0 through [`HaloGatherCtx::agg_forward`] instead of the
/// backend's allgather.
pub(crate) struct HaloGatherCtx<'a> {
    halo: HaloExchange,
    cache: &'a FeatureCache,
}

impl<'a> HaloGatherCtx<'a> {
    /// Builds `rank`'s context, or `None` when no cache is active.
    pub(crate) fn build(
        info: &CommInfo,
        rank: usize,
        cache: Option<&'a ClusterCache>,
    ) -> Option<Self> {
        cache.map(|c| Self {
            halo: HaloExchange::build(info, rank, c),
            cache: &c.caches[rank],
        })
    }

    /// The distributed layer-0 aggregate via the cached halo: bitwise
    /// identical to `PlannedBackend::agg_forward` on raw features.
    pub(crate) fn agg_forward(
        &self,
        dev: &DeviceHandle<'_>,
        h_local: &Matrix,
        kind: AggKind,
    ) -> Result<Matrix, RuntimeError> {
        let full = halo_gather(dev, h_local, &self.halo, self.cache)?;
        let lg = dev.local_graph();
        Ok(match kind {
            AggKind::Sum => aggregate_sum(&lg.graph, &full, lg.num_local),
            AggKind::Mean => aggregate_mean(&lg.graph, &full, lg.num_local),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm_info::{build_comm_info, BuildOptions};
    use dgcl_graph::generators::hub_attachment;
    use dgcl_tensor::XavierInit;
    use dgcl_topology::Topology;

    fn setup() -> (CsrGraph, CommInfo, Matrix) {
        let graph = hub_attachment(400, 8, 0.8, 5);
        let opts = BuildOptions {
            feature_cache: CachePolicy::Auto,
            ..BuildOptions::default()
        };
        let info = build_comm_info(&graph, Topology::fig6(), opts);
        let n = graph.num_vertices();
        let features = XavierInit::new(9).features(n, 6);
        (graph, info, features)
    }

    #[test]
    fn ranking_is_descending_score_with_ascending_tiebreak() {
        let (graph, info, _) = setup();
        let sets = &info.feature_cache;
        let pg = &info.pg;
        for d in 0..pg.num_parts {
            let refs = pg.remote_ref_counts(&graph, d);
            let score = |v: VertexId| {
                let r = pg.remote[d].binary_search(&v).map(|i| refs[i]).unwrap_or(0);
                (u64::from(r) + 1) * graph.out_degree(v) as u64
            };
            // Candidates are every non-owned vertex, not just the halo.
            assert_eq!(
                sets.ranked[d].len(),
                graph.num_vertices() - pg.local[d].len()
            );
            for &v in &sets.ranked[d] {
                assert_ne!(pg.owner(v) as usize, d, "rank {d} ranked its own {v}");
            }
            for w in sets.ranked[d].windows(2) {
                let (a, b) = (score(w[0]), score(w[1]));
                assert!(a > b || (a == b && w[0] < w[1]), "rank {d}: {w:?}");
            }
        }
    }

    #[test]
    fn capacities_are_nested_prefixes() {
        let (_, info, _) = setup();
        let sets = &info.feature_cache;
        for rank in 0..info.num_devices() {
            let small = sets.cached_ids(rank, CachePolicy::Fixed(3));
            let big = sets.cached_ids(rank, CachePolicy::Fixed(10));
            for v in &small {
                assert!(big.binary_search(v).is_ok(), "prefixes must nest");
            }
            assert!(sets.cached_ids(rank, CachePolicy::Off).is_empty());
            let all = sets.cached_ids(rank, CachePolicy::Fixed(usize::MAX));
            assert_eq!(all.len(), sets.ranked[rank].len());
            assert!(all.windows(2).all(|w| w[0] < w[1]), "ids ascending");
        }
    }

    #[test]
    fn cluster_cache_holds_exact_feature_rows() {
        let (_, info, features) = setup();
        let cache = ClusterCache::build(&info, &features, CachePolicy::Auto).expect("auto is on");
        for (rank, c) in cache.caches.iter().enumerate() {
            assert_eq!(
                c.ids.len(),
                info.feature_cache.capacity(rank, CachePolicy::Auto)
            );
            for (i, &v) in c.ids.iter().enumerate() {
                assert_eq!(
                    c.rows.row(i),
                    features.row(v as usize),
                    "rank {rank} row {v}"
                );
            }
        }
    }

    #[test]
    fn off_policy_builds_no_cache() {
        let (_, info, features) = setup();
        assert!(ClusterCache::build(&info, &features, CachePolicy::Off).is_none());
        let zero = ClusterCache::build(&info, &features, CachePolicy::Fixed(0)).expect("built");
        assert_eq!(zero.snapshot().capacity_rows, 0);
    }

    #[test]
    fn halo_exchange_partitions_every_demand() {
        let (_, info, features) = setup();
        let cache = ClusterCache::build(&info, &features, CachePolicy::Fixed(6)).expect("built");
        for rank in 0..info.num_devices() {
            let halo = HaloExchange::build(&info, rank, &cache);
            let fetched: usize = halo.recvs.iter().map(|(_, f)| f.len()).sum();
            // Every remote row is either cached or fetched, never both.
            assert_eq!(
                fetched + halo.cached_fill.len(),
                info.pg.remote[rank].len(),
                "rank {rank}"
            );
            // Sends mirror the peers' recvs from this rank.
            for (peer, rows) in &halo.sends {
                let peer_halo = HaloExchange::build(&info, *peer, &cache);
                let matching = peer_halo
                    .recvs
                    .iter()
                    .find(|(p, _)| *p == rank)
                    .expect("peer expects this payload");
                assert_eq!(rows.len(), matching.1.len());
            }
        }
    }

    #[test]
    fn stats_snapshot_accumulates_bytes() {
        let stats = CacheStats::default();
        stats.record(3, 2, 4);
        stats.record(1, 0, 4);
        let cache = FeatureCache {
            ids: vec![1, 2],
            rows: Matrix::zeros(2, 4),
            stats,
        };
        let snap = cache.snapshot();
        assert_eq!(snap.hits, 4);
        assert_eq!(snap.misses, 2);
        assert_eq!(snap.bytes_fetched, 2 * 16);
        assert_eq!(snap.bytes_saved, 4 * 16);
        assert_eq!(snap.capacity_rows, 2);
        assert!((snap.hit_rate() - 4.0 / 6.0).abs() < 1e-12);
    }
}
