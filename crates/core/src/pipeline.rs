//! Chunk-pipelined execution of the compiled device schedules.
//!
//! The barriered executor in `runtime.rs` moves each `(stage, substage,
//! peer)` payload as one message and blocks on an entire stage before
//! forwarding a single row — link time and relay time add up. NCCL-style
//! collectives get their bandwidth from the missing ingredient: payloads
//! split into fixed-size chunks that stream through relays, so a relay
//! forwards chunk `k` the moment it arrives while chunk `k + 1` is still
//! in flight.
//!
//! This module compiles a [`DeviceSchedule`] into a [`PipelineSchedule`]:
//! a flat list of per-chunk send/receive [`ChunkAction`]s plus a packed
//! dependency list. Dependencies encode exactly the data hazards of the
//! barriered reference order:
//!
//! * a **send** depends on the last receive that wrote any of its rows
//!   (true dependency — a relay cannot forward a chunk before it holds
//!   it);
//! * a **receive** depends on the last write to any of its rows *and* on
//!   every send that read the row since (anti-dependency — backward
//!   receives accumulate in place, so a pending read must drain before
//!   the row changes).
//!
//! Everything else is unordered: the executor runs any action whose
//! dependencies are complete, polling receives with the non-blocking
//! [`Fabric::try_recv`]. Compilation happens once at `build_comm_info`
//! time; the hot path walks precompiled index ranges and cycles payload
//! buffers through the fabric pool, so steady-state execution stays
//! allocation-free.
//!
//! # Determinism
//!
//! Forward rows are written exactly once (single writer in the routing
//! tree) and every read depends on that writer, so values cannot depend
//! on arrival order. Backward rows accumulate, but writes to one row are
//! serialised by the writer chain and reads are pinned between the
//! writes they observed in the reference order by the anti-dependencies
//! — every payload and every output is bitwise identical to the
//! barriered path, which the property suite asserts across chunk sizes.
//!
//! # Deadlock freedom
//!
//! Dependencies always point to earlier actions in the compiled order
//! (the barriered reference order), so the *first* incomplete action of
//! a stuck device is always dependency-ready; because sends are always
//! executable, it is a receive. Order all actions of all devices by
//! `(stage, substage, send-before-recv, chunk)`: a matching send
//! strictly precedes its receive in that order, so the globally minimal
//! blocked receive's payload has either been sent — it unblocks — or its
//! sender's own first incomplete action sits even earlier in the global
//! order, contradicting minimality. Some device therefore always makes
//! progress; and every blocking wait additionally honours the fabric's
//! poison state and collective deadline, so even a crashed peer cannot
//! hang the pipeline.

use std::ops::Range;

use dgcl_plan::tuples::StageIo;
use dgcl_tensor::Matrix;

use crate::error::{ClusterFailure, RuntimeError};
use crate::fabric::{expect_payload, Fabric, MsgKey};
use crate::schedule::DeviceSchedule;

/// Sentinel for "no writer yet" while compiling dependencies.
const NONE: u32 = u32::MAX;

/// What one pipeline action does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActionKind {
    /// Pack a chunk of rows and post it to the peer.
    Send,
    /// Receive a chunk of rows from the peer and apply it.
    Recv,
}

/// One per-chunk action of a device's pipelined schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkAction {
    /// Send or receive.
    pub kind: ActionKind,
    /// Index into the device's table entries (and `send_refs`/`recv_refs`).
    pub entry: u32,
    /// Stage of the entry (redundant with the table, kept for key
    /// construction without an indirection).
    pub stage: u32,
    /// Sub-stage of the entry.
    pub substage: u32,
    /// Chunk index within the entry; the fourth [`MsgKey`] component.
    pub chunk: u32,
    /// Row range within the entry's ref list this chunk covers.
    pub rows: Range<u32>,
    /// Range into [`PipelineSchedule::deps`] listing the actions that
    /// must complete before this one may run.
    pub deps: Range<u32>,
}

/// A device's compiled chunk-pipelined schedule for one plan direction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineSchedule {
    /// Rows per chunk the schedule was compiled for.
    pub chunk_rows: usize,
    /// Actions in the barriered reference order (dependencies always
    /// point backwards).
    pub actions: Vec<ChunkAction>,
    /// Packed dependency lists, indexed by [`ChunkAction::deps`].
    pub deps: Vec<u32>,
}

/// Reusable executor state: one completion flag per action. Held per
/// device (and per overlap worker) so repeated operations allocate
/// nothing.
#[derive(Debug, Default)]
pub struct PipelineScratch {
    completed: Vec<bool>,
}

/// One packing or application request the executor hands to the caller's
/// row closure. A single closure serves both so it can borrow the output
/// and scratch buffers mutably at once.
pub enum ChunkIo<'a> {
    /// Append the rows named by `refs` to `payload` (send path).
    Pack {
        /// Table entry the chunk belongs to, for callers whose packing
        /// semantics differ per entry (the collective zoo). The planner
        /// closures ignore it.
        entry: u32,
        /// Packed row references of the chunk.
        refs: &'a [u32],
        /// Destination payload, pre-sized to `refs.len() * cols`.
        payload: &'a mut Vec<f32>,
    },
    /// Apply `payload`'s rows to the rows named by `refs` (receive path).
    Apply {
        /// Table entry the chunk belongs to, for callers whose apply
        /// semantics differ per entry (overwrite vs accumulate).
        entry: u32,
        /// Packed row references of the chunk.
        refs: &'a [u32],
        /// The received rows, `refs.len() * cols` floats.
        payload: &'a [f32],
    },
}

/// Compiles `sched` into a chunk-pipelined schedule. `row_space` is the
/// number of distinct packed row references (forward: `num_total +
/// scratch_rows`; backward: `num_local + scratch_rows`); `chunk_rows`
/// of `usize::MAX` yields one chunk per table entry.
pub fn compile(sched: &DeviceSchedule, row_space: usize, chunk_rows: usize) -> PipelineSchedule {
    let chunk_rows = chunk_rows.max(1);
    let mut actions: Vec<ChunkAction> = Vec::new();
    let mut deps: Vec<u32> = Vec::new();
    // Per packed row: the action that last wrote it and the sends that
    // read it since (cleared by the next write).
    let mut last_writer: Vec<u32> = vec![NONE; row_space];
    let mut readers: Vec<Vec<u32>> = vec![Vec::new(); row_space];
    let mut dep_scratch: Vec<u32> = Vec::new();
    for group in &sched.groups {
        // Sends before receives within a group, mirroring the barriered
        // order (so a stuck device's first incomplete action is a recv).
        for idx in group.ios.clone() {
            let refs = &sched.send_refs[idx];
            for (chunk, lo) in (0..refs.len()).step_by(chunk_rows).enumerate() {
                let hi = (lo + chunk_rows).min(refs.len());
                let id = actions.len() as u32;
                dep_scratch.clear();
                for &r in &refs[lo..hi] {
                    let w = last_writer[r as usize];
                    if w != NONE && !dep_scratch.contains(&w) {
                        dep_scratch.push(w);
                    }
                    readers[r as usize].push(id);
                }
                let start = deps.len() as u32;
                deps.extend_from_slice(&dep_scratch);
                actions.push(ChunkAction {
                    kind: ActionKind::Send,
                    entry: idx as u32,
                    stage: group.stage as u32,
                    substage: group.substage as u32,
                    chunk: chunk as u32,
                    rows: lo as u32..hi as u32,
                    deps: start..deps.len() as u32,
                });
            }
        }
        for idx in group.ios.clone() {
            let refs = &sched.recv_refs[idx];
            for (chunk, lo) in (0..refs.len()).step_by(chunk_rows).enumerate() {
                let hi = (lo + chunk_rows).min(refs.len());
                let id = actions.len() as u32;
                dep_scratch.clear();
                for &r in &refs[lo..hi] {
                    let r = r as usize;
                    let w = last_writer[r];
                    if w != NONE && !dep_scratch.contains(&w) {
                        dep_scratch.push(w);
                    }
                    for &rd in &readers[r] {
                        if !dep_scratch.contains(&rd) {
                            dep_scratch.push(rd);
                        }
                    }
                    readers[r].clear();
                    last_writer[r] = id;
                }
                let start = deps.len() as u32;
                deps.extend_from_slice(&dep_scratch);
                actions.push(ChunkAction {
                    kind: ActionKind::Recv,
                    entry: idx as u32,
                    stage: group.stage as u32,
                    substage: group.substage as u32,
                    chunk: chunk as u32,
                    rows: lo as u32..hi as u32,
                    deps: start..deps.len() as u32,
                });
            }
        }
    }
    PipelineSchedule {
        chunk_rows,
        actions,
        deps,
    }
}

/// Whether every dependency of `a` has completed.
fn deps_done(pipe: &PipelineSchedule, a: &ChunkAction, completed: &[bool]) -> bool {
    pipe.deps[a.deps.start as usize..a.deps.end as usize]
        .iter()
        .all(|&d| completed[d as usize])
}

/// Runs one pipelined operation: executes every action of `pipe` in any
/// dependency-respecting order, calling `io` to pack and apply chunk
/// rows. `ios` supplies the peer of each table entry.
///
/// # Errors
///
/// Any [`RuntimeError`]. The caller is responsible for poisoning the
/// fabric on errors it originated (the runtime's `poison_on_err`).
#[allow(clippy::too_many_arguments)]
pub(crate) fn execute<F>(
    fabric: &Fabric,
    rank: usize,
    op: u64,
    sched: &DeviceSchedule,
    pipe: &PipelineSchedule,
    ios: &[StageIo],
    cols: usize,
    scratch: &mut PipelineScratch,
    mut io: F,
) -> Result<(), RuntimeError>
where
    F: FnMut(ChunkIo<'_>),
{
    let n = pipe.actions.len();
    scratch.completed.clear();
    scratch.completed.resize(n, false);
    let mut remaining = n;
    let mut first_incomplete = 0usize;
    let crash_mid = fabric
        .config()
        .faults
        .crash_mid(rank)
        .filter(|&(at_op, _)| op >= at_op);
    let mut executed = 0usize;
    let maybe_crash = |executed: usize| -> Result<(), RuntimeError> {
        if let Some((at_op, after)) = crash_mid {
            if executed >= after {
                let err = RuntimeError::InjectedCrash { rank, at_op };
                fabric.poison(rank, ClusterFailure::Error(err.clone()));
                return Err(err);
            }
        }
        Ok(())
    };
    // One closure for both the polled and the blocking receive path.
    let apply = |io: &mut F, a: &ChunkAction, payload: Vec<f32>| -> Result<(), RuntimeError> {
        let refs = &sched.recv_refs[a.entry as usize][a.rows.start as usize..a.rows.end as usize];
        let key: MsgKey = (op, a.stage, a.substage, a.chunk);
        expect_payload(rank, payload.len(), refs.len() * cols, key)?;
        io(ChunkIo::Apply {
            entry: a.entry,
            refs,
            payload: &payload,
        });
        fabric.recycle(payload);
        Ok(())
    };
    while remaining > 0 {
        let mut progressed = false;
        for i in first_incomplete..n {
            if scratch.completed[i] {
                continue;
            }
            let a = &pipe.actions[i];
            if !deps_done(pipe, a, &scratch.completed) {
                continue;
            }
            let key: MsgKey = (op, a.stage, a.substage, a.chunk);
            let peer = ios[a.entry as usize].peer;
            match a.kind {
                ActionKind::Send => {
                    maybe_crash(executed)?;
                    // Cheap after the first chunk: the flag is monotonic.
                    fabric.wait_ready(peer, op, rank)?;
                    let refs = &sched.send_refs[a.entry as usize]
                        [a.rows.start as usize..a.rows.end as usize];
                    let mut payload = fabric.checkout(refs.len() * cols);
                    io(ChunkIo::Pack {
                        entry: a.entry,
                        refs,
                        payload: &mut payload,
                    });
                    fabric.send(rank, peer, key, payload)?;
                }
                ActionKind::Recv => {
                    let Some(payload) = fabric.try_recv(peer, rank, key)? else {
                        continue;
                    };
                    maybe_crash(executed)?;
                    apply(&mut io, a, payload)?;
                }
            }
            scratch.completed[i] = true;
            remaining -= 1;
            executed += 1;
            progressed = true;
        }
        while first_incomplete < n && scratch.completed[first_incomplete] {
            first_incomplete += 1;
        }
        if remaining > 0 && !progressed {
            // Nothing was deliverable: block on the earliest incomplete
            // action. Its dependencies are all earlier, hence complete;
            // an executable send would have run in the scan above, so it
            // must be a receive (see the deadlock-freedom argument).
            let a = &pipe.actions[first_incomplete];
            debug_assert!(deps_done(pipe, a, &scratch.completed));
            if a.kind != ActionKind::Recv {
                return Err(RuntimeError::Protocol {
                    rank,
                    detail: format!(
                        "pipeline stalled on send action {first_incomplete} ({:?})",
                        (op, a.stage, a.substage, a.chunk)
                    ),
                });
            }
            let key: MsgKey = (op, a.stage, a.substage, a.chunk);
            let peer = ios[a.entry as usize].peer;
            // Deadline- and poison-bounded, like every fabric wait.
            let payload = fabric.recv(peer, rank, key)?;
            maybe_crash(executed)?;
            apply(&mut io, a, payload)?;
            scratch.completed[first_incomplete] = true;
            remaining -= 1;
            executed += 1;
        }
    }
    Ok(())
}

/// Pipelined `graph_allgather` over precompiled schedules: the forward
/// row-reference encoding of [`DeviceSchedule::forward`] driven by the
/// chunk executor. Bitwise identical to the barriered path.
#[allow(clippy::too_many_arguments)]
pub(crate) fn forward_allgather(
    fabric: &Fabric,
    rank: usize,
    op: u64,
    sched: &DeviceSchedule,
    pipe: &PipelineSchedule,
    ios: &[StageIo],
    num_local: usize,
    num_total: usize,
    local: &Matrix,
    scratch: &mut PipelineScratch,
) -> Result<Matrix, RuntimeError> {
    assert_eq!(local.rows(), num_local, "expected local rows only");
    let cols = local.cols();
    let mut out = Matrix::zeros(num_total, cols);
    out.as_mut_slice()[..num_local * cols].copy_from_slice(local.as_slice());
    // Rows this device relays without consuming.
    let mut relay = fabric.checkout(sched.scratch_rows * cols);
    relay.resize(sched.scratch_rows * cols, 0.0);
    let result = {
        let out = &mut out;
        let relay = &mut relay;
        execute(
            fabric,
            rank,
            op,
            sched,
            pipe,
            ios,
            cols,
            scratch,
            |req| match req {
                ChunkIo::Pack { refs, payload, .. } => {
                    for &r in refs {
                        let r = r as usize;
                        let row = if r < num_total {
                            out.row(r)
                        } else {
                            let start = (r - num_total) * cols;
                            &relay[start..start + cols]
                        };
                        payload.extend_from_slice(row);
                    }
                }
                ChunkIo::Apply { refs, payload, .. } => {
                    for (i, &r) in refs.iter().enumerate() {
                        let row = &payload[i * cols..(i + 1) * cols];
                        let r = r as usize;
                        if r < num_total {
                            out.set_row(r, row);
                        } else {
                            let start = (r - num_total) * cols;
                            relay[start..start + cols].copy_from_slice(row);
                        }
                    }
                }
            },
        )
    };
    result?;
    fabric.recycle(relay);
    Ok(out)
}

/// Pipelined `scatter_backward`: the backward (accumulating)
/// row-reference encoding of [`DeviceSchedule::backward`] driven by the
/// chunk executor. Bitwise identical to the barriered path.
#[allow(clippy::too_many_arguments)]
pub(crate) fn backward_scatter(
    fabric: &Fabric,
    rank: usize,
    op: u64,
    sched: &DeviceSchedule,
    pipe: &PipelineSchedule,
    ios: &[StageIo],
    num_local: usize,
    num_total: usize,
    grad_full: &Matrix,
    scratch: &mut PipelineScratch,
) -> Result<Matrix, RuntimeError> {
    assert_eq!(grad_full.rows(), num_total, "expected full rows");
    let cols = grad_full.cols();
    let mut grad_local = grad_full.head_rows(num_local);
    // Accumulator scratch: `num_remote` rows seeded with this device's
    // own consumption gradient, then relay rows (and the optional
    // always-zero row) from zero.
    let mut acc = fabric.checkout(sched.scratch_rows * cols);
    acc.resize(sched.scratch_rows * cols, 0.0);
    let seeded = (num_total - num_local) * cols;
    acc[..seeded].copy_from_slice(&grad_full.as_slice()[num_local * cols..]);
    let result = {
        let grad_local = &mut grad_local;
        let acc = &mut acc;
        execute(
            fabric,
            rank,
            op,
            sched,
            pipe,
            ios,
            cols,
            scratch,
            |req| match req {
                ChunkIo::Pack { refs, payload, .. } => {
                    for &r in refs {
                        let r = r as usize;
                        let row = if r < num_local {
                            grad_local.row(r)
                        } else {
                            let start = (r - num_local) * cols;
                            &acc[start..start + cols]
                        };
                        payload.extend_from_slice(row);
                    }
                }
                ChunkIo::Apply { refs, payload, .. } => {
                    for (i, &r) in refs.iter().enumerate() {
                        let row = &payload[i * cols..(i + 1) * cols];
                        let r = r as usize;
                        let dst = if r < num_local {
                            &mut grad_local.row_mut(r)[..]
                        } else {
                            let start = (r - num_local) * cols;
                            &mut acc[start..start + cols]
                        };
                        for (g, &x) in dst.iter_mut().zip(row) {
                            *g += x;
                        }
                    }
                }
            },
        )
    };
    result?;
    fabric.recycle(acc);
    Ok(grad_local)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm_info::{build_comm_info, BuildOptions};
    use dgcl_graph::Dataset;
    use dgcl_topology::Topology;

    fn info() -> crate::comm_info::CommInfo {
        let graph = Dataset::WikiTalk.generate(0.0005, 3);
        let opts = BuildOptions {
            chunk_rows: 4,
            ..BuildOptions::default()
        };
        build_comm_info(&graph, Topology::fig6(), opts)
    }

    #[test]
    fn chunks_cover_every_entry_row_in_order() {
        let info = info();
        for rank in 0..info.num_devices() {
            for (sched, pipe) in [
                (&info.forward_schedules[rank], &info.forward_pipelines[rank]),
                (
                    &info.backward_schedules[rank],
                    &info.backward_pipelines[rank],
                ),
            ] {
                // Per (entry, kind): chunks are contiguous, in order, and
                // cover exactly the entry's ref list.
                let mut covered_send = vec![0u32; sched.send_refs.len()];
                let mut covered_recv = vec![0u32; sched.recv_refs.len()];
                for a in &pipe.actions {
                    let (covered, refs) = match a.kind {
                        ActionKind::Send => (&mut covered_send, &sched.send_refs[a.entry as usize]),
                        ActionKind::Recv => (&mut covered_recv, &sched.recv_refs[a.entry as usize]),
                    };
                    assert_eq!(a.rows.start, covered[a.entry as usize], "contiguous chunks");
                    assert!(a.rows.end as usize <= refs.len());
                    assert!(a.rows.end > a.rows.start, "no empty chunks");
                    assert!(
                        (a.rows.end - a.rows.start) as usize <= pipe.chunk_rows,
                        "chunk respects chunk_rows"
                    );
                    covered[a.entry as usize] = a.rows.end;
                }
                for (idx, refs) in sched.send_refs.iter().enumerate() {
                    assert_eq!(covered_send[idx] as usize, refs.len(), "send entry covered");
                }
                for (idx, refs) in sched.recv_refs.iter().enumerate() {
                    assert_eq!(covered_recv[idx] as usize, refs.len(), "recv entry covered");
                }
            }
        }
    }

    #[test]
    fn dependencies_point_backwards() {
        let info = info();
        for rank in 0..info.num_devices() {
            for pipe in [
                &info.forward_pipelines[rank],
                &info.backward_pipelines[rank],
            ] {
                for (i, a) in pipe.actions.iter().enumerate() {
                    for &d in &pipe.deps[a.deps.start as usize..a.deps.end as usize] {
                        assert!(
                            (d as usize) < i,
                            "rank {rank}: action {i} depends on later action {d}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn infinite_chunk_rows_yield_one_chunk_per_entry() {
        let graph = Dataset::WikiTalk.generate(0.0005, 3);
        let opts = BuildOptions {
            chunk_rows: usize::MAX,
            ..BuildOptions::default()
        };
        let info = build_comm_info(&graph, Topology::fig6(), opts);
        for rank in 0..info.num_devices() {
            for pipe in [
                &info.forward_pipelines[rank],
                &info.backward_pipelines[rank],
            ] {
                assert!(pipe.actions.iter().all(|a| a.chunk == 0));
            }
        }
    }
}
