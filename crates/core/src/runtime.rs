//! The per-device runtime: graph allgather, backward scatter and model
//! allreduce over the shared fabric.
//!
//! Every collective returns `Result<_, RuntimeError>`: a protocol
//! violation, an injected crash, a poisoned fabric or a missed deadline
//! surfaces as a typed error on every rank instead of a hang or an
//! opaque panic. [`run_cluster`] catches per-device panics and folds all
//! failures into one [`ClusterError`] naming the originating rank.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::sync::Arc;

use dgcl_graph::VertexId;
use dgcl_partition::relation::LocalGraph;
use dgcl_plan::tuples::SendRecvTables;
use dgcl_tensor::Matrix;

use crate::collectives::{AllreduceAlgo, BroadcastAlgo, CollectiveEngine, GroupSpec};
use crate::comm_info::CommInfo;
use crate::error::{ClusterError, ClusterFailure, RuntimeError};
use crate::fabric::{expect_payload, Fabric, FabricConfig, MsgKey};
use crate::overlap::{OverlapWorker, Pending};
use crate::pipeline::{self, PipelineScratch};

/// A device's view of the cluster: its rank, its local graph and the
/// collective operations of the paper's client API.
pub struct DeviceHandle<'a> {
    /// This device's rank.
    pub rank: usize,
    info: &'a CommInfo,
    fabric: Arc<Fabric>,
    op_counter: Cell<u64>,
    scratch: RefCell<PipelineScratch>,
    engine: RefCell<CollectiveEngine>,
}

/// Which executor drives a planned gather / scatter. All three are
/// bitwise-identical; they trade fidelity for speed:
///
/// * [`Pipelined`](ExecStrategy::Pipelined) — chunked streaming through
///   relays, driven by the precompiled dependency list (the shipping
///   path).
/// * [`Barriered`](ExecStrategy::Barriered) — one message per (stage,
///   substage, peer), blocking on an entire stage before forwarding.
/// * [`Reference`](ExecStrategy::Reference) — uncompiled table walking
///   that resolves every vertex id per operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecStrategy {
    /// The chunk-pipelined executor (see [`crate::pipeline`]).
    Pipelined,
    /// The stage-barriered compiled executor.
    Barriered,
    /// The uncompiled table-walking reference.
    Reference,
}

/// Per-(stage, substage) execution order of a device's table entries:
/// sends are posted first, receives drained second, so no cycle of
/// blocking receives can form within a stage.
fn stage_keys(tables: &SendRecvTables, rank: usize) -> Vec<(usize, usize)> {
    let mut keys: Vec<(usize, usize)> = tables.per_device[rank]
        .iter()
        .map(|io| (io.stage, io.substage))
        .collect();
    keys.sort_unstable();
    keys.dedup();
    keys
}

impl<'a> DeviceHandle<'a> {
    /// The device's re-indexed local graph.
    pub fn local_graph(&self) -> &'a LocalGraph {
        self.info.pg.local_graph(self.rank)
    }

    /// The shared communication metadata.
    pub fn comm_info(&self) -> &'a CommInfo {
        self.info
    }

    /// The fabric this device communicates over.
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// Enters the next collective: bumps the operation counter, fires any
    /// injected crash scheduled for this rank, refuses to start on a
    /// poisoned fabric, and publishes the ready flag.
    pub(crate) fn begin_op(&self) -> Result<u64, RuntimeError> {
        let op = self.op_counter.get() + 1;
        self.op_counter.set(op);
        if let Some(at_op) = self.fabric.config().faults.crash_at(self.rank) {
            if op >= at_op {
                let err = RuntimeError::InjectedCrash {
                    rank: self.rank,
                    at_op,
                };
                self.fabric
                    .poison(self.rank, ClusterFailure::Error(err.clone()));
                return Err(err);
            }
        }
        self.fabric.check_poison()?;
        self.fabric.set_ready(self.rank, op);
        Ok(op)
    }

    /// Fires any [`crate::fault::FaultEvent::CrashAtEpoch`] scheduled for
    /// this rank. The trainer calls this at every epoch boundary — the
    /// fabric's op counter cannot see epochs, only the epoch loop can.
    /// Mirrors [`DeviceHandle::begin_op`]: the crash poisons the fabric
    /// (so peers unwind promptly) and surfaces as a typed error.
    pub(crate) fn check_epoch_fault(&self, epoch: usize) -> Result<(), RuntimeError> {
        if let Some(at_epoch) = self.fabric.config().faults.crash_epoch(self.rank) {
            if epoch >= at_epoch {
                let err = RuntimeError::InjectedEpochCrash {
                    rank: self.rank,
                    epoch: at_epoch,
                };
                self.fabric
                    .poison(self.rank, ClusterFailure::Error(err.clone()));
                return Err(err);
            }
        }
        Ok(())
    }

    /// Poisons the fabric with any error the device itself originated, so
    /// peers blocked on this rank unwind instead of waiting out their
    /// deadline. Poison-propagation errors pass through untouched (the
    /// origin already recorded itself).
    pub(crate) fn poison_on_err<T>(
        &self,
        result: Result<T, RuntimeError>,
    ) -> Result<T, RuntimeError> {
        if let Err(e) = &result {
            if !matches!(e, RuntimeError::Poisoned { .. }) {
                self.fabric
                    .poison(self.rank, ClusterFailure::Error(e.clone()));
            }
        }
        result
    }

    /// The paper's `graph_allgather`: sends the embeddings other devices
    /// need, receives (and forwards) the embeddings of this device's
    /// remote vertices, and returns the full visible embedding matrix
    /// (local rows first, then remote — the local-id layout of
    /// [`LocalGraph`]).
    ///
    /// Runs the chunk-pipelined executor (see [`crate::pipeline`]): each
    /// (stage, substage, peer) payload is split into `chunk_rows` chunks
    /// that stream through relays, driven by the precompiled dependency
    /// list instead of a stage barrier. Bitwise-identical to
    /// [`DeviceHandle::graph_allgather_barriered`] and
    /// [`DeviceHandle::graph_allgather_reference`].
    ///
    /// Blocking and synchronous: returns only when every chunk of the
    /// plan has completed on this device.
    ///
    /// # Errors
    ///
    /// Any [`RuntimeError`]; an error originated here also poisons the
    /// fabric so peers unwind.
    ///
    /// # Panics
    ///
    /// Panics if `local` does not have exactly `num_local` rows (caller
    /// API misuse, not a cluster condition).
    pub fn graph_allgather(&self, local: &Matrix) -> Result<Matrix, RuntimeError> {
        self.graph_allgather_with(ExecStrategy::Pipelined, local)
    }

    /// [`DeviceHandle::graph_allgather`] with an explicit executor.
    /// This is the single dispatch (and poison) point the three named
    /// convenience methods delegate to.
    ///
    /// # Errors
    ///
    /// Any [`RuntimeError`]; an error originated here also poisons the
    /// fabric so peers unwind.
    ///
    /// # Panics
    ///
    /// Panics if `local` does not have exactly `num_local` rows.
    pub fn graph_allgather_with(
        &self,
        strategy: ExecStrategy,
        local: &Matrix,
    ) -> Result<Matrix, RuntimeError> {
        let r = match strategy {
            ExecStrategy::Pipelined => self.graph_allgather_pipelined_inner(local),
            ExecStrategy::Barriered => self.graph_allgather_barriered_inner(local),
            ExecStrategy::Reference => self.graph_allgather_reference_inner(local),
        };
        self.poison_on_err(r)
    }

    fn graph_allgather_pipelined_inner(&self, local: &Matrix) -> Result<Matrix, RuntimeError> {
        let lg = self.local_graph();
        let op = self.begin_op()?;
        pipeline::forward_allgather(
            &self.fabric,
            self.rank,
            op,
            &self.info.forward_schedules[self.rank],
            &self.info.forward_pipelines[self.rank],
            &self.info.forward_tables.per_device[self.rank],
            lg.num_local,
            lg.num_total(),
            local,
            &mut self.scratch.borrow_mut(),
        )
    }

    /// The stage-barriered compiled `graph_allgather` this runtime
    /// shipped with before pipelining: one message per (stage, substage,
    /// peer), blocking on an entire stage before forwarding. Kept as the
    /// mid-fidelity reference the pipelined path is property-tested (and
    /// benchmarked) against.
    ///
    /// # Errors
    ///
    /// Any [`RuntimeError`]; see [`DeviceHandle::graph_allgather`].
    ///
    /// # Panics
    ///
    /// Panics if `local` does not have exactly `num_local` rows.
    pub fn graph_allgather_barriered(&self, local: &Matrix) -> Result<Matrix, RuntimeError> {
        self.graph_allgather_with(ExecStrategy::Barriered, local)
    }

    fn graph_allgather_barriered_inner(&self, local: &Matrix) -> Result<Matrix, RuntimeError> {
        let lg = self.local_graph();
        assert_eq!(local.rows(), lg.num_local, "expected local rows only");
        let cols = local.cols();
        let op = self.begin_op()?;
        let num_total = lg.num_total();
        let mut out = Matrix::zeros(num_total, cols);
        out.as_mut_slice()[..lg.num_local * cols].copy_from_slice(local.as_slice());
        let sched = &self.info.forward_schedules[self.rank];
        let ios = &self.info.forward_tables.per_device[self.rank];
        // Rows this device relays without consuming.
        let mut relay = self.fabric.checkout(sched.scratch_rows * cols);
        relay.resize(sched.scratch_rows * cols, 0.0);
        for group in &sched.groups {
            let key: MsgKey = (op, group.stage as u32, group.substage as u32, 0);
            for idx in group.ios.clone() {
                let refs = &sched.send_refs[idx];
                if refs.is_empty() {
                    continue;
                }
                let peer = ios[idx].peer;
                self.fabric.wait_ready(peer, op, self.rank)?;
                let mut payload = self.fabric.checkout(refs.len() * cols);
                for &r in refs {
                    let r = r as usize;
                    let row = if r < num_total {
                        out.row(r)
                    } else {
                        let start = (r - num_total) * cols;
                        &relay[start..start + cols]
                    };
                    payload.extend_from_slice(row);
                }
                self.fabric.send(self.rank, peer, key, payload)?;
            }
            for idx in group.ios.clone() {
                let refs = &sched.recv_refs[idx];
                if refs.is_empty() {
                    continue;
                }
                let payload = self.fabric.recv(ios[idx].peer, self.rank, key)?;
                expect_payload(self.rank, payload.len(), refs.len() * cols, key)?;
                for (i, &r) in refs.iter().enumerate() {
                    let row = &payload[i * cols..(i + 1) * cols];
                    let r = r as usize;
                    if r < num_total {
                        out.set_row(r, row);
                    } else {
                        let start = (r - num_total) * cols;
                        relay[start..start + cols].copy_from_slice(row);
                    }
                }
                self.fabric.recycle(payload);
            }
        }
        self.fabric.recycle(relay);
        Ok(out)
    }

    /// The uncompiled table-walking `graph_allgather` this runtime
    /// shipped with: re-filters the tables per stage and resolves every
    /// vertex id per operation. Kept as the reference implementation the
    /// compiled path is property-tested (and benchmarked) against.
    ///
    /// # Errors
    ///
    /// Any [`RuntimeError`]; see [`DeviceHandle::graph_allgather`].
    ///
    /// # Panics
    ///
    /// Panics if `local` does not have exactly `num_local` rows.
    pub fn graph_allgather_reference(&self, local: &Matrix) -> Result<Matrix, RuntimeError> {
        self.graph_allgather_with(ExecStrategy::Reference, local)
    }

    fn graph_allgather_reference_inner(&self, local: &Matrix) -> Result<Matrix, RuntimeError> {
        let lg = self.local_graph();
        assert_eq!(local.rows(), lg.num_local, "expected local rows only");
        let cols = local.cols();
        let op = self.begin_op()?;
        let mut out = Matrix::zeros(lg.num_total(), cols);
        for r in 0..lg.num_local {
            out.set_row(r, local.row(r));
        }
        // Embeddings this device relays without consuming.
        let mut relay: HashMap<VertexId, Vec<f32>> = HashMap::new();
        let tables = &self.info.forward_tables;
        for (stage, substage) in stage_keys(tables, self.rank) {
            let key: MsgKey = (op, stage as u32, substage as u32, 0);
            let ios: Vec<_> = tables.per_device[self.rank]
                .iter()
                .filter(|io| io.stage == stage && io.substage == substage)
                .collect();
            for io in &ios {
                if io.send.is_empty() {
                    continue;
                }
                self.fabric.wait_ready(io.peer, op, self.rank)?;
                let mut payload = Vec::with_capacity(io.send.len() * cols);
                for &v in &io.send {
                    match lg.local_id(v) {
                        Some(li) => payload.extend_from_slice(out.row(li)),
                        None => {
                            let row = relay.get(&v).ok_or_else(|| RuntimeError::Protocol {
                                rank: self.rank,
                                detail: format!("device {} lacks vertex {v} to forward", self.rank),
                            })?;
                            payload.extend_from_slice(row);
                        }
                    }
                }
                self.fabric.send(self.rank, io.peer, key, payload)?;
            }
            for io in &ios {
                if io.recv.is_empty() {
                    continue;
                }
                let payload = self.fabric.recv(io.peer, self.rank, key)?;
                expect_payload(self.rank, payload.len(), io.recv.len() * cols, key)?;
                for (i, &v) in io.recv.iter().enumerate() {
                    let row = &payload[i * cols..(i + 1) * cols];
                    match lg.local_id(v) {
                        Some(li) => out.set_row(li, row),
                        None => {
                            relay.insert(v, row.to_vec());
                        }
                    }
                }
            }
        }
        Ok(out)
    }

    /// The backward counterpart of [`DeviceHandle::graph_allgather`]:
    /// takes the gradient with respect to the full visible embedding
    /// matrix, routes every remote vertex's gradient back along the
    /// communication tree (accumulating contributions at each hop), and
    /// returns the gradient for the local rows with all remote
    /// contributions folded in.
    ///
    /// Runs the chunk-pipelined backward schedule; see
    /// [`DeviceHandle::graph_allgather`] for the pipelining contract.
    /// Bitwise-identical to [`DeviceHandle::scatter_backward_barriered`]
    /// and [`DeviceHandle::scatter_backward_reference`].
    ///
    /// # Errors
    ///
    /// Any [`RuntimeError`]; see [`DeviceHandle::graph_allgather`].
    ///
    /// # Panics
    ///
    /// Panics if `grad_full` does not have `num_total` rows.
    pub fn scatter_backward(&self, grad_full: &Matrix) -> Result<Matrix, RuntimeError> {
        self.scatter_backward_with(ExecStrategy::Pipelined, grad_full)
    }

    /// [`DeviceHandle::scatter_backward`] with an explicit executor —
    /// the backward counterpart of
    /// [`DeviceHandle::graph_allgather_with`], and likewise the single
    /// dispatch (and poison) point.
    ///
    /// # Errors
    ///
    /// Any [`RuntimeError`]; see [`DeviceHandle::graph_allgather`].
    ///
    /// # Panics
    ///
    /// Panics if `grad_full` does not have `num_total` rows.
    pub fn scatter_backward_with(
        &self,
        strategy: ExecStrategy,
        grad_full: &Matrix,
    ) -> Result<Matrix, RuntimeError> {
        let r = match strategy {
            ExecStrategy::Pipelined => self.scatter_backward_pipelined_inner(grad_full),
            ExecStrategy::Barriered => self.scatter_backward_barriered_inner(grad_full),
            ExecStrategy::Reference => self.scatter_backward_reference_inner(grad_full),
        };
        self.poison_on_err(r)
    }

    fn scatter_backward_pipelined_inner(&self, grad_full: &Matrix) -> Result<Matrix, RuntimeError> {
        let lg = self.local_graph();
        let op = self.begin_op()?;
        pipeline::backward_scatter(
            &self.fabric,
            self.rank,
            op,
            &self.info.backward_schedules[self.rank],
            &self.info.backward_pipelines[self.rank],
            &self.info.backward_tables.per_device[self.rank],
            lg.num_local,
            lg.num_total(),
            grad_full,
            &mut self.scratch.borrow_mut(),
        )
    }

    /// The stage-barriered compiled backward pass (see
    /// [`DeviceHandle::graph_allgather_barriered`]).
    ///
    /// # Errors
    ///
    /// Any [`RuntimeError`]; see [`DeviceHandle::graph_allgather`].
    ///
    /// # Panics
    ///
    /// Panics if `grad_full` does not have `num_total` rows.
    pub fn scatter_backward_barriered(&self, grad_full: &Matrix) -> Result<Matrix, RuntimeError> {
        self.scatter_backward_with(ExecStrategy::Barriered, grad_full)
    }

    fn scatter_backward_barriered_inner(&self, grad_full: &Matrix) -> Result<Matrix, RuntimeError> {
        let lg = self.local_graph();
        assert_eq!(grad_full.rows(), lg.num_total(), "expected full rows");
        let cols = grad_full.cols();
        let op = self.begin_op()?;
        let num_local = lg.num_local;
        let mut grad_local = grad_full.head_rows(num_local);
        let sched = &self.info.backward_schedules[self.rank];
        let ios = &self.info.backward_tables.per_device[self.rank];
        // Accumulator scratch: `num_remote` rows seeded with this
        // device's own consumption gradient, then relay rows (and the
        // optional always-zero row) from zero.
        let mut acc = self.fabric.checkout(sched.scratch_rows * cols);
        acc.resize(sched.scratch_rows * cols, 0.0);
        let seeded = (lg.num_total() - num_local) * cols;
        acc[..seeded].copy_from_slice(&grad_full.as_slice()[num_local * cols..]);
        for group in &sched.groups {
            let key: MsgKey = (op, group.stage as u32, group.substage as u32, 0);
            for idx in group.ios.clone() {
                let refs = &sched.send_refs[idx];
                if refs.is_empty() {
                    continue;
                }
                let peer = ios[idx].peer;
                self.fabric.wait_ready(peer, op, self.rank)?;
                let mut payload = self.fabric.checkout(refs.len() * cols);
                for &r in refs {
                    let r = r as usize;
                    let row = if r < num_local {
                        grad_local.row(r)
                    } else {
                        let start = (r - num_local) * cols;
                        &acc[start..start + cols]
                    };
                    payload.extend_from_slice(row);
                }
                self.fabric.send(self.rank, peer, key, payload)?;
            }
            for idx in group.ios.clone() {
                let refs = &sched.recv_refs[idx];
                if refs.is_empty() {
                    continue;
                }
                let payload = self.fabric.recv(ios[idx].peer, self.rank, key)?;
                expect_payload(self.rank, payload.len(), refs.len() * cols, key)?;
                for (i, &r) in refs.iter().enumerate() {
                    let row = &payload[i * cols..(i + 1) * cols];
                    let r = r as usize;
                    let dst = if r < num_local {
                        &mut grad_local.row_mut(r)[..]
                    } else {
                        let start = (r - num_local) * cols;
                        &mut acc[start..start + cols]
                    };
                    for (g, &x) in dst.iter_mut().zip(row) {
                        *g += x;
                    }
                }
                self.fabric.recycle(payload);
            }
        }
        self.fabric.recycle(acc);
        Ok(grad_local)
    }

    /// The uncompiled table-walking backward pass (see
    /// [`DeviceHandle::graph_allgather_reference`]).
    ///
    /// # Errors
    ///
    /// Any [`RuntimeError`]; see [`DeviceHandle::graph_allgather`].
    ///
    /// # Panics
    ///
    /// Panics if `grad_full` does not have `num_total` rows.
    pub fn scatter_backward_reference(&self, grad_full: &Matrix) -> Result<Matrix, RuntimeError> {
        self.scatter_backward_with(ExecStrategy::Reference, grad_full)
    }

    fn scatter_backward_reference_inner(&self, grad_full: &Matrix) -> Result<Matrix, RuntimeError> {
        let lg = self.local_graph();
        assert_eq!(grad_full.rows(), lg.num_total(), "expected full rows");
        let cols = grad_full.cols();
        let op = self.begin_op()?;
        let mut grad_local = grad_full.head_rows(lg.num_local);
        // Accumulators for non-owned vertices: seeded with this device's
        // own consumption gradient for its remote vertices; relayed
        // vertices accumulate from zero.
        let mut acc: HashMap<VertexId, Vec<f32>> = HashMap::new();
        for li in lg.num_local..lg.num_total() {
            acc.insert(lg.global_ids[li], grad_full.row(li).to_vec());
        }
        let tables = &self.info.backward_tables;
        for (stage, substage) in stage_keys(tables, self.rank) {
            let key: MsgKey = (op, stage as u32, substage as u32, 0);
            let ios: Vec<_> = tables.per_device[self.rank]
                .iter()
                .filter(|io| io.stage == stage && io.substage == substage)
                .collect();
            for io in &ios {
                if io.send.is_empty() {
                    continue;
                }
                self.fabric.wait_ready(io.peer, op, self.rank)?;
                let mut payload = Vec::with_capacity(io.send.len() * cols);
                for &v in &io.send {
                    match acc.get(&v) {
                        Some(row) => payload.extend_from_slice(row),
                        // A pure relay that received nothing yet
                        // contributes zeros.
                        None => payload.extend(std::iter::repeat_n(0.0, cols)),
                    }
                }
                self.fabric.send(self.rank, io.peer, key, payload)?;
            }
            for io in &ios {
                if io.recv.is_empty() {
                    continue;
                }
                let payload = self.fabric.recv(io.peer, self.rank, key)?;
                expect_payload(self.rank, payload.len(), io.recv.len() * cols, key)?;
                for (i, &v) in io.recv.iter().enumerate() {
                    let row = &payload[i * cols..(i + 1) * cols];
                    match lg.local_id(v) {
                        Some(li) if li < lg.num_local => {
                            for (g, &x) in grad_local.row_mut(li).iter_mut().zip(row) {
                                *g += x;
                            }
                        }
                        _ => {
                            let entry = acc.entry(v).or_insert_with(|| vec![0.0; cols]);
                            for (g, &x) in entry.iter_mut().zip(row) {
                                *g += x;
                            }
                        }
                    }
                }
            }
        }
        Ok(grad_local)
    }

    /// Element-wise sum of `mats` across all devices (model-gradient
    /// synchronisation). Every device receives the identical result.
    ///
    /// The algorithm comes from the fabric's
    /// [`crate::collectives::AllreducePolicy`] — the rendezvous
    /// reference by default, or a cost-model-picked ring /
    /// halving-doubling schedule. All algorithms are bitwise identical,
    /// so the policy affects wall-clock only.
    ///
    /// # Errors
    ///
    /// Any [`RuntimeError`]; see [`DeviceHandle::graph_allgather`].
    pub fn allreduce(&self, mats: Vec<Matrix>) -> Result<Vec<Matrix>, RuntimeError> {
        let elems: usize = mats.iter().map(Matrix::len).sum();
        let algo = self.fabric.config().allreduce.pick(4 * elems as u64);
        self.allreduce_with(algo, mats)
    }

    /// [`DeviceHandle::allreduce`] with an explicit algorithm,
    /// bypassing the fabric's policy. Every rank must pass the same
    /// algorithm on the same call.
    ///
    /// # Errors
    ///
    /// Any [`RuntimeError`]; see [`DeviceHandle::graph_allgather`].
    pub fn allreduce_with(
        &self,
        algo: AllreduceAlgo,
        mats: Vec<Matrix>,
    ) -> Result<Vec<Matrix>, RuntimeError> {
        let r = self.begin_op().and_then(|op| {
            self.engine
                .borrow_mut()
                .allreduce(&self.fabric, op, algo, mats)
        });
        self.poison_on_err(r)
    }

    /// Broadcasts `root`'s matrix to every rank (binomial tree). All
    /// ranks pass a matrix of the same shape; non-root contents are
    /// overwritten with the root's.
    ///
    /// # Errors
    ///
    /// Any [`RuntimeError`]; see [`DeviceHandle::graph_allgather`].
    pub fn broadcast(&self, root: usize, mat: Matrix) -> Result<Matrix, RuntimeError> {
        self.broadcast_with(BroadcastAlgo::BinomialTree, root, mat)
    }

    /// [`DeviceHandle::broadcast`] with an explicit algorithm. Every
    /// rank must pass the same algorithm and root on the same call.
    ///
    /// # Errors
    ///
    /// Any [`RuntimeError`]; see [`DeviceHandle::graph_allgather`].
    pub fn broadcast_with(
        &self,
        algo: BroadcastAlgo,
        root: usize,
        mat: Matrix,
    ) -> Result<Matrix, RuntimeError> {
        let r = self.begin_op().and_then(|op| {
            self.engine
                .borrow_mut()
                .broadcast(&self.fabric, op, algo, root, mat)
        });
        self.poison_on_err(r)
    }

    /// Broadcasts the matrix of the member at `root_pos` to every
    /// member of `group` (see [`CollectiveEngine::broadcast_group`]).
    /// Disjoint groups may run concurrently under the same op id; ranks
    /// outside every group must call [`DeviceHandle::align_op`] so the
    /// cluster-wide op counters stay in lockstep.
    ///
    /// # Errors
    ///
    /// Any [`RuntimeError`]; see [`DeviceHandle::graph_allgather`].
    ///
    /// # Panics
    ///
    /// Panics if this rank is not a member of `group`.
    pub fn broadcast_group(
        &self,
        algo: BroadcastAlgo,
        group: GroupSpec,
        root_pos: usize,
        mat: Matrix,
    ) -> Result<Matrix, RuntimeError> {
        let r = self.begin_op().and_then(|op| {
            self.engine
                .borrow_mut()
                .broadcast_group(&self.fabric, op, algo, group, root_pos, mat)
        });
        self.poison_on_err(r)
    }

    /// Bumps the op counter without communicating — the no-op a rank
    /// issues when its peers run a collective it takes no part in, so
    /// that a later cluster-wide collective finds every rank at the same
    /// op id.
    ///
    /// # Errors
    ///
    /// Any [`RuntimeError`] raised on entry (poison, injected crash).
    pub fn align_op(&self) -> Result<(), RuntimeError> {
        let r = self.begin_op().map(|_| ());
        self.poison_on_err(r)
    }

    /// Spawns this device's background collective worker (see
    /// [`crate::overlap`]). One worker per device is enough: it executes
    /// submitted collectives FIFO, overlapping them with whatever the
    /// calling thread computes in the meantime.
    pub fn overlap_worker(&self) -> OverlapWorker {
        let lg = self.local_graph();
        OverlapWorker::spawn(
            self.fabric.clone(),
            self.rank,
            self.info.forward_schedules[self.rank].clone(),
            self.info.forward_pipelines[self.rank].clone(),
            self.info.forward_tables.per_device[self.rank].clone(),
            lg.num_local,
            lg.num_total(),
        )
    }

    /// Submits a gradient-bucket allreduce to `worker` and returns
    /// immediately. The op id is assigned here, on the calling thread, so
    /// submission order (identical across ranks) fixes the rendezvous
    /// order regardless of when the worker executes.
    ///
    /// # Errors
    ///
    /// Any [`RuntimeError`] raised on entry (poison, injected crash, dead
    /// worker); an error originated here also poisons the fabric.
    pub fn submit_allreduce(
        &self,
        worker: &OverlapWorker,
        mats: Vec<Matrix>,
    ) -> Result<Pending<Vec<Matrix>>, RuntimeError> {
        let r = self
            .begin_op()
            .and_then(|op| worker.submit_allreduce(op, mats));
        self.poison_on_err(r)
    }

    /// Submits a pipelined embedding allgather of `local` to `worker`
    /// and returns immediately — the next layer's (or next epoch's)
    /// exchange proceeds while this thread keeps computing.
    ///
    /// # Errors
    ///
    /// See [`DeviceHandle::submit_allreduce`].
    pub fn submit_allgather(
        &self,
        worker: &OverlapWorker,
        local: Matrix,
    ) -> Result<Pending<Matrix>, RuntimeError> {
        let r = self
            .begin_op()
            .and_then(|op| worker.submit_allgather(op, local));
        self.poison_on_err(r)
    }

    /// Assembles the full value matrix for a batch row list from its
    /// per-rank owners, inline on the calling thread: the mini-batch
    /// analogue of the graph allgather, used by the sampled trainer's
    /// feature fetch and inter-layer reassembly.
    ///
    /// # Errors
    ///
    /// Any [`RuntimeError`] from the underlying exchange; an error
    /// originated here also poisons the fabric.
    pub fn exchange_rows(
        &self,
        plan: &crate::sampling::GatherPlan,
    ) -> Result<Matrix, RuntimeError> {
        let r = self
            .begin_op()
            .and_then(|op| crate::sampling::execute_gather(&self.fabric, self.rank, op, plan));
        self.poison_on_err(r)
    }

    /// Reduces per-row gradient contributions back to the rows' owners
    /// (the adjoint of [`DeviceHandle::exchange_rows`]): every rank
    /// contributes a dense gradient over `rows`, each owner receives and
    /// sums its slices in ascending rank order, and this rank's reduced
    /// owned rows come back.
    ///
    /// # Errors
    ///
    /// See [`DeviceHandle::exchange_rows`].
    pub fn reduce_rows(
        &self,
        contrib: &Matrix,
        rows: &[VertexId],
        partition: &[u32],
    ) -> Result<Matrix, RuntimeError> {
        let r = self.begin_op().and_then(|op| {
            crate::sampling::execute_reduce(&self.fabric, self.rank, op, contrib, rows, partition)
        });
        self.poison_on_err(r)
    }

    /// Submits a batch row exchange to `worker` and returns immediately
    /// — the sampled trainer prefetches the next batch's feature rows
    /// this way while the current batch computes. The op id is assigned
    /// here, in program order, like every other submission.
    ///
    /// # Errors
    ///
    /// See [`DeviceHandle::submit_allreduce`].
    pub fn submit_exchange(
        &self,
        worker: &OverlapWorker,
        plan: crate::sampling::GatherPlan,
    ) -> Result<Pending<Matrix>, RuntimeError> {
        let r = self
            .begin_op()
            .and_then(|op| worker.submit_exchange(op, plan));
        self.poison_on_err(r)
    }

    /// Blocks on a background collective submitted earlier, poisoning
    /// the fabric if the wait itself fails (the worker already poisoned
    /// for errors it originated).
    ///
    /// # Errors
    ///
    /// The collective's [`RuntimeError`], or a timeout if the worker
    /// vanished.
    pub fn wait_pending<T>(&self, pending: Pending<T>) -> Result<T, RuntimeError> {
        let r = pending.wait();
        self.poison_on_err(r)
    }
}

/// Extracts the human-readable message from a caught panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `body` once per device on its own thread with a default-config
/// fabric and returns the results in rank order.
///
/// # Errors
///
/// [`ClusterError`] naming the first rank whose error or panic poisoned
/// the fabric, with the per-rank outcome of every device. No failure
/// mode hangs: peers of a dead device unwind via poison or deadline.
pub fn run_cluster<R, F>(info: &CommInfo, body: F) -> Result<Vec<R>, ClusterError>
where
    R: Send,
    F: Fn(DeviceHandle<'_>) -> Result<R, RuntimeError> + Sync,
{
    run_cluster_with(info, FabricConfig::default(), body)
}

/// [`run_cluster`] with an explicit fabric configuration (collective
/// deadline, recycle-pool caps, fault plan).
///
/// # Errors
///
/// See [`run_cluster`].
pub fn run_cluster_with<R, F>(
    info: &CommInfo,
    config: FabricConfig,
    body: F,
) -> Result<Vec<R>, ClusterError>
where
    R: Send,
    F: Fn(DeviceHandle<'_>) -> Result<R, RuntimeError> + Sync,
{
    let deadline = config.collective_deadline;
    let fabric = Arc::new(Fabric::with_config(info.num_devices(), config));
    let mut outcomes: Vec<Option<Result<R, ClusterFailure>>> =
        (0..info.num_devices()).map(|_| None).collect();
    crossbeam::thread::scope(|scope| {
        let mut joins = Vec::new();
        for rank in 0..info.num_devices() {
            let fabric = fabric.clone();
            let body = &body;
            joins.push(scope.spawn(move |_| {
                let handle = DeviceHandle {
                    rank,
                    info,
                    fabric: fabric.clone(),
                    op_counter: Cell::new(0),
                    scratch: RefCell::new(PipelineScratch::default()),
                    engine: RefCell::new(CollectiveEngine::new(rank, info.num_devices())),
                };
                let caught =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(handle)));
                let outcome = match caught {
                    Ok(Ok(r)) => Ok(r),
                    Ok(Err(e)) => {
                        // Normally already poisoned by the collective;
                        // first-wins makes re-poisoning harmless and
                        // covers errors the body constructed itself.
                        if !matches!(e, RuntimeError::Poisoned { .. }) {
                            fabric.poison(rank, ClusterFailure::Error(e.clone()));
                        }
                        Err(ClusterFailure::Error(e))
                    }
                    Err(payload) => {
                        let msg = panic_message(payload);
                        fabric.poison(rank, ClusterFailure::Panic(msg.clone()));
                        Err(ClusterFailure::Panic(msg))
                    }
                };
                (rank, outcome)
            }));
        }
        // In-order join is safe: every thread terminates — failures
        // poison the fabric, waking all waits, and every wait is
        // deadline-bounded besides.
        for join in joins {
            let (rank, outcome) = join.join().expect("device wrapper cannot panic");
            outcomes[rank] = Some(outcome);
        }
    })
    .expect("cluster scope");
    let outcomes: Vec<Result<R, ClusterFailure>> = outcomes
        .into_iter()
        .map(|o| o.expect("all ranks ran"))
        .collect();
    if outcomes.iter().all(Result::is_ok) {
        return Ok(outcomes
            .into_iter()
            .map(|o| match o {
                Ok(r) => r,
                Err(_) => unreachable!("checked all ok"),
            })
            .collect());
    }
    let per_rank: Vec<Option<ClusterFailure>> =
        outcomes.iter().map(|o| o.as_ref().err().cloned()).collect();
    // The poison record names the *first* failure; a rank that returned
    // Ok before the fabric was poisoned (then failed nothing) cannot be
    // in it, so fall back to the lowest failing rank if needed.
    let (rank, cause) = fabric.poison_info().unwrap_or_else(|| {
        outcomes
            .iter()
            .enumerate()
            .find_map(|(r, o)| o.as_ref().err().map(|e| (r, e.clone())))
            .expect("some rank failed")
    });
    Err(ClusterError {
        rank,
        cause,
        per_rank,
        deadline,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm_info::{build_comm_info, BuildOptions};
    use dgcl_graph::Dataset;
    use dgcl_tensor::XavierInit;
    use dgcl_topology::Topology;

    fn setup() -> (dgcl_graph::CsrGraph, CommInfo) {
        let graph = Dataset::WikiTalk.generate(0.0006, 5);
        let info = build_comm_info(&graph, Topology::fig6(), BuildOptions::default());
        (graph, info)
    }

    #[test]
    fn allgather_delivers_every_remote_embedding() {
        let (graph, info) = setup();
        let n = graph.num_vertices();
        // Embedding of vertex v is [v, 2v] so delivery is checkable.
        let mut features = Matrix::zeros(n, 2);
        for v in 0..n {
            features.set_row(v, &[v as f32, 2.0 * v as f32]);
        }
        let per_device = info.dispatch_features(&features);
        let gathered = run_cluster(&info, |handle| {
            handle.graph_allgather(&per_device[handle.rank])
        })
        .expect("healthy cluster");
        for (d, full) in gathered.iter().enumerate() {
            let lg = info.pg.local_graph(d);
            for (li, &v) in lg.global_ids.iter().enumerate() {
                assert_eq!(
                    full.row(li),
                    &[v as f32, 2.0 * v as f32],
                    "device {d} row for vertex {v}"
                );
            }
        }
    }

    #[test]
    fn scatter_backward_accumulates_all_consumers() {
        let (_, info) = setup();
        // Each device contributes gradient 1.0 for every visible vertex;
        // the owner must end with 1 + (#remote consumers of v).
        let grads = run_cluster(&info, |handle| {
            let lg = handle.local_graph();
            let grad_full = Matrix::full(lg.num_total(), 1, 1.0);
            handle.scatter_backward(&grad_full)
        })
        .expect("healthy cluster");
        for (d, grad) in grads.iter().enumerate() {
            for (i, &v) in info.pg.local[d].iter().enumerate() {
                let consumers = (0..info.num_devices())
                    .filter(|&j| j != d && info.pg.remote[j].binary_search(&v).is_ok())
                    .count();
                let expect = 1.0 + consumers as f32;
                assert_eq!(
                    grad.row(i)[0],
                    expect,
                    "vertex {v} on device {d}: expected {expect}"
                );
            }
        }
    }

    #[test]
    fn allgather_then_scatter_is_adjoint() {
        // <gather(x), y> == <x, scatter(y)> summed across devices — the
        // defining property that makes distributed backward exact.
        let (graph, info) = setup();
        let n = graph.num_vertices();
        let mut init = XavierInit::new(3);
        let x = init.features(n, 3);
        let per_device_x = info.dispatch_features(&x);
        let results = run_cluster(&info, |handle| {
            let lg = handle.local_graph();
            let gathered = handle.graph_allgather(&per_device_x[handle.rank])?;
            // y: deterministic pseudo-gradient over the full visible set.
            let mut y = Matrix::zeros(lg.num_total(), 3);
            for (li, &v) in lg.global_ids.iter().enumerate() {
                for c in 0..3 {
                    y[(li, c)] = ((v as usize * 31 + c * 7 + handle.rank) % 11) as f32 * 0.1;
                }
            }
            let lhs: f32 = gathered.hadamard(&y).sum();
            let scattered = handle.scatter_backward(&y)?;
            Ok((lhs, scattered))
        })
        .expect("healthy cluster");
        let lhs_total: f32 = results.iter().map(|(l, _)| *l).sum();
        let mut rhs_total = 0.0f32;
        for (d, (_, scattered)) in results.iter().enumerate() {
            for (i, &v) in info.pg.local[d].iter().enumerate() {
                for c in 0..3 {
                    rhs_total += x[(v as usize, c)] * scattered[(i, c)];
                }
            }
        }
        assert!(
            (lhs_total - rhs_total).abs() < 1e-2 * lhs_total.abs().max(1.0),
            "adjoint mismatch: {lhs_total} vs {rhs_total}"
        );
    }

    #[test]
    fn compiled_collectives_match_reference_bitwise() {
        let (graph, info) = setup();
        let n = graph.num_vertices();
        let mut init = XavierInit::new(11);
        let x = init.features(n, 4);
        let per_device = info.dispatch_features(&x);
        let ok = run_cluster(&info, |handle| {
            let lg = handle.local_graph();
            let fast = handle.graph_allgather(&per_device[handle.rank])?;
            let slow = handle.graph_allgather_reference(&per_device[handle.rank])?;
            assert_eq!(fast, slow, "allgather parity on rank {}", handle.rank);
            let mut grad = Matrix::zeros(lg.num_total(), 4);
            for (li, &v) in lg.global_ids.iter().enumerate() {
                for c in 0..4 {
                    grad[(li, c)] = ((v as usize * 13 + c * 5 + handle.rank) % 7) as f32 * 0.25;
                }
            }
            let fast_b = handle.scatter_backward(&grad)?;
            let slow_b = handle.scatter_backward_reference(&grad)?;
            assert_eq!(fast_b, slow_b, "backward parity on rank {}", handle.rank);
            Ok(true)
        })
        .expect("healthy cluster");
        assert_eq!(ok, vec![true; info.num_devices()]);
    }

    #[test]
    fn allgather_works_repeatedly() {
        let (_, info) = setup();
        let counts = run_cluster(&info, |handle| {
            let lg = handle.local_graph();
            let local = Matrix::full(lg.num_local, 1, handle.rank as f32);
            for _ in 0..3 {
                let out = handle.graph_allgather(&local)?;
                assert_eq!(out.rows(), lg.num_total());
            }
            Ok(3)
        })
        .expect("healthy cluster");
        assert_eq!(counts, vec![3; info.num_devices()]);
    }

    #[test]
    fn straggler_devices_do_not_corrupt_results() {
        // Failure injection: devices pause for rank-dependent times
        // between operations. The decentralized flag protocol must
        // tolerate arbitrary skew — transient stragglers block only
        // their own peers (§6.1), never correctness.
        let (graph, info) = setup();
        let n = graph.num_vertices();
        let mut features = Matrix::zeros(n, 2);
        for v in 0..n {
            features.set_row(v, &[v as f32, -(v as f32)]);
        }
        let per_device = info.dispatch_features(&features);
        let gathered = run_cluster(&info, |handle| {
            for round in 0..3 {
                std::thread::sleep(std::time::Duration::from_millis(
                    (handle.rank as u64 * 7 + round) % 11,
                ));
                let out = handle.graph_allgather(&per_device[handle.rank])?;
                std::thread::sleep(std::time::Duration::from_millis(
                    (11 - handle.rank as u64) % 5,
                ));
                let grads = handle.scatter_backward(&out)?;
                assert_eq!(grads.rows(), handle.local_graph().num_local);
            }
            handle.graph_allgather(&per_device[handle.rank])
        })
        .expect("healthy cluster");
        for (d, full) in gathered.iter().enumerate() {
            let lg = info.pg.local_graph(d);
            for (li, &v) in lg.global_ids.iter().enumerate() {
                assert_eq!(full.row(li), &[v as f32, -(v as f32)], "device {d}");
            }
        }
    }

    #[test]
    fn allgather_on_16_gpus() {
        let graph = Dataset::WikiTalk.generate(0.001, 9);
        let info = build_comm_info(&graph, Topology::dgx1_pair_ib(), BuildOptions::default());
        let n = graph.num_vertices();
        let mut features = Matrix::zeros(n, 1);
        for v in 0..n {
            features.set_row(v, &[v as f32]);
        }
        let per_device = info.dispatch_features(&features);
        let gathered = run_cluster(&info, |handle| {
            handle.graph_allgather(&per_device[handle.rank])
        })
        .expect("healthy cluster");
        for (d, full) in gathered.iter().enumerate() {
            let lg = info.pg.local_graph(d);
            for (li, &v) in lg.global_ids.iter().enumerate() {
                assert_eq!(full.row(li)[0], v as f32, "device {d} vertex {v}");
            }
        }
    }

    #[test]
    fn body_error_fails_the_whole_cluster() {
        let (_, info) = setup();
        let err = run_cluster(&info, |handle| {
            if handle.rank == 1 {
                return Err(RuntimeError::Protocol {
                    rank: 1,
                    detail: "synthetic failure".to_string(),
                });
            }
            handle.allreduce(Vec::new())?;
            Ok(())
        })
        .expect_err("rank 1 fails");
        assert_eq!(err.rank, 1);
        assert!(
            matches!(
                err.cause,
                ClusterFailure::Error(RuntimeError::Protocol { rank: 1, .. })
            ),
            "{err}"
        );
        assert!(err.per_rank[1].is_some(), "rank 1 recorded as failed");
        // Peers were blocked in allreduce and unwound via poison.
        for (r, outcome) in err.per_rank.iter().enumerate() {
            if r != 1 {
                assert!(
                    matches!(
                        outcome,
                        Some(ClusterFailure::Error(RuntimeError::Poisoned {
                            origin: 1,
                            ..
                        }))
                    ),
                    "rank {r}: {outcome:?}"
                );
            }
        }
    }

    #[test]
    fn injected_crash_surfaces_on_every_rank() {
        let (_, info) = setup();
        let cfg = FabricConfig {
            faults: crate::fault::FaultPlan::crash(2, 1),
            ..FabricConfig::default()
        };
        let err = run_cluster_with(&info, cfg, |handle| handle.allreduce(Vec::new()))
            .expect_err("rank 2 crashes");
        assert_eq!(err.rank, 2);
        assert!(
            matches!(
                err.cause,
                ClusterFailure::Error(RuntimeError::InjectedCrash { rank: 2, at_op: 1 })
            ),
            "{err}"
        );
    }
}
