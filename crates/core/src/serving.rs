//! Batched forward-only inference serving.
//!
//! Training produces a model; serving answers *"what is vertex v's
//! embedding under the current parameters?"* with low latency. The
//! [`InferenceServer`] runs a single background worker that
//! micro-batches concurrent requests: a request is answered either when
//! [`ServingConfig::max_batch`] requests have queued (size trigger) or
//! when the oldest queued request has waited
//! [`ServingConfig::max_delay`] (deadline trigger), whichever comes
//! first. Batching amortises the per-flush sparse k-hop expansion and
//! the layer matmuls across requests, which is what lets the batched
//! server sustain a higher QPS than a `max_batch = 1` server at the
//! same per-request work (`BENCH_serving.json` measures both).
//!
//! Two properties keep the answers trustworthy:
//!
//! * **Bitwise parity with full inference.** A served embedding is
//!   bitwise identical to the corresponding row of
//!   [`GnnNetwork::forward`] over the whole graph. Layer 0 touches
//!   every vertex's raw features, so its output is computed once at
//!   spawn and cached; layers `1..L` are recomputed per flush over the
//!   sparse k-hop input closure of the batch
//!   ([`dgcl_graph::k_hop_closure_sparse`]), aggregating each vertex's
//!   full neighbour list in adjacency order — the same element order
//!   and `f32` accumulator as the full kernels in `dgcl_gnn`.
//! * **Bounded staleness, explicit timing.** Every [`ServedReply`]
//!   carries the flush's batch size and completion instant so load
//!   drivers can attribute latency to queueing vs compute.
//!
//! The server is deliberately fabric-free: serving replicates the
//! model and the (layer-0) embedding table, so a query never crosses a
//! partition boundary. That mirrors the common deployment where
//! training is distributed but each inference replica is standalone.

use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use dgcl_gnn::{AggKind, GnnNetwork};
use dgcl_graph::{k_hop_closure_sparse, CsrGraph, GraphError, VertexId};
use dgcl_tensor::Matrix;

/// Micro-batching policy for an [`InferenceServer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServingConfig {
    /// Flush as soon as this many requests are queued. `0` is treated
    /// as `1` (every request flushes alone).
    pub max_batch: usize,
    /// Flush once the oldest queued request has waited this long, even
    /// if the batch is not full.
    pub max_delay: Duration,
}

impl Default for ServingConfig {
    fn default() -> Self {
        Self {
            max_batch: 16,
            max_delay: Duration::from_millis(2),
        }
    }
}

impl ServingConfig {
    /// The unbatched baseline: every request is served alone,
    /// immediately. The serving benchmark compares this against
    /// micro-batched configurations.
    pub fn unbatched() -> Self {
        Self {
            max_batch: 1,
            max_delay: Duration::ZERO,
        }
    }
}

/// The answer to one inference request.
#[derive(Debug, Clone)]
pub struct ServedReply {
    /// The queried vertex's output-layer embedding — bitwise identical
    /// to its row of [`GnnNetwork::forward`] over the whole graph.
    pub embedding: Vec<f32>,
    /// How many requests shared the flush that produced this reply.
    pub batch_size: usize,
    /// When the flush completed (reply send time); subtract the
    /// caller's enqueue instant for end-to-end latency.
    pub completed: Instant,
}

/// A pending reply; redeem with [`ServedFuture::wait`].
#[derive(Debug)]
pub struct ServedFuture {
    rx: Receiver<ServedReply>,
}

impl ServedFuture {
    /// Blocks until the server answers. Returns `None` only if the
    /// server shut down before serving this request.
    pub fn wait(self) -> Option<ServedReply> {
        self.rx.recv().ok()
    }

    /// Like [`ServedFuture::wait`] but gives up after `timeout`.
    pub fn wait_timeout(self, timeout: Duration) -> Option<ServedReply> {
        self.rx.recv_timeout(timeout).ok()
    }
}

enum Req {
    Query {
        v: VertexId,
        reply: Sender<ServedReply>,
    },
    Shutdown,
}

/// A standalone batched inference server over a trained model.
///
/// Spawning precomputes the layer-0 output for every vertex (the only
/// layer that reads raw features); each flush then recomputes layers
/// `1..L` over the sparse input closure of the batched seeds. Dropping
/// the server flushes the queue and joins the worker.
pub struct InferenceServer {
    tx: Sender<Req>,
    join: Option<JoinHandle<()>>,
    num_vertices: usize,
}

impl InferenceServer {
    /// Starts a server for `net` over `graph` with raw vertex
    /// `features`. The graph, model and cached layer-0 output are
    /// cloned into the worker; later training steps on the caller's
    /// copy do not affect replies (snapshot semantics).
    ///
    /// # Panics
    ///
    /// Panics if `features` has fewer rows than the graph has vertices
    /// or its width mismatches layer 0.
    pub fn spawn(
        graph: &CsrGraph,
        features: &Matrix,
        net: &GnnNetwork,
        cfg: ServingConfig,
    ) -> Self {
        let n = graph.num_vertices();
        assert!(features.rows() >= n, "feature rows cover every vertex");
        let mut net = net.clone();
        let graph = graph.clone();
        // Layer 0 is the one layer that consumes raw features of every
        // vertex; computing it once here is exactly the first step of
        // GnnNetwork::forward, so cached rows are bitwise right.
        let h1 = net.layers_mut()[0].forward(&graph, features, n);
        let (tx, rx) = channel::<Req>();
        let max_batch = cfg.max_batch.max(1);
        let join = std::thread::spawn(move || {
            serve_loop(&rx, &graph, &mut net, &h1, max_batch, cfg.max_delay);
        });
        Self {
            tx,
            join: Some(join),
            num_vertices: n,
        }
    }

    /// Enqueues a query for vertex `v`'s embedding.
    ///
    /// # Errors
    ///
    /// [`GraphError::SeedOutOfRange`] if `v` is not a vertex of the
    /// served graph; the queue is not touched.
    pub fn query(&self, v: VertexId) -> Result<ServedFuture, GraphError> {
        if v as usize >= self.num_vertices {
            return Err(GraphError::SeedOutOfRange {
                seed: v,
                num_vertices: self.num_vertices,
            });
        }
        let (reply, rx) = channel();
        // A dead worker is only possible after Drop began; the future
        // then resolves to None via the dropped reply sender.
        let _ = self.tx.send(Req::Query { v, reply });
        Ok(ServedFuture { rx })
    }

    /// Number of vertices in the served graph.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }
}

impl Drop for InferenceServer {
    fn drop(&mut self) {
        let _ = self.tx.send(Req::Shutdown);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

fn serve_loop(
    rx: &Receiver<Req>,
    graph: &CsrGraph,
    net: &mut GnnNetwork,
    h1: &Matrix,
    max_batch: usize,
    max_delay: Duration,
) {
    let mut queue: Vec<(VertexId, Sender<ServedReply>)> = Vec::new();
    let mut oldest = Instant::now();
    loop {
        let msg = if queue.is_empty() {
            match rx.recv() {
                Ok(m) => Some(m),
                Err(_) => break,
            }
        } else {
            let budget = max_delay.saturating_sub(oldest.elapsed());
            match rx.recv_timeout(budget) {
                Ok(m) => Some(m),
                Err(RecvTimeoutError::Timeout) => None,
                Err(RecvTimeoutError::Disconnected) => break,
            }
        };
        match msg {
            Some(Req::Query { v, reply }) => {
                if queue.is_empty() {
                    oldest = Instant::now();
                }
                queue.push((v, reply));
                if queue.len() >= max_batch {
                    flush(graph, net, h1, &mut queue);
                }
            }
            Some(Req::Shutdown) => break,
            // Deadline trigger: the oldest request has waited long
            // enough; serve whatever is queued.
            None => flush(graph, net, h1, &mut queue),
        }
    }
    // Drain on shutdown so no ServedFuture hangs forever.
    flush(graph, net, h1, &mut queue);
}

/// Serves every queued request in one batch and empties the queue.
fn flush(
    graph: &CsrGraph,
    net: &mut GnnNetwork,
    h1: &Matrix,
    queue: &mut Vec<(VertexId, Sender<ServedReply>)>,
) {
    if queue.is_empty() {
        return;
    }
    let mut seeds: Vec<VertexId> = queue.iter().map(|(v, _)| *v).collect();
    seeds.sort_unstable();
    seeds.dedup();
    let out = forward_tail(graph, net, h1, &seeds);
    let batch_size = queue.len();
    let completed = Instant::now();
    for (v, reply) in queue.drain(..) {
        let pos = seeds.binary_search(&v).expect("every query is a seed");
        let _ = reply.send(ServedReply {
            embedding: out.row(pos).to_vec(),
            batch_size,
            completed,
        });
    }
}

/// Runs layers `1..L` for `seeds` (sorted, deduped, in range) from the
/// cached layer-0 output, over the sparse input closure of the batch.
/// Row `i` of the result is bitwise identical to row `seeds[i]` of the
/// full-graph forward.
fn forward_tail(graph: &CsrGraph, net: &mut GnnNetwork, h1: &Matrix, seeds: &[VertexId]) -> Matrix {
    let num_layers = net.num_layers();
    let idx: Vec<usize> = seeds.iter().map(|&v| v as usize).collect();
    if num_layers == 1 {
        return h1.gather_rows(&idx);
    }
    // out_sets[l] (1 <= l < L): the vertices whose layer-l output the
    // flush needs. Built top-down: the last layer needs the seeds, each
    // earlier layer the 1-hop closure of its successor's needs.
    let mut top_down: Vec<Vec<VertexId>> = Vec::with_capacity(num_layers - 1);
    top_down.push(seeds.to_vec());
    for _ in 2..num_layers {
        let widened = k_hop_closure_sparse(graph, top_down.last().expect("seeded"), 1)
            .expect("seeds validated at query time")
            .into_visited();
        top_down.push(widened);
    }
    let mut out_sets: Vec<Vec<VertexId>> = vec![Vec::new()]; // index 0 unused
    out_sets.extend(top_down.into_iter().rev());
    let mut in_set = k_hop_closure_sparse(graph, &out_sets[1], 1)
        .expect("seeds validated at query time")
        .into_visited();
    let in_idx: Vec<usize> = in_set.iter().map(|&v| v as usize).collect();
    let mut h = h1.gather_rows(&in_idx);
    for (l, out_set) in out_sets.into_iter().enumerate().skip(1) {
        let kind = net.layers()[l].arch().agg_kind();
        let agg = tail_aggregate(graph, &h, &in_set, &out_set, kind);
        let self_pos: Vec<usize> = out_set
            .iter()
            .map(|v| in_set.binary_search(v).expect("closure contains its core"))
            .collect();
        let h_self = h.gather_rows(&self_pos);
        h = net.layers_mut()[l].forward_agg(&h_self, agg);
        in_set = out_set;
    }
    h
}

/// Full-neighbourhood aggregation where the value matrix `h` holds only
/// the rows of `in_set` (sorted global ids). `in_set` must 1-hop cover
/// `out_set`. Sums each vertex's neighbour rows in adjacency order and
/// divides by the full degree for [`AggKind::Mean`] — the same order
/// and accumulator as `dgcl_gnn::aggregate::aggregate_sum`/`_mean`, so
/// rows are bitwise identical to the full kernels.
fn tail_aggregate(
    graph: &CsrGraph,
    h: &Matrix,
    in_set: &[VertexId],
    out_set: &[VertexId],
    kind: AggKind,
) -> Matrix {
    let cols = h.cols();
    let mut out = Matrix::zeros(out_set.len(), cols);
    for (i, &v) in out_set.iter().enumerate() {
        let row = out.row_mut(i);
        for &u in graph.neighbors(v) {
            let p = in_set
                .binary_search(&u)
                .expect("input closure covers the neighbourhood");
            for (o, &x) in row.iter_mut().zip(h.row(p)) {
                *o += x;
            }
        }
        if kind == AggKind::Mean {
            let deg = graph.out_degree(v);
            if deg > 1 {
                let inv = 1.0 / deg as f32;
                for o in row {
                    *o *= inv;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgcl_gnn::Architecture;
    use dgcl_graph::Dataset;
    use dgcl_tensor::XavierInit;

    fn setup(arch: Architecture, dims: &[usize]) -> (CsrGraph, Matrix, GnnNetwork) {
        let graph = Dataset::WikiTalk.generate(0.0005, 3);
        let n = graph.num_vertices();
        let mut init = XavierInit::new(17);
        let features = init.features(n, dims[0]);
        let net = GnnNetwork::new(arch, dims, 23);
        (graph, features, net)
    }

    #[test]
    fn served_rows_are_bitwise_full_forward_rows() {
        for arch in [
            Architecture::Gcn,
            Architecture::CommNet,
            Architecture::Gin,
            Architecture::Sage,
        ] {
            let (graph, features, net) = setup(arch, &[6, 5, 3]);
            let full = net.clone().forward(&graph, &features);
            let server = InferenceServer::spawn(&graph, &features, &net, ServingConfig::default());
            let n = graph.num_vertices();
            let probes: Vec<VertexId> = (0..n as VertexId).step_by(37).collect();
            let futures: Vec<(VertexId, ServedFuture)> = probes
                .iter()
                .map(|&v| (v, server.query(v).expect("in range")))
                .collect();
            for (v, fut) in futures {
                let reply = fut.wait().expect("server alive");
                assert_eq!(
                    reply.embedding.as_slice(),
                    full.row(v as usize),
                    "{arch:?}: served row {v} differs from full forward"
                );
            }
        }
    }

    #[test]
    fn single_layer_nets_serve_from_the_cache() {
        let (graph, features, net) = setup(Architecture::Gcn, &[6, 4]);
        let full = net.clone().forward(&graph, &features);
        let server = InferenceServer::spawn(&graph, &features, &net, ServingConfig::unbatched());
        let reply = server.query(5).expect("in range").wait().expect("alive");
        assert_eq!(reply.embedding.as_slice(), full.row(5));
        assert_eq!(reply.batch_size, 1);
    }

    #[test]
    fn size_trigger_batches_concurrent_requests() {
        let (graph, features, net) = setup(Architecture::Gcn, &[6, 5, 3]);
        let server = InferenceServer::spawn(
            &graph,
            &features,
            &net,
            ServingConfig {
                max_batch: 4,
                // Effectively never: only the size trigger can flush.
                max_delay: Duration::from_secs(3600),
            },
        );
        let futs: Vec<ServedFuture> = (0..4).map(|v| server.query(v).expect("ok")).collect();
        for fut in futs {
            let reply = fut
                .wait_timeout(Duration::from_secs(30))
                .expect("size trigger fired");
            assert_eq!(reply.batch_size, 4);
        }
    }

    #[test]
    fn deadline_trigger_serves_a_lone_request() {
        let (graph, features, net) = setup(Architecture::Gcn, &[6, 5, 3]);
        let server = InferenceServer::spawn(
            &graph,
            &features,
            &net,
            ServingConfig {
                max_batch: 1024,
                max_delay: Duration::from_millis(5),
            },
        );
        let reply = server
            .query(7)
            .expect("ok")
            .wait_timeout(Duration::from_secs(30))
            .expect("deadline trigger fired");
        assert_eq!(reply.batch_size, 1);
    }

    #[test]
    fn out_of_range_query_is_a_typed_error() {
        let (graph, features, net) = setup(Architecture::Gcn, &[6, 4]);
        let server = InferenceServer::spawn(&graph, &features, &net, ServingConfig::default());
        let n = graph.num_vertices();
        let err = server.query(n as VertexId).expect_err("out of range");
        assert!(matches!(err, GraphError::SeedOutOfRange { .. }));
    }

    #[test]
    fn duplicate_queries_in_one_flush_each_get_a_reply() {
        let (graph, features, net) = setup(Architecture::Gcn, &[6, 5, 3]);
        let full = net.clone().forward(&graph, &features);
        let server = InferenceServer::spawn(
            &graph,
            &features,
            &net,
            ServingConfig {
                max_batch: 3,
                max_delay: Duration::from_secs(3600),
            },
        );
        let futs: Vec<ServedFuture> = [9u32, 9, 9]
            .iter()
            .map(|&v| server.query(v).expect("ok"))
            .collect();
        for fut in futs {
            let reply = fut
                .wait_timeout(Duration::from_secs(30))
                .expect("size trigger fired");
            assert_eq!(reply.embedding.as_slice(), full.row(9));
            assert_eq!(reply.batch_size, 3);
        }
    }

    #[test]
    fn shutdown_drains_the_queue() {
        let (graph, features, net) = setup(Architecture::Gcn, &[6, 5, 3]);
        let full = net.clone().forward(&graph, &features);
        let server = InferenceServer::spawn(
            &graph,
            &features,
            &net,
            ServingConfig {
                max_batch: 1024,
                max_delay: Duration::from_secs(3600),
            },
        );
        let fut = server.query(3).expect("ok");
        drop(server);
        let reply = fut.wait().expect("drained on shutdown");
        assert_eq!(reply.embedding.as_slice(), full.row(3));
    }
}
