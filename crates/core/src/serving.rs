//! Batched forward-only inference serving.
//!
//! Training produces a model; serving answers *"what is vertex v's
//! embedding under the current parameters?"* with low latency. The
//! [`InferenceServer`] runs a single background worker that
//! micro-batches concurrent requests: a request is answered either when
//! [`ServingConfig::max_batch`] requests have queued (size trigger) or
//! when the oldest queued request has waited
//! [`ServingConfig::max_delay`] (deadline trigger), whichever comes
//! first. Batching amortises the per-flush sparse k-hop expansion and
//! the layer matmuls across requests, which is what lets the batched
//! server sustain a higher QPS than a `max_batch = 1` server at the
//! same per-request work (`BENCH_serving.json` measures both).
//!
//! Two properties keep the answers trustworthy:
//!
//! * **Bitwise parity with full inference.** A served embedding is
//!   bitwise identical to the corresponding row of
//!   [`GnnNetwork::forward`] over the whole graph. Layer 0 touches
//!   every vertex's raw features, so its output is computed once at
//!   spawn and cached; layers `1..L` are recomputed per flush over the
//!   sparse k-hop input closure of the batch
//!   ([`dgcl_graph::k_hop_closure_sparse`]), aggregating each vertex's
//!   full neighbour list in adjacency order — the same element order
//!   and `f32` accumulator as the full kernels in `dgcl_gnn`.
//! * **Bounded staleness, explicit timing.** Every [`ServedReply`]
//!   carries the flush's batch size and completion instant so load
//!   drivers can attribute latency to queueing vs compute.
//!
//! The server is deliberately fabric-free: serving replicates the
//! model and the (layer-0) embedding table, so a query never crosses a
//! partition boundary. That mirrors the common deployment where
//! training is distributed but each inference replica is standalone.

use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use dgcl_gnn::{AggKind, GnnNetwork};
use dgcl_graph::{k_hop_closure_sparse, CsrGraph, GraphError, VertexId};
use dgcl_tensor::Matrix;

use crate::featcache::{CacheStats, CacheStatsSnapshot};

/// Micro-batching policy for an [`InferenceServer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServingConfig {
    /// Flush as soon as this many requests are queued. `0` is treated
    /// as `1` (every request flushes alone).
    pub max_batch: usize,
    /// Flush once the oldest queued request has waited this long, even
    /// if the batch is not full.
    pub max_delay: Duration,
    /// Bound the resident layer-0 table to this many rows. `None` (the
    /// default) keeps the full table; `Some(c)` retains only the `c`
    /// highest-degree vertices' rows (ascending id on ties) and
    /// recomputes misses per flush from the raw features — bitwise
    /// identical either way, trading memory for per-flush compute.
    /// [`InferenceServer::cache_stats`] reports the hit/miss counters.
    pub cache_rows: Option<usize>,
}

impl Default for ServingConfig {
    fn default() -> Self {
        Self {
            max_batch: 16,
            max_delay: Duration::from_millis(2),
            cache_rows: None,
        }
    }
}

impl ServingConfig {
    /// The unbatched baseline: every request is served alone,
    /// immediately. The serving benchmark compares this against
    /// micro-batched configurations.
    pub fn unbatched() -> Self {
        Self {
            max_batch: 1,
            max_delay: Duration::ZERO,
            cache_rows: None,
        }
    }
}

/// The answer to one inference request.
#[derive(Debug, Clone)]
pub struct ServedReply {
    /// The queried vertex's output-layer embedding — bitwise identical
    /// to its row of [`GnnNetwork::forward`] over the whole graph.
    pub embedding: Vec<f32>,
    /// How many requests shared the flush that produced this reply.
    pub batch_size: usize,
    /// When the flush completed (reply send time); subtract the
    /// caller's enqueue instant for end-to-end latency.
    pub completed: Instant,
}

/// A pending reply; redeem with [`ServedFuture::wait`].
#[derive(Debug)]
pub struct ServedFuture {
    rx: Receiver<ServedReply>,
}

impl ServedFuture {
    /// Blocks until the server answers. Returns `None` only if the
    /// server shut down before serving this request.
    pub fn wait(self) -> Option<ServedReply> {
        self.rx.recv().ok()
    }

    /// Like [`ServedFuture::wait`] but gives up after `timeout`.
    pub fn wait_timeout(self, timeout: Duration) -> Option<ServedReply> {
        self.rx.recv_timeout(timeout).ok()
    }
}

enum Req {
    Query {
        v: VertexId,
        reply: Sender<ServedReply>,
    },
    Shutdown,
}

/// The flush's layer-0 source: the full precomputed table, or a
/// degree-bounded cache of it with per-flush miss recomputation.
enum Layer0 {
    /// Every vertex's layer-0 output, as computed at spawn.
    Full(Matrix),
    /// Only the hottest vertices' rows stay resident; misses recompute
    /// from the raw features (bitwise identical to the dropped rows).
    Cached {
        /// Cached global ids, ascending.
        ids: Vec<VertexId>,
        /// `rows[i]` is `ids[i]`'s layer-0 output row.
        rows: Matrix,
        /// Raw features, retained for miss recomputation.
        features: Matrix,
        /// Hit/miss counters shared with [`InferenceServer::cache_stats`].
        stats: Arc<CacheStats>,
    },
}

impl Layer0 {
    /// The layer-0 output rows for `set` (sorted, deduped global ids) —
    /// bitwise identical to the same rows of the full spawn-time table.
    fn gather(&self, graph: &CsrGraph, net: &mut GnnNetwork, set: &[VertexId]) -> Matrix {
        match self {
            Layer0::Full(h1) => {
                let idx: Vec<usize> = set.iter().map(|&v| v as usize).collect();
                h1.gather_rows(&idx)
            }
            Layer0::Cached {
                ids,
                rows,
                features,
                stats,
            } => {
                let misses: Vec<VertexId> = set
                    .iter()
                    .copied()
                    .filter(|v| ids.binary_search(v).is_err())
                    .collect();
                let recomputed = if misses.is_empty() {
                    Matrix::zeros(0, rows.cols())
                } else {
                    // The per-row slice of layer 0's spawn-time forward:
                    // same adjacency-order aggregation, same row-wise
                    // layer math, so recomputed rows are bitwise equal.
                    let kind = net.layers()[0].arch().agg_kind();
                    let agg = full_aggregate_rows(graph, features, &misses, kind);
                    let midx: Vec<usize> = misses.iter().map(|&v| v as usize).collect();
                    let h_self = features.gather_rows(&midx);
                    net.layers_mut()[0].forward_agg(&h_self, agg)
                };
                let mut out = Matrix::zeros(set.len(), rows.cols());
                for (i, &v) in set.iter().enumerate() {
                    match ids.binary_search(&v) {
                        Ok(ci) => out.set_row(i, rows.row(ci)),
                        Err(_) => {
                            let mi = misses.binary_search(&v).expect("miss recorded");
                            out.set_row(i, recomputed.row(mi));
                        }
                    }
                }
                stats.record(
                    (set.len() - misses.len()) as u64,
                    misses.len() as u64,
                    rows.cols(),
                );
                out
            }
        }
    }
}

/// A standalone batched inference server over a trained model.
///
/// Spawning precomputes the layer-0 output for every vertex (the only
/// layer that reads raw features); each flush then recomputes layers
/// `1..L` over the sparse input closure of the batched seeds. Dropping
/// the server flushes the queue and joins the worker.
pub struct InferenceServer {
    tx: Sender<Req>,
    join: Option<JoinHandle<()>>,
    num_vertices: usize,
    cache: Option<(Arc<CacheStats>, u64)>,
}

impl InferenceServer {
    /// Starts a server for `net` over `graph` with raw vertex
    /// `features`. The graph, model and cached layer-0 output are
    /// cloned into the worker; later training steps on the caller's
    /// copy do not affect replies (snapshot semantics).
    ///
    /// # Panics
    ///
    /// Panics if `features` has fewer rows than the graph has vertices
    /// or its width mismatches layer 0.
    pub fn spawn(
        graph: &CsrGraph,
        features: &Matrix,
        net: &GnnNetwork,
        cfg: ServingConfig,
    ) -> Self {
        let n = graph.num_vertices();
        assert!(features.rows() >= n, "feature rows cover every vertex");
        let mut net = net.clone();
        let graph = graph.clone();
        // Layer 0 is the one layer that consumes raw features of every
        // vertex; computing it once here is exactly the first step of
        // GnnNetwork::forward, so cached rows are bitwise right.
        let h1 = net.layers_mut()[0].forward(&graph, features, n);
        let (layer0, cache) = match cfg.cache_rows {
            None => (Layer0::Full(h1), None),
            Some(c) => {
                // Retain the highest-degree rows (the ones k-hop
                // closures touch most often on skewed graphs).
                let mut order: Vec<VertexId> = (0..n as VertexId).collect();
                order.sort_by(|&a, &b| {
                    graph
                        .out_degree(b)
                        .cmp(&graph.out_degree(a))
                        .then(a.cmp(&b))
                });
                order.truncate(c.min(n));
                order.sort_unstable();
                let idx: Vec<usize> = order.iter().map(|&v| v as usize).collect();
                let rows = h1.gather_rows(&idx);
                let stats = Arc::new(CacheStats::default());
                let capacity = order.len() as u64;
                (
                    Layer0::Cached {
                        ids: order,
                        rows,
                        features: features.clone(),
                        stats: Arc::clone(&stats),
                    },
                    Some((stats, capacity)),
                )
            }
        };
        let (tx, rx) = channel::<Req>();
        let max_batch = cfg.max_batch.max(1);
        let join = std::thread::spawn(move || {
            serve_loop(&rx, &graph, &mut net, &layer0, max_batch, cfg.max_delay);
        });
        Self {
            tx,
            join: Some(join),
            num_vertices: n,
            cache,
        }
    }

    /// Layer-0 cache counters, when [`ServingConfig::cache_rows`] bounds
    /// the table (`None` for the full-table server).
    pub fn cache_stats(&self) -> Option<CacheStatsSnapshot> {
        self.cache
            .as_ref()
            .map(|(stats, capacity)| stats.snapshot(*capacity))
    }

    /// Enqueues a query for vertex `v`'s embedding.
    ///
    /// # Errors
    ///
    /// [`GraphError::SeedOutOfRange`] if `v` is not a vertex of the
    /// served graph; the queue is not touched.
    pub fn query(&self, v: VertexId) -> Result<ServedFuture, GraphError> {
        if v as usize >= self.num_vertices {
            return Err(GraphError::SeedOutOfRange {
                seed: v,
                num_vertices: self.num_vertices,
            });
        }
        let (reply, rx) = channel();
        // A dead worker is only possible after Drop began; the future
        // then resolves to None via the dropped reply sender.
        let _ = self.tx.send(Req::Query { v, reply });
        Ok(ServedFuture { rx })
    }

    /// Number of vertices in the served graph.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }
}

impl Drop for InferenceServer {
    fn drop(&mut self) {
        let _ = self.tx.send(Req::Shutdown);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

fn serve_loop(
    rx: &Receiver<Req>,
    graph: &CsrGraph,
    net: &mut GnnNetwork,
    layer0: &Layer0,
    max_batch: usize,
    max_delay: Duration,
) {
    let mut queue: Vec<(VertexId, Sender<ServedReply>)> = Vec::new();
    // Per-flush seed scratch, recycled across flushes.
    let mut seeds: Vec<VertexId> = Vec::new();
    let mut oldest = Instant::now();
    loop {
        let msg = if queue.is_empty() {
            match rx.recv() {
                Ok(m) => Some(m),
                Err(_) => break,
            }
        } else {
            let budget = max_delay.saturating_sub(oldest.elapsed());
            match rx.recv_timeout(budget) {
                Ok(m) => Some(m),
                Err(RecvTimeoutError::Timeout) => None,
                Err(RecvTimeoutError::Disconnected) => break,
            }
        };
        match msg {
            Some(Req::Query { v, reply }) => {
                if queue.is_empty() {
                    oldest = Instant::now();
                }
                queue.push((v, reply));
                if queue.len() >= max_batch {
                    flush(graph, net, layer0, &mut queue, &mut seeds);
                }
            }
            Some(Req::Shutdown) => break,
            // Deadline trigger: the oldest request has waited long
            // enough; serve whatever is queued.
            None => flush(graph, net, layer0, &mut queue, &mut seeds),
        }
    }
    // Drain on shutdown so no ServedFuture hangs forever.
    flush(graph, net, layer0, &mut queue, &mut seeds);
}

/// Serves every queued request in one batch and empties the queue.
/// `seeds` is caller-owned scratch, cleared and refilled here so its
/// allocation recycles across flushes.
fn flush(
    graph: &CsrGraph,
    net: &mut GnnNetwork,
    layer0: &Layer0,
    queue: &mut Vec<(VertexId, Sender<ServedReply>)>,
    seeds: &mut Vec<VertexId>,
) {
    if queue.is_empty() {
        return;
    }
    seeds.clear();
    seeds.extend(queue.iter().map(|(v, _)| *v));
    seeds.sort_unstable();
    seeds.dedup();
    let out = forward_tail(graph, net, layer0, seeds);
    let batch_size = queue.len();
    let completed = Instant::now();
    for (v, reply) in queue.drain(..) {
        let pos = seeds.binary_search(&v).expect("every query is a seed");
        let _ = reply.send(ServedReply {
            embedding: out.row(pos).to_vec(),
            batch_size,
            completed,
        });
    }
}

/// Runs layers `1..L` for `seeds` (sorted, deduped, in range) from the
/// layer-0 source, over the sparse input closure of the batch. Row `i`
/// of the result is bitwise identical to row `seeds[i]` of the
/// full-graph forward.
fn forward_tail(
    graph: &CsrGraph,
    net: &mut GnnNetwork,
    layer0: &Layer0,
    seeds: &[VertexId],
) -> Matrix {
    let num_layers = net.num_layers();
    if num_layers == 1 {
        return layer0.gather(graph, net, seeds);
    }
    // out_sets[l] (1 <= l < L): the vertices whose layer-l output the
    // flush needs. Built top-down: the last layer needs the seeds, each
    // earlier layer the 1-hop closure of its successor's needs.
    let mut top_down: Vec<Vec<VertexId>> = Vec::with_capacity(num_layers - 1);
    top_down.push(seeds.to_vec());
    for _ in 2..num_layers {
        let widened = k_hop_closure_sparse(graph, top_down.last().expect("seeded"), 1)
            .expect("seeds validated at query time")
            .into_visited();
        top_down.push(widened);
    }
    let mut out_sets: Vec<Vec<VertexId>> = vec![Vec::new()]; // index 0 unused
    out_sets.extend(top_down.into_iter().rev());
    let mut in_set = k_hop_closure_sparse(graph, &out_sets[1], 1)
        .expect("seeds validated at query time")
        .into_visited();
    let mut h = layer0.gather(graph, net, &in_set);
    for (l, out_set) in out_sets.into_iter().enumerate().skip(1) {
        let kind = net.layers()[l].arch().agg_kind();
        let agg = tail_aggregate(graph, &h, &in_set, &out_set, kind);
        let self_pos: Vec<usize> = out_set
            .iter()
            .map(|v| in_set.binary_search(v).expect("closure contains its core"))
            .collect();
        let h_self = h.gather_rows(&self_pos);
        h = net.layers_mut()[l].forward_agg(&h_self, agg);
        in_set = out_set;
    }
    h
}

/// Full-neighbourhood aggregation over the *whole* feature matrix for a
/// subset of output rows — the row slice of
/// `dgcl_gnn::aggregate::aggregate_sum`/`_mean` (same adjacency order,
/// same accumulator, same `deg > 1` mean divisor), so each output row is
/// bitwise identical to the corresponding full-kernel row. Used to
/// recompute evicted layer-0 rows.
fn full_aggregate_rows(
    graph: &CsrGraph,
    h: &Matrix,
    out_rows: &[VertexId],
    kind: AggKind,
) -> Matrix {
    let cols = h.cols();
    let mut out = Matrix::zeros(out_rows.len(), cols);
    for (i, &v) in out_rows.iter().enumerate() {
        let row = out.row_mut(i);
        for &u in graph.neighbors(v) {
            for (o, &x) in row.iter_mut().zip(h.row(u as usize)) {
                *o += x;
            }
        }
        if kind == AggKind::Mean {
            let deg = graph.out_degree(v);
            if deg > 1 {
                let inv = 1.0 / deg as f32;
                for o in row {
                    *o *= inv;
                }
            }
        }
    }
    out
}

/// Full-neighbourhood aggregation where the value matrix `h` holds only
/// the rows of `in_set` (sorted global ids). `in_set` must 1-hop cover
/// `out_set`. Sums each vertex's neighbour rows in adjacency order and
/// divides by the full degree for [`AggKind::Mean`] — the same order
/// and accumulator as `dgcl_gnn::aggregate::aggregate_sum`/`_mean`, so
/// rows are bitwise identical to the full kernels.
fn tail_aggregate(
    graph: &CsrGraph,
    h: &Matrix,
    in_set: &[VertexId],
    out_set: &[VertexId],
    kind: AggKind,
) -> Matrix {
    let cols = h.cols();
    let mut out = Matrix::zeros(out_set.len(), cols);
    for (i, &v) in out_set.iter().enumerate() {
        let row = out.row_mut(i);
        for &u in graph.neighbors(v) {
            let p = in_set
                .binary_search(&u)
                .expect("input closure covers the neighbourhood");
            for (o, &x) in row.iter_mut().zip(h.row(p)) {
                *o += x;
            }
        }
        if kind == AggKind::Mean {
            let deg = graph.out_degree(v);
            if deg > 1 {
                let inv = 1.0 / deg as f32;
                for o in row {
                    *o *= inv;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgcl_gnn::Architecture;
    use dgcl_graph::Dataset;
    use dgcl_tensor::XavierInit;

    fn setup(arch: Architecture, dims: &[usize]) -> (CsrGraph, Matrix, GnnNetwork) {
        let graph = Dataset::WikiTalk.generate(0.0005, 3);
        let n = graph.num_vertices();
        let mut init = XavierInit::new(17);
        let features = init.features(n, dims[0]);
        let net = GnnNetwork::new(arch, dims, 23);
        (graph, features, net)
    }

    #[test]
    fn served_rows_are_bitwise_full_forward_rows() {
        for arch in [
            Architecture::Gcn,
            Architecture::CommNet,
            Architecture::Gin,
            Architecture::Sage,
        ] {
            let (graph, features, net) = setup(arch, &[6, 5, 3]);
            let full = net.clone().forward(&graph, &features);
            let server = InferenceServer::spawn(&graph, &features, &net, ServingConfig::default());
            let n = graph.num_vertices();
            let probes: Vec<VertexId> = (0..n as VertexId).step_by(37).collect();
            let futures: Vec<(VertexId, ServedFuture)> = probes
                .iter()
                .map(|&v| (v, server.query(v).expect("in range")))
                .collect();
            for (v, fut) in futures {
                let reply = fut.wait().expect("server alive");
                assert_eq!(
                    reply.embedding.as_slice(),
                    full.row(v as usize),
                    "{arch:?}: served row {v} differs from full forward"
                );
            }
        }
    }

    #[test]
    fn single_layer_nets_serve_from_the_cache() {
        let (graph, features, net) = setup(Architecture::Gcn, &[6, 4]);
        let full = net.clone().forward(&graph, &features);
        let server = InferenceServer::spawn(&graph, &features, &net, ServingConfig::unbatched());
        let reply = server.query(5).expect("in range").wait().expect("alive");
        assert_eq!(reply.embedding.as_slice(), full.row(5));
        assert_eq!(reply.batch_size, 1);
    }

    #[test]
    fn size_trigger_batches_concurrent_requests() {
        let (graph, features, net) = setup(Architecture::Gcn, &[6, 5, 3]);
        let server = InferenceServer::spawn(
            &graph,
            &features,
            &net,
            ServingConfig {
                max_batch: 4,
                // Effectively never: only the size trigger can flush.
                max_delay: Duration::from_secs(3600),
                cache_rows: None,
            },
        );
        let futs: Vec<ServedFuture> = (0..4).map(|v| server.query(v).expect("ok")).collect();
        for fut in futs {
            let reply = fut
                .wait_timeout(Duration::from_secs(30))
                .expect("size trigger fired");
            assert_eq!(reply.batch_size, 4);
        }
    }

    #[test]
    fn deadline_trigger_serves_a_lone_request() {
        let (graph, features, net) = setup(Architecture::Gcn, &[6, 5, 3]);
        let server = InferenceServer::spawn(
            &graph,
            &features,
            &net,
            ServingConfig {
                max_batch: 1024,
                max_delay: Duration::from_millis(5),
                cache_rows: None,
            },
        );
        let reply = server
            .query(7)
            .expect("ok")
            .wait_timeout(Duration::from_secs(30))
            .expect("deadline trigger fired");
        assert_eq!(reply.batch_size, 1);
    }

    #[test]
    fn out_of_range_query_is_a_typed_error() {
        let (graph, features, net) = setup(Architecture::Gcn, &[6, 4]);
        let server = InferenceServer::spawn(&graph, &features, &net, ServingConfig::default());
        let n = graph.num_vertices();
        let err = server.query(n as VertexId).expect_err("out of range");
        assert!(matches!(err, GraphError::SeedOutOfRange { .. }));
    }

    #[test]
    fn duplicate_queries_in_one_flush_each_get_a_reply() {
        let (graph, features, net) = setup(Architecture::Gcn, &[6, 5, 3]);
        let full = net.clone().forward(&graph, &features);
        let server = InferenceServer::spawn(
            &graph,
            &features,
            &net,
            ServingConfig {
                max_batch: 3,
                max_delay: Duration::from_secs(3600),
                cache_rows: None,
            },
        );
        let futs: Vec<ServedFuture> = [9u32, 9, 9]
            .iter()
            .map(|&v| server.query(v).expect("ok"))
            .collect();
        for fut in futs {
            let reply = fut
                .wait_timeout(Duration::from_secs(30))
                .expect("size trigger fired");
            assert_eq!(reply.embedding.as_slice(), full.row(9));
            assert_eq!(reply.batch_size, 3);
        }
    }

    #[test]
    fn bounded_cache_replies_are_bitwise_and_counted() {
        // Every cache bound — zero, partial, full — serves bitwise the
        // same embeddings; only the hit/miss counters differ.
        for arch in [Architecture::Gcn, Architecture::Gin] {
            let (graph, features, net) = setup(arch, &[6, 5, 3]);
            let full = net.clone().forward(&graph, &features);
            let n = graph.num_vertices();
            for cache_rows in [Some(0), Some(n / 8), Some(n)] {
                let cfg = ServingConfig {
                    cache_rows,
                    ..ServingConfig::default()
                };
                let server = InferenceServer::spawn(&graph, &features, &net, cfg);
                let probes: Vec<VertexId> = (0..n as VertexId).step_by(41).collect();
                let futures: Vec<(VertexId, ServedFuture)> = probes
                    .iter()
                    .map(|&v| (v, server.query(v).expect("in range")))
                    .collect();
                for (v, fut) in futures {
                    let reply = fut.wait().expect("server alive");
                    assert_eq!(
                        reply.embedding.as_slice(),
                        full.row(v as usize),
                        "{arch:?} cache_rows={cache_rows:?}: row {v}"
                    );
                }
                let stats = server.cache_stats().expect("cache configured");
                assert_eq!(stats.capacity_rows, cache_rows.unwrap() as u64);
                assert!(stats.hits + stats.misses > 0, "flushes counted");
                if cache_rows == Some(0) {
                    assert_eq!(stats.hits, 0, "empty cache cannot hit");
                }
                if cache_rows == Some(n) {
                    assert_eq!(stats.misses, 0, "full cache cannot miss");
                }
            }
        }
    }

    #[test]
    fn uncached_server_reports_no_stats() {
        let (graph, features, net) = setup(Architecture::Gcn, &[6, 4]);
        let server = InferenceServer::spawn(&graph, &features, &net, ServingConfig::default());
        assert!(server.cache_stats().is_none());
    }

    #[test]
    fn shutdown_drains_the_queue() {
        let (graph, features, net) = setup(Architecture::Gcn, &[6, 5, 3]);
        let full = net.clone().forward(&graph, &features);
        let server = InferenceServer::spawn(
            &graph,
            &features,
            &net,
            ServingConfig {
                max_batch: 1024,
                max_delay: Duration::from_secs(3600),
                cache_rows: None,
            },
        );
        let fut = server.query(3).expect("ok");
        drop(server);
        let reply = fut.wait().expect("drained on shutdown");
        assert_eq!(reply.embedding.as_slice(), full.row(3));
    }
}
