//! # DGCL — distributed graph communication library (reproduction)
//!
//! A Rust reproduction of *DGCL: An Efficient Communication Library for
//! Distributed GNN Training* (EuroSys 2021). DGCL extends a single-GPU GNN
//! engine to distributed training: it partitions the graph, plans the
//! embedding exchange with the topology-aware SPST algorithm, and executes
//! the staged plan with decentralized coordination.
//!
//! The original runs on CUDA devices; this reproduction runs each "GPU" as
//! a thread over shared-memory buffers, moving real embedding data so that
//! distributed training can be checked for numerical parity against
//! single-device training, while wall-clock *estimates* for real hardware
//! come from the `dgcl-sim` models.
//!
//! The API mirrors the paper's (§4.2):
//!
//! | Paper | Here |
//! |---|---|
//! | `init()` | [`build_comm_info`] (connection setup is implicit) |
//! | `buildCommInfo(graph, topology)` | [`build_comm_info`] |
//! | `dispatch_features(features)` | [`CommInfo::dispatch_features`] |
//! | `graph_allgather(embeddings)` | [`runtime::DeviceHandle::graph_allgather`] |
//!
//! Beyond the paper, the runtime makes failure a first-class outcome: a
//! device that errors, panics or crashes poisons the shared [`fabric`],
//! every blocked peer unwinds with a typed [`RuntimeError`], and
//! [`run_cluster`] reports one [`ClusterError`] naming the originating
//! rank — the cluster never hangs. The [`fault`] module injects
//! deterministic crash/delay/duplicate/reorder faults for the chaos test
//! suite.
//!
//! # Examples
//!
//! ```
//! use dgcl::{build_comm_info, BuildOptions};
//! use dgcl::trainer::{train_distributed, train_single, TrainConfig};
//! use dgcl_gnn::Architecture;
//! use dgcl_graph::Dataset;
//! use dgcl_tensor::XavierInit;
//! use dgcl_topology::Topology;
//!
//! let graph = Dataset::WikiTalk.generate(0.0005, 1);
//! let info = build_comm_info(&graph, Topology::fig6(), BuildOptions::default());
//! let n = graph.num_vertices();
//! let mut init = XavierInit::new(7);
//! let features = init.features(n, 8);
//! let targets = init.features(n, 4);
//! let cfg = TrainConfig::new(Architecture::Gcn, &[8, 4], 2);
//! let dist = train_distributed(&info, &graph, &features, &targets, &cfg)
//!     .expect("healthy cluster");
//! let single = train_single(&graph, &features, &targets, &cfg);
//! let diff: f32 = dist
//!     .epoch_losses
//!     .iter()
//!     .zip(&single.epoch_losses)
//!     .map(|(a, b)| (a - b).abs())
//!     .sum();
//! assert!(diff < 1e-1 * single.epoch_losses[0].abs().max(1.0));
//! ```

pub mod backend;
pub mod checkpoint;
pub mod collectives;
pub mod comm_info;
pub mod error;
pub mod fabric;
pub mod fault;
pub mod featcache;
pub mod overlap;
pub mod pipeline;
pub mod recovery;
pub mod runtime;
pub mod sampling;
pub mod schedule;
pub mod serving;
pub mod trainer;

pub use backend::{backend_for, BackendPolicy, CagnetBackend, CommBackend, PlannedBackend};
pub use checkpoint::{
    Checkpoint, CheckpointConfig, CheckpointSink, CheckpointSpec, CheckpointStore,
    CorruptCheckpoint, MemorySink,
};
pub use collectives::{
    AlgorithmSelector, AllreduceAlgo, AllreducePolicy, BroadcastAlgo, CollectiveEngine, GroupSpec,
};
pub use comm_info::{build_comm_info, try_build_comm_info, BuildOptions, CommInfo};
pub use dgcl_sim::{BackendChoice, BackendKind, BackendSelector};
pub use error::{ClusterError, ClusterFailure, RuntimeError};
pub use fabric::{Fabric, FabricConfig};
pub use fault::{FaultEvent, FaultPlan};
pub use featcache::{
    CachePolicy, CacheStats, CacheStatsSnapshot, ClusterCache, FeatureCache, FeatureCacheSets,
};
pub use overlap::{OverlapWorker, Pending};
pub use pipeline::PipelineSchedule;
pub use recovery::{train_elastic, ElasticReport, RecoveryConfig, RecoveryEvent, ResumePolicy};
pub use runtime::{run_cluster, run_cluster_with, DeviceHandle, ExecStrategy};
pub use sampling::{GatherPlan, SamplingConfig};
pub use serving::{InferenceServer, ServedFuture, ServedReply, ServingConfig};
