//! Elastic recovery: checkpoint, evict, replan, resume.
//!
//! The paper's runtime (§6.1) is decentralized — there is no master to
//! restart a dead worker, so the only recovery unit is the whole
//! cluster. [`train_elastic`] wraps
//! [`crate::trainer::train_distributed_resumable`] in a driver loop
//! that makes that restart cheap and bounded:
//!
//! 1. **checkpoint** — rank 0 publishes a partition-independent
//!    [`Checkpoint`] into an in-memory [`CheckpointStore`] after every
//!    completed epoch, and serializes to a [`CheckpointSink`] every `k`
//!    epochs (see [`crate::checkpoint`]);
//! 2. **evict** — on [`ClusterError`], [`ClusterError::dead_ranks`]
//!    identifies the ranks whose failures *originated* locally and
//!    [`Topology::evict_gpus`] removes them (GPUs are leaves of the
//!    routing topology, so survivors stay connected);
//! 3. **replan** — the graph is repartitioned over the survivors and
//!    the SPST planner re-runs with [`RecoveryConfig::replan`]
//!    (batched, demand-class cache enabled by default): the survivors'
//!    demands fall into few classes, so the warm replan resolves most
//!    demands from cache commits where the cold initial plan ran full
//!    searches — [`RecoveryEvent::replan_stats`] records the evidence;
//! 4. **resume** — the checkpoint restores onto the new partition (the
//!    weights are replicated, so "remapping" is rebuilding
//!    [`CommInfo`] and re-dispatching the driver-held global features)
//!    and training continues from the checkpointed epoch.
//!
//! Loss bound: with the in-memory tier a crash costs at most the
//! partial epoch in flight; if the driver's memory is also gone
//! ([`ResumePolicy::SinkOnly`]), at most `k - 1` further epochs.

use std::sync::Arc;
use std::time::Instant;

use dgcl_graph::CsrGraph;
use dgcl_plan::{PlannerStats, SpstConfig};
use dgcl_tensor::Matrix;
use dgcl_topology::Topology;

use crate::checkpoint::{Checkpoint, CheckpointConfig, CheckpointSpec, CheckpointStore};
use crate::comm_info::{build_comm_info, BuildOptions, CommInfo};
use crate::error::ClusterError;
use crate::fabric::FabricConfig;
use crate::trainer::{train_distributed_resumable, TrainConfig, TrainReport};

/// Which checkpoint tier a recovery attempt resumes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ResumePolicy {
    /// Prefer the per-epoch in-memory store, falling back to the
    /// serialized sink: at most the in-flight epoch is lost.
    #[default]
    Memory,
    /// Ignore the in-memory store and resume from the last serialized
    /// snapshot — models a driver restart where process memory is gone;
    /// at most `every - 1` completed epochs are lost on top of the
    /// in-flight one.
    SinkOnly,
}

/// Configuration of the elastic driver loop.
#[derive(Debug, Clone)]
pub struct RecoveryConfig {
    /// Fabric configuration per attempt: attempt `i` uses `fabrics[i]`,
    /// attempts past the end use [`FabricConfig::default`]. The chaos
    /// suite arms a fault plan for attempt 0 only — replaying the same
    /// plan against renumbered survivors would re-kill them.
    pub fabrics: Vec<FabricConfig>,
    /// How many evictions to tolerate before giving up and returning
    /// the last [`ClusterError`].
    pub max_evictions: usize,
    /// Build options for the initial plan and (with
    /// [`RecoveryConfig::replan`] substituted) every survivor replan.
    pub build: BuildOptions,
    /// Planner configuration for survivor replans. Defaults to
    /// [`SpstConfig::batched`] over the build's thread count — the
    /// demand-class cache is what makes a replan cheaper than the cold
    /// initial plan.
    pub replan: SpstConfig,
    /// Serialized-checkpoint cadence; `None` keeps only the in-memory
    /// tier.
    pub spec: Option<CheckpointSpec>,
    /// Which tier resumes after an eviction.
    pub resume: ResumePolicy,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        Self {
            fabrics: Vec::new(),
            max_evictions: 2,
            build: BuildOptions::default(),
            replan: SpstConfig::batched(4),
            spec: None,
            resume: ResumePolicy::Memory,
        }
    }
}

/// One eviction + replan + resume round.
#[derive(Debug, Clone)]
pub struct RecoveryEvent {
    /// Ranks evicted, in the *failed attempt's* numbering (each attempt
    /// renumbers survivors densely).
    pub evicted: Vec<usize>,
    /// The rendered [`ClusterError`] that triggered the eviction.
    pub cause: String,
    /// GPUs remaining after the eviction.
    pub survivors: usize,
    /// Completed-epoch count of the checkpoint resumed from (0 when no
    /// checkpoint existed and training restarted from scratch).
    pub resumed_epoch: usize,
    /// Completed epochs discarded by resuming: the in-memory store's
    /// epoch count minus [`RecoveryEvent::resumed_epoch`]. Always 0
    /// under [`ResumePolicy::Memory`]; bounded by `every - 1` under
    /// [`ResumePolicy::SinkOnly`]. The in-flight partial epoch is lost
    /// on top and not counted here.
    pub epochs_lost: usize,
    /// Wall-clock of the survivor replan (partitioning + SPST +
    /// table compilation).
    pub replan_seconds: f64,
    /// The warm replanner's demand-resolution counters.
    pub replan_stats: PlannerStats,
}

/// The outcome of an elastic run that reached the epoch target.
#[derive(Debug, Clone)]
pub struct ElasticReport {
    /// Full training history (checkpointed epochs first), directly
    /// comparable to an uninterrupted run on the final partition.
    pub report: TrainReport,
    /// One entry per eviction round; empty means no failure occurred.
    pub events: Vec<RecoveryEvent>,
    /// Devices in the final (surviving) partition.
    pub final_devices: usize,
    /// The [`CommInfo`] of the final attempt — parity tests reuse it to
    /// rerun the reference on the same survivor partition.
    pub final_info: Arc<CommInfo>,
}

impl ElasticReport {
    /// Total completed epochs discarded across every recovery round.
    pub fn total_epochs_lost(&self) -> usize {
        self.events.iter().map(|e| e.epochs_lost).sum()
    }
}

/// Trains to `cfg.epochs` epochs, recovering from up to
/// [`RecoveryConfig::max_evictions`] cluster failures by evicting dead
/// ranks, replanning over the survivors and resuming from the newest
/// checkpoint (see the module docs for the loop).
///
/// # Errors
///
/// The last [`ClusterError`] when the eviction budget is exhausted, or
/// immediately if an eviction would leave no GPU.
///
/// # Panics
///
/// Panics if `features`/`targets` row counts do not match the graph.
pub fn train_elastic(
    graph: &CsrGraph,
    topology: Topology,
    features: &Matrix,
    targets: &Matrix,
    cfg: &TrainConfig,
    rcfg: &RecoveryConfig,
) -> Result<ElasticReport, ClusterError> {
    let mut topology = topology;
    let mut build = rcfg.build;
    let mut info = Arc::new(build_comm_info(graph, topology.clone(), build));
    let store = CheckpointStore::default();
    let ck = CheckpointConfig {
        store: store.clone(),
        spec: rcfg.spec.clone(),
    };
    let mut resume: Option<Checkpoint> = None;
    let mut events = Vec::new();
    for attempt in 0.. {
        let fabric = rcfg.fabrics.get(attempt).cloned().unwrap_or_default();
        match train_distributed_resumable(
            &info,
            graph,
            features,
            targets,
            cfg,
            fabric,
            resume.as_ref(),
            Some(&ck),
        ) {
            Ok(report) => {
                return Ok(ElasticReport {
                    report,
                    events,
                    final_devices: info.num_devices(),
                    final_info: info,
                })
            }
            Err(err) => {
                let dead = err.dead_ranks();
                if events.len() == rcfg.max_evictions || dead.len() >= topology.num_gpus() {
                    return Err(err);
                }
                topology = topology.evict_gpus(&dead);
                // Warm replan over the survivors: same seed and payload
                // sizing, batched planner with the demand-class cache.
                build.spst = rcfg.replan;
                let replan_start = Instant::now();
                info = Arc::new(build_comm_info(graph, topology.clone(), build));
                let replan_seconds = replan_start.elapsed().as_secs_f64();
                let newest = store.latest();
                let ckpt = match rcfg.resume {
                    ResumePolicy::Memory => newest
                        .clone()
                        .or_else(|| deserialize_sink(rcfg.spec.as_ref())),
                    ResumePolicy::SinkOnly => deserialize_sink(rcfg.spec.as_ref()),
                };
                let resumed_epoch = ckpt.as_ref().map_or(0, |c| c.epochs_done);
                let newest_epoch = newest.map_or(0, |c| c.epochs_done);
                events.push(RecoveryEvent {
                    evicted: dead,
                    cause: err.to_string(),
                    survivors: topology.num_gpus(),
                    resumed_epoch,
                    epochs_lost: newest_epoch.saturating_sub(resumed_epoch),
                    replan_seconds,
                    replan_stats: info.plan_stats,
                });
                resume = ckpt;
            }
        }
    }
    unreachable!("the attempt loop returns from within");
}

/// The last serialized snapshot, if a sink exists, can read back and
/// holds parseable bytes (corruption degrades to restart-from-scratch,
/// never to a panic).
fn deserialize_sink(spec: Option<&CheckpointSpec>) -> Option<Checkpoint> {
    let bytes = spec?.sink.load()?;
    Checkpoint::deserialize(&bytes).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::MemorySink;
    use crate::fault::FaultPlan;
    use dgcl_gnn::Architecture;
    use dgcl_graph::Dataset;
    use dgcl_tensor::XavierInit;

    fn case() -> (CsrGraph, Matrix, Matrix, TrainConfig) {
        let graph = Dataset::WikiTalk.generate(0.0005, 8);
        let n = graph.num_vertices();
        let mut init = XavierInit::new(8);
        let features = init.features(n, 6);
        let targets = init.features(n, 3);
        let cfg = TrainConfig::new(Architecture::Gcn, &[6, 4, 3], 4);
        (graph, features, targets, cfg)
    }

    #[test]
    fn healthy_run_has_no_events() {
        let (graph, features, targets, cfg) = case();
        let report = train_elastic(
            &graph,
            Topology::fig6(),
            &features,
            &targets,
            &cfg,
            &RecoveryConfig::default(),
        )
        .expect("healthy cluster");
        assert!(report.events.is_empty());
        assert_eq!(report.final_devices, 4);
        assert_eq!(report.report.epoch_losses.len(), cfg.epochs);
    }

    #[test]
    fn eviction_budget_exhaustion_returns_error() {
        let (graph, features, targets, cfg) = case();
        // Crash the (renumbered) rank 0 on every attempt; with a budget
        // of 1 eviction the second crash must surface.
        let faulty = FabricConfig {
            faults: FaultPlan::crash_at_epoch(0, 1),
            ..FabricConfig::default()
        };
        let rcfg = RecoveryConfig {
            fabrics: vec![faulty.clone(), faulty],
            max_evictions: 1,
            ..RecoveryConfig::default()
        };
        let err = train_elastic(&graph, Topology::fig6(), &features, &targets, &cfg, &rcfg)
            .expect_err("budget of 1 cannot absorb 2 crashes");
        assert!(err.to_string().contains("epoch 1"), "{err}");
    }

    #[test]
    fn sink_resume_survives_memory_loss() {
        let (graph, features, targets, cfg) = case();
        let sink = MemorySink::shared();
        // Crash rank 0 — the checkpoint publisher — so the epoch-3
        // in-memory publish deterministically precedes the crash on the
        // same thread. (A crash on any other rank races rank 0's final
        // allreduce: the poison can unwind rank 0 before it publishes,
        // leaving memory at epoch 2 and `epochs_lost` at 0.)
        let rcfg = RecoveryConfig {
            fabrics: vec![FabricConfig {
                faults: FaultPlan::crash_at_epoch(0, 3),
                ..FabricConfig::default()
            }],
            spec: Some(CheckpointSpec {
                every: 2,
                sink: sink.clone(),
            }),
            resume: ResumePolicy::SinkOnly,
            ..RecoveryConfig::default()
        };
        let report = train_elastic(&graph, Topology::fig6(), &features, &targets, &cfg, &rcfg)
            .expect("one eviction fits the budget");
        assert_eq!(report.events.len(), 1);
        let ev = &report.events[0];
        // Crash entering epoch 3: memory held epoch 3, the sink epoch 2.
        assert_eq!(ev.resumed_epoch, 2);
        assert_eq!(ev.epochs_lost, 1);
        assert!(ev.epochs_lost < 2, "loss must stay under `every`");
        assert_eq!(report.final_devices, 3);
        assert_eq!(report.report.epoch_losses.len(), cfg.epochs);
    }
}
