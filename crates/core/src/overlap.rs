//! Communication–compute overlap: a per-device worker thread that runs
//! fabric collectives in the background so the training loop's matmuls
//! never wait on the network.
//!
//! The S-SGD DAG observation (Shi et al.): layer `L`'s gradient
//! allreduce depends only on layer `L`'s backward, not on layers
//! `L-1..0`, and the next iteration's embedding allgather depends only on
//! the updated features — both can run while the remaining backward
//! computes. The [`OverlapWorker`] realises that overlap without giving
//! up determinism:
//!
//! * **Operation ids are assigned at submit time on the main thread** (by
//!   `DeviceHandle::begin_op`), in program order. Every rank runs the
//!   identical training program, so op ids agree across ranks even
//!   though execution is asynchronous; mailbox keys embed the op, so a
//!   worker's messages can never collide with the main thread's.
//! * **The worker is FIFO.** Jobs execute in submission order, which
//!   keeps the allreduce rendezvous matched by call order on every rank
//!   (the fabric pairs allreduces positionally, not by key).
//! * **Buckets are summed in a fixed order** inside the fabric's
//!   rank-ordered allreduce, so per-layer bucketed sums are bitwise
//!   identical to one monolithic allreduce of the same matrices.
//!
//! Every wait is bounded: the worker only ever blocks inside fabric
//! primitives (deadline- and poison-bounded, PR 3), and
//! [`Pending::wait`] itself times out after a grace period past the
//! collective deadline, so a dead worker cannot hang the trainer.

use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use dgcl_plan::tuples::StageIo;
use dgcl_tensor::Matrix;

use crate::collectives::CollectiveEngine;
use crate::error::{ClusterFailure, RuntimeError};
use crate::fabric::Fabric;
use crate::pipeline::{self, PipelineSchedule, PipelineScratch};
use crate::schedule::DeviceSchedule;

/// One background collective.
enum Job {
    /// Sum matrices across ranks (per-layer gradient bucket) under a
    /// pre-assigned op id.
    Allreduce {
        op: u64,
        mats: Vec<Matrix>,
        reply: Sender<Result<Vec<Matrix>, RuntimeError>>,
    },
    /// Pipelined embedding allgather under a pre-assigned op id.
    Allgather {
        op: u64,
        local: Matrix,
        reply: Sender<Result<Matrix, RuntimeError>>,
    },
    /// Batch row exchange (sampled trainer's feature prefetch) under a
    /// pre-assigned op id.
    Exchange {
        op: u64,
        plan: crate::sampling::GatherPlan,
        reply: Sender<Result<Matrix, RuntimeError>>,
    },
    /// Drain and exit.
    Shutdown,
}

/// The result of a submitted background collective; redeem with
/// [`crate::runtime::DeviceHandle::wait_pending`] (or [`Pending::wait`]
/// directly). Results must be waited in submission order to keep ranks
/// aligned.
pub struct Pending<T> {
    rx: Receiver<Result<T, RuntimeError>>,
    rank: usize,
    what: &'static str,
    deadline: Duration,
}

impl<T> Pending<T> {
    /// Blocks until the background collective finishes.
    ///
    /// # Errors
    ///
    /// The collective's own [`RuntimeError`], or a timeout/protocol
    /// error if the worker died without replying.
    pub fn wait(self) -> Result<T, RuntimeError> {
        match self.rx.recv_timeout(self.deadline) {
            Ok(r) => r,
            Err(RecvTimeoutError::Timeout) => Err(RuntimeError::Timeout {
                rank: self.rank,
                op: "overlap_wait",
                stage: self.what.to_string(),
            }),
            Err(RecvTimeoutError::Disconnected) => Err(RuntimeError::Protocol {
                rank: self.rank,
                detail: format!("overlap worker died before completing {}", self.what),
            }),
        }
    }
}

/// A per-device background thread executing fabric collectives in FIFO
/// submission order. Created via
/// [`crate::runtime::DeviceHandle::overlap_worker`]; dropped workers
/// shut down and join.
pub struct OverlapWorker {
    tx: Sender<Job>,
    join: Option<JoinHandle<()>>,
    rank: usize,
    wait_deadline: Duration,
}

impl OverlapWorker {
    /// Spawns the worker. Schedule data is cloned once so the thread is
    /// `'static`; per-job buffers cycle through the fabric pool.
    pub(crate) fn spawn(
        fabric: Arc<Fabric>,
        rank: usize,
        sched: DeviceSchedule,
        pipe: PipelineSchedule,
        ios: Vec<StageIo>,
        num_local: usize,
        num_total: usize,
    ) -> Self {
        // Grace period past the fabric's own bound, so the worker's
        // in-fabric deadline (or poison) fires first and carries the
        // real error; this outer timeout only guards a vanished worker.
        let wait_deadline = fabric.config().collective_deadline * 2 + Duration::from_secs(2);
        let (tx, rx) = channel::<Job>();
        let join = std::thread::spawn(move || {
            let mut scratch = PipelineScratch::default();
            // The worker's own collective engine: op ids come from the
            // main thread, so its messages cannot collide with it.
            let mut engine = CollectiveEngine::new(rank, fabric.num_devices());
            while let Ok(job) = rx.recv() {
                match job {
                    Job::Allreduce { op, mats, reply } => {
                        let elems: usize = mats.iter().map(Matrix::len).sum();
                        let algo = fabric.config().allreduce.pick(4 * elems as u64);
                        let r = engine.allreduce(&fabric, op, algo, mats);
                        poison_own(&fabric, rank, &r);
                        let _ = reply.send(r);
                    }
                    Job::Allgather { op, local, reply } => {
                        let r = pipeline::forward_allgather(
                            &fabric,
                            rank,
                            op,
                            &sched,
                            &pipe,
                            &ios,
                            num_local,
                            num_total,
                            &local,
                            &mut scratch,
                        );
                        poison_own(&fabric, rank, &r);
                        // The submitted features are no longer needed;
                        // feed their buffer back to the pool.
                        fabric.recycle(local.into_vec());
                        let _ = reply.send(r);
                    }
                    Job::Exchange { op, plan, reply } => {
                        let r = crate::sampling::execute_gather(&fabric, rank, op, &plan);
                        poison_own(&fabric, rank, &r);
                        let _ = reply.send(r);
                    }
                    Job::Shutdown => break,
                }
            }
        });
        Self {
            tx,
            join: Some(join),
            rank,
            wait_deadline,
        }
    }

    /// Enqueues a gradient-bucket allreduce under `op` (assigned by the
    /// main thread's `begin_op`, so keys agree across ranks).
    pub(crate) fn submit_allreduce(
        &self,
        op: u64,
        mats: Vec<Matrix>,
    ) -> Result<Pending<Vec<Matrix>>, RuntimeError> {
        let (reply, rx) = channel();
        self.send(Job::Allreduce { op, mats, reply })?;
        Ok(self.pending(rx, "allreduce"))
    }

    /// Enqueues a pipelined allgather under `op` (assigned by the main
    /// thread's `begin_op`, so keys agree across ranks).
    pub(crate) fn submit_allgather(
        &self,
        op: u64,
        local: Matrix,
    ) -> Result<Pending<Matrix>, RuntimeError> {
        let (reply, rx) = channel();
        self.send(Job::Allgather { op, local, reply })?;
        Ok(self.pending(rx, "allgather"))
    }

    /// Enqueues a batch row exchange under `op` (assigned by the main
    /// thread's `begin_op`, so keys agree across ranks).
    pub(crate) fn submit_exchange(
        &self,
        op: u64,
        plan: crate::sampling::GatherPlan,
    ) -> Result<Pending<Matrix>, RuntimeError> {
        let (reply, rx) = channel();
        self.send(Job::Exchange { op, plan, reply })?;
        Ok(self.pending(rx, "exchange"))
    }

    fn send(&self, job: Job) -> Result<(), RuntimeError> {
        self.tx.send(job).map_err(|_| RuntimeError::Protocol {
            rank: self.rank,
            detail: "overlap worker is gone".to_string(),
        })
    }

    fn pending<T>(&self, rx: Receiver<Result<T, RuntimeError>>, what: &'static str) -> Pending<T> {
        Pending {
            rx,
            rank: self.rank,
            what,
            deadline: self.wait_deadline,
        }
    }
}

impl Drop for OverlapWorker {
    fn drop(&mut self) {
        let _ = self.tx.send(Job::Shutdown);
        if let Some(join) = self.join.take() {
            // Terminates: every fabric wait the worker can be in is
            // deadline- and poison-bounded.
            let _ = join.join();
        }
    }
}

/// Poisons the fabric with an error this worker originated, so blocked
/// peers unwind; propagated poison passes through untouched.
fn poison_own<T>(fabric: &Fabric, rank: usize, r: &Result<T, RuntimeError>) {
    if let Err(e) = r {
        if !matches!(e, RuntimeError::Poisoned { .. }) {
            fabric.poison(rank, ClusterFailure::Error(e.clone()));
        }
    }
}
