//! Compiled per-device execution schedules.
//!
//! The send/recv tables ([`SendRecvTables`]) are the paper's portable
//! plan representation: vertex *global ids* grouped per `(stage,
//! substage, peer)`. Executing them directly forces the runtime to
//! re-filter the whole entry list once per stage (O(stages × entries))
//! and to resolve every vertex id through `LocalGraph::local_id` — a
//! binary search — on every operation of every layer of every epoch,
//! buffering relayed embeddings in a per-op `HashMap`.
//!
//! A [`DeviceSchedule`] hoists all of that to `build_comm_info` time:
//!
//! * entries are grouped once into [`StageGroup`] index ranges over the
//!   already-sorted table (one pass, no per-op filtering);
//! * every send/recv vertex id is pre-resolved to a packed row reference
//!   into either the operation's live matrix or a flat scratch buffer
//!   that replaces the relay/accumulator `HashMap`s.
//!
//! Row-reference encoding — forward ([`DeviceSchedule::forward`]),
//! against the full visible embedding matrix (`num_total` rows):
//!
//! * `r < num_total` — row `r` of the output matrix;
//! * `r >= num_total` — row `r - num_total` of the relay scratch.
//!
//! Backward ([`DeviceSchedule::backward`]), against the local gradient
//! matrix (`num_local` rows) plus an accumulator scratch laid out as
//! `num_remote` remote-vertex rows followed by relay rows:
//!
//! * `r < num_local` — row `r` of the local gradient (accumulated);
//! * `r >= num_local` — row `r - num_local` of the scratch (accumulated;
//!   the remote prefix is seeded from the consumer gradient, relay rows
//!   from zero, so a relay forwarded before any contribution arrives
//!   sends zeros exactly like the uncompiled path).

use std::collections::HashMap;
use std::ops::Range;

use dgcl_graph::VertexId;
use dgcl_partition::relation::LocalGraph;
use dgcl_plan::tuples::SendRecvTables;

use crate::error::RuntimeError;

/// One `(stage, substage)` step of a device's schedule: the contiguous
/// index range of its table entries (the tables are sorted by
/// `(stage, substage, peer)`, so every step is a single run).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageGroup {
    /// Stage index.
    pub stage: usize,
    /// Sub-stage index.
    pub substage: usize,
    /// Index range into the device's `per_device` table entries.
    pub ios: Range<usize>,
}

/// A device's compiled schedule for one plan direction. Indices in
/// `send_refs` / `recv_refs` parallel the device's `per_device` table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceSchedule {
    /// Steps in execution order.
    pub groups: Vec<StageGroup>,
    /// Per table entry: pre-resolved row references for `T^s`.
    pub send_refs: Vec<Vec<u32>>,
    /// Per table entry: pre-resolved row references for `T^r`.
    pub recv_refs: Vec<Vec<u32>>,
    /// Rows of scratch the operation needs (forward: relay rows;
    /// backward: `num_remote` remote rows plus relay rows).
    pub scratch_rows: usize,
}

/// Groups a sorted entry list into `(stage, substage)` runs.
fn group_stages(ios: &[dgcl_plan::tuples::StageIo]) -> Vec<StageGroup> {
    debug_assert!(
        ios.windows(2)
            .all(|w| (w[0].stage, w[0].substage, w[0].peer)
                <= (w[1].stage, w[1].substage, w[1].peer)),
        "table entries must be sorted by (stage, substage, peer)"
    );
    let mut groups: Vec<StageGroup> = Vec::new();
    for (i, io) in ios.iter().enumerate() {
        match groups.last_mut() {
            Some(g) if (g.stage, g.substage) == (io.stage, io.substage) => g.ios.end = i + 1,
            _ => groups.push(StageGroup {
                stage: io.stage,
                substage: io.substage,
                ios: i..i + 1,
            }),
        }
    }
    groups
}

impl DeviceSchedule {
    /// Compiles `rank`'s forward (embedding allgather) schedule.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Protocol`] if the tables ask the device to forward
    /// a vertex it never received — the same protocol bug the uncompiled
    /// runtime detects per operation, caught here once at build time.
    pub fn forward(
        tables: &SendRecvTables,
        rank: usize,
        lg: &LocalGraph,
    ) -> Result<Self, RuntimeError> {
        let ios = &tables.per_device[rank];
        let groups = group_stages(ios);
        let num_total = lg.num_total();
        let mut send_refs = vec![Vec::new(); ios.len()];
        let mut recv_refs = vec![Vec::new(); ios.len()];
        let mut relay_slots: HashMap<VertexId, u32> = HashMap::new();
        for group in &groups {
            // Sends run before receives within a group, so a relayed
            // vertex must have arrived in an *earlier* group.
            for idx in group.ios.clone() {
                send_refs[idx] = ios[idx]
                    .send
                    .iter()
                    .map(|&v| match lg.local_id(v) {
                        Some(li) => Ok(li as u32),
                        None => match relay_slots.get(&v) {
                            Some(&slot) => Ok(num_total as u32 + slot),
                            None => Err(RuntimeError::Protocol {
                                rank,
                                detail: format!("device {rank} lacks vertex {v} to forward"),
                            }),
                        },
                    })
                    .collect::<Result<_, _>>()?;
            }
            for idx in group.ios.clone() {
                recv_refs[idx] = ios[idx]
                    .recv
                    .iter()
                    .map(|&v| match lg.local_id(v) {
                        Some(li) => li as u32,
                        None => {
                            let next = relay_slots.len() as u32;
                            num_total as u32 + *relay_slots.entry(v).or_insert(next)
                        }
                    })
                    .collect();
            }
        }
        Ok(Self {
            groups,
            send_refs,
            recv_refs,
            scratch_rows: relay_slots.len(),
        })
    }

    /// Compiles `rank`'s backward (gradient scatter) schedule.
    ///
    /// # Errors
    ///
    /// Infallible today (backward relays accumulate from zero, so there
    /// is no lacks-vertex case); `Result` keeps the signature symmetric
    /// with [`DeviceSchedule::forward`] for callers compiling both.
    pub fn backward(
        tables: &SendRecvTables,
        rank: usize,
        lg: &LocalGraph,
    ) -> Result<Self, RuntimeError> {
        let ios = &tables.per_device[rank];
        let groups = group_stages(ios);
        let num_local = lg.num_local;
        let num_remote = lg.num_remote();
        let mut send_refs = vec![Vec::new(); ios.len()];
        let mut recv_refs = vec![Vec::new(); ios.len()];
        // Relay rows follow the remote prefix in the scratch buffer. A
        // relay vertex first seen in a *send* gets a fresh zero row — the
        // uncompiled path sends zeros for a relay with no contributions
        // yet. Plans never ask a device to send gradient for a vertex it
        // owns, but if one did, the uncompiled path would also send zeros
        // (its accumulator never holds owned rows), so such sends share a
        // dedicated always-zero scratch row rather than leaking the
        // device's own gradient.
        let mut relay_slots: HashMap<VertexId, u32> = HashMap::new();
        // Owned-vertex sends are marked with a sentinel and patched to
        // the final zero row once the relay-slot count is known.
        const ZERO_SENTINEL: u32 = u32::MAX;
        let mut needs_zero_row = false;
        for group in &groups {
            for idx in group.ios.clone() {
                send_refs[idx] = ios[idx]
                    .send
                    .iter()
                    .map(|&v| match lg.local_id(v) {
                        Some(li) if li >= num_local => li as u32,
                        Some(_) => {
                            needs_zero_row = true;
                            ZERO_SENTINEL
                        }
                        None => {
                            let next = relay_slots.len() as u32;
                            let slot = *relay_slots.entry(v).or_insert(next);
                            (num_local + num_remote) as u32 + slot
                        }
                    })
                    .collect();
            }
            for idx in group.ios.clone() {
                recv_refs[idx] = ios[idx]
                    .recv
                    .iter()
                    .map(|&v| match lg.local_id(v) {
                        Some(li) => li as u32,
                        None => {
                            let next = relay_slots.len() as u32;
                            let slot = *relay_slots.entry(v).or_insert(next);
                            (num_local + num_remote) as u32 + slot
                        }
                    })
                    .collect();
            }
        }
        let zero_row = (num_local + num_remote + relay_slots.len()) as u32;
        if needs_zero_row {
            for refs in &mut send_refs {
                for r in refs.iter_mut() {
                    if *r == ZERO_SENTINEL {
                        *r = zero_row;
                    }
                }
            }
        }
        Ok(Self {
            groups,
            send_refs,
            recv_refs,
            scratch_rows: num_remote + relay_slots.len() + usize::from(needs_zero_row),
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::comm_info::{build_comm_info, BuildOptions};
    use dgcl_graph::Dataset;
    use dgcl_topology::Topology;

    #[test]
    fn groups_cover_every_entry_in_order() {
        let graph = Dataset::WikiTalk.generate(0.0005, 3);
        let info = build_comm_info(&graph, Topology::fig6(), BuildOptions::default());
        for rank in 0..info.num_devices() {
            for (tables, sched) in [
                (&info.forward_tables, &info.forward_schedules[rank]),
                (&info.backward_tables, &info.backward_schedules[rank]),
            ] {
                let ios = &tables.per_device[rank];
                let mut covered = 0usize;
                for g in &sched.groups {
                    assert_eq!(g.ios.start, covered, "groups are contiguous");
                    for io in &ios[g.ios.clone()] {
                        assert_eq!((io.stage, io.substage), (g.stage, g.substage));
                    }
                    covered = g.ios.end;
                }
                assert_eq!(covered, ios.len(), "every entry grouped");
                assert_eq!(sched.send_refs.len(), ios.len());
                assert_eq!(sched.recv_refs.len(), ios.len());
            }
        }
    }

    #[test]
    fn forward_refs_resolve_owned_and_remote_rows() {
        let graph = Dataset::WikiTalk.generate(0.0005, 3);
        let info = build_comm_info(&graph, Topology::fig6(), BuildOptions::default());
        for rank in 0..info.num_devices() {
            let lg = info.pg.local_graph(rank);
            let sched = &info.forward_schedules[rank];
            let ios = &info.forward_tables.per_device[rank];
            for (idx, io) in ios.iter().enumerate() {
                for (&v, &r) in io.recv.iter().zip(&sched.recv_refs[idx]) {
                    match lg.local_id(v) {
                        Some(li) => assert_eq!(r as usize, li),
                        None => assert!(r as usize >= lg.num_total(), "relay ref"),
                    }
                }
            }
            assert!(
                sched.scratch_rows <= info.pg.partition.len(),
                "relay rows bounded by vertex count"
            );
        }
    }

    #[test]
    fn backward_remote_rows_map_into_scratch_prefix() {
        let graph = Dataset::WikiTalk.generate(0.0005, 3);
        let info = build_comm_info(&graph, Topology::fig6(), BuildOptions::default());
        for rank in 0..info.num_devices() {
            let lg = info.pg.local_graph(rank);
            let sched = &info.backward_schedules[rank];
            let ios = &info.backward_tables.per_device[rank];
            for (idx, io) in ios.iter().enumerate() {
                for (&v, &r) in io.send.iter().zip(&sched.send_refs[idx]) {
                    match lg.local_id(v) {
                        Some(li) if li >= lg.num_local => assert_eq!(r as usize, li),
                        // Owned-vertex sends (not produced by real plans)
                        // and relays both live past the remote prefix.
                        _ => assert!(
                            (r as usize) >= lg.num_local + lg.num_remote(),
                            "relay rows follow the remote prefix"
                        ),
                    }
                }
            }
            assert!(sched.scratch_rows >= lg.num_remote());
        }
    }
}
