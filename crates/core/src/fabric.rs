//! The shared-memory communication fabric connecting simulated devices.
//!
//! Real DGCL moves bytes over NVLink/PCIe/IB with the decentralized
//! ready/done flag protocol of §6.1; here devices are threads and a
//! message is a `Vec<f32>` dropped into a per-(sender, receiver) mailbox.
//! The flags map onto this as:
//!
//! * *ready* — an atomic per-device operation counter; a sender spins
//!   until the receiver has entered the same collective before posting,
//!   exactly like waiting for the peer's ready flag before writing into
//!   its buffer.
//! * *done* — message availability in the mailbox (posting the payload
//!   and setting the done flag are one atomic insert here).
//!
//! There is no master in the data path: the only shared state is
//! peer-to-peer mailboxes and the allreduce rendezvous used for model
//! (not embedding) synchronisation, mirroring the paper's use of
//! Horovod/DDP for the small model weights.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use dgcl_tensor::Matrix;
use parking_lot::{Condvar, Mutex};

/// Identifies one batched message: `(operation, stage, substage)`.
pub type MsgKey = (u64, u32, u32);

#[derive(Default)]
struct Mailbox {
    slots: Mutex<HashMap<MsgKey, Vec<f32>>>,
    signal: Condvar,
}

enum ReducePhase {
    Filling,
    Draining,
}

struct ReduceState {
    phase: ReducePhase,
    slots: Vec<Option<Vec<Matrix>>>,
    filled: usize,
    departed: usize,
    result: Option<std::sync::Arc<Vec<Matrix>>>,
}

/// The fabric shared by all device threads of one cluster run.
pub struct Fabric {
    num_devices: usize,
    /// `mailboxes[src * n + dst]`.
    mailboxes: Vec<Mailbox>,
    /// Per-device operation counter (the ready flag).
    ready: Vec<AtomicU64>,
    reduce: Mutex<ReduceState>,
    reduce_signal: Condvar,
    /// Retired payload buffers awaiting reuse; in steady state every
    /// payload and scratch buffer of the collectives is drawn from here
    /// instead of the allocator.
    buffers: Mutex<Vec<Vec<f32>>>,
}

impl Fabric {
    /// Creates a fabric for `num_devices` devices.
    pub fn new(num_devices: usize) -> Self {
        Self {
            num_devices,
            mailboxes: (0..num_devices * num_devices)
                .map(|_| Mailbox::default())
                .collect(),
            ready: (0..num_devices).map(|_| AtomicU64::new(0)).collect(),
            reduce: Mutex::new(ReduceState {
                phase: ReducePhase::Filling,
                slots: (0..num_devices).map(|_| None).collect(),
                filled: 0,
                departed: 0,
                result: None,
            }),
            reduce_signal: Condvar::new(),
            buffers: Mutex::new(Vec::new()),
        }
    }

    /// Takes an empty buffer with at least `capacity` floats of room from
    /// the recycle pool, growing one only when the pool cannot satisfy
    /// the request. Pair with [`Fabric::recycle`].
    pub fn checkout(&self, capacity: usize) -> Vec<f32> {
        let mut pool = self.buffers.lock();
        // Prefer a buffer that already fits so warm capacities circulate
        // without reallocating.
        let mut buf = match pool.iter().position(|b| b.capacity() >= capacity) {
            Some(i) => pool.swap_remove(i),
            None => pool.pop().unwrap_or_default(),
        };
        drop(pool);
        buf.clear();
        buf.reserve(capacity);
        buf
    }

    /// Returns a buffer to the recycle pool.
    pub fn recycle(&self, buf: Vec<f32>) {
        if buf.capacity() > 0 {
            self.buffers.lock().push(buf);
        }
    }

    /// Number of devices.
    pub fn num_devices(&self) -> usize {
        self.num_devices
    }

    /// Marks `device` as having entered operation `op` (its ready flag).
    pub fn set_ready(&self, device: usize, op: u64) {
        self.ready[device].fetch_max(op, Ordering::Release);
    }

    /// Spins until `device`'s ready flag reaches `op`.
    pub fn wait_ready(&self, device: usize, op: u64) {
        while self.ready[device].load(Ordering::Acquire) < op {
            std::thread::yield_now();
        }
    }

    /// Posts a payload from `src` to `dst` under `key` (the done flag).
    ///
    /// # Panics
    ///
    /// Panics if the same key is posted twice (a protocol bug).
    pub fn send(&self, src: usize, dst: usize, key: MsgKey, payload: Vec<f32>) {
        let mb = &self.mailboxes[src * self.num_devices + dst];
        let mut slots = mb.slots.lock();
        let prev = slots.insert(key, payload);
        assert!(
            prev.is_none(),
            "duplicate message {key:?} from {src} to {dst}"
        );
        mb.signal.notify_all();
    }

    /// Blocks until the payload for `key` from `src` arrives at `dst`,
    /// then removes and returns it.
    pub fn recv(&self, src: usize, dst: usize, key: MsgKey) -> Vec<f32> {
        let mb = &self.mailboxes[src * self.num_devices + dst];
        let mut slots = mb.slots.lock();
        loop {
            if let Some(payload) = slots.remove(&key) {
                return payload;
            }
            mb.signal.wait(&mut slots);
        }
    }

    /// Sums the per-device contributions element-wise (in rank order, so
    /// every device observes the identical result) and returns the total
    /// to each caller. All devices must call with equally-shaped inputs.
    ///
    /// # Panics
    ///
    /// Panics if contributions disagree in shape.
    pub fn allreduce(&self, rank: usize, mats: Vec<Matrix>) -> Vec<Matrix> {
        let mut st = self.reduce.lock();
        while !matches!(st.phase, ReducePhase::Filling) {
            self.reduce_signal.wait(&mut st);
        }
        st.slots[rank] = Some(mats);
        st.filled += 1;
        if st.filled == self.num_devices {
            let mut acc: Option<Vec<Matrix>> = None;
            for slot in st.slots.iter_mut() {
                let mats = slot.take().expect("all slots filled");
                match &mut acc {
                    None => acc = Some(mats),
                    Some(total) => {
                        assert_eq!(total.len(), mats.len(), "allreduce arity mismatch");
                        for (t, m) in total.iter_mut().zip(&mats) {
                            t.add_assign(m);
                        }
                    }
                }
            }
            st.result = Some(std::sync::Arc::new(acc.expect("at least one device")));
            st.phase = ReducePhase::Draining;
            st.departed = 0;
            self.reduce_signal.notify_all();
        } else {
            while !matches!(st.phase, ReducePhase::Draining) {
                self.reduce_signal.wait(&mut st);
            }
        }
        let out = (**st.result.as_ref().expect("result present")).clone();
        st.departed += 1;
        if st.departed == self.num_devices {
            st.phase = ReducePhase::Filling;
            st.filled = 0;
            st.result = None;
            self.reduce_signal.notify_all();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_round_trip() {
        let f = Fabric::new(2);
        f.send(0, 1, (1, 0, 0), vec![1.0, 2.0]);
        assert_eq!(f.recv(0, 1, (1, 0, 0)), vec![1.0, 2.0]);
    }

    #[test]
    fn recv_blocks_until_send() {
        let f = std::sync::Arc::new(Fabric::new(2));
        let f2 = f.clone();
        let t = std::thread::spawn(move || f2.recv(0, 1, (7, 1, 0)));
        std::thread::sleep(std::time::Duration::from_millis(10));
        f.send(0, 1, (7, 1, 0), vec![3.5]);
        assert_eq!(t.join().expect("no panic"), vec![3.5]);
    }

    #[test]
    #[should_panic(expected = "duplicate message")]
    fn duplicate_key_panics() {
        let f = Fabric::new(2);
        f.send(0, 1, (1, 0, 0), vec![]);
        f.send(0, 1, (1, 0, 0), vec![]);
    }

    #[test]
    fn ready_flags_are_monotonic() {
        let f = Fabric::new(1);
        f.set_ready(0, 5);
        f.set_ready(0, 3);
        f.wait_ready(0, 5); // Returns immediately: flag stayed at 5.
    }

    #[test]
    fn allreduce_sums_across_threads() {
        let f = std::sync::Arc::new(Fabric::new(3));
        let handles: Vec<_> = (0..3)
            .map(|rank| {
                let f = f.clone();
                std::thread::spawn(move || {
                    let m = Matrix::full(2, 2, (rank + 1) as f32);
                    f.allreduce(rank, vec![m])
                })
            })
            .collect();
        for h in handles {
            let out = h.join().expect("no panic");
            assert_eq!(out[0], Matrix::full(2, 2, 6.0));
        }
    }

    #[test]
    fn checkout_reuses_recycled_capacity() {
        let f = Fabric::new(1);
        let mut buf = f.checkout(16);
        buf.extend_from_slice(&[1.0; 16]);
        let ptr = buf.as_ptr();
        let cap = buf.capacity();
        f.recycle(buf);
        let again = f.checkout(16);
        assert!(again.is_empty(), "checked-out buffers arrive cleared");
        assert_eq!(again.as_ptr(), ptr, "capacity is recycled, not reallocated");
        assert_eq!(again.capacity(), cap);
        // A larger request than any pooled buffer still succeeds.
        f.recycle(again);
        assert!(f.checkout(1024).capacity() >= 1024);
    }

    #[test]
    fn allreduce_is_reusable() {
        let f = std::sync::Arc::new(Fabric::new(2));
        for round in 1..4 {
            let handles: Vec<_> = (0..2)
                .map(|rank| {
                    let f = f.clone();
                    std::thread::spawn(move || {
                        f.allreduce(rank, vec![Matrix::full(1, 1, round as f32)])
                    })
                })
                .collect();
            for h in handles {
                assert_eq!(
                    h.join().expect("no panic")[0],
                    Matrix::full(1, 1, 2.0 * round as f32)
                );
            }
        }
    }
}
