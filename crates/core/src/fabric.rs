//! The shared-memory communication fabric connecting simulated devices.
//!
//! Real DGCL moves bytes over NVLink/PCIe/IB with the decentralized
//! ready/done flag protocol of §6.1; here devices are threads and a
//! message is a `Vec<f32>` dropped into a per-(sender, receiver) mailbox.
//! The flags map onto this as:
//!
//! * *ready* — an atomic per-device operation counter; a sender spins
//!   until the receiver has entered the same collective before posting,
//!   exactly like waiting for the peer's ready flag before writing into
//!   its buffer.
//! * *done* — message availability in the mailbox (posting the payload
//!   and setting the done flag are one atomic insert here).
//!
//! There is no master in the data path: the only shared state is
//! peer-to-peer mailboxes and the allreduce rendezvous used for model
//! (not embedding) synchronisation, mirroring the paper's use of
//! Horovod/DDP for the small model weights.
//!
//! # Abortability
//!
//! The paper's protocol has no failure story: a dead peer leaves every
//! ready/done wait spinning forever. This fabric therefore adds exactly
//! what production collective stacks (NCCL's abort/timeout semantics)
//! add on top:
//!
//! * a **poison state** — the first failing device records its rank and
//!   cause via [`Fabric::poison`]; every blocked wait wakes and unwinds
//!   with [`RuntimeError::Poisoned`];
//! * a **collective deadline** — waits that outlive
//!   [`FabricConfig::collective_deadline`] return
//!   [`RuntimeError::Timeout`] instead of blocking eternally;
//! * a **fault-injection boundary** — a [`FaultPlan`] can delay,
//!   duplicate or reorder messages (which the keyed protocol must absorb
//!   bitwise-identically) or crash ranks (which must poison, not hang).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use dgcl_tensor::Matrix;
use parking_lot::{Condvar, Mutex};

use crate::collectives::AllreducePolicy;
use crate::error::{ClusterFailure, RuntimeError};
use crate::fault::FaultPlan;

/// Identifies one batched message: `(operation, stage, substage, chunk)`.
/// Barriered paths always use chunk `0`; the pipelined executor keys each
/// fixed-size row chunk separately so a relay can forward chunk `k` while
/// chunk `k + 1` is still in flight.
pub type MsgKey = (u64, u32, u32, u32);

/// Flags a payload whose length disagrees with the schedule — a protocol
/// bug, never a user error. Shared by the compiled, reference and
/// pipelined executors so the check cannot drift between paths.
///
/// # Errors
///
/// [`RuntimeError::Protocol`] when `got != want`.
pub fn expect_payload(
    rank: usize,
    got: usize,
    want: usize,
    key: MsgKey,
) -> Result<(), RuntimeError> {
    if got == want {
        Ok(())
    } else {
        Err(RuntimeError::Protocol {
            rank,
            detail: format!("payload for {key:?} has {got} floats, schedule expects {want}"),
        })
    }
}

/// Messages held back by reorder faults, keyed by `(src, dst)` link.
type HeldMessages = HashMap<(usize, usize), Vec<(MsgKey, Vec<f32>)>>;

/// Runtime configuration of one cluster run's fabric.
#[derive(Debug, Clone)]
pub struct FabricConfig {
    /// Upper bound on any single ready/done/allreduce wait. A peer that
    /// makes no progress for this long produces [`RuntimeError::Timeout`]
    /// on the waiter instead of an eternal block.
    pub collective_deadline: Duration,
    /// How long a blocked wait sleeps between poison/deadline checks.
    /// Chaos tests and latency sweeps can tighten it; the default keeps
    /// the historical 5 ms tick.
    pub poll_interval: Duration,
    /// Which allreduce algorithm [`DeviceHandle::allreduce`] dispatches
    /// to, either fixed or picked per message size by a tuned selector.
    /// The default keeps the rendezvous reference.
    ///
    /// [`DeviceHandle::allreduce`]: crate::runtime::DeviceHandle::allreduce
    pub allreduce: AllreducePolicy,
    /// Elements per pipeline chunk for the zoo collectives (ring,
    /// halving/doubling, tree broadcast). Chunking never changes bits —
    /// only how finely chunks stream through the dependency pipeline.
    pub collective_chunk: usize,
    /// Maximum number of retired buffers the recycle pool retains.
    pub max_pooled_buffers: usize,
    /// Maximum total bytes (summed capacity) the recycle pool retains.
    pub max_pooled_bytes: usize,
    /// Faults to inject at the fabric boundary.
    pub faults: FaultPlan,
}

impl Default for FabricConfig {
    fn default() -> Self {
        Self {
            collective_deadline: Duration::from_secs(30),
            poll_interval: Duration::from_millis(5),
            allreduce: AllreducePolicy::default(),
            collective_chunk: 4096,
            max_pooled_buffers: 256,
            max_pooled_bytes: 256 << 20,
            faults: FaultPlan::none(),
        }
    }
}

#[derive(Default)]
struct Mailbox {
    slots: Mutex<HashMap<MsgKey, Vec<f32>>>,
    signal: Condvar,
}

enum ReducePhase {
    Filling,
    Draining,
}

struct ReduceState {
    phase: ReducePhase,
    slots: Vec<Option<Vec<Matrix>>>,
    filled: usize,
    departed: usize,
    result: Option<Vec<Matrix>>,
}

/// First-failure record: the rank that poisoned the fabric and why.
struct PoisonInfo {
    rank: usize,
    cause: ClusterFailure,
}

/// Retired payload buffers awaiting reuse, capped by count and bytes.
#[derive(Default)]
struct BufferPool {
    bufs: Vec<Vec<f32>>,
    total_bytes: usize,
}

/// The fabric shared by all device threads of one cluster run.
pub struct Fabric {
    num_devices: usize,
    config: FabricConfig,
    /// `mailboxes[src * n + dst]`.
    mailboxes: Vec<Mailbox>,
    /// Per-device operation counter (the ready flag).
    ready: Vec<AtomicU64>,
    reduce: Mutex<ReduceState>,
    reduce_signal: Condvar,
    /// Fast-path flag mirroring `poison.is_some()`; checked from spin
    /// loops without taking the lock.
    poison_flag: AtomicBool,
    poison: Mutex<Option<PoisonInfo>>,
    /// Messages held back by reorder faults, per `(src, dst)` link.
    held: Mutex<HeldMessages>,
    /// Retired payload buffers awaiting reuse; in steady state every
    /// payload and scratch buffer of the collectives is drawn from here
    /// instead of the allocator.
    buffers: Mutex<BufferPool>,
}

impl Fabric {
    /// Creates a fabric for `num_devices` devices with default limits.
    pub fn new(num_devices: usize) -> Self {
        Self::with_config(num_devices, FabricConfig::default())
    }

    /// Creates a fabric with explicit deadline, pool and fault settings.
    pub fn with_config(num_devices: usize, config: FabricConfig) -> Self {
        Self {
            num_devices,
            config,
            mailboxes: (0..num_devices * num_devices)
                .map(|_| Mailbox::default())
                .collect(),
            ready: (0..num_devices).map(|_| AtomicU64::new(0)).collect(),
            reduce: Mutex::new(ReduceState {
                phase: ReducePhase::Filling,
                slots: (0..num_devices).map(|_| None).collect(),
                filled: 0,
                departed: 0,
                result: None,
            }),
            reduce_signal: Condvar::new(),
            poison_flag: AtomicBool::new(false),
            poison: Mutex::new(None),
            held: Mutex::new(HashMap::new()),
            buffers: Mutex::new(BufferPool::default()),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &FabricConfig {
        &self.config
    }

    /// Takes an empty buffer with at least `capacity` floats of room from
    /// the recycle pool, growing one only when the pool cannot satisfy
    /// the request. Picks the *best fit* (smallest sufficient capacity)
    /// so small requests do not consume the pool's large buffers. Pair
    /// with [`Fabric::recycle`].
    pub fn checkout(&self, capacity: usize) -> Vec<f32> {
        // A zero-capacity request must not steal a pooled buffer (every
        // buffer would "fit" and best-fit would hand out the smallest).
        // Empty payloads stay off the pool entirely, mirroring
        // `recycle`'s zero-capacity early return.
        if capacity == 0 {
            return Vec::new();
        }
        let mut pool = self.buffers.lock();
        let fit = pool
            .bufs
            .iter()
            .enumerate()
            .filter(|(_, b)| b.capacity() >= capacity)
            .min_by_key(|(_, b)| b.capacity())
            .map(|(i, _)| i);
        let mut buf = match fit {
            Some(i) => pool.bufs.swap_remove(i),
            // Nothing fits: grow the largest pooled buffer (it is the
            // cheapest to extend) rather than allocating from scratch.
            None => {
                let largest = pool
                    .bufs
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, b)| b.capacity())
                    .map(|(i, _)| i);
                match largest {
                    Some(i) => pool.bufs.swap_remove(i),
                    None => Vec::new(),
                }
            }
        };
        pool.total_bytes = pool.total_bytes.saturating_sub(4 * buf.capacity());
        drop(pool);
        buf.clear();
        buf.reserve(capacity);
        buf
    }

    /// Returns a buffer to the recycle pool. Buffers beyond the
    /// configured count or byte caps are dropped instead of retained, so
    /// mixed payload sizes cannot grow the pool monotonically.
    pub fn recycle(&self, buf: Vec<f32>) {
        let bytes = 4 * buf.capacity();
        if bytes == 0 {
            return;
        }
        let mut pool = self.buffers.lock();
        if pool.bufs.len() >= self.config.max_pooled_buffers
            || pool.total_bytes + bytes > self.config.max_pooled_bytes
        {
            return;
        }
        pool.total_bytes += bytes;
        pool.bufs.push(buf);
    }

    /// Current recycle-pool occupancy: `(buffer count, total bytes)`.
    pub fn pool_stats(&self) -> (usize, usize) {
        let pool = self.buffers.lock();
        (pool.bufs.len(), pool.total_bytes)
    }

    /// Number of devices.
    pub fn num_devices(&self) -> usize {
        self.num_devices
    }

    /// Poisons the fabric: records `(rank, cause)` if it is the first
    /// failure and wakes every blocked wait so the cluster unwinds
    /// instead of hanging. Later poisons keep the first record.
    pub fn poison(&self, rank: usize, cause: ClusterFailure) {
        {
            let mut p = self.poison.lock();
            if p.is_none() {
                *p = Some(PoisonInfo { rank, cause });
            }
        }
        self.poison_flag.store(true, Ordering::Release);
        for mb in &self.mailboxes {
            mb.signal.notify_all();
        }
        self.reduce_signal.notify_all();
    }

    /// Whether any device has failed.
    pub fn is_poisoned(&self) -> bool {
        self.poison_flag.load(Ordering::Acquire)
    }

    /// The first failure as `(rank, cause)`, if any.
    pub fn poison_info(&self) -> Option<(usize, ClusterFailure)> {
        self.poison
            .lock()
            .as_ref()
            .map(|p| (p.rank, p.cause.clone()))
    }

    /// The error a *waiting* device should unwind with once the fabric is
    /// poisoned.
    fn poison_error(&self) -> RuntimeError {
        match self.poison_info() {
            Some((rank, cause)) => RuntimeError::Poisoned {
                origin: rank,
                reason: cause.to_string(),
            },
            // Raced with the flag: the record is being written.
            None => RuntimeError::Poisoned {
                origin: usize::MAX,
                reason: "fabric poisoned".to_string(),
            },
        }
    }

    /// Fails fast if the fabric is poisoned.
    pub fn check_poison(&self) -> Result<(), RuntimeError> {
        if self.is_poisoned() {
            Err(self.poison_error())
        } else {
            Ok(())
        }
    }

    /// One bounded-wait bookkeeping step, shared by every blocking poll
    /// loop (ready flags, mailbox receives, the allreduce rendezvous):
    /// fails if the fabric is poisoned or `start` has outlived the
    /// collective deadline, otherwise the caller polls again after
    /// [`FabricConfig::poll_interval`].
    fn wait_tick(
        &self,
        start: Instant,
        waiter: usize,
        op: &'static str,
        stage: impl FnOnce() -> String,
    ) -> Result<(), RuntimeError> {
        if self.is_poisoned() {
            return Err(self.poison_error());
        }
        if start.elapsed() > self.config.collective_deadline {
            return Err(RuntimeError::Timeout {
                rank: waiter,
                op,
                stage: stage(),
            });
        }
        Ok(())
    }

    /// Marks `device` as having entered operation `op` (its ready flag).
    pub fn set_ready(&self, device: usize, op: u64) {
        self.ready[device].fetch_max(op, Ordering::Release);
    }

    /// Spins until `device`'s ready flag reaches `op`, unwinding with an
    /// error if the fabric is poisoned or the deadline passes first.
    /// `waiter` names the calling rank in the error.
    pub fn wait_ready(&self, device: usize, op: u64, waiter: usize) -> Result<(), RuntimeError> {
        if self.ready[device].load(Ordering::Acquire) >= op {
            return Ok(());
        }
        let start = Instant::now();
        loop {
            if self.ready[device].load(Ordering::Acquire) >= op {
                return Ok(());
            }
            self.wait_tick(start, waiter, "wait_ready", || {
                format!("peer {device} never reached op {op}")
            })?;
            std::thread::yield_now();
        }
    }

    /// Applies benign message faults and posts a payload from `src` to
    /// `dst` under `key` (the done flag).
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Protocol`] if the same key is posted twice (a
    /// protocol bug — injected duplicates are absorbed internally and do
    /// not trip this).
    pub fn send(
        &self,
        src: usize,
        dst: usize,
        key: MsgKey,
        payload: Vec<f32>,
    ) -> Result<(), RuntimeError> {
        if !self.config.faults.is_empty() {
            return self.send_faulted(src, dst, key, payload);
        }
        self.deliver(src, dst, key, payload, false)
    }

    /// The faulted send path: sleeps for injected link delay, holds
    /// reordered messages, flushes previously held ones after the current
    /// message (so the pair arrives swapped), and posts duplicates.
    fn send_faulted(
        &self,
        src: usize,
        dst: usize,
        key: MsgKey,
        payload: Vec<f32>,
    ) -> Result<(), RuntimeError> {
        let faults = &self.config.faults;
        let delay = faults.delay_for(src, dst, key.1);
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
        let duplicate = faults.duplicates(src, dst, key.1);
        if faults.reorders(src, dst, key.1) {
            let mut held = self.held.lock();
            let q = held.entry((src, dst)).or_default();
            if q.is_empty() {
                // Hold the message; the link's next send (or the
                // receiver's demand) releases it out of order.
                q.push((key, payload));
                if duplicate {
                    let clone = q[0].1.clone();
                    q.push((key, clone));
                }
                return Ok(());
            }
        }
        if duplicate {
            self.deliver(src, dst, key, payload.clone(), false)?;
            self.deliver(src, dst, key, payload, true)?;
        } else {
            self.deliver(src, dst, key, payload, false)?;
        }
        self.release_held(src, dst)
    }

    /// Delivers every held message on `(src, dst)` — called after a later
    /// message of the link has been posted (reordering the pair) and by
    /// blocked receivers (so a hold can never become a hang).
    fn release_held(&self, src: usize, dst: usize) -> Result<(), RuntimeError> {
        let drained = match self.held.lock().get_mut(&(src, dst)) {
            Some(q) => std::mem::take(q),
            None => return Ok(()),
        };
        for (key, payload) in drained {
            // Held duplicates hit an occupied or already-consumed slot;
            // both are absorbed.
            self.deliver(src, dst, key, payload, true)?;
        }
        Ok(())
    }

    /// Inserts into the mailbox. `tolerate_duplicate` absorbs an occupied
    /// slot (injected duplicate) instead of flagging a protocol bug.
    fn deliver(
        &self,
        src: usize,
        dst: usize,
        key: MsgKey,
        payload: Vec<f32>,
        tolerate_duplicate: bool,
    ) -> Result<(), RuntimeError> {
        let mb = &self.mailboxes[src * self.num_devices + dst];
        let mut slots = mb.slots.lock();
        if let Some(prev) = slots.insert(key, payload) {
            if !tolerate_duplicate {
                return Err(RuntimeError::Protocol {
                    rank: src,
                    detail: format!("duplicate message {key:?} from {src} to {dst}"),
                });
            }
            // Keep the first arrival; payloads of duplicates are
            // identical so either choice is bitwise-equivalent.
            slots.insert(key, prev);
        }
        mb.signal.notify_all();
        Ok(())
    }

    /// Blocks until the payload for `key` from `src` arrives at `dst`,
    /// then removes and returns it. Unwinds with an error on poison or
    /// deadline.
    pub fn recv(&self, src: usize, dst: usize, key: MsgKey) -> Result<Vec<f32>, RuntimeError> {
        let mb = &self.mailboxes[src * self.num_devices + dst];
        {
            let mut slots = mb.slots.lock();
            if let Some(payload) = slots.remove(&key) {
                return Ok(payload);
            }
        }
        let start = Instant::now();
        loop {
            // A reorder fault may be holding the message; the receiver's
            // demand forces delivery so a hold can never hang the run.
            if !self.config.faults.is_empty() {
                self.release_held(src, dst)?;
            }
            let mut slots = mb.slots.lock();
            if let Some(payload) = slots.remove(&key) {
                return Ok(payload);
            }
            self.wait_tick(start, dst, "recv", || {
                format!("message {key:?} from {src} never arrived")
            })?;
            mb.signal.wait_for(&mut slots, self.config.poll_interval);
        }
    }

    /// Non-blocking [`Fabric::recv`]: removes and returns the payload for
    /// `key` if it has arrived, `None` otherwise. The pipelined executor
    /// polls with this between dependency-ready entries so it never
    /// blocks on one chunk while another is already deliverable.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Poisoned`] when the fabric is poisoned and the
    /// message is absent (a present message is still handed out so a
    /// receiver can drain completed work before unwinding).
    pub fn try_recv(
        &self,
        src: usize,
        dst: usize,
        key: MsgKey,
    ) -> Result<Option<Vec<f32>>, RuntimeError> {
        // A reorder fault may be holding the message; demand delivery.
        if !self.config.faults.is_empty() {
            self.release_held(src, dst)?;
        }
        let mb = &self.mailboxes[src * self.num_devices + dst];
        if let Some(payload) = mb.slots.lock().remove(&key) {
            return Ok(Some(payload));
        }
        self.check_poison()?;
        Ok(None)
    }

    /// Sums the per-device contributions element-wise (in rank order, so
    /// every device observes the identical result) and returns the total
    /// to each caller. All devices must call with equally-shaped inputs.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Protocol`] if contributions disagree in arity,
    /// [`RuntimeError::Poisoned`]/[`RuntimeError::Timeout`] if the
    /// rendezvous cannot complete.
    pub fn allreduce(&self, rank: usize, mats: Vec<Matrix>) -> Result<Vec<Matrix>, RuntimeError> {
        let start = Instant::now();
        let rendezvous = || "rendezvous never completed".to_string();
        let mut st = self.reduce.lock();
        while !matches!(st.phase, ReducePhase::Filling) {
            self.wait_tick(start, rank, "allreduce", rendezvous)?;
            self.reduce_signal
                .wait_for(&mut st, self.config.poll_interval);
        }
        st.slots[rank] = Some(mats);
        st.filled += 1;
        if st.filled == self.num_devices {
            let mut acc: Option<Vec<Matrix>> = None;
            for (d, slot) in st.slots.iter_mut().enumerate() {
                let mats = slot.take().expect("all slots filled");
                match &mut acc {
                    None => acc = Some(mats),
                    Some(total) => {
                        if total.len() != mats.len() {
                            let err = RuntimeError::Protocol {
                                rank: d,
                                detail: format!(
                                    "allreduce arity mismatch: rank {d} contributed {} matrices, expected {}",
                                    mats.len(),
                                    total.len()
                                ),
                            };
                            return Err(err);
                        }
                        for (t, m) in total.iter_mut().zip(&mats) {
                            t.add_assign(m);
                        }
                        // The contribution has been folded in; its
                        // storage goes back to the pool instead of the
                        // allocator.
                        for m in mats {
                            self.recycle(m.into_vec());
                        }
                    }
                }
            }
            st.result = Some(acc.expect("at least one device"));
            st.phase = ReducePhase::Draining;
            st.departed = 0;
            self.reduce_signal.notify_all();
        } else {
            while !matches!(st.phase, ReducePhase::Draining) {
                self.wait_tick(start, rank, "allreduce", rendezvous)?;
                self.reduce_signal
                    .wait_for(&mut st, self.config.poll_interval);
            }
        }
        st.departed += 1;
        let out = if st.departed == self.num_devices {
            // Last reader: move the result out instead of cloning it.
            let out = st.result.take().expect("result present");
            st.phase = ReducePhase::Filling;
            st.filled = 0;
            self.reduce_signal.notify_all();
            out
        } else {
            // Earlier readers copy into pool-backed buffers so even the
            // fan-out of the result allocates nothing in steady state.
            let total = st.result.as_ref().expect("result present");
            total
                .iter()
                .map(|m| {
                    let mut buf = self.checkout(m.len());
                    buf.extend_from_slice(m.as_slice());
                    Matrix::from_vec(m.rows(), m.cols(), buf)
                })
                .collect()
        };
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_round_trip() {
        let f = Fabric::new(2);
        f.send(0, 1, (1, 0, 0, 0), vec![1.0, 2.0]).expect("send");
        assert_eq!(f.recv(0, 1, (1, 0, 0, 0)).expect("recv"), vec![1.0, 2.0]);
    }

    #[test]
    fn recv_blocks_until_send() {
        let f = std::sync::Arc::new(Fabric::new(2));
        let f2 = f.clone();
        let t = std::thread::spawn(move || f2.recv(0, 1, (7, 1, 0, 0)));
        std::thread::sleep(std::time::Duration::from_millis(10));
        f.send(0, 1, (7, 1, 0, 0), vec![3.5]).expect("send");
        assert_eq!(t.join().expect("no panic").expect("recv"), vec![3.5]);
    }

    #[test]
    fn duplicate_key_is_a_protocol_error() {
        let f = Fabric::new(2);
        f.send(0, 1, (1, 0, 0, 0), vec![]).expect("first send");
        let err = f.send(0, 1, (1, 0, 0, 0), vec![]).expect_err("duplicate");
        assert!(
            matches!(err, RuntimeError::Protocol { rank: 0, .. }),
            "{err}"
        );
    }

    #[test]
    fn ready_flags_are_monotonic() {
        let f = Fabric::new(1);
        f.set_ready(0, 5);
        f.set_ready(0, 3);
        // Returns immediately: flag stayed at 5.
        f.wait_ready(0, 5, 0).expect("already ready");
    }

    #[test]
    fn wait_ready_times_out_instead_of_hanging() {
        let f = Fabric::with_config(
            2,
            FabricConfig {
                collective_deadline: Duration::from_millis(50),
                ..FabricConfig::default()
            },
        );
        let start = Instant::now();
        let err = f.wait_ready(1, 1, 0).expect_err("peer never arrives");
        assert!(start.elapsed() < Duration::from_secs(5), "bounded wait");
        match err {
            RuntimeError::Timeout { rank, op, .. } => {
                assert_eq!(rank, 0);
                assert_eq!(op, "wait_ready");
            }
            other => panic!("expected timeout, got {other}"),
        }
    }

    #[test]
    fn recv_times_out_instead_of_hanging() {
        let f = Fabric::with_config(
            2,
            FabricConfig {
                collective_deadline: Duration::from_millis(50),
                ..FabricConfig::default()
            },
        );
        let err = f.recv(0, 1, (1, 0, 0, 0)).expect_err("nothing sent");
        assert!(
            matches!(err, RuntimeError::Timeout { op: "recv", .. }),
            "{err}"
        );
    }

    #[test]
    fn poison_wakes_blocked_receivers() {
        let f = std::sync::Arc::new(Fabric::new(2));
        let f2 = f.clone();
        let t = std::thread::spawn(move || f2.recv(0, 1, (9, 0, 0, 0)));
        std::thread::sleep(Duration::from_millis(10));
        f.poison(0, ClusterFailure::Panic("dead device".to_string()));
        let err = t.join().expect("no panic").expect_err("poisoned");
        match err {
            RuntimeError::Poisoned { origin, reason } => {
                assert_eq!(origin, 0);
                assert!(reason.contains("dead device"), "{reason}");
            }
            other => panic!("expected poison, got {other}"),
        }
    }

    #[test]
    fn poison_wakes_blocked_allreduce() {
        let f = std::sync::Arc::new(Fabric::new(3));
        let t = {
            let f = f.clone();
            std::thread::spawn(move || f.allreduce(0, vec![Matrix::full(1, 1, 1.0)]))
        };
        std::thread::sleep(Duration::from_millis(10));
        f.poison(
            2,
            ClusterFailure::Error(RuntimeError::InjectedCrash { rank: 2, at_op: 1 }),
        );
        let err = t.join().expect("no panic").expect_err("poisoned");
        assert!(
            matches!(err, RuntimeError::Poisoned { origin: 2, .. }),
            "{err}"
        );
    }

    #[test]
    fn first_poison_wins() {
        let f = Fabric::new(4);
        f.poison(3, ClusterFailure::Panic("first".to_string()));
        f.poison(1, ClusterFailure::Panic("second".to_string()));
        let (rank, cause) = f.poison_info().expect("poisoned");
        assert_eq!(rank, 3);
        assert_eq!(cause, ClusterFailure::Panic("first".to_string()));
    }

    #[test]
    fn allreduce_sums_across_threads() {
        let f = std::sync::Arc::new(Fabric::new(3));
        let handles: Vec<_> = (0..3)
            .map(|rank| {
                let f = f.clone();
                std::thread::spawn(move || {
                    let m = Matrix::full(2, 2, (rank + 1) as f32);
                    f.allreduce(rank, vec![m])
                })
            })
            .collect();
        for h in handles {
            let out = h.join().expect("no panic").expect("allreduce");
            assert_eq!(out[0], Matrix::full(2, 2, 6.0));
        }
    }

    #[test]
    fn checkout_reuses_recycled_capacity() {
        let f = Fabric::new(1);
        let mut buf = f.checkout(16);
        buf.extend_from_slice(&[1.0; 16]);
        let ptr = buf.as_ptr();
        let cap = buf.capacity();
        f.recycle(buf);
        let again = f.checkout(16);
        assert!(again.is_empty(), "checked-out buffers arrive cleared");
        assert_eq!(again.as_ptr(), ptr, "capacity is recycled, not reallocated");
        assert_eq!(again.capacity(), cap);
        // A larger request than any pooled buffer still succeeds.
        f.recycle(again);
        assert!(f.checkout(1024).capacity() >= 1024);
    }

    #[test]
    fn checkout_prefers_best_fit() {
        let f = Fabric::new(1);
        for cap in [1024usize, 64, 256] {
            let mut b = Vec::with_capacity(cap);
            b.push(0.0f32);
            f.recycle(b);
        }
        let got = f.checkout(60);
        assert_eq!(got.capacity(), 64, "smallest sufficient buffer wins");
        let got2 = f.checkout(100);
        assert_eq!(got2.capacity(), 256);
    }

    #[test]
    fn zero_capacity_checkout_leaves_the_pool_alone() {
        let f = Fabric::new(1);
        let mut b = Vec::with_capacity(64);
        b.push(0.0f32);
        f.recycle(b);
        let before = f.pool_stats();
        // Used to steal the smallest pooled buffer: every buffer has
        // capacity >= 0, so best-fit handed one out for free.
        let empty = f.checkout(0);
        assert_eq!(empty.capacity(), 0, "no pooled buffer is stolen");
        assert_eq!(f.pool_stats(), before);
        f.recycle(empty); // Zero-capacity recycle is a no-op too.
        assert_eq!(f.pool_stats(), before);
    }

    #[test]
    fn pool_stays_bounded_over_varying_sizes() {
        let f = Fabric::with_config(
            1,
            FabricConfig {
                max_pooled_buffers: 8,
                max_pooled_bytes: 16 << 10,
                ..FabricConfig::default()
            },
        );
        // A workload cycling through many distinct payload sizes used to
        // grow the pool monotonically (recycle never dropped).
        for round in 0..200usize {
            let size = 16 + (round * 97) % 3000;
            let mut buf = f.checkout(size);
            buf.resize(size, 1.0);
            f.recycle(buf);
            let (count, bytes) = f.pool_stats();
            assert!(
                count <= 8,
                "pool count {count} exceeds cap at round {round}"
            );
            assert!(
                bytes <= 16 << 10,
                "pool bytes {bytes} exceed cap at round {round}"
            );
        }
    }

    #[test]
    fn injected_duplicate_is_absorbed() {
        let cfg = FabricConfig {
            faults: crate::fault::FaultPlan {
                events: vec![crate::fault::FaultEvent::Duplicate {
                    src: 0,
                    dst: 1,
                    stage: 0,
                }],
            },
            ..FabricConfig::default()
        };
        let f = Fabric::with_config(2, cfg);
        f.send(0, 1, (1, 0, 0, 0), vec![2.5]).expect("send");
        assert_eq!(f.recv(0, 1, (1, 0, 0, 0)).expect("recv"), vec![2.5]);
    }

    #[test]
    fn reordered_message_still_arrives() {
        let cfg = FabricConfig {
            collective_deadline: Duration::from_secs(5),
            faults: crate::fault::FaultPlan {
                events: vec![crate::fault::FaultEvent::Reorder {
                    src: 0,
                    dst: 1,
                    stage: 0,
                }],
            },
            ..FabricConfig::default()
        };
        let f = Fabric::with_config(2, cfg);
        // Held on send...
        f.send(0, 1, (1, 0, 0, 0), vec![7.0]).expect("send");
        // ...but the receiver's demand releases it.
        assert_eq!(f.recv(0, 1, (1, 0, 0, 0)).expect("recv"), vec![7.0]);
        // A later message on the link releases an earlier held one.
        f.send(0, 1, (2, 0, 0, 0), vec![1.0]).expect("send held");
        f.send(0, 1, (2, 1, 0, 0), vec![2.0]).expect("send release");
        assert_eq!(f.recv(0, 1, (2, 1, 0, 0)).expect("recv"), vec![2.0]);
        assert_eq!(f.recv(0, 1, (2, 0, 0, 0)).expect("recv"), vec![1.0]);
    }

    #[test]
    fn allreduce_is_reusable() {
        let f = std::sync::Arc::new(Fabric::new(2));
        for round in 1..4 {
            let handles: Vec<_> = (0..2)
                .map(|rank| {
                    let f = f.clone();
                    std::thread::spawn(move || {
                        f.allreduce(rank, vec![Matrix::full(1, 1, round as f32)])
                    })
                })
                .collect();
            for h in handles {
                assert_eq!(
                    h.join().expect("no panic").expect("allreduce")[0],
                    Matrix::full(1, 1, 2.0 * round as f32)
                );
            }
        }
    }
}
