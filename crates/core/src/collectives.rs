//! The collective algorithm zoo: ring and halving/doubling allreduce
//! plus flat/chain/binomial-tree broadcast, compiled onto the chunk
//! pipeline.
//!
//! The fabric's rendezvous allreduce (the reference) funnels every
//! contribution through one shared slot table — simple, but its cost
//! grows with the full vector times the device count. The classic
//! bandwidth-optimal alternatives move `2(n−1)/n` of the data per
//! device instead. This module implements them *on top of the existing
//! pipeline machinery*: each algorithm is expressed as a synthetic
//! [`DeviceSchedule`] over a flat element space, compiled by
//! [`pipeline::compile`] into the same dependency-list
//! [`PipelineSchedule`] the planner's allgather uses, and driven by the
//! same executor — so chunk streaming, deadline bounding, poison
//! propagation and fault injection all come for free.
//!
//! # Bitwise parity
//!
//! Every algorithm must reproduce the rendezvous result *bitwise*: a
//! left-associated fold of the per-rank contributions in rank order
//! (`((c₀+c₁)+c₂)+…`). IEEE-754 addition is commutative bitwise but not
//! associative, which rules out the textbook formulations:
//!
//! * **Ring** is the *chain-pipelined* variant, not the rotated ring:
//!   the whole vector flows `0→1→…→n−1` accumulating at each hop
//!   (`cᵢ + partial` — a single commutation of the reference fold, so
//!   bitwise equal), then chains back with overwrites. The rotated ring
//!   would fold segment `s` starting at rank `s`, a different
//!   association.
//! * **Halving/doubling** is a *direct-exchange* reduce-scatter (every
//!   rank sends its contribution of segment `s` straight to rank `s`,
//!   which folds them in rank order — the per-entry apply order the
//!   compiled hazards already serialise) followed by a Bruck
//!   recursive-doubling allgather, which is pure data movement. The
//!   butterfly reduce-scatter would build `(c₀+c₁)+(c₂+c₃)`.
//!
//! Accumulation is always seeded by an *overwrite* from the rank-0
//! contribution, never from zero (`0.0 + (-0.0)` is `+0.0`, which would
//! break parity on negative zeros).
//!
//! Algorithm *selection* lives in `dgcl-sim` ([`AlgorithmSelector`]):
//! the cost models mirror the fabric's chunked execution, and the
//! tuned table is deterministic, so every rank picks the same algorithm
//! from local information alone — no negotiation round.

use std::collections::HashMap;

use dgcl_plan::tuples::StageIo;
use dgcl_tensor::Matrix;

use crate::error::RuntimeError;
use crate::fabric::Fabric;
use crate::pipeline::{self, ChunkIo, PipelineSchedule, PipelineScratch};
use crate::schedule::{DeviceSchedule, StageGroup};

pub use dgcl_sim::{AlgorithmSelector, AllreduceAlgo, BroadcastAlgo};

/// How the runtime picks an allreduce algorithm per call.
#[derive(Debug, Clone)]
pub enum AllreducePolicy {
    /// Always use one algorithm.
    Fixed(AllreduceAlgo),
    /// Pick per message size from a tuned cost-model table
    /// ([`AlgorithmSelector::tune`]).
    Auto(AlgorithmSelector),
}

impl Default for AllreducePolicy {
    /// The reference algorithm — default configs reproduce the
    /// pre-zoo runtime exactly.
    fn default() -> Self {
        AllreducePolicy::Fixed(AllreduceAlgo::Rendezvous)
    }
}

impl AllreducePolicy {
    /// The algorithm to run for a `bytes`-sized allreduce.
    pub fn pick(&self, bytes: u64) -> AllreduceAlgo {
        match self {
            AllreducePolicy::Fixed(a) => *a,
            AllreducePolicy::Auto(sel) => sel.pick(bytes),
        }
    }
}

/// Per-entry receive semantics of a compiled collective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ApplyMode {
    /// Copy the payload over the destination elements (seed / pure
    /// data movement).
    Overwrite,
    /// Add the payload into the destination elements (reduction hop).
    Accumulate,
}

/// One send or receive of a collective schedule, before compilation:
/// `refs` are indices into the flattened element space.
struct Entry {
    stage: usize,
    peer: usize,
    send: Vec<u32>,
    recv: Vec<u32>,
    mode: ApplyMode,
}

impl Entry {
    fn send(stage: usize, peer: usize, refs: Vec<u32>) -> Self {
        Entry {
            stage,
            peer,
            send: refs,
            recv: Vec::new(),
            mode: ApplyMode::Overwrite,
        }
    }

    fn recv(stage: usize, peer: usize, refs: Vec<u32>, mode: ApplyMode) -> Self {
        Entry {
            stage,
            peer,
            send: Vec::new(),
            recv: refs,
            mode,
        }
    }
}

/// A collective compiled for one `(algorithm, length, chunk)` cell.
struct Compiled {
    sched: DeviceSchedule,
    pipe: PipelineSchedule,
    ios: Vec<StageIo>,
    /// Receive semantics per table entry.
    apply: Vec<ApplyMode>,
}

/// Cache key for compiled collectives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum CacheKey {
    Allreduce(AllreduceAlgo, usize, usize),
    /// `(algo, root position, group, elems, chunk)` — whole-cluster
    /// broadcasts are the `GroupSpec::all` special case.
    Broadcast(BroadcastAlgo, usize, GroupSpec, usize, usize),
}

/// An arithmetic subset of ranks a collective runs over: members are
/// `offset + i·stride` for `i in 0..len`. The CAGNET backend's grid
/// rows (`stride == 1`) and grid columns (`stride == c`) are both of
/// this shape, as is the whole cluster (`offset 0, stride 1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GroupSpec {
    /// Rank of member 0.
    pub offset: usize,
    /// Rank distance between consecutive members.
    pub stride: usize,
    /// Number of members.
    pub len: usize,
}

impl GroupSpec {
    /// The whole cluster `0..devices`.
    pub fn all(devices: usize) -> Self {
        GroupSpec {
            offset: 0,
            stride: 1,
            len: devices,
        }
    }

    /// The rank of member `pos`.
    pub fn rank(&self, pos: usize) -> usize {
        self.offset + pos * self.stride
    }

    /// The member position of `rank`, or `None` if it is not a member.
    pub fn pos_of(&self, rank: usize) -> Option<usize> {
        let stride = self.stride.max(1);
        if rank < self.offset {
            return None;
        }
        let d = rank - self.offset;
        (d.is_multiple_of(stride) && d / stride < self.len).then_some(d / stride)
    }
}

/// Groups sorted entries into per-stage [`StageGroup`]s and compiles
/// the chunked pipeline. The compiler emits sends before receives
/// within a group, so the entry order only fixes the order *among*
/// receives of one stage — which is exactly what the rank-ordered fold
/// needs (receives pushed in rank order stay in rank order).
fn assemble(mut entries: Vec<Entry>, elems: usize, chunk_elems: usize) -> Compiled {
    entries.retain(|e| !e.send.is_empty() || !e.recv.is_empty());
    entries.sort_by_key(|e| e.stage);
    let mut groups: Vec<StageGroup> = Vec::new();
    for (idx, e) in entries.iter().enumerate() {
        match groups.last_mut() {
            Some(g) if g.stage == e.stage => g.ios.end = idx + 1,
            _ => groups.push(StageGroup {
                stage: e.stage,
                substage: 0,
                ios: idx..idx + 1,
            }),
        }
    }
    let ios: Vec<StageIo> = entries
        .iter()
        .map(|e| StageIo {
            stage: e.stage,
            substage: 0,
            peer: e.peer,
            send: Vec::new(),
            recv: Vec::new(),
        })
        .collect();
    let apply: Vec<ApplyMode> = entries.iter().map(|e| e.mode).collect();
    let sched = DeviceSchedule {
        groups,
        send_refs: entries.iter().map(|e| e.send.clone()).collect(),
        recv_refs: entries.into_iter().map(|e| e.recv).collect(),
        scratch_rows: 0,
    };
    let pipe = pipeline::compile(&sched, elems, chunk_elems);
    Compiled {
        sched,
        pipe,
        ios,
        apply,
    }
}

/// Element range of contiguous segment `s` when `elems` elements are
/// split into `n` segments (first `elems % n` segments one longer).
fn segment(elems: usize, n: usize, s: usize) -> std::ops::Range<u32> {
    let base = elems / n;
    let rem = elems % n;
    let lo = s * base + s.min(rem);
    let hi = lo + base + usize::from(s < rem);
    lo as u32..hi as u32
}

/// Chain-pipelined ring allreduce for device `rank` of `n`.
///
/// Reduce phase: the full vector flows `0→1→…→n−1`, each hop adding the
/// incoming partial into its own contribution (stage `d` is device `d`'s
/// forward send). Broadcast phase: the finished sum chains back
/// `n−1→…→0` with overwrites. Chunks stream through both chains — hop
/// `d` forwards chunk `k` while chunk `k+1` is still inbound.
fn ring_allreduce(rank: usize, n: usize, elems: usize) -> Vec<Entry> {
    let all: Vec<u32> = (0..elems as u32).collect();
    let mut entries = Vec::new();
    if rank > 0 {
        entries.push(Entry::recv(
            rank - 1,
            rank - 1,
            all.clone(),
            ApplyMode::Accumulate,
        ));
    }
    if rank < n - 1 {
        entries.push(Entry::send(rank, rank + 1, all.clone()));
        entries.push(Entry::recv(
            2 * n - 3 - rank,
            rank + 1,
            all.clone(),
            ApplyMode::Overwrite,
        ));
    }
    if rank > 0 {
        entries.push(Entry::send(2 * n - 2 - rank, rank - 1, all));
    }
    entries
}

/// Direct-exchange reduce-scatter + Bruck allgather for device `rank`
/// of `n` (any `n`, not only powers of two).
///
/// Stage 0: every device sends its contribution of segment `p` straight
/// to device `p` (including itself — the self-mailbox round-trip keeps
/// the hazard chain honest) and folds the `n` arrivals for its own
/// segment in rank order, seeded by rank 0's overwrite. Stages `1+k`:
/// Bruck rounds — after round `k` device `d` holds segments
/// `[d, d+2^{k+1})` (mod `n`), so `⌈log₂ n⌉` pure-copy rounds finish
/// the allgather.
fn halving_doubling_allreduce(rank: usize, n: usize, elems: usize) -> Vec<Entry> {
    let seg = |s: usize| -> Vec<u32> { segment(elems, n, s).collect() };
    let mut entries = Vec::new();
    // Reduce-scatter: send segment p of our contribution to device p…
    for p in 0..n {
        entries.push(Entry::send(0, p, seg(p)));
    }
    // …and fold every device's contribution of our segment, in rank
    // order (entry order fixes the receive order within the stage).
    for p in 0..n {
        let mode = if p == 0 {
            ApplyMode::Overwrite
        } else {
            ApplyMode::Accumulate
        };
        entries.push(Entry::recv(0, p, seg(rank), mode));
    }
    // Bruck allgather rounds.
    let mut held = 1usize; // segments held: [rank, rank + held) mod n
    let mut k = 0usize;
    while held < n {
        let cnt = held.min(n - held);
        let to = (rank + n - held) % n;
        let from = (rank + held) % n;
        let send: Vec<u32> = (0..cnt).flat_map(|j| seg((rank + j) % n)).collect();
        let recv: Vec<u32> = (0..cnt).flat_map(|j| seg((rank + held + j) % n)).collect();
        entries.push(Entry::send(1 + k, to, send));
        entries.push(Entry::recv(1 + k, from, recv, ApplyMode::Overwrite));
        held += cnt;
        k += 1;
    }
    entries
}

/// Broadcast schedule for device `rank` of `n`, rooted at `root`.
fn broadcast_entries(
    algo: BroadcastAlgo,
    rank: usize,
    n: usize,
    root: usize,
    elems: usize,
) -> Vec<Entry> {
    let all: Vec<u32> = (0..elems as u32).collect();
    // Rank relative to the root; `abs` maps back.
    let rel = (rank + n - root) % n;
    let abs = |r: usize| (r + root) % n;
    let mut entries = Vec::new();
    match algo {
        BroadcastAlgo::Flat => {
            if rel == 0 {
                for r in 1..n {
                    entries.push(Entry::send(0, abs(r), all.clone()));
                }
            } else {
                entries.push(Entry::recv(0, root, all, ApplyMode::Overwrite));
            }
        }
        BroadcastAlgo::Chain => {
            if rel > 0 {
                entries.push(Entry::recv(
                    rel - 1,
                    abs(rel - 1),
                    all.clone(),
                    ApplyMode::Overwrite,
                ));
            }
            if rel < n - 1 {
                entries.push(Entry::send(rel, abs(rel + 1), all));
            }
        }
        BroadcastAlgo::BinomialTree => {
            // A non-root receives from the peer that clears its highest
            // set bit, at the round that bit indexes; it relays on every
            // later round while the target stays in range.
            let j = if rel == 0 {
                0
            } else {
                let j = rel.ilog2() as usize;
                entries.push(Entry::recv(
                    j,
                    abs(rel - (1 << j)),
                    all.clone(),
                    ApplyMode::Overwrite,
                ));
                j + 1
            };
            for k in j.. {
                if rel + (1 << k) >= n {
                    break;
                }
                entries.push(Entry::send(k, abs(rel + (1 << k)), all.clone()));
            }
        }
    }
    entries
}

/// Per-device executor for the zoo: compiles collectives on first use
/// (cached per algorithm × length × chunk) and runs them through the
/// chunk pipeline over a flattened element buffer. One engine per
/// device thread; nothing is shared.
pub struct CollectiveEngine {
    rank: usize,
    devices: usize,
    cache: HashMap<CacheKey, Compiled>,
    scratch: PipelineScratch,
    flat: Vec<f32>,
}

impl CollectiveEngine {
    /// An engine for device `rank` of a `devices`-rank cluster.
    pub fn new(rank: usize, devices: usize) -> Self {
        CollectiveEngine {
            rank,
            devices,
            cache: HashMap::new(),
            scratch: PipelineScratch::default(),
            flat: Vec::new(),
        }
    }

    /// Element-wise sum of `mats` across all ranks under `algo`,
    /// bitwise identical to [`Fabric::allreduce`]. Must be called by
    /// every rank with the same op id, algorithm and shapes.
    ///
    /// Rendezvous (and the degenerate single-device / empty cases)
    /// routes through the fabric's reference implementation so op
    /// accounting and blocking behaviour stay exactly as before.
    ///
    /// # Errors
    ///
    /// Any [`RuntimeError`]; the caller poisons the fabric for errors
    /// it originated (`DeviceHandle::poison_on_err`).
    pub fn allreduce(
        &mut self,
        fabric: &Fabric,
        op: u64,
        algo: AllreduceAlgo,
        mut mats: Vec<Matrix>,
    ) -> Result<Vec<Matrix>, RuntimeError> {
        let elems: usize = mats.iter().map(Matrix::len).sum();
        if algo == AllreduceAlgo::Rendezvous || self.devices < 2 || elems == 0 {
            return fabric.allreduce(self.rank, mats);
        }
        let n = self.devices;
        let entries = match algo {
            AllreduceAlgo::Rendezvous => unreachable!("handled above"),
            AllreduceAlgo::Ring => ring_allreduce(self.rank, n, elems),
            AllreduceAlgo::HalvingDoubling => halving_doubling_allreduce(self.rank, n, elems),
        };
        let chunk = fabric.config().collective_chunk;
        let key = CacheKey::Allreduce(algo, elems, chunk);
        self.run(fabric, op, key, entries, elems, chunk, &mut mats)?;
        Ok(mats)
    }

    /// Broadcasts `root`'s matrix to every rank under `algo`; all ranks
    /// pass a matrix of the same shape (non-root contents are
    /// overwritten). Must be called by every rank with the same op id,
    /// algorithm, root and shape.
    ///
    /// # Errors
    ///
    /// Any [`RuntimeError`]; see [`CollectiveEngine::allreduce`].
    pub fn broadcast(
        &mut self,
        fabric: &Fabric,
        op: u64,
        algo: BroadcastAlgo,
        root: usize,
        mat: Matrix,
    ) -> Result<Matrix, RuntimeError> {
        self.broadcast_group(fabric, op, algo, GroupSpec::all(self.devices), root, mat)
    }

    /// Broadcasts the matrix of the member at `root_pos` to every member
    /// of `group`; the schedule only ever touches member ranks, so
    /// disjoint groups can run concurrently under the same op id. Every
    /// member must call with the same op id, algorithm, group, root
    /// position and shape; non-members must not call at all (they bump
    /// their op counter with an empty collective instead).
    ///
    /// # Errors
    ///
    /// Any [`RuntimeError`]; see [`CollectiveEngine::allreduce`].
    ///
    /// # Panics
    ///
    /// Panics if this rank is not a member of `group` or `root_pos` is
    /// out of range.
    pub fn broadcast_group(
        &mut self,
        fabric: &Fabric,
        op: u64,
        algo: BroadcastAlgo,
        group: GroupSpec,
        root_pos: usize,
        mut mat: Matrix,
    ) -> Result<Matrix, RuntimeError> {
        let elems = mat.len();
        if group.len < 2 || elems == 0 {
            return Ok(mat);
        }
        assert!(root_pos < group.len, "root position outside the group");
        let pos = group
            .pos_of(self.rank)
            .expect("broadcast_group caller must be a group member");
        // Build the schedule in group-position space, then remap every
        // peer to its absolute rank — that is all the executor needs,
        // since messages are addressed by (src, dst, key).
        let mut entries = broadcast_entries(algo, pos, group.len, root_pos, elems);
        for e in &mut entries {
            e.peer = group.rank(e.peer);
        }
        let chunk = fabric.config().collective_chunk;
        let key = CacheKey::Broadcast(algo, root_pos, group, elems, chunk);
        let mut mats = vec![mat];
        self.run(fabric, op, key, entries, elems, chunk, &mut mats)?;
        mat = mats.pop().expect("one matrix");
        Ok(mat)
    }

    /// Flattens `mats`, executes the (cached) compiled schedule over the
    /// element space, and unflattens the result in place.
    #[allow(clippy::too_many_arguments)]
    fn run(
        &mut self,
        fabric: &Fabric,
        op: u64,
        key: CacheKey,
        entries: Vec<Entry>,
        elems: usize,
        chunk: usize,
        mats: &mut [Matrix],
    ) -> Result<(), RuntimeError> {
        assert!(elems <= u32::MAX as usize, "collective too large");
        let c = self
            .cache
            .entry(key)
            .or_insert_with(|| assemble(entries, elems, chunk));
        let flat = &mut self.flat;
        flat.clear();
        for m in mats.iter() {
            flat.extend_from_slice(m.as_slice());
        }
        let apply = &c.apply;
        pipeline::execute(
            fabric,
            self.rank,
            op,
            &c.sched,
            &c.pipe,
            &c.ios,
            1,
            &mut self.scratch,
            |req| match req {
                ChunkIo::Pack { refs, payload, .. } => {
                    for &r in refs {
                        payload.push(flat[r as usize]);
                    }
                }
                ChunkIo::Apply {
                    entry,
                    refs,
                    payload,
                } => match apply[entry as usize] {
                    ApplyMode::Overwrite => {
                        for (i, &r) in refs.iter().enumerate() {
                            flat[r as usize] = payload[i];
                        }
                    }
                    ApplyMode::Accumulate => {
                        for (i, &r) in refs.iter().enumerate() {
                            flat[r as usize] += payload[i];
                        }
                    }
                },
            },
        )?;
        let mut cursor = 0;
        for m in mats.iter_mut() {
            let len = m.len();
            m.as_mut_slice()
                .copy_from_slice(&self.flat[cursor..cursor + len]);
            cursor += len;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pairs every send of every rank with exactly one matching recv:
    /// same stage, symmetric peers, same element count.
    fn sends_match_recvs(per_rank: &[Vec<Entry>]) {
        let mut sends: Vec<(usize, usize, usize, usize)> = Vec::new();
        let mut recvs: Vec<(usize, usize, usize, usize)> = Vec::new();
        for (rank, entries) in per_rank.iter().enumerate() {
            for e in entries {
                if !e.send.is_empty() {
                    sends.push((rank, e.peer, e.stage, e.send.len()));
                }
                if !e.recv.is_empty() {
                    recvs.push((e.peer, rank, e.stage, e.recv.len()));
                }
            }
        }
        sends.sort_unstable();
        recvs.sort_unstable();
        assert_eq!(sends, recvs, "every send needs exactly one matching recv");
    }

    #[test]
    fn ring_schedules_pair_up() {
        for n in 2..=8 {
            for elems in [1usize, 7, 64] {
                let per_rank: Vec<Vec<Entry>> =
                    (0..n).map(|r| ring_allreduce(r, n, elems)).collect();
                sends_match_recvs(&per_rank);
            }
        }
    }

    #[test]
    fn halving_doubling_schedules_pair_up() {
        // Non-powers-of-two exercise the uneven Bruck rounds.
        for n in 2..=8 {
            for elems in [1usize, 7, 64] {
                let per_rank: Vec<Vec<Entry>> = (0..n)
                    .map(|r| halving_doubling_allreduce(r, n, elems))
                    .collect();
                sends_match_recvs(&per_rank);
            }
        }
    }

    #[test]
    fn broadcast_schedules_pair_up() {
        for algo in BroadcastAlgo::ALL {
            for n in 2..=8 {
                for root in [0, n - 1] {
                    let per_rank: Vec<Vec<Entry>> = (0..n)
                        .map(|r| broadcast_entries(algo, r, n, root, 13))
                        .collect();
                    sends_match_recvs(&per_rank);
                }
            }
        }
    }

    #[test]
    fn broadcast_reaches_every_rank() {
        for algo in BroadcastAlgo::ALL {
            for n in 2..=8 {
                for root in 0..n {
                    for (rank, entries) in (0..n)
                        .map(|r| broadcast_entries(algo, r, n, root, 5))
                        .enumerate()
                    {
                        let recvs = entries.iter().filter(|e| !e.recv.is_empty()).count();
                        let expect = usize::from(rank != root);
                        assert_eq!(recvs, expect, "{algo:?} n={n} root={root} rank={rank}");
                    }
                }
            }
        }
    }

    #[test]
    fn halving_doubling_folds_in_rank_order() {
        // The receives for our own segment must arrive at stage 0 in
        // rank order, seeded by an overwrite from rank 0.
        for n in [3usize, 5, 8] {
            let entries = halving_doubling_allreduce(1, n, 64);
            let folds: Vec<(usize, ApplyMode)> = entries
                .iter()
                .filter(|e| e.stage == 0 && !e.recv.is_empty())
                .map(|e| (e.peer, e.mode))
                .collect();
            assert_eq!(folds.len(), n);
            for (p, (peer, mode)) in folds.iter().enumerate() {
                assert_eq!(*peer, p, "receives in rank order");
                let expect = if p == 0 {
                    ApplyMode::Overwrite
                } else {
                    ApplyMode::Accumulate
                };
                assert_eq!(*mode, expect);
            }
        }
    }

    #[test]
    fn segments_partition_the_element_space() {
        for n in 1..=8 {
            for elems in [0usize, 1, 7, 64] {
                let mut next = 0u32;
                for s in 0..n {
                    let r = segment(elems, n, s);
                    assert_eq!(r.start, next, "contiguous");
                    next = r.end;
                }
                assert_eq!(next as usize, elems, "covers everything");
            }
        }
    }

    #[test]
    fn assemble_groups_by_stage_and_points_deps_backwards() {
        for n in [2usize, 5, 8] {
            for rank in 0..n {
                for entries in [
                    ring_allreduce(rank, n, 100),
                    halving_doubling_allreduce(rank, n, 100),
                ] {
                    let c = assemble(entries, 100, 16);
                    for w in c.sched.groups.windows(2) {
                        assert!(w[0].stage < w[1].stage, "stages strictly increase");
                    }
                    for (i, a) in c.pipe.actions.iter().enumerate() {
                        for &d in &c.pipe.deps[a.deps.start as usize..a.deps.end as usize] {
                            assert!((d as usize) < i, "dep {d} of action {i} points forward");
                        }
                    }
                }
            }
        }
    }
}
