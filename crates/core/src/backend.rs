//! Interchangeable communication backends for distributed aggregation.
//!
//! The trainer computes each layer as `UPDATE(h_local, AGGREGATE(...))`;
//! how the `AGGREGATE` half crosses device boundaries is a pluggable
//! [`CommBackend`]:
//!
//! * [`PlannedBackend`] — the paper's path: SPST-planned allgather of
//!   the vertex-cut halo, local aggregation over the full visible
//!   matrix, reversed-plan gradient scatter. Communication volume is
//!   proportional to the vertex cut.
//! * [`CagnetBackend`] — CAGNET-style 1D/1.5D partitioned SpMM
//!   (Tripathy et al., PAPERS.md): the adjacency is block-partitioned,
//!   aggregation runs as a sequence of dense feature-block broadcasts
//!   interleaved with local sparse-matrix × dense-matrix products, and
//!   no vertex-cut halo is ever materialised. Per-device receive volume
//!   is `O(n·f/c)` regardless of the cut.
//!
//! The offline [`BackendSelector`](dgcl_sim::BackendSelector) prices
//! both on the fluid network model and
//! [`build_comm_info`](crate::comm_info::build_comm_info) records the
//! verdict; every rank reads the same [`CommInfo`], so all ranks agree
//! on the backend with no negotiation round.
//!
//! # Bitwise parity
//!
//! Both backends produce *forward* aggregates bitwise identical to the
//! single-device kernels. For CAGNET this relies on three invariants:
//! ownership is contiguous ascending (block partition), rounds are
//! consumed in ascending fat-block order, and every [`CsrBlock`] keeps
//! its columns in ascending global order — together they make the
//! distributed accumulation a flat left fold in ascending neighbour
//! order, exactly the fold `aggregate_sum` runs. The CAGNET *backward*
//! is bitwise too (prescale-then-transpose-SpMM reproduces the
//! per-edge products of `aggregate_mean_backward` in order); the
//! planned backward folds remote contributions along the SPST tree, so
//! cross-device gradient parity there is tight-tolerance, not bitwise.

use dgcl_gnn::aggregate::{
    aggregate_mean, aggregate_mean_backward, aggregate_sum, aggregate_sum_backward,
};
use dgcl_gnn::AggKind;
use dgcl_sim::backends::contiguous_split;
use dgcl_sim::BackendKind;
use dgcl_tensor::{compute_threads, spmm_csr_dense_into, CsrBlock, Matrix};

use crate::collectives::{BroadcastAlgo, GroupSpec};
use crate::error::RuntimeError;
use crate::fabric::{expect_payload, MsgKey};
use crate::runtime::{DeviceHandle, ExecStrategy};

/// How [`build_comm_info`](crate::comm_info::build_comm_info) picks the
/// aggregation backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendPolicy {
    /// Price both backends with the offline
    /// [`BackendSelector`](dgcl_sim::BackendSelector) and take the
    /// cheaper one.
    Auto,
    /// Use this backend unconditionally (single-device clusters still
    /// fall back to planned — there is nothing to communicate).
    Fixed(BackendKind),
}

/// One side of the aggregation exchange: everything the trainer needs
/// from a backend is the distributed aggregate (forward) and its
/// adjoint (backward). Implementations must be *op-aligned*: every rank
/// calling the same method in lockstep bumps its op counter the same
/// number of times, so collectives before and after the exchange stay
/// matched.
pub trait CommBackend {
    /// Stable display name.
    fn name(&self) -> &'static str;

    /// The distributed aggregate over the full graph: row `i` of the
    /// result is `AGG({ h_u | u ∈ N(v_i) })` for this device's `i`-th
    /// owned vertex, where `h` is the distributed matrix whose local
    /// slice is `h_local`.
    ///
    /// # Errors
    ///
    /// Any [`RuntimeError`]; errors poison the fabric so peers unwind.
    fn agg_forward(
        &self,
        dev: &DeviceHandle<'_>,
        h_local: &Matrix,
        kind: AggKind,
    ) -> Result<Matrix, RuntimeError>;

    /// The adjoint of [`CommBackend::agg_forward`]: takes the gradient
    /// with respect to this device's aggregate rows and returns the
    /// gradient with respect to its owned embedding rows, with every
    /// remote consumer's contribution folded in.
    ///
    /// # Errors
    ///
    /// Any [`RuntimeError`]; errors poison the fabric so peers unwind.
    fn agg_backward(
        &self,
        dev: &DeviceHandle<'_>,
        grad_agg: &Matrix,
        kind: AggKind,
    ) -> Result<Matrix, RuntimeError>;

    /// Assembles the full value matrix for a mini-batch row list from
    /// its per-rank owners (the sampled trainer's feature fetch and
    /// inter-layer reassembly). The default is backend-independent — a
    /// raw op-aligned pairwise exchange — but a backend may override it
    /// to route batch rows through its own machinery.
    ///
    /// # Errors
    ///
    /// Any [`RuntimeError`]; errors poison the fabric so peers unwind.
    fn fetch_rows(
        &self,
        dev: &DeviceHandle<'_>,
        plan: &crate::sampling::GatherPlan,
    ) -> Result<Matrix, RuntimeError> {
        dev.exchange_rows(plan)
    }

    /// The adjoint of [`CommBackend::fetch_rows`]: reduces per-row
    /// gradient contributions back to the rows' owners and returns this
    /// rank's reduced owned rows.
    ///
    /// # Errors
    ///
    /// Any [`RuntimeError`]; errors poison the fabric so peers unwind.
    fn push_rows(
        &self,
        dev: &DeviceHandle<'_>,
        contrib: &Matrix,
        rows: &[dgcl_graph::VertexId],
        partition: &[u32],
    ) -> Result<Matrix, RuntimeError> {
        dev.reduce_rows(contrib, rows, partition)
    }
}

/// The backend matching `kind`, with planned paths driven by
/// `strategy`.
pub fn backend_for(kind: BackendKind, strategy: ExecStrategy) -> Box<dyn CommBackend> {
    match kind {
        BackendKind::Planned => Box::new(PlannedBackend { strategy }),
        BackendKind::Cagnet { replication } => Box::new(CagnetBackend { replication }),
    }
}

/// The SPST-planned backend: allgather the vertex-cut halo, aggregate
/// locally, scatter gradients back along the reversed plan.
#[derive(Debug, Clone, Copy)]
pub struct PlannedBackend {
    /// Which gather/scatter executor to run.
    pub strategy: ExecStrategy,
}

impl CommBackend for PlannedBackend {
    fn name(&self) -> &'static str {
        "planned"
    }

    fn agg_forward(
        &self,
        dev: &DeviceHandle<'_>,
        h_local: &Matrix,
        kind: AggKind,
    ) -> Result<Matrix, RuntimeError> {
        let lg = dev.local_graph();
        let full = dev.graph_allgather_with(self.strategy, h_local)?;
        Ok(match kind {
            AggKind::Sum => aggregate_sum(&lg.graph, &full, lg.num_local),
            AggKind::Mean => aggregate_mean(&lg.graph, &full, lg.num_local),
        })
    }

    fn agg_backward(
        &self,
        dev: &DeviceHandle<'_>,
        grad_agg: &Matrix,
        kind: AggKind,
    ) -> Result<Matrix, RuntimeError> {
        let lg = dev.local_graph();
        let grad_full = match kind {
            AggKind::Sum => aggregate_sum_backward(&lg.graph, grad_agg, lg.num_total()),
            AggKind::Mean => aggregate_mean_backward(&lg.graph, grad_agg, lg.num_total()),
        };
        dev.scatter_backward_with(self.strategy, &grad_full)
    }
}

/// The CAGNET backend: 1D (`replication == 1`) or 1.5D (`> 1`)
/// block-partitioned SpMM aggregation over the precomputed
/// [`CagnetBlocks`](dgcl_partition::CagnetBlocks) in
/// [`CommInfo`](crate::comm_info::CommInfo).
#[derive(Debug, Clone, Copy)]
pub struct CagnetBackend {
    /// Replication factor `c`; must divide the device count.
    pub replication: usize,
}

impl CommBackend for CagnetBackend {
    fn name(&self) -> &'static str {
        "cagnet"
    }

    fn agg_forward(
        &self,
        dev: &DeviceHandle<'_>,
        h_local: &Matrix,
        kind: AggKind,
    ) -> Result<Matrix, RuntimeError> {
        let mut out = cagnet_exchange(dev, h_local, self.replication, false)?;
        if kind == AggKind::Mean {
            // Same post-scale as `aggregate_mean`: untouched at deg ≤ 1,
            // one multiply by the reciprocal otherwise.
            let degrees = dev.comm_info().cagnet.degrees(dev.rank);
            for (i, &deg) in degrees.iter().enumerate() {
                if deg > 1 {
                    let inv = 1.0 / deg as f32;
                    for o in out.row_mut(i) {
                        *o *= inv;
                    }
                }
            }
        }
        Ok(out)
    }

    fn agg_backward(
        &self,
        dev: &DeviceHandle<'_>,
        grad_agg: &Matrix,
        kind: AggKind,
    ) -> Result<Matrix, RuntimeError> {
        match kind {
            AggKind::Sum => cagnet_exchange(dev, grad_agg, self.replication, true),
            AggKind::Mean => {
                // Prescale each gradient row by its vertex's reciprocal
                // degree once, then run the pure-sum transpose SpMM.
                // `aggregate_mean_backward` computes `grad[v] * (1/deg_v)`
                // per edge; scaling the row once yields the identical
                // product for every edge of `v` (and `x * 1.0 == x`
                // bitwise at deg 1), so the exchange stays bitwise equal
                // to the single-device kernel.
                let degrees = dev.comm_info().cagnet.degrees(dev.rank);
                let mut scaled = grad_agg.clone();
                for (i, &deg) in degrees.iter().enumerate() {
                    if deg > 0 {
                        let inv = 1.0 / deg as f32;
                        for o in scaled.row_mut(i) {
                            *o *= inv;
                        }
                    }
                }
                cagnet_exchange(dev, &scaled, self.replication, true)
            }
        }
    }
}

/// The sparse blocks a `(mate row, round column)` product reads:
/// forward aggregation multiplies the adjacency, backward its
/// transpose.
fn pick_block<'a>(dev: &DeviceHandle<'a>, transpose: bool, d: usize, t: usize) -> &'a CsrBlock {
    let cb = &dev.comm_info().cagnet;
    if transpose {
        cb.tblock(d, t)
    } else {
        cb.block(d, t)
    }
}

/// The shared CAGNET engine: computes `A · H` (or `Aᵀ · H` with
/// `transpose`) for the distributed sparse `A` and the distributed
/// dense `H` whose local slice is `input`, returning this device's
/// owned output rows. `c == 1` is the 1D algorithm (p broadcast rounds,
/// SpMM inline); `c > 1` the 1.5D one (fat-row assembly, column-group
/// broadcast waves with deferred SpMM, a sequential fat-panel chain
/// combine, and a thin return).
///
/// Every rank performs the identical op-counter sequence: `p` ops in
/// 1D; `c + ceil(r/c) + (c − 1) + 1` ops in 1.5D, with columns short on
/// rounds padding via [`DeviceHandle::align_op`].
fn cagnet_exchange(
    dev: &DeviceHandle<'_>,
    input: &Matrix,
    c: usize,
    transpose: bool,
) -> Result<Matrix, RuntimeError> {
    let info = dev.comm_info();
    let p = info.num_devices();
    let rank = dev.rank;
    assert!(
        c >= 1 && p.is_multiple_of(c),
        "replication must divide devices"
    );
    let len = |m: usize| info.pg.local[m].len();
    let num_local = len(rank);
    let cols = input.cols();
    assert_eq!(input.rows(), num_local, "expected owned rows only");
    let threads = compute_threads();
    if p == 1 {
        let mut out = Matrix::zeros(num_local, cols);
        spmm_csr_dense_into(
            pick_block(dev, transpose, 0, 0),
            input.as_slice(),
            cols,
            out.as_mut_slice(),
            threads,
        );
        return Ok(out);
    }
    if c == 1 {
        // 1D: p rounds; round t broadcasts t's thin panel to everyone,
        // and each device multiplies its (rank, t) block immediately.
        // Ascending t == ascending global column order, so the
        // accumulation is the single-device fold.
        let group = GroupSpec::all(p);
        let mut out = Matrix::zeros(num_local, cols);
        for t in 0..p {
            let buf = if t == rank {
                input.clone()
            } else {
                Matrix::zeros(len(t), cols)
            };
            let buf = dev.broadcast_group(BroadcastAlgo::Flat, group, t, buf)?;
            spmm_csr_dense_into(
                pick_block(dev, transpose, rank, t),
                buf.as_slice(),
                cols,
                out.as_mut_slice(),
                threads,
            );
        }
        return Ok(out);
    }
    // 1.5D over the r × c grid: rank = fat_row * c + col.
    let r = p / c;
    let row_f = rank / c;
    let col_j = rank % c;
    let fat_len = |f: usize| (f * c..(f + 1) * c).map(len).sum::<usize>();
    let my_fat = fat_len(row_f);
    // Assembly: c in-row broadcasts build every member's fat input
    // panel (the stacked thin panels of its fat row). Grid rows are
    // disjoint groups, so all fat rows assemble concurrently.
    let row_group = GroupSpec {
        offset: row_f * c,
        stride: 1,
        len: c,
    };
    let mut fat_in = Matrix::zeros(my_fat, cols);
    let mut off = 0usize;
    for q in 0..c {
        let m = row_f * c + q;
        let buf = if m == rank {
            input.clone()
        } else {
            Matrix::zeros(len(m), cols)
        };
        let buf = dev.broadcast_group(BroadcastAlgo::Flat, row_group, q, buf)?;
        fat_in.as_mut_slice()[off * cols..(off + len(m)) * cols].copy_from_slice(buf.as_slice());
        off += len(m);
    }
    // Broadcast waves: column j owns the contiguous round range Q_j;
    // in wave w the rank at (round, j) broadcasts its fat panel down
    // the column. SpMM is deferred — panels are stored so the chain
    // below can fold rounds in ascending order into a *received*
    // running panel (accumulating into a private zero panel first and
    // merging later would associate the sum differently and break
    // bitwise parity).
    let col_group = GroupSpec {
        offset: col_j,
        stride: c,
        len: r,
    };
    let (q_start, q_len) = contiguous_split(r, c, col_j);
    let mut stored: Vec<(usize, Matrix)> = Vec::with_capacity(q_len);
    for w in 0..r.div_ceil(c) {
        if w < q_len {
            let t = q_start + w;
            let buf = if t == row_f {
                fat_in.clone()
            } else {
                Matrix::zeros(fat_len(t), cols)
            };
            let buf = dev.broadcast_group(BroadcastAlgo::Flat, col_group, t, buf)?;
            stored.push((t, buf));
        } else {
            dev.align_op()?;
        }
    }
    // One stored round: multiply every (mate, thin-column) block pair
    // in ascending order into the running fat output panel.
    let accumulate = |z: &mut Matrix, t: usize, fat_h: &Matrix| {
        let mut zoff = 0usize;
        for m in row_f * c..(row_f + 1) * c {
            let m_rows = len(m);
            let mut hoff = 0usize;
            for tt in t * c..(t + 1) * c {
                let tt_rows = len(tt);
                spmm_csr_dense_into(
                    pick_block(dev, transpose, m, tt),
                    &fat_h.as_slice()[hoff * cols..(hoff + tt_rows) * cols],
                    cols,
                    &mut z.as_mut_slice()[zoff * cols..(zoff + m_rows) * cols],
                    threads,
                );
                hoff += tt_rows;
            }
            zoff += m_rows;
        }
    };
    // Chain combine: the fat output panel starts as zeros at column 0
    // (the seed `aggregate_sum` uses) and hops rightward, each column
    // folding its stored rounds in before forwarding. Q_j ranges are
    // ascending in j, so the overall fold order is ascending rounds.
    let mut z = Matrix::zeros(my_fat, cols);
    for hop in 0..c - 1 {
        if col_j == hop {
            for (t, fat_h) in &stored {
                accumulate(&mut z, *t, fat_h);
            }
            let res = dev.begin_op().and_then(|op| {
                let key: MsgKey = (op, 0, 0, 0);
                dev.fabric().wait_ready(rank + 1, op, rank)?;
                dev.fabric()
                    .send(rank, rank + 1, key, z.as_slice().to_vec())
            });
            dev.poison_on_err(res)?;
        } else if col_j == hop + 1 {
            let res = dev.begin_op().and_then(|op| {
                let key: MsgKey = (op, 0, 0, 0);
                let payload = dev.fabric().recv(rank - 1, rank, key)?;
                expect_payload(rank, payload.len(), my_fat * cols, key)?;
                Ok(payload)
            });
            z = Matrix::from_vec(my_fat, cols, dev.poison_on_err(res)?);
        } else {
            dev.align_op()?;
        }
    }
    if col_j == c - 1 {
        for (t, fat_h) in &stored {
            accumulate(&mut z, *t, fat_h);
        }
    }
    // Return: the chain tail owns the finished fat panel and hands each
    // grid-row mate its thin slice.
    if col_j == c - 1 {
        let res = dev.begin_op().and_then(|op| {
            let key: MsgKey = (op, 0, 0, 0);
            let mut mine = Matrix::zeros(num_local, cols);
            let mut off = 0usize;
            for q in 0..c {
                let m = row_f * c + q;
                let slice = &z.as_slice()[off * cols..(off + len(m)) * cols];
                if m == rank {
                    mine.as_mut_slice().copy_from_slice(slice);
                } else {
                    dev.fabric().wait_ready(m, op, rank)?;
                    dev.fabric().send(rank, m, key, slice.to_vec())?;
                }
                off += len(m);
            }
            Ok(mine)
        });
        dev.poison_on_err(res)
    } else {
        let res = dev.begin_op().and_then(|op| {
            let key: MsgKey = (op, 0, 0, 0);
            let tail = row_f * c + c - 1;
            let payload = dev.fabric().recv(tail, rank, key)?;
            expect_payload(rank, payload.len(), num_local * cols, key)?;
            Ok(Matrix::from_vec(num_local, cols, payload))
        });
        dev.poison_on_err(res)
    }
}
