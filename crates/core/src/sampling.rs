//! Mini-batch sampled training: distributed execution of the
//! [`dgcl_graph::sample`] block chain.
//!
//! Full-batch training moves every remote embedding every epoch; sampled
//! training (DistDGL, PAPERS.md) moves only the rows a batch's fanout-
//! bounded blocks actually reference. The pieces here:
//!
//! * [`SamplingConfig`] — batch size, per-layer fanouts, seed, prefetch.
//! * [`GatherPlan`] + row exchange executors — the batch-sized analogue
//!   of the graph allgather: every rank contributes the block rows it
//!   owns and assembles the full per-batch source matrix (forward), or
//!   reduces per-row gradient contributions back to the owners
//!   (backward). Both run over the raw fabric with op-aligned keys, so
//!   they compose with the poison protocol and the fault injector.
//! * Device bodies called by the trainer: the **block path** (finite
//!   fanouts, compact per-batch compute, optional [`OverlapWorker`]
//!   prefetch of batch `k+1`'s features while batch `k` computes) and
//!   the **exact path** (all fanouts ∞): full-neighborhood forward with
//!   the loss masked to the batch. With one batch covering every vertex
//!   the exact path is *bitwise identical* to full-batch training — the
//!   parity criterion the test suite enforces.
//!
//! Determinism: samples are pure functions of `(seed, epoch, batch)`, so
//! every rank reconstructs every peer's blocks without communication;
//! row exchanges assemble and reduce in ascending rank order; and resumed
//! runs replay the same batches from the checkpoint epoch.

use dgcl_gnn::AggKind;
use dgcl_graph::khop::GraphError;
use dgcl_graph::sample::{round_seed, seed_batches, BlockPool, LayerBlock};
use dgcl_graph::{CsrGraph, VertexId};
use dgcl_tensor::Matrix;

use crate::backend::CommBackend;
use crate::error::RuntimeError;
use crate::fabric::{expect_payload, Fabric, MsgKey};
use crate::featcache::{ClusterCache, HaloGatherCtx};
use crate::overlap::Pending;
use crate::runtime::DeviceHandle;
use crate::trainer::{EpochCtx, TrainConfig};

/// How the trainer samples mini-batches. Attach to
/// [`TrainConfig::sampling`] to switch the distributed trainer from
/// full-batch epochs to sampled mini-batch epochs.
#[derive(Debug, Clone)]
pub struct SamplingConfig {
    /// Seeds per mini-batch; `0` means one batch of the whole seed set.
    pub batch_size: usize,
    /// Per-layer fanout, input-closest layer first; `None` = ∞ (the
    /// full neighborhood). Length must equal the network's layer count.
    pub fanouts: Vec<Option<usize>>,
    /// Seed for batch shuffling and neighbor draws; identical across
    /// ranks by construction (it lives in the shared config).
    pub seed: u64,
    /// Prefetch the next batch's input-layer feature rows on the
    /// [`crate::OverlapWorker`] while the current batch computes
    /// (block path only).
    pub prefetch: bool,
    /// The training seed set; `None` means every vertex. Out-of-range
    /// ids surface as a typed [`RuntimeError::Protocol`] through
    /// `run_cluster`, never as a rank-thread abort.
    pub train_vertices: Option<Vec<VertexId>>,
}

impl SamplingConfig {
    /// A sampled config with the given batch size and per-layer fanouts,
    /// a fixed seed and prefetch enabled.
    pub fn new(batch_size: usize, fanouts: Vec<Option<usize>>) -> Self {
        Self {
            batch_size,
            fanouts,
            seed: 0x5EED,
            prefetch: true,
            train_vertices: None,
        }
    }

    /// An exact (fanout = ∞ on every layer) config: mini-batched in the
    /// loss only, reproducing full-batch numerics when one batch covers
    /// the whole seed set.
    pub fn exact(batch_size: usize, layers: usize) -> Self {
        Self::new(batch_size, vec![None; layers])
    }

    /// Whether every fanout is ∞ (routes to the exact masked path).
    pub(crate) fn is_exact(&self) -> bool {
        self.fanouts.iter().all(Option::is_none)
    }
}

/// Maps a sampler [`GraphError`] onto the runtime's typed error space so
/// a bad batch unwinds through the poison protocol like any other
/// protocol violation.
pub(crate) fn graph_err(rank: usize, e: &GraphError) -> RuntimeError {
    RuntimeError::Protocol {
        rank,
        detail: format!("sampler: {e}"),
    }
}

/// One rank's view of a batch row exchange: assemble the matrix for a
/// global row list from the per-rank owners. Every rank builds the same
/// structure from the shared block chain, partition and cache sets, so
/// the sends and receives pair up without negotiation.
///
/// Two volume optimisations live here:
///
/// * **Dedup** — repeated row indices in the request list cross the
///   wire once; every occurrence is filled from the single transferred
///   copy.
/// * **Feature cache** — rows resident in the requester's
///   [`ClusterCache`] never cross the wire at all: their values are
///   embedded in the plan at build time (so the plan stays
///   self-contained on the [`crate::OverlapWorker`]), and senders skip
///   them because cache sets are shared knowledge.
#[derive(Debug)]
pub struct GatherPlan {
    out_rows: usize,
    cols: usize,
    /// This rank's unique owned request rows, ascending global order.
    own: Matrix,
    /// `(own row, output position)` per occurrence in the request list.
    own_place: Vec<(u32, u32)>,
    /// Ascending peers and the `own` row indices each receives (rows in
    /// the peer's cache are omitted; empty sends are dropped).
    sends: Vec<(usize, Vec<usize>)>,
    /// Ascending contributing peers: unique wire row count and
    /// `(wire row, output position)` per occurrence.
    recvs: Vec<RecvEntry>,
    /// Cache-served values copied out of this rank's cache at build
    /// time, with `(cached row, output position)` placements.
    cached: Matrix,
    cached_place: Vec<(u32, u32)>,
}

/// `(peer, unique wire rows, (wire row, output position) placements)`.
type RecvEntry = (usize, usize, Vec<(u32, u32)>);

/// Where one unique requested row comes from during assembly.
enum RowSource {
    Own(u32),
    Cached(u32),
    Wire { peer: u32, row: u32 },
}

impl GatherPlan {
    /// Builds the uncached plan for assembling `rows` (global ids; any
    /// order, duplicates allowed — each unique row travels once).
    /// `have` lists the global ids backing `values`' rows (ascending);
    /// it must contain every row of `rows` this rank owns.
    pub fn build(
        rows: &[VertexId],
        partition: &[u32],
        num_parts: usize,
        rank: usize,
        have: &[VertexId],
        values: &Matrix,
    ) -> Self {
        Self::build_inner(rows, partition, num_parts, rank, have, values, None)
    }

    /// [`GatherPlan::build`] against the cluster's feature cache: rows
    /// in this rank's cache are served locally (values embedded in the
    /// plan), and sends skip rows resident in each receiver's cache.
    /// Bumps this rank's [`CacheStats`](crate::featcache::CacheStats)
    /// with the exchange's unique hit/miss rows.
    pub fn build_cached(
        rows: &[VertexId],
        partition: &[u32],
        num_parts: usize,
        rank: usize,
        have: &[VertexId],
        values: &Matrix,
        cache: &ClusterCache,
    ) -> Self {
        Self::build_inner(rows, partition, num_parts, rank, have, values, Some(cache))
    }

    fn build_inner(
        rows: &[VertexId],
        partition: &[u32],
        num_parts: usize,
        rank: usize,
        have: &[VertexId],
        values: &Matrix,
        cache: Option<&ClusterCache>,
    ) -> Self {
        let cols = values.cols();
        // Unique request rows, ascending: the dedup that makes each
        // remote row cross the wire once per exchange.
        let mut uniq: Vec<VertexId> = rows.to_vec();
        uniq.sort_unstable();
        uniq.dedup();
        let mut by_part: Vec<Vec<u32>> = vec![Vec::new(); num_parts];
        for (u, &v) in uniq.iter().enumerate() {
            by_part[partition[v as usize] as usize].push(u as u32);
        }
        // Resolve every unique row to its assembly source. Senders and
        // receivers agree because `uniq`, the partition and the cache
        // sets are all shared knowledge.
        let mut source: Vec<Option<RowSource>> = (0..uniq.len()).map(|_| None).collect();
        let own_idx: Vec<usize> = by_part[rank]
            .iter()
            .map(|&u| {
                have.binary_search(&uniq[u as usize])
                    .expect("owner holds its rows")
            })
            .collect();
        for (r, &u) in by_part[rank].iter().enumerate() {
            source[u as usize] = Some(RowSource::Own(r as u32));
        }
        let own = values.gather_rows(&own_idx);
        let mine = cache.map(|c| &c.caches[rank]);
        let mut cached_rows: Vec<usize> = Vec::new();
        let mut recvs: Vec<RecvEntry> = Vec::new();
        for (peer, part) in by_part.iter().enumerate() {
            if peer == rank {
                continue;
            }
            let mut wire = 0u32;
            for &u in part {
                let v = uniq[u as usize];
                if let Some(ci) = mine.and_then(|m| m.lookup(v)) {
                    source[u as usize] = Some(RowSource::Cached(cached_rows.len() as u32));
                    cached_rows.push(ci);
                } else {
                    source[u as usize] = Some(RowSource::Wire {
                        peer: peer as u32,
                        row: wire,
                    });
                    wire += 1;
                }
            }
            if wire > 0 {
                recvs.push((peer, wire as usize, Vec::new()));
            }
        }
        let cached = match mine {
            Some(m) if !cached_rows.is_empty() => m.rows.gather_rows(&cached_rows),
            _ => Matrix::zeros(0, cols),
        };
        if let Some(m) = mine {
            let fetched: usize = recvs.iter().map(|(_, n, _)| *n).sum();
            m.stats
                .record(cached_rows.len() as u64, fetched as u64, cols);
        }
        // Placements: one entry per occurrence in the original list.
        let mut own_place = Vec::new();
        let mut cached_place = Vec::new();
        for (i, &v) in rows.iter().enumerate() {
            let u = uniq.binary_search(&v).expect("uniq covers rows");
            match source[u].as_ref().expect("every unique row resolved") {
                RowSource::Own(r) => own_place.push((*r, i as u32)),
                RowSource::Cached(r) => cached_place.push((*r, i as u32)),
                RowSource::Wire { peer, row } => {
                    let entry = recvs
                        .iter_mut()
                        .find(|(p, _, _)| *p == *peer as usize)
                        .expect("contributing peer recorded");
                    entry.2.push((*row, i as u32));
                }
            }
        }
        // Sends: each peer gets this rank's unique owned rows minus the
        // peer's cached set, in ascending global order (the order the
        // peer's wire indices assume).
        let sends: Vec<(usize, Vec<usize>)> = (0..num_parts)
            .filter(|&peer| peer != rank)
            .filter_map(|peer| {
                let out: Vec<usize> = by_part[rank]
                    .iter()
                    .enumerate()
                    .filter(|&(_, &u)| match cache {
                        Some(c) => !c.contains(peer, uniq[u as usize]),
                        None => true,
                    })
                    .map(|(r, _)| r)
                    .collect();
                (!out.is_empty()).then_some((peer, out))
            })
            .collect();
        Self {
            out_rows: rows.len(),
            cols,
            own,
            own_place,
            sends,
            recvs,
            cached,
            cached_place,
        }
    }
}

/// Adds `m` into `acc` row-wise (shapes must match).
fn add_into(acc: &mut Matrix, m: &Matrix) {
    for r in 0..acc.rows() {
        for (a, &b) in acc.row_mut(r).iter_mut().zip(m.row(r)) {
            *a += b;
        }
    }
}

/// Executes a [`GatherPlan`] under a pre-assigned op: posts each peer
/// its filtered unique owned rows, then assembles the full matrix from
/// its own rows, the cache-served rows embedded in the plan, and each
/// contributing peer's wire block, receives drained in ascending rank
/// order. Runs on the main thread or on the [`crate::OverlapWorker`]
/// (prefetch) — op-tagged keys keep the two from colliding.
pub(crate) fn execute_gather(
    fabric: &Fabric,
    rank: usize,
    op: u64,
    plan: &GatherPlan,
) -> Result<Matrix, RuntimeError> {
    let key: MsgKey = (op, 0, 0, 0);
    for (peer, idx) in &plan.sends {
        fabric.wait_ready(*peer, op, rank)?;
        let payload = if idx.len() == plan.own.rows() {
            plan.own.as_slice().to_vec()
        } else {
            plan.own.gather_rows(idx).into_vec()
        };
        fabric.send(rank, *peer, key, payload)?;
    }
    let mut out = Matrix::zeros(plan.out_rows, plan.cols);
    for &(r, p) in &plan.own_place {
        out.set_row(p as usize, plan.own.row(r as usize));
    }
    for &(r, p) in &plan.cached_place {
        out.set_row(p as usize, plan.cached.row(r as usize));
    }
    for (peer, wire_rows, place) in &plan.recvs {
        let payload = fabric.recv(*peer, rank, key)?;
        expect_payload(rank, payload.len(), wire_rows * plan.cols, key)?;
        let m = Matrix::from_vec(*wire_rows, plan.cols, payload);
        for &(r, p) in place {
            out.set_row(p as usize, m.row(r as usize));
        }
    }
    Ok(out)
}

/// The adjoint of [`execute_gather`]: every rank holds a dense gradient
/// contribution over all of `rows`; each owner receives and sums the
/// slices for its rows, in ascending rank order (this rank's own slice
/// folded at its rank position), so the reduction is deterministic.
/// Returns this rank's reduced rows (its owned subset of `rows`,
/// ascending).
pub(crate) fn execute_reduce(
    fabric: &Fabric,
    rank: usize,
    op: u64,
    contrib: &Matrix,
    rows: &[VertexId],
    partition: &[u32],
) -> Result<Matrix, RuntimeError> {
    debug_assert_eq!(contrib.rows(), rows.len());
    let key: MsgKey = (op, 0, 0, 0);
    let num_parts = fabric.num_devices();
    let cols = contrib.cols();
    let mut positions: Vec<Vec<usize>> = vec![Vec::new(); num_parts];
    for (i, &v) in rows.iter().enumerate() {
        positions[partition[v as usize] as usize].push(i);
    }
    for (peer, pos) in positions.iter().enumerate() {
        if peer == rank || pos.is_empty() {
            continue;
        }
        let slice = contrib.gather_rows(pos);
        fabric.wait_ready(peer, op, rank)?;
        fabric.send(rank, peer, key, slice.into_vec())?;
    }
    let own_pos = &positions[rank];
    let mut out = Matrix::zeros(own_pos.len(), cols);
    for peer in 0..num_parts {
        if peer == rank {
            add_into(&mut out, &contrib.gather_rows(own_pos));
        } else if !own_pos.is_empty() {
            let payload = fabric.recv(peer, rank, key)?;
            expect_payload(rank, payload.len(), own_pos.len() * cols, key)?;
            add_into(&mut out, &Matrix::from_vec(own_pos.len(), cols, payload));
        }
    }
    Ok(out)
}

/// Aggregates the sampled neighborhoods of this rank's block rows from
/// the assembled source matrix: the mini-batch analogue of
/// [`dgcl_gnn::aggregate::aggregate_sum`] / `aggregate_mean`, with the
/// *sampled* degree as the mean divisor (degree 1 is left undivided,
/// mirroring the full-graph kernel).
pub(crate) fn block_aggregate(
    block: &LayerBlock,
    rows_mine: &[usize],
    h_src: &Matrix,
    kind: AggKind,
) -> Matrix {
    let cols = h_src.cols();
    let mut out = Matrix::zeros(rows_mine.len(), cols);
    for (j, &i) in rows_mine.iter().enumerate() {
        let targets = block.row(i);
        let row = out.row_mut(j);
        for &t in targets {
            for (o, &x) in row.iter_mut().zip(h_src.row(t as usize)) {
                *o += x;
            }
        }
        if kind == AggKind::Mean && targets.len() > 1 {
            let inv = 1.0 / targets.len() as f32;
            for o in row.iter_mut() {
                *o *= inv;
            }
        }
    }
    out
}

/// The adjoint of [`block_aggregate`]: scatters this rank's aggregate
/// gradients back over the block edges into a dense gradient over the
/// full source set (zeros elsewhere), ready for [`execute_reduce`].
pub(crate) fn block_scatter_grad(
    block: &LayerBlock,
    rows_mine: &[usize],
    grad_agg: &Matrix,
    kind: AggKind,
) -> Matrix {
    let cols = grad_agg.cols();
    let mut out = Matrix::zeros(block.num_src(), cols);
    for (j, &i) in rows_mine.iter().enumerate() {
        let targets = block.row(i);
        let scale = if kind == AggKind::Mean && targets.len() > 1 {
            1.0 / targets.len() as f32
        } else {
            1.0
        };
        for &t in targets {
            for (o, &g) in out.row_mut(t as usize).iter_mut().zip(grad_agg.row(j)) {
                *o += scale * g;
            }
        }
    }
    out
}

/// The training seed set: the configured subset, or every vertex.
fn train_set(scfg: &SamplingConfig, graph: &CsrGraph) -> Vec<VertexId> {
    match &scfg.train_vertices {
        Some(v) => v.clone(),
        None => (0..graph.num_vertices() as VertexId).collect(),
    }
}

/// The barriered full-graph forward shared by both sampled bodies' final
/// inference pass (and the exact path's per-batch forward): per layer,
/// the backend's aggregate exchange then the local layer. When a layer-0
/// halo context is supplied (planned backend + feature cache), layer 0's
/// exchange routes through the cache instead.
fn full_forward(
    handle: &DeviceHandle<'_>,
    net: &mut dgcl_gnn::GnnNetwork,
    backend: &dyn CommBackend,
    kind: AggKind,
    features: &Matrix,
    l0: Option<&HaloGatherCtx<'_>>,
) -> Result<Matrix, RuntimeError> {
    let mut h = features.clone();
    for (l, layer) in net.layers_mut().iter_mut().enumerate() {
        let agg = match (l, l0) {
            (0, Some(ctx)) => ctx.agg_forward(handle, &h, kind)?,
            _ => backend.agg_forward(handle, &h, kind)?,
        };
        h = layer.forward_agg(&h, agg);
    }
    Ok(h)
}

/// Allreduces parameter gradients plus the scalar batch loss, applies
/// the summed gradients and steps — the per-batch tail shared by both
/// sampled bodies (identical to the full-batch epoch tail).
fn reduce_and_step(
    handle: &DeviceHandle<'_>,
    net: &mut dgcl_gnn::GnnNetwork,
    lr: f32,
    local_loss: f32,
) -> Result<f32, RuntimeError> {
    let mut mats: Vec<Matrix> = net
        .layers()
        .iter()
        .flat_map(|l| l.gradients().into_iter().cloned())
        .collect();
    mats.push(Matrix::full(1, 1, local_loss));
    let reduced = handle.allreduce(mats)?;
    let (loss_mat, grads) = reduced.split_last().expect("loss entry present");
    let mut cursor = 0;
    for layer in net.layers_mut() {
        let count = layer.gradients().len();
        layer.set_gradients(&grads[cursor..cursor + count]);
        cursor += count;
    }
    net.step(lr);
    Ok(loss_mat[(0, 0)])
}

/// The block path: finite fanouts, compact per-batch blocks, row
/// exchanges between layers, gradient row reductions on the way back,
/// and (when configured) the next batch's feature gather prefetched on
/// the overlap worker.
#[allow(clippy::too_many_arguments)]
pub(crate) fn device_body_sampled(
    handle: &DeviceHandle<'_>,
    cfg: &TrainConfig,
    ctx: &EpochCtx<'_>,
    net0: &dgcl_gnn::GnnNetwork,
    scfg: &SamplingConfig,
    graph: &CsrGraph,
    backend: &dyn CommBackend,
    per_device_features: &[Matrix],
    per_device_targets: &[Matrix],
    cache: Option<&ClusterCache>,
    use_halo: bool,
) -> Result<(Vec<f32>, Matrix), RuntimeError> {
    let rank = handle.rank;
    let info = handle.comm_info();
    let partition: &[u32] = &info.pg.partition;
    let num_parts = info.pg.num_parts;
    let owned: &[VertexId] = &info.pg.local[rank];
    let agg_kind = cfg.arch.agg_kind();
    let mut net = net0.clone();
    let num_layers = net.num_layers();
    let seeds = train_set(scfg, graph);
    let worker = scfg.prefetch.then(|| handle.overlap_worker());
    // Layer-0 feature gathers (the only gathers over *raw* features, the
    // immutable rows the cache holds) consult the cache; inter-layer
    // gathers move activations and always build uncached plans.
    let feature_plan = |src: &[VertexId]| match cache {
        Some(c) => GatherPlan::build_cached(
            src,
            partition,
            num_parts,
            rank,
            owned,
            &per_device_features[rank],
            c,
        ),
        None => GatherPlan::build(
            src,
            partition,
            num_parts,
            rank,
            owned,
            &per_device_features[rank],
        ),
    };
    let halo = HaloGatherCtx::build(info, rank, if use_halo { cache } else { None });
    // Per-batch block-chain scratch recycles across batches; with
    // prefetch on, steady state holds two chains' carcasses.
    let mut pool = BlockPool::new();
    let mut losses = Vec::with_capacity(ctx.end_epoch - ctx.start_epoch);
    // Blocks + pending feature gather for the *next* batch, posted while
    // the current batch computes.
    let mut prefetched: Option<(Vec<LayerBlock>, Pending<Matrix>)> = None;
    for epoch in ctx.start_epoch..ctx.end_epoch {
        handle.check_epoch_fault(epoch)?;
        let batches = seed_batches(&seeds, scfg.batch_size, scfg.seed, epoch);
        let mut epoch_loss = 0.0f32;
        for (bi, batch) in batches.iter().enumerate() {
            let (blocks, mut h) = match prefetched.take() {
                Some((blocks, pending)) => (blocks, handle.wait_pending(pending)?),
                None => {
                    let blocks = handle.poison_on_err(
                        pool.sample_blocks(
                            graph,
                            batch,
                            &scfg.fanouts,
                            round_seed(scfg.seed, epoch, bi),
                        )
                        .map_err(|e| graph_err(rank, &e)),
                    )?;
                    let plan = feature_plan(&blocks[0].src);
                    let h = backend.fetch_rows(handle, &plan)?;
                    (blocks, h)
                }
            };
            if let Some(w) = &worker {
                if bi + 1 < batches.len() {
                    let next = handle.poison_on_err(
                        pool.sample_blocks(
                            graph,
                            &batches[bi + 1],
                            &scfg.fanouts,
                            round_seed(scfg.seed, epoch, bi + 1),
                        )
                        .map_err(|e| graph_err(rank, &e)),
                    )?;
                    let plan = feature_plan(&next[0].src);
                    let pending = handle.submit_exchange(w, plan)?;
                    prefetched = Some((next, pending));
                }
            }
            // Forward: each rank computes only the block rows it owns;
            // between layers the owners' outputs reassemble into the next
            // block's full source matrix.
            let mut rows_mine_per_layer: Vec<Vec<usize>> = Vec::with_capacity(num_layers);
            for (l, block) in blocks.iter().enumerate().take(num_layers) {
                let rows_mine: Vec<usize> = (0..block.num_dst())
                    .filter(|&i| partition[block.dst[i] as usize] as usize == rank)
                    .collect();
                let self_pos: Vec<usize> = rows_mine
                    .iter()
                    .map(|&i| block.dst_pos[i] as usize)
                    .collect();
                let h_self = h.gather_rows(&self_pos);
                let agg = block_aggregate(block, &rows_mine, &h, agg_kind);
                let h_mine = net.layers_mut()[l].forward_agg(&h_self, agg);
                if l + 1 < num_layers {
                    let my_dst: Vec<VertexId> = rows_mine.iter().map(|&i| block.dst[i]).collect();
                    let plan =
                        GatherPlan::build(&block.dst, partition, num_parts, rank, &my_dst, &h_mine);
                    h = backend.fetch_rows(handle, &plan)?;
                } else {
                    h = h_mine;
                }
                rows_mine_per_layer.push(rows_mine);
            }
            // Loss over this rank's batch rows. mse is a *sum*, so batch
            // losses add across ranks and across batches.
            let final_block = blocks.last().expect("at least one layer");
            let target_rows: Vec<usize> = rows_mine_per_layer[num_layers - 1]
                .iter()
                .map(|&i| {
                    owned
                        .binary_search(&final_block.dst[i])
                        .expect("dst row is owned")
                })
                .collect();
            let tgt = per_device_targets[rank].gather_rows(&target_rows);
            let diff = h.sub(&tgt);
            let local_loss = 0.5 * diff.norm_sq();
            // Backward: scatter aggregate gradients over the block edges,
            // reduce rows to their owners, fold the self-path locally.
            let mut grad = diff;
            for l in (0..num_layers).rev() {
                let block = &blocks[l];
                let rows_mine = &rows_mine_per_layer[l];
                let (grad_agg, direct) = net.layers_mut()[l].backward_agg(&grad);
                let mut grad_src = block_scatter_grad(block, rows_mine, &grad_agg, agg_kind);
                if let Some(direct) = direct {
                    for (j, &i) in rows_mine.iter().enumerate() {
                        let p = block.dst_pos[i] as usize;
                        for (o, &g) in grad_src.row_mut(p).iter_mut().zip(direct.row(j)) {
                            *o += g;
                        }
                    }
                }
                if l > 0 {
                    // Owners of this block's source rows (= the previous
                    // block's destination rows) collect their gradients.
                    grad = backend.push_rows(handle, &grad_src, &block.src, partition)?;
                }
            }
            epoch_loss += reduce_and_step(handle, &mut net, cfg.lr, local_loss)?;
            pool.recycle(blocks);
        }
        losses.push(epoch_loss);
        ctx.publish(rank, &net, &losses);
    }
    let out = full_forward(
        handle,
        &mut net,
        backend,
        agg_kind,
        &per_device_features[rank],
        halo.as_ref(),
    )?;
    Ok((losses, out))
}

/// The exact path (every fanout ∞): full-neighborhood forward with the
/// loss and its gradient masked to the batch rows. With a single batch
/// covering every seed this is instruction-for-instruction the
/// full-batch barriered epoch — the bitwise parity anchor for the
/// sampled pipeline.
#[allow(clippy::too_many_arguments)]
pub(crate) fn device_body_masked(
    handle: &DeviceHandle<'_>,
    cfg: &TrainConfig,
    ctx: &EpochCtx<'_>,
    net0: &dgcl_gnn::GnnNetwork,
    scfg: &SamplingConfig,
    graph: &CsrGraph,
    backend: &dyn CommBackend,
    per_device_features: &[Matrix],
    per_device_targets: &[Matrix],
    cache: Option<&ClusterCache>,
    use_halo: bool,
) -> Result<(Vec<f32>, Matrix), RuntimeError> {
    let rank = handle.rank;
    let owned: &[VertexId] = &handle.comm_info().pg.local[rank];
    let halo = HaloGatherCtx::build(
        handle.comm_info(),
        rank,
        if use_halo { cache } else { None },
    );
    let agg_kind = cfg.arch.agg_kind();
    let mut net = net0.clone();
    let seeds = train_set(scfg, graph);
    if let Some(&bad) = seeds
        .iter()
        .find(|&&v| (v as usize) >= graph.num_vertices())
    {
        let e = GraphError::SeedOutOfRange {
            seed: bad,
            num_vertices: graph.num_vertices(),
        };
        return handle.poison_on_err(Err(graph_err(rank, &e)));
    }
    let mut losses = Vec::with_capacity(ctx.end_epoch - ctx.start_epoch);
    for epoch in ctx.start_epoch..ctx.end_epoch {
        handle.check_epoch_fault(epoch)?;
        let batches = seed_batches(&seeds, scfg.batch_size, scfg.seed, epoch);
        let mut epoch_loss = 0.0f32;
        for batch in &batches {
            let out = full_forward(
                handle,
                &mut net,
                backend,
                agg_kind,
                &per_device_features[rank],
                halo.as_ref(),
            )?;
            // Masked sum-squared loss: diff rows outside the batch are
            // zeroed *before* the norm, so with a full mask this is
            // exactly `mse_loss` (same element order, same single
            // accumulator) and bitwise parity follows.
            let mut batch_sorted = batch.clone();
            batch_sorted.sort_unstable();
            let mut diff = out.sub(&per_device_targets[rank]);
            for (j, &v) in owned.iter().enumerate() {
                if batch_sorted.binary_search(&v).is_err() {
                    for x in diff.row_mut(j) {
                        *x = 0.0;
                    }
                }
            }
            let local_loss = 0.5 * diff.norm_sq();
            let mut grad = diff;
            for (l, layer) in net.layers_mut().iter_mut().enumerate().rev() {
                let (grad_agg, direct) = layer.backward_agg(&grad);
                if l == 0 && halo.is_some() {
                    // Layer 0's aggregate gradient would flow only into
                    // the raw input features, which don't learn; with
                    // the halo active every rank skips the dead exchange
                    // together, keeping op counters aligned.
                    break;
                }
                let back = backend.agg_backward(handle, &grad_agg, agg_kind)?;
                grad = crate::trainer::fold_direct(back, direct);
            }
            epoch_loss += reduce_and_step(handle, &mut net, cfg.lr, local_loss)?;
        }
        losses.push(epoch_loss);
        ctx.publish(rank, &net, &losses);
    }
    let out = full_forward(
        handle,
        &mut net,
        backend,
        agg_kind,
        &per_device_features[rank],
        halo.as_ref(),
    )?;
    Ok((losses, out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgcl_graph::sample::build_block;
    use dgcl_graph::GraphBuilder;

    fn path5() -> CsrGraph {
        let mut b = GraphBuilder::new(5);
        for v in 0..4 {
            b.add_edge(v, v + 1);
        }
        b.build_symmetric()
    }

    #[test]
    fn block_aggregate_matches_full_kernel_on_full_fanout() {
        // With fanout ∞ over all vertices, the block kernel must agree
        // with the full-graph aggregate (same neighbor order).
        let g = path5();
        let h = Matrix::from_vec(
            5,
            2,
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0],
        );
        let block = build_block(&g, &[0, 1, 2, 3, 4], None, 0, 0).unwrap();
        let all: Vec<usize> = (0..5).collect();
        for kind in [AggKind::Sum, AggKind::Mean] {
            let full = match kind {
                AggKind::Sum => dgcl_gnn::aggregate::aggregate_sum(&g, &h, 5),
                AggKind::Mean => dgcl_gnn::aggregate::aggregate_mean(&g, &h, 5),
            };
            let sampled = block_aggregate(&block, &all, &h, kind);
            assert_eq!(full.max_abs_diff(&sampled), 0.0, "{kind:?}");
        }
    }

    #[test]
    fn scatter_is_the_adjoint_of_aggregate() {
        // <agg(h), g> == <h, scatter(g)> for sum and mean alike.
        let g = path5();
        let block = build_block(&g, &[1, 3], Some(2), 7, 0).unwrap();
        let h = Matrix::from_vec(
            block.num_src(),
            2,
            (0..block.num_src() * 2)
                .map(|i| i as f32 * 0.3 + 1.0)
                .collect(),
        );
        let grad = Matrix::from_vec(2, 2, vec![0.5, -1.0, 2.0, 0.25]);
        for kind in [AggKind::Sum, AggKind::Mean] {
            let agg = block_aggregate(&block, &[0, 1], &h, kind);
            let scat = block_scatter_grad(&block, &[0, 1], &grad, kind);
            let lhs: f32 = agg
                .as_slice()
                .iter()
                .zip(grad.as_slice())
                .map(|(a, b)| a * b)
                .sum();
            let rhs: f32 = h
                .as_slice()
                .iter()
                .zip(scat.as_slice())
                .map(|(a, b)| a * b)
                .sum();
            assert!((lhs - rhs).abs() < 1e-5, "{kind:?}: {lhs} vs {rhs}");
        }
    }

    #[test]
    fn exact_config_is_detected() {
        assert!(SamplingConfig::exact(8, 2).is_exact());
        assert!(!SamplingConfig::new(8, vec![None, Some(3)]).is_exact());
    }

    #[test]
    fn gather_plan_serves_duplicate_rows_from_one_copy() {
        // Request list repeats rows; each unique row is held once in the
        // plan and every occurrence assembles from that single copy.
        let values = Matrix::from_vec(4, 2, (0..8).map(|i| i as f32).collect());
        let have: Vec<VertexId> = vec![0, 1, 2, 3];
        let partition = vec![0u32; 4];
        let rows: Vec<VertexId> = vec![2, 0, 2, 3, 0];
        let plan = GatherPlan::build(&rows, &partition, 1, 0, &have, &values);
        assert_eq!(plan.own.rows(), 3, "unique rows only");
        assert!(plan.sends.is_empty() && plan.recvs.is_empty());
        let fabric = Fabric::new(1);
        let out = execute_gather(&fabric, 0, 0, &plan).unwrap();
        assert_eq!(out.rows(), rows.len());
        for (i, &v) in rows.iter().enumerate() {
            assert_eq!(out.row(i), values.row(v as usize), "occurrence {i}");
        }
    }

    #[test]
    fn gather_plan_sends_mirror_peer_recvs_with_dedup() {
        // Two ranks build plans for the same duplicated request list;
        // the sender's unique row blocks must match the receiver's
        // expected wire counts, and every occurrence gets a placement.
        let values = Matrix::from_vec(4, 1, vec![10.0, 11.0, 12.0, 13.0]);
        let partition = vec![0u32, 0, 1, 1];
        let have0: Vec<VertexId> = vec![0, 1];
        let have1: Vec<VertexId> = vec![2, 3];
        let v0 = values.gather_rows(&[0, 1]);
        let v1 = values.gather_rows(&[2, 3]);
        let rows: Vec<VertexId> = vec![2, 0, 2, 3, 0];
        let p0 = GatherPlan::build(&rows, &partition, 2, 0, &have0, &v0);
        let p1 = GatherPlan::build(&rows, &partition, 2, 1, &have1, &v1);
        // Unique owned rows: rank 0 holds {0}, rank 1 holds {2, 3}.
        assert_eq!(p0.own.rows(), 1);
        assert_eq!(p1.own.rows(), 2);
        assert_eq!(p0.sends, vec![(1, vec![0])]);
        assert_eq!(p1.sends, vec![(0, vec![0, 1])]);
        assert_eq!(p0.recvs.len(), 1);
        let (peer, wire, place) = &p0.recvs[0];
        assert_eq!((*peer, *wire), (1, 2));
        let placed = p0.own_place.len() + p0.cached_place.len() + place.len();
        assert_eq!(placed, rows.len(), "every occurrence placed exactly once");
    }
}
