//! Training checkpoints: capture, serialization and restore.
//!
//! A [`Checkpoint`] is a consistent snapshot of everything training
//! needs to resume: the model parameters, the (stateless-SGD) optimizer
//! state — i.e. nothing beyond the parameters themselves — and the epoch
//! state (completed-epoch count plus loss history). Model weights are
//! identical on every rank after each epoch's gradient allreduce, so
//! rank 0 alone publishes the authoritative snapshot; a crash *during*
//! an epoch fails that epoch's allreduce on every rank, so a published
//! checkpoint always reflects a fully completed epoch.
//!
//! Crucially the snapshot is **partition-independent**: parameters are
//! replicated, not sharded, so a checkpoint taken on an N-GPU partition
//! restores bit-for-bit onto any survivor partition. Remapping after an
//! eviction is rebuilding [`crate::CommInfo`] and re-dispatching the
//! (driver-held, global) features — the checkpoint itself never needs
//! rewriting. See [`crate::recovery`] for the driver loop.
//!
//! Two persistence tiers bound the work lost to a crash:
//!
//! * **in-memory, every epoch** — the [`CheckpointStore`] the driver
//!   shares with the trainer; at most the partial epoch is lost;
//! * **serialized, every `k` epochs** — a [`CheckpointSpec`] writes the
//!   [`Checkpoint::serialize`] bytes to a caller-provided
//!   [`CheckpointSink`]; if the driver's memory is lost too (process
//!   restart), at most `k` epochs are lost.
//!
//! The wire format is hand-rolled (the workspace vendors no serde):
//! little-endian, `f32::to_bits` for floats, so a serialize/deserialize
//! round trip is bitwise exact and resume-from-bytes matches
//! resume-from-memory to the last ULP.

use std::fmt;
use std::sync::{Arc, Mutex};

use dgcl_gnn::GnnNetwork;
use dgcl_tensor::Matrix;

/// Magic + format version prefix of a serialized checkpoint.
const MAGIC: &[u8; 8] = b"DGCLCKP1";

/// A consistent training snapshot after `epochs_done` completed epochs.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Completed epochs: the parameters reflect exactly this many
    /// optimizer steps.
    pub epochs_done: usize,
    /// Per-layer parameter snapshot, in [`GnnNetwork::snapshot_params`]
    /// order (weights then biases per layer).
    pub params: Vec<Vec<Matrix>>,
    /// Global loss of every completed epoch, `losses.len() ==
    /// epochs_done`.
    pub losses: Vec<f32>,
}

impl Checkpoint {
    /// Captures a checkpoint from a network that has completed
    /// `losses.len()` epochs.
    pub fn capture(net: &GnnNetwork, losses: Vec<f32>) -> Self {
        Self {
            epochs_done: losses.len(),
            params: net.snapshot_params(),
            losses,
        }
    }

    /// Restores the parameters into `net` bitwise.
    ///
    /// # Panics
    ///
    /// Panics if the network's layer count or parameter shapes mismatch
    /// the snapshot (resuming onto a different model is a caller bug).
    pub fn restore(&self, net: &mut GnnNetwork) {
        net.load_params(&self.params);
    }

    /// Serializes to the versioned little-endian wire format.
    pub fn serialize(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        put_u64(&mut out, self.epochs_done as u64);
        put_u64(&mut out, self.losses.len() as u64);
        for &l in &self.losses {
            out.extend_from_slice(&l.to_bits().to_le_bytes());
        }
        put_u64(&mut out, self.params.len() as u64);
        for layer in &self.params {
            put_u64(&mut out, layer.len() as u64);
            for m in layer {
                put_u64(&mut out, m.rows() as u64);
                put_u64(&mut out, m.cols() as u64);
                for &x in m.as_slice() {
                    out.extend_from_slice(&x.to_bits().to_le_bytes());
                }
            }
        }
        out
    }

    /// Deserializes bytes produced by [`Checkpoint::serialize`].
    ///
    /// # Errors
    ///
    /// [`CorruptCheckpoint`] on a bad magic, truncation or trailing
    /// garbage — a recovery driver treats that as "no usable
    /// checkpoint", never as a panic.
    pub fn deserialize(bytes: &[u8]) -> Result<Self, CorruptCheckpoint> {
        let mut r = Reader { bytes, pos: 0 };
        let magic = r.take(MAGIC.len())?;
        if magic != MAGIC {
            return Err(CorruptCheckpoint("bad magic".into()));
        }
        let epochs_done = r.u64()? as usize;
        let num_losses = r.u64()? as usize;
        if num_losses != epochs_done {
            return Err(CorruptCheckpoint(format!(
                "{num_losses} losses for {epochs_done} epochs"
            )));
        }
        let mut losses = Vec::with_capacity(num_losses.min(r.remaining() / 4));
        for _ in 0..num_losses {
            losses.push(f32::from_bits(r.u32()?));
        }
        let num_layers = r.u64()? as usize;
        // Clamp every pre-reservation to what the payload could possibly
        // hold (each layer encodes at least its 8-byte param count, each
        // matrix at least its 16-byte dims): a corrupt header claiming
        // billions of entries must not drive a huge allocation before the
        // reads behind it fail.
        let mut params = Vec::with_capacity(num_layers.min(r.remaining() / 8));
        for _ in 0..num_layers {
            let num_params = r.u64()? as usize;
            let mut layer = Vec::with_capacity(num_params.min(r.remaining() / 16));
            for _ in 0..num_params {
                let rows = r.u64()? as usize;
                let cols = r.u64()? as usize;
                let len = rows
                    .checked_mul(cols)
                    .filter(|&len| len * 4 <= r.remaining())
                    .ok_or_else(|| CorruptCheckpoint(format!("{rows}x{cols} matrix overruns")))?;
                let mut data = Vec::with_capacity(len);
                for _ in 0..len {
                    data.push(f32::from_bits(r.u32()?));
                }
                layer.push(Matrix::from_vec(rows, cols, data));
            }
            params.push(layer);
        }
        if r.remaining() != 0 {
            return Err(CorruptCheckpoint(format!(
                "{} trailing bytes",
                r.remaining()
            )));
        }
        Ok(Self {
            epochs_done,
            params,
            losses,
        })
    }
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CorruptCheckpoint> {
        if self.remaining() < n {
            return Err(CorruptCheckpoint(format!(
                "truncated: wanted {n} bytes at {}, have {}",
                self.pos,
                self.remaining()
            )));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u64(&mut self) -> Result<u64, CorruptCheckpoint> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, CorruptCheckpoint> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
}

/// A serialized checkpoint failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorruptCheckpoint(pub String);

impl fmt::Display for CorruptCheckpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "corrupt checkpoint: {}", self.0)
    }
}

impl std::error::Error for CorruptCheckpoint {}

/// Where serialized checkpoints go. Implementations must tolerate
/// concurrent `store`s (rank 0 of successive attempts) and keep at
/// least the most recent snapshot.
pub trait CheckpointSink: Send + Sync {
    /// Persists one serialized checkpoint, superseding earlier ones.
    fn store(&self, bytes: Vec<u8>);

    /// The most recent persisted snapshot, if the sink can read back
    /// (a write-only sink — e.g. an upload — returns `None`, and
    /// recovery falls back to the in-memory store).
    fn load(&self) -> Option<Vec<u8>> {
        None
    }
}

/// An in-process [`CheckpointSink`] keeping the latest snapshot —
/// stands in for a checkpoint file in tests and benches.
#[derive(Debug, Default)]
pub struct MemorySink {
    latest: Mutex<Option<Vec<u8>>>,
    stores: Mutex<usize>,
}

impl MemorySink {
    /// A fresh, empty sink behind an [`Arc`] (the shape every caller
    /// wants).
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// How many snapshots have been stored.
    pub fn stores(&self) -> usize {
        *self.stores.lock().unwrap()
    }
}

impl CheckpointSink for MemorySink {
    fn store(&self, bytes: Vec<u8>) {
        *self.latest.lock().unwrap() = Some(bytes);
        *self.stores.lock().unwrap() += 1;
    }

    fn load(&self) -> Option<Vec<u8>> {
        self.latest.lock().unwrap().clone()
    }
}

/// Serialized-checkpoint cadence: write [`Checkpoint::serialize`] bytes
/// to `sink` whenever `epochs_done` is a multiple of `every`.
#[derive(Clone)]
pub struct CheckpointSpec {
    /// Serialize every this many completed epochs (≥ 1).
    pub every: usize,
    /// Destination for the serialized bytes.
    pub sink: Arc<dyn CheckpointSink>,
}

impl fmt::Debug for CheckpointSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CheckpointSpec")
            .field("every", &self.every)
            .finish_non_exhaustive()
    }
}

/// The in-memory checkpoint store the driver shares with the trainer:
/// rank 0 publishes after every completed epoch; the recovery loop reads
/// the latest on failure. Cheap to clone (an [`Arc`] inside).
#[derive(Debug, Clone, Default)]
pub struct CheckpointStore {
    latest: Arc<Mutex<Option<Checkpoint>>>,
}

impl CheckpointStore {
    /// Publishes a snapshot; keeps the existing one if it is not older
    /// (attempts never regress the epoch counter).
    pub fn publish(&self, ckpt: Checkpoint) {
        let mut latest = self.latest.lock().unwrap();
        if latest
            .as_ref()
            .is_none_or(|cur| cur.epochs_done <= ckpt.epochs_done)
        {
            *latest = Some(ckpt);
        }
    }

    /// The most recently published snapshot.
    pub fn latest(&self) -> Option<Checkpoint> {
        self.latest.lock().unwrap().clone()
    }
}

/// What the trainer does about checkpoints: always publish into the
/// in-memory `store` after each epoch, and serialize on the `spec`
/// cadence when one is given.
#[derive(Debug, Clone, Default)]
pub struct CheckpointConfig {
    /// Per-epoch in-memory store (shared with the recovery driver).
    pub store: CheckpointStore,
    /// Optional serialized tier.
    pub spec: Option<CheckpointSpec>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgcl_gnn::Architecture;

    fn sample() -> Checkpoint {
        let net = GnnNetwork::new(Architecture::Gcn, &[5, 4, 3], 7);
        Checkpoint::capture(&net, vec![1.5, 0.75, 0.5])
    }

    #[test]
    fn serialize_round_trips_bitwise() {
        let c = sample();
        let bytes = c.serialize();
        let back = Checkpoint::deserialize(&bytes).expect("round trip");
        assert_eq!(back, c);
    }

    #[test]
    fn restore_matches_snapshot_bitwise() {
        let c = sample();
        let mut other = GnnNetwork::new(Architecture::Gcn, &[5, 4, 3], 999);
        c.restore(&mut other);
        assert_eq!(other.snapshot_params(), c.params);
    }

    #[test]
    fn rejects_corruption() {
        let c = sample();
        let bytes = c.serialize();
        assert!(Checkpoint::deserialize(&bytes[..bytes.len() - 1]).is_err());
        assert!(Checkpoint::deserialize(b"NOTACKPT").is_err());
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(Checkpoint::deserialize(&trailing).is_err());
        let mut flipped = bytes;
        // Blow up a matrix dimension; the reader must refuse rather
        // than attempt a huge allocation.
        let dim_at = MAGIC.len() + 8 + 8 + 3 * 4 + 8 + 8;
        flipped[dim_at..dim_at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(Checkpoint::deserialize(&flipped).is_err());
    }

    #[test]
    fn huge_count_fields_do_not_drive_allocation() {
        // A corrupt header can claim u64::MAX layers / params / losses.
        // Every pre-reservation must be clamped to what the remaining
        // payload could hold; the parse then fails on truncation instead
        // of aborting on a multi-GiB `Vec::with_capacity`.
        let c = sample();
        let bytes = c.serialize();
        let layers_at = MAGIC.len() + 8 + 8 + 3 * 4; // after losses
        let params_at = layers_at + 8;
        let losses_at = MAGIC.len() + 8;
        let epochs_at = MAGIC.len();
        for at in [losses_at, layers_at, params_at] {
            let mut corrupt = bytes.clone();
            corrupt[at..at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
            assert!(Checkpoint::deserialize(&corrupt).is_err(), "offset {at}");
        }
        // Huge loss count paired with a matching huge epoch count (the
        // equality check would otherwise reject it before the clamp).
        let mut corrupt = bytes.clone();
        corrupt[epochs_at..epochs_at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        corrupt[losses_at..losses_at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(Checkpoint::deserialize(&corrupt).is_err());
    }

    #[test]
    fn truncation_at_every_length_is_an_error() {
        // Cutting the payload at any point must yield CorruptCheckpoint,
        // never a panic or a bogus success.
        let bytes = sample().serialize();
        for cut in 0..bytes.len() {
            assert!(
                Checkpoint::deserialize(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes parsed"
            );
        }
        assert!(Checkpoint::deserialize(&bytes).is_ok());
    }

    #[test]
    fn store_keeps_newest() {
        let store = CheckpointStore::default();
        assert!(store.latest().is_none());
        let newer = sample();
        let older = Checkpoint {
            epochs_done: 1,
            losses: vec![1.5],
            ..newer.clone()
        };
        store.publish(newer.clone());
        store.publish(older);
        assert_eq!(store.latest().unwrap().epochs_done, newer.epochs_done);
    }

    #[test]
    fn memory_sink_loads_latest() {
        let sink = MemorySink::shared();
        assert!(sink.load().is_none());
        sink.store(vec![1]);
        sink.store(vec![2, 3]);
        assert_eq!(sink.load(), Some(vec![2, 3]));
        assert_eq!(sink.stores(), 2);
    }
}
