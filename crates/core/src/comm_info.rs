//! `buildCommInfo`: partitioning, planning and table compilation.

use std::sync::Arc;

use dgcl_graph::CsrGraph;
use dgcl_partition::hierarchical::hierarchical;
use dgcl_partition::simple::block_partition;
use dgcl_partition::{CagnetBlocks, PartitionedGraph};
use dgcl_plan::plan::validate_plan;
use dgcl_plan::{spst_plan_with_config, CommPlan, PlannerStats, SendRecvTables, SpstConfig};
use dgcl_sim::{BackendChoice, BackendKind, BackendSelector};
use dgcl_tensor::Matrix;
use dgcl_topology::Topology;

use crate::backend::BackendPolicy;
use crate::error::RuntimeError;
use crate::featcache::{CachePolicy, FeatureCacheSets};
use crate::pipeline::{self, PipelineSchedule};
use crate::schedule::DeviceSchedule;

/// Options for [`build_comm_info`].
#[derive(Debug, Clone, Copy)]
pub struct BuildOptions {
    /// Seed for partitioning and the SPST vertex shuffle.
    pub seed: u64,
    /// Embedding payload per vertex in bytes, used by the cost model
    /// during planning (the resulting plan is invariant to it, §5.1).
    pub bytes_per_vertex: u64,
    /// Whether the backward tables are split into sub-stages for
    /// non-atomic aggregation (§6.2).
    pub non_atomic: bool,
    /// Rows per chunk for the pipelined collectives. Payloads larger than
    /// this are split into chunk-keyed messages that stream through
    /// relays; `usize::MAX` degenerates to one chunk per payload.
    pub chunk_rows: usize,
    /// How the aggregation backend is chosen. The default pins the
    /// paper's planned path; [`BackendPolicy::Auto`] lets the offline
    /// [`BackendSelector`] take CAGNET when the priced cut is large
    /// enough. Either way [`CommInfo::backend_choice`] records what the
    /// selector would have picked.
    pub backend: BackendPolicy,
    /// Planner configuration. The default is the exact sequential
    /// planner (bit-identical plans, no cache); recovery replans pass
    /// [`SpstConfig::batched`] so the demand-class cache amortises the
    /// survivors' near-identical demands.
    pub spst: SpstConfig,
    /// Hot-vertex remote feature cache policy. The admission ranking is
    /// always computed (it is partition-derived and cheap); this only
    /// sets the default capacity policy training runs under —
    /// [`CachePolicy::Off`] keeps every path uncached, and
    /// `TrainConfig::feature_cache` can override per run.
    pub feature_cache: CachePolicy,
}

impl Default for BuildOptions {
    fn default() -> Self {
        Self {
            seed: 42,
            bytes_per_vertex: 4 * 256,
            non_atomic: true,
            chunk_rows: 64,
            backend: BackendPolicy::Fixed(BackendKind::Planned),
            spst: SpstConfig::default(),
            feature_cache: CachePolicy::Off,
        }
    }
}

/// Everything DGCL derives from a graph and a topology before training
/// starts: the partition, the communication relation, the SPST plan and
/// the per-device execution tables. Built once and reused by every layer
/// of every epoch.
#[derive(Debug, Clone)]
pub struct CommInfo {
    /// The communication topology.
    pub topology: Topology,
    /// Partition, local graphs and communication relation.
    pub pg: PartitionedGraph,
    /// The SPST communication plan.
    pub plan: CommPlan,
    /// Forward (embedding allgather) tables.
    pub forward_tables: SendRecvTables,
    /// Backward (gradient scatter) tables, sub-staged when requested.
    pub backward_tables: SendRecvTables,
    /// Per device: the forward tables compiled to row references
    /// (grouped stages, pre-resolved vertex ids, scratch sizing).
    pub forward_schedules: Vec<DeviceSchedule>,
    /// Per device: the backward tables compiled likewise.
    pub backward_schedules: Vec<DeviceSchedule>,
    /// Per device: the forward schedule chunked into a dependency-driven
    /// pipeline (see [`crate::pipeline`]).
    pub forward_pipelines: Vec<PipelineSchedule>,
    /// Per device: the backward schedule chunked likewise.
    pub backward_pipelines: Vec<PipelineSchedule>,
    /// SPST wall-clock planning time in seconds.
    pub planning_seconds: f64,
    /// How the planner resolved each demand (full searches vs cache
    /// commits) — the evidence that a warm replan was cheap.
    pub plan_stats: PlannerStats,
    /// The cost model's estimate for one allgather in seconds.
    pub estimated_allgather_seconds: f64,
    /// The aggregation backend every rank runs (the policy's verdict).
    pub backend: BackendKind,
    /// What the offline selector priced, whatever the policy decided.
    pub backend_choice: BackendChoice,
    /// Block-partitioned adjacency for the CAGNET backend (always
    /// built; a planned run simply never reads it).
    pub cagnet: Arc<CagnetBlocks>,
    /// Offline feature-cache admission ranking and Auto capacities
    /// (always scored; [`CachePolicy::Off`] runs simply never read it).
    pub feature_cache: Arc<FeatureCacheSets>,
}

/// Partitions `graph` across the topology's GPUs (hierarchically when it
/// spans machines), runs the SPST planner and compiles the execution
/// tables. This is the paper's `buildCommInfo(graph, topology)`.
///
/// # Panics
///
/// Panics if the graph is empty, the produced plan fails validation or
/// the tables fail schedule compilation (either would indicate a planner
/// bug, not a user error). Use [`try_build_comm_info`] to receive the
/// compilation failure as a typed error instead.
pub fn build_comm_info(graph: &CsrGraph, topology: Topology, options: BuildOptions) -> CommInfo {
    try_build_comm_info(graph, topology, options)
        .unwrap_or_else(|e| panic!("schedule compilation failed: {e}"))
}

/// [`build_comm_info`] returning schedule-compilation failures as
/// [`RuntimeError::Protocol`] rather than panicking.
///
/// # Errors
///
/// [`RuntimeError::Protocol`] if the planner's tables ask a device to
/// forward a vertex it never received.
///
/// # Panics
///
/// Panics if the graph is empty or the produced plan fails validation.
pub fn try_build_comm_info(
    graph: &CsrGraph,
    topology: Topology,
    options: BuildOptions,
) -> Result<CommInfo, RuntimeError> {
    assert!(graph.num_vertices() > 0, "graph must not be empty");
    let num_gpus = topology.num_gpus();
    let partition = if num_gpus == 1 {
        vec![0u32; graph.num_vertices()]
    } else {
        let sizes: Vec<usize> = topology.gpus_by_machine().iter().map(|g| g.len()).collect();
        hierarchical(graph, &sizes, options.seed)
    };
    let mut pg = PartitionedGraph::new(graph, partition, num_gpus);
    // Price both aggregation backends on the partitioner's cut. The
    // selector is offline and deterministic, so every rank reading this
    // CommInfo agrees on the backend with no negotiation.
    let demand_pairs: Vec<(usize, usize, u64)> = pg
        .demands
        .iter()
        .enumerate()
        .flat_map(|(i, row)| {
            row.iter()
                .enumerate()
                .map(move |(j, vs)| (i, j, vs.len() as u64 * options.bytes_per_vertex))
        })
        .collect();
    let backend_choice = BackendSelector::choose(
        &topology,
        num_gpus,
        graph.num_vertices(),
        options.bytes_per_vertex,
        &demand_pairs,
    );
    let backend = match options.backend {
        BackendPolicy::Auto => backend_choice.kind,
        BackendPolicy::Fixed(kind) => kind,
    };
    let backend = match backend {
        // A single device has nothing to communicate; block-partition
        // bookkeeping would be pure overhead.
        BackendKind::Cagnet { .. } if num_gpus < 2 => BackendKind::Planned,
        BackendKind::Cagnet { replication } => {
            assert!(
                replication >= 1 && num_gpus.is_multiple_of(replication),
                "CAGNET replication {replication} must divide {num_gpus} devices"
            );
            // CAGNET wants contiguous ascending ownership: it makes
            // ascending-round accumulation equal the single-device fold
            // bitwise, and balances the dense panels the broadcasts
            // ship. The planned tables are rebuilt on the same
            // partition so both backends remain callable on one info.
            pg = PartitionedGraph::new(graph, block_partition(graph, num_gpus), num_gpus);
            BackendKind::Cagnet { replication }
        }
        BackendKind::Planned => BackendKind::Planned,
    };
    let cagnet = Arc::new(CagnetBlocks::new(graph, &pg));
    // Scored on the *final* partition (CAGNET may have rebuilt it) so
    // cached sets always match the demands the runtime exchanges over.
    let feature_cache = Arc::new(FeatureCacheSets::score(
        graph,
        &pg,
        (options.bytes_per_vertex / 4).max(1) as usize,
        options.feature_cache,
    ));
    let outcome = spst_plan_with_config(
        &pg,
        &topology,
        options.bytes_per_vertex,
        options.seed,
        options.spst,
    );
    validate_plan(&outcome.plan, &pg).expect("SPST must produce a valid plan");
    let forward_tables = SendRecvTables::from_plan(&outcome.plan);
    let backward = forward_tables.reversed();
    let backward_tables = if options.non_atomic {
        backward.split_substages()
    } else {
        backward
    };
    let forward_schedules: Vec<DeviceSchedule> = (0..num_gpus)
        .map(|d| DeviceSchedule::forward(&forward_tables, d, pg.local_graph(d)))
        .collect::<Result<_, _>>()?;
    let backward_schedules: Vec<DeviceSchedule> = (0..num_gpus)
        .map(|d| DeviceSchedule::backward(&backward_tables, d, pg.local_graph(d)))
        .collect::<Result<_, _>>()?;
    let forward_pipelines = (0..num_gpus)
        .map(|d| {
            let lg = pg.local_graph(d);
            let sched = &forward_schedules[d];
            let row_space = lg.num_total() + sched.scratch_rows;
            pipeline::compile(sched, row_space, options.chunk_rows)
        })
        .collect();
    let backward_pipelines = (0..num_gpus)
        .map(|d| {
            let lg = pg.local_graph(d);
            let sched = &backward_schedules[d];
            let row_space = lg.num_local + sched.scratch_rows;
            pipeline::compile(sched, row_space, options.chunk_rows)
        })
        .collect();
    Ok(CommInfo {
        topology,
        pg,
        plan: outcome.plan,
        forward_tables,
        backward_tables,
        forward_schedules,
        backward_schedules,
        forward_pipelines,
        backward_pipelines,
        planning_seconds: outcome.planning_seconds,
        plan_stats: outcome.stats,
        estimated_allgather_seconds: outcome.cost.total_time(),
        backend,
        backend_choice,
        cagnet,
        feature_cache,
    })
}

impl CommInfo {
    /// Number of simulated devices.
    pub fn num_devices(&self) -> usize {
        self.pg.num_parts
    }

    /// Splits a global feature matrix into per-device local feature
    /// matrices (rows in device-local order). This is the paper's
    /// `dispatch_features`.
    ///
    /// # Panics
    ///
    /// Panics if `features` has fewer rows than the graph has vertices.
    pub fn dispatch_features(&self, features: &Matrix) -> Vec<Matrix> {
        assert_eq!(
            features.rows(),
            self.pg.partition.len(),
            "feature rows must match vertex count"
        );
        (0..self.num_devices())
            .map(|d| {
                let rows: Vec<usize> = self.pg.local[d].iter().map(|&v| v as usize).collect();
                features.gather_rows(&rows)
            })
            .collect()
    }

    /// Reassembles per-device row blocks into a global matrix (the
    /// inverse of [`CommInfo::dispatch_features`] for outputs).
    ///
    /// # Panics
    ///
    /// Panics if block shapes do not match the partition.
    pub fn collect_outputs(&self, per_device: &[Matrix]) -> Matrix {
        assert_eq!(per_device.len(), self.num_devices(), "device count");
        let cols = per_device.first().map_or(0, Matrix::cols);
        let mut out = Matrix::zeros(self.pg.partition.len(), cols);
        for (d, block) in per_device.iter().enumerate() {
            assert_eq!(block.rows(), self.pg.local[d].len(), "block rows");
            for (i, &v) in self.pg.local[d].iter().enumerate() {
                out.set_row(v as usize, block.row(i));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgcl_graph::Dataset;

    fn info() -> (CsrGraph, CommInfo) {
        let graph = Dataset::WikiTalk.generate(0.0005, 3);
        let info = build_comm_info(&graph, Topology::fig6(), BuildOptions::default());
        (graph, info)
    }

    #[test]
    fn builds_valid_plan_and_tables() {
        let (_, info) = info();
        assert_eq!(info.num_devices(), 4);
        assert!(info.estimated_allgather_seconds > 0.0);
        assert_eq!(info.forward_tables.num_gpus, 4);
    }

    #[test]
    fn dispatch_and_collect_round_trip() {
        let (graph, info) = info();
        let n = graph.num_vertices();
        let mut init = dgcl_tensor::XavierInit::new(5);
        let features = init.features(n, 6);
        let dispatched = info.dispatch_features(&features);
        let sizes: usize = dispatched.iter().map(Matrix::rows).sum();
        assert_eq!(sizes, n);
        let collected = info.collect_outputs(&dispatched);
        assert_eq!(collected, features);
    }

    #[test]
    fn single_gpu_build_has_empty_plan() {
        let graph = Dataset::WebGoogle.generate(0.0005, 4);
        let info = build_comm_info(&graph, Topology::dgx1_subset(1), BuildOptions::default());
        assert!(info.plan.steps.is_empty());
        assert_eq!(info.num_devices(), 1);
    }

    #[test]
    fn atomic_option_skips_substage_split() {
        let graph = Dataset::WikiTalk.generate(0.0005, 3);
        let opts = BuildOptions {
            non_atomic: false,
            ..BuildOptions::default()
        };
        let info = build_comm_info(&graph, Topology::fig6(), opts);
        assert_eq!(info.backward_tables.num_substages, 1);
    }
}
