//! Distributed full-graph GNN training with single-device parity.
//!
//! Integrating DGCL into a GNN system follows the paper's Listing 1: every
//! layer calls `graph_allgather` to refresh remote embeddings, then runs
//! the unchanged single-device layer; the backward pass routes remote
//! gradients back through the reversed plan; model weights are
//! synchronised with an allreduce (the paper delegates this to
//! Horovod/DDP as GNN models are small).
//!
//! Because all baselines are algorithmically equivalent (§7), the
//! reproduction's correctness criterion is *numerical parity*: distributed
//! training must match single-device training up to floating-point
//! reduction order, which [`train_distributed`] and [`train_single`] let
//! tests verify directly.

use dgcl_gnn::aggregate::{aggregate_mean, aggregate_sum};
use dgcl_gnn::loss::mse_loss;
use dgcl_gnn::{AggKind, Architecture, GnnNetwork};
use dgcl_graph::CsrGraph;
use dgcl_sim::BackendKind;
use dgcl_tensor::Matrix;

use crate::backend::{backend_for, CommBackend};
use crate::checkpoint::{Checkpoint, CheckpointConfig};
use crate::collectives::{AlgorithmSelector, AllreduceAlgo, AllreducePolicy};
use crate::comm_info::CommInfo;
use crate::error::{ClusterError, RuntimeError};
use crate::fabric::FabricConfig;
use crate::featcache::{CachePolicy, CacheStatsSnapshot, ClusterCache, HaloGatherCtx};
use crate::runtime::{run_cluster_with, ExecStrategy};

/// Training hyper-parameters.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// GNN architecture.
    pub arch: Architecture,
    /// Layer widths: input first, one entry per layer output after it.
    pub dims: Vec<usize>,
    /// Number of epochs.
    pub epochs: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// Seed for weight initialisation (shared by all replicas).
    pub weight_seed: u64,
    /// Whether to overlap communication with compute: per-layer gradient
    /// allreduce buckets launched as each layer's backward completes, and
    /// the next epoch's first allgather posted eagerly, all on a
    /// background worker. Bitwise identical to the serial schedule (fixed
    /// bucket order, rank-ordered sums); `false` runs the fully
    /// barriered reference.
    pub overlap: bool,
    /// Allreduce algorithm override for the gradient buckets. `None`
    /// (the default) lets the cost-model autotuner pick per bucket
    /// size; `Some(algo)` forces one algorithm. Every algorithm is
    /// bitwise identical to the rendezvous reference, so this only
    /// changes wall-clock, never numerics.
    pub allreduce: Option<AllreduceAlgo>,
    /// Aggregation backend override. `None` (the default) runs whatever
    /// [`CommInfo::backend`] recorded — the build policy's verdict;
    /// `Some(kind)` forces a backend for this run (parity tests compare
    /// the same info through both). CAGNET replication must divide the
    /// device count.
    pub backend: Option<BackendKind>,
    /// Mini-batch sampled training. `None` (the default) trains
    /// full-batch; `Some` switches every epoch to seeded, fanout-bounded
    /// mini-batches (see [`crate::sampling::SamplingConfig`]). The
    /// fanout list's length must equal the layer count. With every
    /// fanout ∞ and one batch covering every vertex the sampled run is
    /// bitwise identical to the full-batch one.
    pub sampling: Option<crate::sampling::SamplingConfig>,
    /// Hot-vertex remote feature cache override. `None` (the default)
    /// runs the policy recorded at build time
    /// ([`crate::BuildOptions::feature_cache`]); `Some(policy)` forces
    /// one for this run. Caching changes gather *volume* only — every
    /// run is bitwise identical to [`CachePolicy::Off`].
    pub feature_cache: Option<CachePolicy>,
}

impl TrainConfig {
    /// A config with learning rate `1e-3`, a fixed weight seed and
    /// communication–compute overlap enabled.
    pub fn new(arch: Architecture, dims: &[usize], epochs: usize) -> Self {
        Self {
            arch,
            dims: dims.to_vec(),
            epochs,
            lr: 1e-3,
            weight_seed: 17,
            overlap: true,
            allreduce: None,
            backend: None,
            sampling: None,
            feature_cache: None,
        }
    }
}

/// The outcome of a training run.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Global loss after each epoch's forward pass.
    pub epoch_losses: Vec<f32>,
    /// Final output embeddings in global vertex order.
    pub outputs: Matrix,
    /// Cluster-total feature-cache counters, when a cache was active
    /// (`None` for single-device runs and [`CachePolicy::Off`]).
    pub cache: Option<CacheStatsSnapshot>,
}

/// Trains on a single device (the reference the distributed run must
/// match).
///
/// # Panics
///
/// Panics if shapes are inconsistent.
pub fn train_single(
    graph: &CsrGraph,
    features: &Matrix,
    targets: &Matrix,
    cfg: &TrainConfig,
) -> TrainReport {
    let mut net = GnnNetwork::new(cfg.arch, &cfg.dims, cfg.weight_seed);
    let mut losses = Vec::with_capacity(cfg.epochs);
    for _ in 0..cfg.epochs {
        let out = net.forward(graph, features);
        let (loss, grad) = mse_loss(&out, targets);
        losses.push(loss);
        net.backward(graph, &grad);
        net.step(cfg.lr);
    }
    let outputs = net.forward(graph, features);
    TrainReport {
        epoch_losses: losses,
        outputs,
        cache: None,
    }
}

/// Trains across the simulated devices of `info`, with graph-allgather
/// between layers, reversed-plan gradient scatter, and gradient
/// allreduce before each step.
///
/// # Errors
///
/// [`ClusterError`] if any device fails; no failure mode hangs.
///
/// # Panics
///
/// Panics if `features`/`targets` row counts do not match the graph.
pub fn train_distributed(
    info: &CommInfo,
    graph: &CsrGraph,
    features: &Matrix,
    targets: &Matrix,
    cfg: &TrainConfig,
) -> Result<TrainReport, ClusterError> {
    train_distributed_with(info, graph, features, targets, cfg, FabricConfig::default())
}

/// [`train_distributed`] with an explicit fabric configuration — the
/// chaos suite uses this to inject [`crate::fault::FaultPlan`]s and to
/// shrink the collective deadline.
///
/// The gradient allreduce algorithm resolves in this order:
/// `cfg.allreduce` (explicit override) beats a non-default
/// `fabric_config.allreduce` policy, which beats the default — an
/// [`AlgorithmSelector`] tuned offline for `info`'s topology and
/// device count.
///
/// # Errors
///
/// [`ClusterError`] if any device fails; no failure mode hangs.
///
/// # Panics
///
/// Panics if `features`/`targets` row counts do not match the graph.
pub fn train_distributed_with(
    info: &CommInfo,
    graph: &CsrGraph,
    features: &Matrix,
    targets: &Matrix,
    cfg: &TrainConfig,
    fabric_config: FabricConfig,
) -> Result<TrainReport, ClusterError> {
    train_distributed_resumable(
        info,
        graph,
        features,
        targets,
        cfg,
        fabric_config,
        None,
        None,
    )
}

/// Per-epoch context shared by both device bodies: where in the global
/// epoch range this attempt runs, the losses of epochs completed before
/// it (from the resumed checkpoint), and where rank 0 publishes
/// checkpoints.
pub(crate) struct EpochCtx<'a> {
    pub(crate) start_epoch: usize,
    pub(crate) end_epoch: usize,
    prior_losses: &'a [f32],
    checkpoints: Option<&'a CheckpointConfig>,
}

impl EpochCtx<'_> {
    /// Rank 0's post-step hook: publishes the in-memory checkpoint for
    /// every completed epoch and serializes to the sink on its cadence.
    /// Weights are identical on all ranks after the allreduce-then-step,
    /// so one publisher suffices; any crash earlier in the epoch fails
    /// the allreduce and never reaches this point.
    pub(crate) fn publish(&self, rank: usize, net: &GnnNetwork, new_losses: &[f32]) {
        let Some(ck) = self.checkpoints else { return };
        if rank != 0 {
            return;
        }
        let mut losses = self.prior_losses.to_vec();
        losses.extend_from_slice(new_losses);
        let ckpt = Checkpoint::capture(net, losses);
        if let Some(spec) = &ck.spec {
            if spec.every > 0 && ckpt.epochs_done.is_multiple_of(spec.every) {
                spec.sink.store(ckpt.serialize());
            }
        }
        ck.store.publish(ckpt);
    }
}

/// [`train_distributed_with`] that can start from a [`Checkpoint`] and
/// publish new ones — the primitive under [`crate::recovery`]'s elastic
/// driver loop.
///
/// `resume` restores the snapshot's parameters and loss history and
/// runs only the remaining `resume.epochs_done..cfg.epochs` epochs; the
/// returned [`TrainReport`] covers the *full* history (prior losses
/// first), so a resumed run is directly comparable — bitwise — to an
/// uninterrupted one. The checkpoint is partition-independent: it may
/// have been captured on a different device count than `info` has.
///
/// `checkpoints` makes rank 0 publish an in-memory snapshot after every
/// completed epoch, plus a serialized one on the configured cadence.
///
/// # Errors
///
/// [`ClusterError`] if any device fails; no failure mode hangs.
///
/// # Panics
///
/// Panics if `features`/`targets` row counts do not match the graph, if
/// the checkpoint does not fit the configured model shape, or if it has
/// already passed `cfg.epochs`.
#[allow(clippy::too_many_arguments)]
pub fn train_distributed_resumable(
    info: &CommInfo,
    graph: &CsrGraph,
    features: &Matrix,
    targets: &Matrix,
    cfg: &TrainConfig,
    mut fabric_config: FabricConfig,
    resume: Option<&Checkpoint>,
    checkpoints: Option<&CheckpointConfig>,
) -> Result<TrainReport, ClusterError> {
    match cfg.allreduce {
        Some(algo) => fabric_config.allreduce = AllreducePolicy::Fixed(algo),
        // Autotune only over the default policy; an explicit caller
        // policy (chaos tests pinning an algorithm) stands.
        None => {
            if matches!(
                fabric_config.allreduce,
                AllreducePolicy::Fixed(AllreduceAlgo::Rendezvous)
            ) {
                fabric_config.allreduce = AllreducePolicy::Auto(AlgorithmSelector::tune(
                    &info.topology,
                    info.num_devices(),
                    4 * fabric_config.collective_chunk as u64,
                ));
            }
        }
    }
    assert_eq!(features.rows(), graph.num_vertices(), "feature rows");
    assert_eq!(targets.rows(), graph.num_vertices(), "target rows");
    if let Some(scfg) = &cfg.sampling {
        assert_eq!(
            scfg.fanouts.len(),
            cfg.dims.len() - 1,
            "one fanout per layer"
        );
    }
    let backend_kind = cfg.backend.unwrap_or(info.backend);
    if let BackendKind::Cagnet { replication } = backend_kind {
        assert!(
            replication >= 1 && info.num_devices().is_multiple_of(replication),
            "CAGNET replication {replication} must divide {} devices",
            info.num_devices()
        );
    }
    // Resolve the feature-cache policy and materialise the per-rank
    // caches once at the driver; every rank reads the same copies.
    let cache_policy = cfg.feature_cache.unwrap_or(info.feature_cache.policy);
    let cache = ClusterCache::build(info, features, cache_policy);
    // With a cache active on the planned backend, full-batch layer 0
    // routes through the cache-aware halo exchange.
    let use_halo = cache.is_some() && backend_kind == BackendKind::Planned;
    let halo_cache = if use_halo { cache.as_ref() } else { None };
    // The eager next-epoch allgather only makes sense on the planned
    // backend (CAGNET never runs the vertex-cut exchange), and is
    // superseded by the halo exchange when the cache is on.
    let eager_gather = backend_kind == BackendKind::Planned && !use_halo;
    // The initial replica is built once at the driver: every rank clones
    // it, so a resumed attempt restores the checkpoint exactly once.
    let mut net0 = GnnNetwork::new(cfg.arch, &cfg.dims, cfg.weight_seed);
    let (start_epoch, prior_losses) = match resume {
        Some(ckpt) => {
            assert!(
                ckpt.epochs_done <= cfg.epochs,
                "checkpoint at epoch {} is past the {}-epoch target",
                ckpt.epochs_done,
                cfg.epochs
            );
            ckpt.restore(&mut net0);
            (ckpt.epochs_done, ckpt.losses.clone())
        }
        None => (0, Vec::new()),
    };
    let ctx = EpochCtx {
        start_epoch,
        end_epoch: cfg.epochs,
        prior_losses: &prior_losses,
        checkpoints,
    };
    let per_device_features = info.dispatch_features(features);
    let per_device_targets = info.dispatch_features(targets);
    let results = run_cluster_with(info, fabric_config, |handle| {
        if let Some(scfg) = &cfg.sampling {
            // Sampled bodies run their collectives inline (barriered);
            // the overlap flag only governs the feature prefetch inside
            // the block path.
            let backend = backend_for(backend_kind, ExecStrategy::Barriered);
            if scfg.is_exact() {
                crate::sampling::device_body_masked(
                    &handle,
                    cfg,
                    &ctx,
                    &net0,
                    scfg,
                    graph,
                    backend.as_ref(),
                    &per_device_features,
                    &per_device_targets,
                    cache.as_ref(),
                    use_halo,
                )
            } else {
                crate::sampling::device_body_sampled(
                    &handle,
                    cfg,
                    &ctx,
                    &net0,
                    scfg,
                    graph,
                    backend.as_ref(),
                    &per_device_features,
                    &per_device_targets,
                    cache.as_ref(),
                    use_halo,
                )
            }
        } else if cfg.overlap {
            let backend = backend_for(backend_kind, ExecStrategy::Pipelined);
            device_body_overlapped(
                &handle,
                cfg,
                &ctx,
                &net0,
                backend.as_ref(),
                eager_gather,
                &per_device_features,
                &per_device_targets,
                halo_cache,
            )
        } else {
            let backend = backend_for(backend_kind, ExecStrategy::Barriered);
            device_body_barriered(
                &handle,
                cfg,
                &ctx,
                &net0,
                backend.as_ref(),
                &per_device_features,
                &per_device_targets,
                halo_cache,
            )
        }
    })?;
    let mut losses = prior_losses;
    losses.extend_from_slice(&results[0].0);
    let blocks: Vec<Matrix> = results.into_iter().map(|(_, out)| out).collect();
    let outputs = info.collect_outputs(&blocks);
    Ok(TrainReport {
        epoch_losses: losses,
        outputs,
        cache: cache.as_ref().map(ClusterCache::snapshot),
    })
}

/// The gradient with respect to a layer's aggregate input combined with
/// its direct (self-path) contribution: `backward_agg` splits the two,
/// the backend folds remote consumers into the aggregate half, and the
/// direct half lands on the local rows afterwards.
pub(crate) fn fold_direct(mut grad_agg_back: Matrix, direct: Option<Matrix>) -> Matrix {
    if let Some(direct) = direct {
        for v in 0..grad_agg_back.rows() {
            for (g, &x) in grad_agg_back.row_mut(v).iter_mut().zip(direct.row(v)) {
                *g += x;
            }
        }
    }
    grad_agg_back
}

/// The serial reference schedule: barriered collectives, one monolithic
/// allreduce per epoch. Communication and compute strictly alternate.
#[allow(clippy::too_many_arguments)]
fn device_body_barriered(
    handle: &crate::runtime::DeviceHandle<'_>,
    cfg: &TrainConfig,
    ctx: &EpochCtx<'_>,
    net0: &GnnNetwork,
    backend: &dyn CommBackend,
    per_device_features: &[Matrix],
    per_device_targets: &[Matrix],
    halo_cache: Option<&ClusterCache>,
) -> Result<(Vec<f32>, Matrix), RuntimeError> {
    let rank = handle.rank;
    let agg_kind = cfg.arch.agg_kind();
    let mut net = net0.clone();
    let halo = HaloGatherCtx::build(handle.comm_info(), rank, halo_cache);
    let mut losses = Vec::with_capacity(ctx.end_epoch - ctx.start_epoch);
    let forward = |net: &mut GnnNetwork,
                   handle: &crate::runtime::DeviceHandle<'_>|
     -> Result<Matrix, RuntimeError> {
        let mut h = per_device_features[rank].clone();
        for (l, layer) in net.layers_mut().iter_mut().enumerate() {
            let agg = match (l, &halo) {
                // Layer 0 reads the immutable raw features: with a cache
                // active, the halo exchange fills cached rows locally.
                (0, Some(hctx)) => hctx.agg_forward(handle, &h, agg_kind)?,
                _ => backend.agg_forward(handle, &h, agg_kind)?,
            };
            h = layer.forward_agg(&h, agg);
        }
        Ok(h)
    };
    for epoch in ctx.start_epoch..ctx.end_epoch {
        handle.check_epoch_fault(epoch)?;
        let out = forward(&mut net, handle)?;
        let (local_loss, grad_out) = mse_loss(&out, &per_device_targets[rank]);
        // Backward through the layers, routing each layer's aggregate
        // gradient through the backend's adjoint exchange.
        let mut grad = grad_out;
        for (l, layer) in net.layers_mut().iter_mut().enumerate().rev() {
            let (grad_agg, direct) = layer.backward_agg(&grad);
            if l == 0 && halo.is_some() {
                // Layer 0's aggregate gradient flows only into the raw
                // features, which don't learn; every rank skips the dead
                // exchange together, keeping op counters aligned.
                break;
            }
            let back = backend.agg_backward(handle, &grad_agg, agg_kind)?;
            grad = fold_direct(back, direct);
        }
        // Allreduce: parameter gradients plus the scalar loss.
        let mut mats: Vec<Matrix> = net
            .layers()
            .iter()
            .flat_map(|l| l.gradients().into_iter().cloned())
            .collect();
        mats.push(Matrix::full(1, 1, local_loss));
        let reduced = handle.allreduce(mats)?;
        let (loss_mat, grads) = reduced.split_last().expect("loss entry present");
        losses.push(loss_mat[(0, 0)]);
        let mut cursor = 0;
        for layer in net.layers_mut() {
            let count = layer.gradients().len();
            layer.set_gradients(&grads[cursor..cursor + count]);
            cursor += count;
        }
        net.step(cfg.lr);
        ctx.publish(rank, &net, &losses);
    }
    let out = forward(&mut net, handle)?;
    Ok((losses, out))
}

/// The overlapped schedule: pipelined collectives, per-layer gradient
/// buckets launched on a background worker as soon as each layer's
/// backward completes, and — on the planned backend — the next epoch's
/// first allgather (whose input, the raw features, never changes)
/// posted eagerly while gradients drain and the weights step. The
/// CAGNET backend interleaves its broadcasts with SpMM on the calling
/// thread, so only the gradient buckets overlap there.
///
/// Bitwise identical to [`device_body_barriered`]: buckets keep a fixed
/// submission order, the fabric sums each matrix in rank order
/// independently of bucketing, and layer-`L` gradients are final the
/// moment layer `L`'s backward returns (later backward calls touch other
/// layers only).
#[allow(clippy::too_many_arguments)]
fn device_body_overlapped(
    handle: &crate::runtime::DeviceHandle<'_>,
    cfg: &TrainConfig,
    ctx: &EpochCtx<'_>,
    net0: &GnnNetwork,
    backend: &dyn CommBackend,
    eager_gather: bool,
    per_device_features: &[Matrix],
    per_device_targets: &[Matrix],
    halo_cache: Option<&ClusterCache>,
) -> Result<(Vec<f32>, Matrix), RuntimeError> {
    let rank = handle.rank;
    let lg = handle.local_graph();
    let adj = &lg.graph;
    let num_local = lg.num_local;
    let agg_kind = cfg.arch.agg_kind();
    let mut net = net0.clone();
    let halo = HaloGatherCtx::build(handle.comm_info(), rank, halo_cache);
    let num_layers = net.num_layers();
    let mut losses = Vec::with_capacity(ctx.end_epoch - ctx.start_epoch);
    let worker = handle.overlap_worker();
    let forward = |net: &mut GnnNetwork,
                   handle: &crate::runtime::DeviceHandle<'_>,
                   first: Option<crate::overlap::Pending<Matrix>>|
     -> Result<Matrix, RuntimeError> {
        let mut h = per_device_features[rank].clone();
        let mut first = first;
        for (l, layer) in net.layers_mut().iter_mut().enumerate() {
            let agg = match (first.take(), l, &halo) {
                // The eagerly posted allgather runs the same pipelined
                // executor the planned backend would invoke here.
                (Some(p), _, _) => {
                    let full = handle.wait_pending(p)?;
                    match agg_kind {
                        AggKind::Sum => aggregate_sum(adj, &full, num_local),
                        AggKind::Mean => aggregate_mean(adj, &full, num_local),
                    }
                }
                // With a cache active (which disables the eager gather),
                // layer 0's exchange routes through the cache-aware halo.
                (None, 0, Some(hctx)) => hctx.agg_forward(handle, &h, agg_kind)?,
                _ => backend.agg_forward(handle, &h, agg_kind)?,
            };
            h = layer.forward_agg(&h, agg);
        }
        Ok(h)
    };
    let submit_eager = |handle: &crate::runtime::DeviceHandle<'_>|
     -> Result<Option<crate::overlap::Pending<Matrix>>, RuntimeError> {
        if eager_gather {
            Ok(Some(handle.submit_allgather(
                &worker,
                per_device_features[rank].clone(),
            )?))
        } else {
            Ok(None)
        }
    };
    let mut next_gather = submit_eager(handle)?;
    for epoch in ctx.start_epoch..ctx.end_epoch {
        handle.check_epoch_fault(epoch)?;
        let out = forward(&mut net, handle, next_gather)?;
        let (local_loss, grad_out) = mse_loss(&out, &per_device_targets[rank]);
        let mut buckets = Vec::with_capacity(num_layers + 1);
        buckets.push(handle.submit_allreduce(&worker, vec![Matrix::full(1, 1, local_loss)])?);
        // Backward deepest layer first; each layer's gradient bucket
        // reduces while the next layer's backward computes.
        let mut grad = grad_out;
        for (l, layer) in net.layers_mut().iter_mut().enumerate().rev() {
            let (grad_agg, direct) = layer.backward_agg(&grad);
            if !(l == 0 && halo.is_some()) {
                let back = backend.agg_backward(handle, &grad_agg, agg_kind)?;
                grad = fold_direct(back, direct);
            }
            // Layer 0's aggregate gradient (skipped above with the halo
            // active — it flows only into the non-learning raw features)
            // never feeds the parameter gradients, so the bucket still
            // submits in the fixed order.
            let mats: Vec<Matrix> = layer.gradients().into_iter().cloned().collect();
            buckets.push(handle.submit_allreduce(&worker, mats)?);
        }
        // Next epoch's first exchange streams while gradients drain.
        next_gather = submit_eager(handle)?;
        let mut buckets = buckets.into_iter();
        let loss = handle.wait_pending(buckets.next().expect("loss bucket"))?;
        losses.push(loss[0][(0, 0)]);
        for (offset, pending) in buckets.enumerate() {
            let li = num_layers - 1 - offset;
            let grads = handle.wait_pending(pending)?;
            net.layers_mut()[li].set_gradients(&grads);
        }
        net.step(cfg.lr);
        ctx.publish(rank, &net, &losses);
    }
    let out = forward(&mut net, handle, next_gather)?;
    Ok((losses, out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm_info::{build_comm_info, BuildOptions};
    use dgcl_graph::Dataset;
    use dgcl_tensor::XavierInit;
    use dgcl_topology::Topology;

    fn parity_case(arch: Architecture, topo: Topology, seed: u64) {
        let graph = Dataset::WikiTalk.generate(0.0005, seed);
        let n = graph.num_vertices();
        let info = build_comm_info(&graph, topo, BuildOptions::default());
        let mut init = XavierInit::new(seed);
        let features = init.features(n, 6);
        let targets = init.features(n, 3);
        let mut cfg = TrainConfig::new(arch, &[6, 5, 3], 3);
        if arch == Architecture::Gin {
            // GIN's sum aggregation explodes on hub-heavy graphs with the
            // default rate; parity only needs stable trajectories.
            cfg.lr = 1e-6;
        }
        let single = train_single(&graph, &features, &targets, &cfg);
        let dist =
            train_distributed(&info, &graph, &features, &targets, &cfg).expect("healthy cluster");
        for (e, (a, b)) in single
            .epoch_losses
            .iter()
            .zip(&dist.epoch_losses)
            .enumerate()
        {
            assert!(
                (a - b).abs() < 1e-2 * a.abs().max(1.0),
                "{arch:?} epoch {e}: single loss {a} vs distributed {b}"
            );
        }
        let diff = single.outputs.max_abs_diff(&dist.outputs);
        assert!(
            diff < 5e-3,
            "{arch:?}: output divergence {diff} after training"
        );
    }

    #[test]
    fn gcn_parity_on_fig6() {
        parity_case(Architecture::Gcn, Topology::fig6(), 11);
    }

    #[test]
    fn commnet_parity_on_fig6() {
        parity_case(Architecture::CommNet, Topology::fig6(), 12);
    }

    #[test]
    fn gin_parity_on_fig6() {
        parity_case(Architecture::Gin, Topology::fig6(), 13);
    }

    #[test]
    fn gcn_parity_on_dgx1() {
        parity_case(Architecture::Gcn, Topology::dgx1(), 14);
    }

    #[test]
    fn sage_parity_on_fig6() {
        parity_case(Architecture::Sage, Topology::fig6(), 15);
    }

    #[test]
    fn loss_decreases_distributed() {
        let graph = Dataset::WebGoogle.generate(0.0005, 21);
        let n = graph.num_vertices();
        let info = build_comm_info(&graph, Topology::fig6(), BuildOptions::default());
        let mut init = XavierInit::new(2);
        let features = init.features(n, 8);
        let targets = init.features(n, 4);
        let mut cfg = TrainConfig::new(Architecture::Gcn, &[8, 6, 4], 5);
        cfg.lr = 5e-4;
        let report =
            train_distributed(&info, &graph, &features, &targets, &cfg).expect("healthy cluster");
        assert!(
            report.epoch_losses.last() < report.epoch_losses.first(),
            "losses: {:?}",
            report.epoch_losses
        );
    }

    #[test]
    fn atomic_and_non_atomic_backward_agree() {
        // The sub-stage split must not change numerics, only scheduling.
        let graph = Dataset::WikiTalk.generate(0.0005, 31);
        let n = graph.num_vertices();
        let mut opts = BuildOptions::default();
        let info_split = build_comm_info(&graph, Topology::fig6(), opts);
        opts.non_atomic = false;
        let info_atomic = build_comm_info(&graph, Topology::fig6(), opts);
        let mut init = XavierInit::new(4);
        let features = init.features(n, 5);
        let targets = init.features(n, 2);
        let cfg = TrainConfig::new(Architecture::Gcn, &[5, 2], 2);
        let a = train_distributed(&info_split, &graph, &features, &targets, &cfg)
            .expect("healthy cluster");
        let b = train_distributed(&info_atomic, &graph, &features, &targets, &cfg)
            .expect("healthy cluster");
        let diff = a.outputs.max_abs_diff(&b.outputs);
        assert!(diff < 1e-4, "substage split changed numerics by {diff}");
    }
}
