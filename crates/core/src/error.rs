//! Typed runtime failures.
//!
//! The paper's §6.1 protocol has no master in the data path, which means
//! a failed device cannot be observed anywhere *except* at the peers it
//! wedges. These types make that observation explicit: every collective
//! returns [`RuntimeError`] instead of panicking or blocking forever, and
//! [`crate::runtime::run_cluster`] folds the per-device outcomes into one
//! [`ClusterError`] naming the originating rank and cause.

use std::fmt;
use std::time::Duration;

/// A failure inside one device's collective operation.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// A peer did not make progress within the collective deadline.
    Timeout {
        /// The rank whose collective timed out (the waiter).
        rank: usize,
        /// The fabric operation that was waiting (`wait_ready`, `recv`,
        /// `allreduce`).
        op: &'static str,
        /// What exactly was being waited for (peer, message key).
        stage: String,
    },
    /// Another device failed first and poisoned the fabric.
    Poisoned {
        /// The rank whose failure poisoned the fabric.
        origin: usize,
        /// The originating failure, rendered.
        reason: String,
    },
    /// The plan or a peer violated the communication protocol.
    Protocol {
        /// The rank that detected the violation.
        rank: usize,
        /// What was violated.
        detail: String,
    },
    /// An injected crash from a [`crate::fault::FaultPlan`].
    InjectedCrash {
        /// The crashed rank.
        rank: usize,
        /// The operation index at which it crashed.
        at_op: u64,
    },
    /// An injected epoch-boundary crash from a
    /// [`crate::fault::FaultPlan`] (`CrashAtEpoch`): the rank died
    /// entering `epoch`, before any of its collectives ran.
    InjectedEpochCrash {
        /// The crashed rank.
        rank: usize,
        /// The 0-based epoch at whose boundary it crashed.
        epoch: usize,
    },
}

impl RuntimeError {
    /// Whether this failure *originated* on the rank reporting it, as
    /// opposed to being the propagated echo of another rank's death.
    /// Recovery evicts originators and keeps echo victims.
    pub fn is_origin(&self) -> bool {
        !matches!(self, RuntimeError::Poisoned { .. })
    }
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Timeout { rank, op, stage } => {
                write!(f, "rank {rank} timed out in {op} ({stage})")
            }
            RuntimeError::Poisoned { origin, reason } => {
                write!(f, "fabric poisoned by rank {origin}: {reason}")
            }
            RuntimeError::Protocol { rank, detail } => {
                write!(f, "protocol violation on rank {rank}: {detail}")
            }
            RuntimeError::InjectedCrash { rank, at_op } => {
                write!(f, "injected crash of rank {rank} at op {at_op}")
            }
            RuntimeError::InjectedEpochCrash { rank, epoch } => {
                write!(f, "injected crash of rank {rank} at epoch {epoch} boundary")
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

/// Why one device thread failed: an unwound panic or a typed error.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterFailure {
    /// The device thread panicked; the payload rendered as text.
    Panic(String),
    /// The device returned a [`RuntimeError`].
    Error(RuntimeError),
}

impl ClusterFailure {
    /// Whether this failure originated on the rank that recorded it (a
    /// panic, crash, timeout or protocol violation) rather than arriving
    /// as poison from another rank's death. See
    /// [`RuntimeError::is_origin`].
    pub fn is_origin(&self) -> bool {
        match self {
            ClusterFailure::Panic(_) => true,
            ClusterFailure::Error(e) => e.is_origin(),
        }
    }
}

impl fmt::Display for ClusterFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterFailure::Panic(msg) => write!(f, "panic: {msg}"),
            ClusterFailure::Error(e) => write!(f, "{e}"),
        }
    }
}

/// The outcome of a failed cluster run: the originating rank, its
/// failure, and what every other rank observed.
#[derive(Debug, Clone)]
pub struct ClusterError {
    /// The rank whose failure poisoned the fabric first.
    pub rank: usize,
    /// The originating failure.
    pub cause: ClusterFailure,
    /// Per-rank outcome: `None` for ranks that completed before the
    /// poison reached them, `Some` for ranks that failed.
    pub per_rank: Vec<Option<ClusterFailure>>,
    /// The collective deadline the run was configured with.
    pub deadline: Duration,
}

impl ClusterError {
    /// Ranks other than the originator that observed the failure.
    pub fn surviving_errors(&self) -> impl Iterator<Item = (usize, &ClusterFailure)> {
        self.per_rank
            .iter()
            .enumerate()
            .filter(move |&(r, _)| r != self.rank)
            .filter_map(|(r, e)| e.as_ref().map(|e| (r, e)))
    }

    /// Every rank that recorded a failure of any kind.
    pub fn failed_ranks(&self) -> Vec<usize> {
        self.per_rank
            .iter()
            .enumerate()
            .filter_map(|(r, e)| e.as_ref().map(|_| r))
            .collect()
    }

    /// The ranks a recovery driver must evict: every rank whose recorded
    /// failure *originated* locally (crash, panic, timeout, protocol
    /// violation), plus the originating rank itself. Ranks that merely
    /// observed another death as [`RuntimeError::Poisoned`] — and ranks
    /// that completed before the poison reached them — are survivors.
    ///
    /// A silent deserter (a rank that returned early and left its peers
    /// to time out) cannot be identified from the outcomes — its own
    /// record is clean — so the timed-out originator is evicted in its
    /// stead; recovery still converges, one eviction later.
    pub fn dead_ranks(&self) -> Vec<usize> {
        let mut dead: Vec<usize> = self
            .per_rank
            .iter()
            .enumerate()
            .filter_map(|(r, e)| match e {
                Some(f) if f.is_origin() => Some(r),
                _ => None,
            })
            .collect();
        if !dead.contains(&self.rank) {
            dead.push(self.rank);
            dead.sort_unstable();
        }
        dead
    }
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let failed = self.per_rank.iter().filter(|e| e.is_some()).count();
        write!(
            f,
            "cluster failed: rank {} {} ({failed}/{} ranks failed)",
            self.rank,
            self.cause,
            self.per_rank.len()
        )?;
        // Multi-failure recovery decisions need every rank's outcome, not
        // just the first poisoner's: list the other failed ranks with
        // their causes (originators before echo victims).
        let mut others: Vec<(usize, &ClusterFailure)> = self
            .per_rank
            .iter()
            .enumerate()
            .filter(|&(r, _)| r != self.rank)
            .filter_map(|(r, e)| e.as_ref().map(|e| (r, e)))
            .collect();
        others.sort_by_key(|(r, e)| (!e.is_origin(), *r));
        if !others.is_empty() {
            write!(f, "; also")?;
            for (i, (r, e)) in others.iter().enumerate() {
                let sep = if i == 0 { " " } else { ", " };
                write!(f, "{sep}rank {r}: {e}")?;
            }
        }
        Ok(())
    }
}

impl std::error::Error for ClusterError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_rank_and_cause() {
        let e = ClusterError {
            rank: 2,
            cause: ClusterFailure::Error(RuntimeError::Timeout {
                rank: 2,
                op: "recv",
                stage: "peer 1".to_string(),
            }),
            per_rank: vec![None, None, Some(ClusterFailure::Panic("boom".into())), None],
            deadline: Duration::from_secs(5),
        };
        let s = e.to_string();
        assert!(s.contains("rank 2"), "{s}");
        assert!(s.contains("timed out"), "{s}");
    }

    #[test]
    fn surviving_errors_skips_originator_and_completed() {
        let poisoned = ClusterFailure::Error(RuntimeError::Poisoned {
            origin: 1,
            reason: "x".into(),
        });
        let e = ClusterError {
            rank: 1,
            cause: ClusterFailure::Panic("dead".into()),
            per_rank: vec![
                Some(poisoned.clone()),
                Some(ClusterFailure::Panic("dead".into())),
                None,
                Some(poisoned),
            ],
            deadline: Duration::from_secs(5),
        };
        let survivors: Vec<usize> = e.surviving_errors().map(|(r, _)| r).collect();
        assert_eq!(survivors, vec![0, 3]);
    }

    fn multi_failure() -> ClusterError {
        // Rank 1 crashed first; rank 3 independently panicked; ranks 0
        // and 2 saw the poison; rank 4 completed beforehand.
        let poisoned = ClusterFailure::Error(RuntimeError::Poisoned {
            origin: 1,
            reason: "injected crash of rank 1 at op 3".into(),
        });
        ClusterError {
            rank: 1,
            cause: ClusterFailure::Error(RuntimeError::InjectedCrash { rank: 1, at_op: 3 }),
            per_rank: vec![
                Some(poisoned.clone()),
                Some(ClusterFailure::Error(RuntimeError::InjectedCrash {
                    rank: 1,
                    at_op: 3,
                })),
                Some(poisoned),
                Some(ClusterFailure::Panic("oom".into())),
                None,
            ],
            deadline: Duration::from_secs(5),
        }
    }

    #[test]
    fn display_lists_all_failed_ranks_and_causes() {
        let s = multi_failure().to_string();
        // Originator first, then the other failures with their causes:
        // the independent panic before the poison echoes.
        assert!(s.contains("rank 1 injected crash"), "{s}");
        assert!(s.contains("4/5 ranks failed"), "{s}");
        assert!(s.contains("rank 3: panic: oom"), "{s}");
        assert!(s.contains("rank 0: fabric poisoned"), "{s}");
        assert!(s.contains("rank 2: fabric poisoned"), "{s}");
        let pos = |needle: &str| s.find(needle).unwrap();
        assert!(
            pos("rank 3:") < pos("rank 0:"),
            "origins before echoes: {s}"
        );
    }

    #[test]
    fn dead_ranks_are_origins_only() {
        let e = multi_failure();
        assert_eq!(e.dead_ranks(), vec![1, 3]);
        assert_eq!(e.failed_ranks(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn dead_ranks_always_includes_originator() {
        // Degenerate case: the originating rank's own slot records only
        // the echo (e.g. its typed error was overwritten by poison
        // observed on a later op) — eviction must still include it.
        let e = ClusterError {
            rank: 2,
            cause: ClusterFailure::Panic("dead".into()),
            per_rank: vec![
                None,
                None,
                Some(ClusterFailure::Error(RuntimeError::Poisoned {
                    origin: 2,
                    reason: "x".into(),
                })),
                None,
            ],
            deadline: Duration::from_secs(5),
        };
        assert_eq!(e.dead_ranks(), vec![2]);
    }
}
