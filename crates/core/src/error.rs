//! Typed runtime failures.
//!
//! The paper's §6.1 protocol has no master in the data path, which means
//! a failed device cannot be observed anywhere *except* at the peers it
//! wedges. These types make that observation explicit: every collective
//! returns [`RuntimeError`] instead of panicking or blocking forever, and
//! [`crate::runtime::run_cluster`] folds the per-device outcomes into one
//! [`ClusterError`] naming the originating rank and cause.

use std::fmt;
use std::time::Duration;

/// A failure inside one device's collective operation.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// A peer did not make progress within the collective deadline.
    Timeout {
        /// The rank whose collective timed out (the waiter).
        rank: usize,
        /// The fabric operation that was waiting (`wait_ready`, `recv`,
        /// `allreduce`).
        op: &'static str,
        /// What exactly was being waited for (peer, message key).
        stage: String,
    },
    /// Another device failed first and poisoned the fabric.
    Poisoned {
        /// The rank whose failure poisoned the fabric.
        origin: usize,
        /// The originating failure, rendered.
        reason: String,
    },
    /// The plan or a peer violated the communication protocol.
    Protocol {
        /// The rank that detected the violation.
        rank: usize,
        /// What was violated.
        detail: String,
    },
    /// An injected crash from a [`crate::fault::FaultPlan`].
    InjectedCrash {
        /// The crashed rank.
        rank: usize,
        /// The operation index at which it crashed.
        at_op: u64,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Timeout { rank, op, stage } => {
                write!(f, "rank {rank} timed out in {op} ({stage})")
            }
            RuntimeError::Poisoned { origin, reason } => {
                write!(f, "fabric poisoned by rank {origin}: {reason}")
            }
            RuntimeError::Protocol { rank, detail } => {
                write!(f, "protocol violation on rank {rank}: {detail}")
            }
            RuntimeError::InjectedCrash { rank, at_op } => {
                write!(f, "injected crash of rank {rank} at op {at_op}")
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

/// Why one device thread failed: an unwound panic or a typed error.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterFailure {
    /// The device thread panicked; the payload rendered as text.
    Panic(String),
    /// The device returned a [`RuntimeError`].
    Error(RuntimeError),
}

impl fmt::Display for ClusterFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterFailure::Panic(msg) => write!(f, "panic: {msg}"),
            ClusterFailure::Error(e) => write!(f, "{e}"),
        }
    }
}

/// The outcome of a failed cluster run: the originating rank, its
/// failure, and what every other rank observed.
#[derive(Debug, Clone)]
pub struct ClusterError {
    /// The rank whose failure poisoned the fabric first.
    pub rank: usize,
    /// The originating failure.
    pub cause: ClusterFailure,
    /// Per-rank outcome: `None` for ranks that completed before the
    /// poison reached them, `Some` for ranks that failed.
    pub per_rank: Vec<Option<ClusterFailure>>,
    /// The collective deadline the run was configured with.
    pub deadline: Duration,
}

impl ClusterError {
    /// Ranks other than the originator that observed the failure.
    pub fn surviving_errors(&self) -> impl Iterator<Item = (usize, &ClusterFailure)> {
        self.per_rank
            .iter()
            .enumerate()
            .filter(move |&(r, _)| r != self.rank)
            .filter_map(|(r, e)| e.as_ref().map(|e| (r, e)))
    }
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let failed = self.per_rank.iter().filter(|e| e.is_some()).count();
        write!(
            f,
            "cluster failed: rank {} {} ({failed}/{} ranks failed)",
            self.rank,
            self.cause,
            self.per_rank.len()
        )
    }
}

impl std::error::Error for ClusterError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_rank_and_cause() {
        let e = ClusterError {
            rank: 2,
            cause: ClusterFailure::Error(RuntimeError::Timeout {
                rank: 2,
                op: "recv",
                stage: "peer 1".to_string(),
            }),
            per_rank: vec![None, None, Some(ClusterFailure::Panic("boom".into())), None],
            deadline: Duration::from_secs(5),
        };
        let s = e.to_string();
        assert!(s.contains("rank 2"), "{s}");
        assert!(s.contains("timed out"), "{s}");
    }

    #[test]
    fn surviving_errors_skips_originator_and_completed() {
        let poisoned = ClusterFailure::Error(RuntimeError::Poisoned {
            origin: 1,
            reason: "x".into(),
        });
        let e = ClusterError {
            rank: 1,
            cause: ClusterFailure::Panic("dead".into()),
            per_rank: vec![
                Some(poisoned.clone()),
                Some(ClusterFailure::Panic("dead".into())),
                None,
                Some(poisoned),
            ],
            deadline: Duration::from_secs(5),
        };
        let survivors: Vec<usize> = e.surviving_errors().map(|(r, _)| r).collect();
        assert_eq!(survivors, vec![0, 3]);
    }
}
