//! Property suite for the chunk-pipelined collectives and the
//! communication–compute overlap.
//!
//! Three invariants:
//!
//! 1. **Chunking never changes bits.** For every chunk size — one row per
//!    message, the default-ish 16, and `usize::MAX` (one chunk per
//!    payload, i.e. the old barriered granularity) — and every device
//!    count 2..=8, the pipelined `graph_allgather` / `scatter_backward`
//!    return exactly what the barriered compiled path and the uncompiled
//!    reference return, on every rank.
//! 2. **Overlap never changes bits.** Training with the bucketed
//!    per-layer allreduce and eager allgather (`TrainConfig::overlap`)
//!    produces losses and outputs bitwise equal to the fully barriered
//!    trainer, at every chunk size.
//! 3. **A crash mid-chunk fails fast.** A rank that dies with some
//!    chunks of an operation already delivered ([`FaultEvent::CrashMidOp`])
//!    poisons every survivor within the collective deadline — never a
//!    hang, never a partial result.

use std::time::{Duration, Instant};

use dgcl::trainer::{train_distributed, train_distributed_with, TrainConfig};
use dgcl::{
    build_comm_info, run_cluster, BuildOptions, ClusterFailure, FabricConfig, FaultEvent,
    FaultPlan, RuntimeError,
};
use dgcl_gnn::Architecture;
use dgcl_graph::Dataset;
use dgcl_tensor::{Matrix, XavierInit};
use dgcl_topology::Topology;
use proptest::prelude::*;

/// The chunk sizes the parity property sweeps: per-row streaming, a
/// mid-size chunk, and the degenerate one-chunk-per-payload case.
const CHUNK_SIZES: [usize; 3] = [1, 16, usize::MAX];

/// Runs `f` on a worker thread and panics if it does not finish within
/// `limit` — the explicit hang detector for the chaos case.
fn with_watchdog<T: Send + 'static>(limit: Duration, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = std::sync::mpsc::channel();
    let worker = std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    match rx.recv_timeout(limit) {
        Ok(v) => {
            worker.join().expect("watchdog worker");
            v
        }
        Err(_) => panic!("watchdog: test exceeded {limit:?} — the runtime hung"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Invariant 1: pipelined == barriered == reference, bitwise, per
    /// rank, across chunk sizes and device counts.
    #[test]
    fn pipelined_collectives_match_barriered_and_reference(
        devices in 2usize..=8,
        chunk_idx in 0usize..CHUNK_SIZES.len(),
        graph_seed in 1u64..5,
    ) {
        let chunk_rows = CHUNK_SIZES[chunk_idx];
        let graph = Dataset::WikiTalk.generate(0.0004, graph_seed);
        let options = BuildOptions {
            chunk_rows,
            ..BuildOptions::default()
        };
        let info = build_comm_info(&graph, Topology::dgx1_subset(devices), options);
        let n = graph.num_vertices();
        let mut features = Matrix::zeros(n, 5);
        for v in 0..n {
            features.row_mut(v)[v % 5] = v as f32 + 0.25;
        }
        let per_device = info.dispatch_features(&features);
        let results = run_cluster(&info, |handle| {
            let local = &per_device[handle.rank];
            let fwd_pipe = handle.graph_allgather(local)?;
            let fwd_bar = handle.graph_allgather_barriered(local)?;
            let fwd_ref = handle.graph_allgather_reference(local)?;
            let bwd_pipe = handle.scatter_backward(&fwd_pipe)?;
            let bwd_bar = handle.scatter_backward_barriered(&fwd_pipe)?;
            let bwd_ref = handle.scatter_backward_reference(&fwd_pipe)?;
            Ok((fwd_pipe, fwd_bar, fwd_ref, bwd_pipe, bwd_bar, bwd_ref))
        })
        .expect("healthy cluster");
        for (rank, (fwd_pipe, fwd_bar, fwd_ref, bwd_pipe, bwd_bar, bwd_ref)) in
            results.into_iter().enumerate()
        {
            prop_assert_eq!(
                &fwd_pipe, &fwd_bar,
                "rank {} forward pipelined != barriered (chunk_rows {})", rank, chunk_rows
            );
            prop_assert_eq!(
                &fwd_pipe, &fwd_ref,
                "rank {} forward pipelined != reference (chunk_rows {})", rank, chunk_rows
            );
            prop_assert_eq!(
                &bwd_pipe, &bwd_bar,
                "rank {} backward pipelined != barriered (chunk_rows {})", rank, chunk_rows
            );
            prop_assert_eq!(
                &bwd_pipe, &bwd_ref,
                "rank {} backward pipelined != reference (chunk_rows {})", rank, chunk_rows
            );
        }
    }
}

/// Invariant 2: the overlapped trainer is bitwise equal to the barriered
/// trainer at every chunk size (deterministic sweep — no randomness to
/// explore, so a plain loop beats proptest here).
#[test]
fn overlapped_training_is_bitwise_identical_to_barriered() {
    let graph = Dataset::WikiTalk.generate(0.0005, 3);
    let n = graph.num_vertices();
    let mut init = XavierInit::new(8);
    let features = init.features(n, 6);
    let targets = init.features(n, 3);
    for chunk_rows in CHUNK_SIZES {
        let options = BuildOptions {
            chunk_rows,
            ..BuildOptions::default()
        };
        let info = build_comm_info(&graph, Topology::fig6(), options);
        let mut cfg = TrainConfig::new(Architecture::Gcn, &[6, 3], 2);
        cfg.overlap = false;
        let barriered = train_distributed(&info, &graph, &features, &targets, &cfg)
            .expect("barriered run healthy");
        cfg.overlap = true;
        let overlapped = train_distributed(&info, &graph, &features, &targets, &cfg)
            .expect("overlapped run healthy");
        assert_eq!(
            barriered.epoch_losses, overlapped.epoch_losses,
            "losses diverged under overlap (chunk_rows {chunk_rows})"
        );
        assert_eq!(
            barriered.outputs, overlapped.outputs,
            "outputs diverged under overlap (chunk_rows {chunk_rows})"
        );
    }
}

/// Invariant 3: a rank dying mid-operation — after some chunks of the
/// op already shipped — fails every survivor with a poison naming it,
/// within the collective deadline.
#[test]
fn crash_mid_chunk_fails_every_survivor_within_deadline() {
    with_watchdog(Duration::from_secs(120), || {
        let graph = Dataset::WikiTalk.generate(0.0005, 3);
        let n = graph.num_vertices();
        let mut init = XavierInit::new(8);
        let features = init.features(n, 6);
        let targets = init.features(n, 3);
        // One row per chunk maximises in-flight chunks at the moment of
        // death — the worst case for partially-delivered state.
        let options = BuildOptions {
            chunk_rows: 1,
            ..BuildOptions::default()
        };
        let info = build_comm_info(&graph, Topology::fig6(), options);
        let cfg = TrainConfig::new(Architecture::Gcn, &[6, 3], 2);
        let deadline = Duration::from_secs(20);
        let config = FabricConfig {
            collective_deadline: deadline,
            faults: FaultPlan {
                // Rank 1 dies during op 1 after one pipeline action.
                events: vec![FaultEvent::CrashMidOp {
                    rank: 1,
                    at_op: 1,
                    after_actions: 1,
                }],
            },
            ..FabricConfig::default()
        };
        let start = Instant::now();
        let err = train_distributed_with(&info, &graph, &features, &targets, &cfg, config)
            .expect_err("a rank crashing mid-chunk must fail training");
        assert!(
            start.elapsed() < deadline,
            "unwind took {:?}, deadline was {deadline:?}",
            start.elapsed()
        );
        assert_eq!(err.rank, 1, "{err}");
        assert!(
            matches!(
                err.cause,
                ClusterFailure::Error(RuntimeError::InjectedCrash { rank: 1, at_op: 1 })
            ),
            "{err}"
        );
        let survivors: Vec<_> = err.surviving_errors().collect();
        assert_eq!(survivors.len(), info.num_devices() - 1);
        for (rank, failure) in survivors {
            match failure {
                ClusterFailure::Error(RuntimeError::Poisoned { origin, reason }) => {
                    assert_eq!(*origin, 1, "rank {rank} blames the crashed rank");
                    assert!(reason.contains("injected crash"), "{reason}");
                }
                other => panic!("rank {rank}: expected poison, got {other}"),
            }
        }
    });
}
