//! Property suite for the hot-vertex remote feature cache.
//!
//! The load-bearing invariant (ISSUE 10's acceptance criterion): **caching
//! is a pure volume optimisation** — a run with any cache policy is bitwise
//! identical to the same run with the cache off, across 2..=8 devices, both
//! aggregation backends, sampled and full-batch paths, and serving. Cached
//! rows are f32 copies of the very values a fetch would have produced, and
//! every rank derives the cache sets from the shared [`CommInfo`], so
//! sends and recvs stay paired without negotiation.
//!
//! Around the anchor:
//!
//! * Capacity 0 and capacity ≥ all-remote are exercised explicitly — the
//!   degenerate bounds are where an off-by-one in the send/recv pairing
//!   would deadlock or misplace rows.
//! * The build-time policy route (`BuildOptions::feature_cache`) and the
//!   per-run override (`TrainConfig::feature_cache`) agree.
//! * On a hub-skewed graph the cache actually pays: `Auto` fetches fewer
//!   bytes than capacity 0, and volume is monotone in capacity.

use dgcl::featcache::CachePolicy;
use dgcl::sampling::SamplingConfig;
use dgcl::trainer::{train_distributed, TrainConfig};
use dgcl::{build_comm_info, BackendKind, BuildOptions};
use dgcl_gnn::Architecture;
use dgcl_graph::Dataset;
use dgcl_tensor::{Matrix, XavierInit};
use dgcl_topology::Topology;
use proptest::prelude::*;

const BACKENDS: [BackendKind; 2] = [BackendKind::Planned, BackendKind::Cagnet { replication: 1 }];

const ARCHS: [Architecture; 4] = [
    Architecture::Gcn,
    Architecture::CommNet,
    Architecture::Gin,
    Architecture::Sage,
];

/// Capacity 0, capacity larger than any remote set, and the model-sized
/// policy — the two degenerate bounds plus the production default.
const POLICIES: [CachePolicy; 3] = [
    CachePolicy::Fixed(0),
    CachePolicy::Fixed(1 << 20),
    CachePolicy::Auto,
];

struct Case {
    graph: dgcl_graph::CsrGraph,
    features: Matrix,
    targets: Matrix,
}

fn case(seed: u64) -> Case {
    // WikiTalk's generator is hub-attachment: a few hubs are referenced
    // by almost every partition, the regime the cache targets.
    let graph = Dataset::WikiTalk.generate(0.0005, seed);
    let n = graph.num_vertices();
    let mut init = XavierInit::new(seed);
    let features = init.features(n, 6);
    let targets = init.features(n, 3);
    Case {
        graph,
        features,
        targets,
    }
}

fn base_cfg(arch: Architecture, epochs: usize) -> TrainConfig {
    let mut cfg = TrainConfig::new(arch, &[6, 5, 3], epochs);
    cfg.overlap = false;
    if arch == Architecture::Gin {
        cfg.lr = 1e-6;
    }
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Full-batch: every policy reproduces the cache-off run bit for
    /// bit, per backend, per device count, barriered and overlapped.
    #[test]
    fn full_batch_cache_is_bitwise_off(
        devices in 2usize..=8,
        arch_idx in 0usize..ARCHS.len(),
        backend_idx in 0usize..BACKENDS.len(),
        policy_idx in 0usize..POLICIES.len(),
        overlap in any::<bool>(),
        graph_seed in 1u64..4,
    ) {
        let c = case(graph_seed);
        let info = build_comm_info(
            &c.graph,
            Topology::dgx1_subset(devices),
            BuildOptions::default(),
        );
        let mut cfg = base_cfg(ARCHS[arch_idx], 3);
        cfg.overlap = overlap;
        cfg.backend = Some(BACKENDS[backend_idx]);
        cfg.feature_cache = Some(CachePolicy::Off);
        let off = train_distributed(&info, &c.graph, &c.features, &c.targets, &cfg)
            .expect("healthy cluster");
        cfg.feature_cache = Some(POLICIES[policy_idx]);
        let on = train_distributed(&info, &c.graph, &c.features, &c.targets, &cfg)
            .expect("healthy cluster");
        prop_assert_eq!(
            &off.epoch_losses, &on.epoch_losses,
            "losses diverge: {} devices, {:?}, {:?}, overlap={}",
            devices, BACKENDS[backend_idx], POLICIES[policy_idx], overlap
        );
        prop_assert_eq!(
            off.outputs.max_abs_diff(&on.outputs), 0.0,
            "outputs diverge: {} devices, {:?}, {:?}, overlap={}",
            devices, BACKENDS[backend_idx], POLICIES[policy_idx], overlap
        );
        prop_assert!(off.cache.is_none(), "Off must report no cache stats");
        prop_assert!(on.cache.is_some(), "active policy must report stats");
    }

    /// Sampled block path (finite fanouts): the cache serves layer-0
    /// fetch and prefetch without perturbing a single bit.
    #[test]
    fn sampled_cache_is_bitwise_off(
        devices in 2usize..=6,
        backend_idx in 0usize..BACKENDS.len(),
        policy_idx in 0usize..POLICIES.len(),
        fanout in 2usize..5,
        batch_size in 16usize..64,
        prefetch in any::<bool>(),
    ) {
        let c = case(5);
        let info = build_comm_info(
            &c.graph,
            Topology::dgx1_subset(devices),
            BuildOptions::default(),
        );
        let mut cfg = base_cfg(Architecture::Gcn, 2);
        cfg.backend = Some(BACKENDS[backend_idx]);
        let mut scfg = SamplingConfig::new(batch_size, vec![Some(fanout), Some(fanout)]);
        scfg.prefetch = prefetch;
        cfg.sampling = Some(scfg);
        cfg.feature_cache = Some(CachePolicy::Off);
        let off = train_distributed(&info, &c.graph, &c.features, &c.targets, &cfg)
            .expect("healthy cluster");
        cfg.feature_cache = Some(POLICIES[policy_idx]);
        let on = train_distributed(&info, &c.graph, &c.features, &c.targets, &cfg)
            .expect("healthy cluster");
        prop_assert_eq!(
            &off.epoch_losses, &on.epoch_losses,
            "losses diverge: {} devices, {:?}, {:?}, prefetch={}",
            devices, BACKENDS[backend_idx], POLICIES[policy_idx], prefetch
        );
        prop_assert_eq!(
            off.outputs.max_abs_diff(&on.outputs), 0.0,
            "outputs diverge: {} devices, {:?}, {:?}, prefetch={}",
            devices, BACKENDS[backend_idx], POLICIES[policy_idx], prefetch
        );
    }

    /// Exact (masked, fanout ∞) sampling: same invariant on the path
    /// that gathers whole frontier closures per batch.
    #[test]
    fn exact_sampled_cache_is_bitwise_off(
        devices in 2usize..=6,
        backend_idx in 0usize..BACKENDS.len(),
        policy_idx in 0usize..POLICIES.len(),
    ) {
        let c = case(7);
        let n = c.graph.num_vertices();
        let info = build_comm_info(
            &c.graph,
            Topology::dgx1_subset(devices),
            BuildOptions::default(),
        );
        let mut cfg = base_cfg(Architecture::Gcn, 2);
        cfg.backend = Some(BACKENDS[backend_idx]);
        cfg.sampling = Some(SamplingConfig::exact(n / 3, 2));
        cfg.feature_cache = Some(CachePolicy::Off);
        let off = train_distributed(&info, &c.graph, &c.features, &c.targets, &cfg)
            .expect("healthy cluster");
        cfg.feature_cache = Some(POLICIES[policy_idx]);
        let on = train_distributed(&info, &c.graph, &c.features, &c.targets, &cfg)
            .expect("healthy cluster");
        prop_assert_eq!(&off.epoch_losses, &on.epoch_losses, "losses diverge");
        prop_assert_eq!(off.outputs.max_abs_diff(&on.outputs), 0.0, "outputs diverge");
    }
}

#[test]
fn build_time_policy_matches_run_override() {
    // A cache admitted at `build_comm_info` time (BuildOptions) must be
    // the same cache as the per-run TrainConfig override.
    let c = case(11);
    let topo = Topology::fig6();
    let baked = build_comm_info(
        &c.graph,
        topo.clone(),
        BuildOptions {
            feature_cache: CachePolicy::Auto,
            ..BuildOptions::default()
        },
    );
    let plain = build_comm_info(&c.graph, topo, BuildOptions::default());
    let cfg = base_cfg(Architecture::Gcn, 2);
    // cfg.feature_cache is None → the baked run uses the build policy.
    let a = train_distributed(&baked, &c.graph, &c.features, &c.targets, &cfg)
        .expect("healthy cluster");
    let mut cfg_override = cfg.clone();
    cfg_override.feature_cache = Some(CachePolicy::Auto);
    let b = train_distributed(&plain, &c.graph, &c.features, &c.targets, &cfg_override)
        .expect("healthy cluster");
    assert_eq!(a.epoch_losses, b.epoch_losses);
    assert_eq!(a.outputs.max_abs_diff(&b.outputs), 0.0);
    let (sa, sb) = (
        a.cache.expect("baked stats"),
        b.cache.expect("override stats"),
    );
    assert_eq!(sa.capacity_rows, sb.capacity_rows);
    assert_eq!(sa.bytes_fetched, sb.bytes_fetched);
}

#[test]
fn cache_volume_is_monotone_and_pays_on_hubs() {
    // On a hub-skewed graph the fetched byte volume must be monotone
    // nonincreasing in capacity (cache sets are nested top-k prefixes)
    // and Auto must beat the uncached baseline outright.
    let c = case(3);
    let info = build_comm_info(&c.graph, Topology::fig6(), BuildOptions::default());
    let mut cfg = base_cfg(Architecture::Gcn, 2);
    cfg.sampling = Some(SamplingConfig::new(64, vec![Some(4), Some(4)]));
    let mut fetched = Vec::new();
    for policy in [
        CachePolicy::Fixed(0),
        CachePolicy::Fixed(8),
        CachePolicy::Fixed(64),
        CachePolicy::Fixed(1 << 20),
    ] {
        cfg.feature_cache = Some(policy);
        let report = train_distributed(&info, &c.graph, &c.features, &c.targets, &cfg)
            .expect("healthy cluster");
        let stats = report.cache.expect("active policy reports stats");
        fetched.push((policy, stats.bytes_fetched, stats.bytes_saved));
    }
    let baseline = fetched[0].1;
    assert!(baseline > 0, "uncached baseline must fetch something");
    // Cache sets are nested top-k prefixes of one ranking, so volume
    // is monotone nonincreasing across growing fixed capacities.
    for pair in fetched.windows(2) {
        if let [(pa, a, _), (pb, b, _)] = pair {
            assert!(b <= a, "{pb:?} fetched {b} > {pa:?} fetched {a}");
        }
    }
    // Auto picks its own capacity per rank; wherever it lands on the
    // ranking, it must beat the uncached baseline on a hub graph.
    cfg.feature_cache = Some(CachePolicy::Auto);
    let auto_report =
        train_distributed(&info, &c.graph, &c.features, &c.targets, &cfg).expect("healthy cluster");
    let auto_stats = auto_report.cache.expect("active policy reports stats");
    let (auto_fetched, auto_saved) = (auto_stats.bytes_fetched, auto_stats.bytes_saved);
    assert!(
        auto_fetched < baseline,
        "Auto did not reduce volume: {auto_fetched} vs {baseline}"
    );
    assert!(auto_saved > 0, "Auto must report saved bytes");
}

#[test]
fn serving_cache_is_bitwise_uncached() {
    // Serving closure reuse: a bounded layer-0 cache in the inference
    // server answers bitwise the same embeddings as the uncached server.
    use dgcl::{InferenceServer, ServedFuture, ServingConfig};
    use dgcl_gnn::GnnNetwork;
    let c = case(13);
    let n = c.graph.num_vertices();
    let net = GnnNetwork::new(Architecture::Sage, &[6, 5, 3], 42);
    let probes: Vec<u32> = (0..n as u32).step_by(37).collect();
    let answers = |cache_rows: Option<usize>| -> Vec<Vec<f32>> {
        let cfg = ServingConfig {
            cache_rows,
            ..ServingConfig::default()
        };
        let server = InferenceServer::spawn(&c.graph, &c.features, &net, cfg);
        let futs: Vec<ServedFuture> = probes
            .iter()
            .map(|&v| server.query(v).expect("in range"))
            .collect();
        futs.into_iter()
            .map(|f| {
                f.wait()
                    .expect("server alive")
                    .embedding
                    .as_slice()
                    .to_vec()
            })
            .collect()
    };
    let plain = answers(None);
    for cap in [0, n / 16, n] {
        assert_eq!(plain, answers(Some(cap)), "cache_rows={cap} diverged");
    }
}
