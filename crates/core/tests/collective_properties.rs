//! Property suite for the collective algorithm zoo.
//!
//! The zoo's contract is *bitwise* parity: ring and halving/doubling
//! allreduce must reproduce the rendezvous reference exactly — same
//! fold order up to commutations IEEE-754 addition preserves — on every
//! rank, for every device count 2..=8 (including non-powers-of-two,
//! which exercise the uneven Bruck rounds), at every chunk size from
//! per-element streaming to one-chunk-per-payload. Broadcast must
//! deliver the root's matrix bit-for-bit under all three tree shapes.
//! None of it may depend on the tensor pool's compute-thread count or
//! on run-to-run scheduling.

use std::sync::Mutex;

use dgcl::{
    build_comm_info, run_cluster_with, AllreduceAlgo, BroadcastAlgo, BuildOptions, FabricConfig,
};
use dgcl_graph::Dataset;
use dgcl_tensor::{pool, Matrix, XavierInit};
use dgcl_topology::Topology;
use proptest::prelude::*;

/// Chunk sizes (in elements) the parity properties sweep: per-element
/// streaming, a small chunk, and one chunk per payload.
const CHUNK_SIZES: [usize; 3] = [1, 16, usize::MAX];

/// A mixed-shape gradient-bucket workload whose values make float
/// association matter: magnitudes spread over several orders, signs
/// mixed, and a negative zero in every rank's first matrix (the value
/// that catches zero-seeded accumulators).
fn test_mats(rank: usize) -> Vec<Matrix> {
    let shapes = [(7usize, 9usize), (1, 1), (4, 13)];
    let mut idx = 0usize;
    shapes
        .iter()
        .map(|&(r, c)| {
            let mut m = Matrix::zeros(r, c);
            for x in m.as_mut_slice() {
                let i = idx as f32;
                *x = (((rank + 1) as f32).sqrt() * (i - 7.3) + 0.01 * i)
                    * 10f32.powi((idx % 5) as i32 - 2);
                idx += 1;
            }
            if rank % 2 == 1 {
                m.as_mut_slice()[0] = -0.0;
            }
            m
        })
        .collect()
}

/// The rendezvous fold computed locally: contributions added in rank
/// order, left-associated — the bit pattern every algorithm must hit.
fn expected_sum(devices: usize) -> Vec<Matrix> {
    let mut acc = test_mats(0);
    for rank in 1..devices {
        for (a, m) in acc.iter_mut().zip(test_mats(rank)) {
            a.add_assign(&m);
        }
    }
    acc
}

fn comm_info(devices: usize) -> dgcl::CommInfo {
    let graph = Dataset::WikiTalk.generate(0.0004, 1);
    build_comm_info(
        &graph,
        Topology::dgx1_subset(devices),
        BuildOptions::default(),
    )
}

fn config(chunk: usize) -> FabricConfig {
    FabricConfig {
        collective_chunk: chunk,
        ..FabricConfig::default()
    }
}

/// Runs all three allreduce algorithms in one cluster and returns the
/// per-rank results as (rendezvous, ring, halving-doubling).
type TripleResult = Vec<(Vec<Matrix>, Vec<Matrix>, Vec<Matrix>)>;
fn run_triple(
    info: &dgcl::CommInfo,
    chunk: usize,
    mats_of: impl Fn(usize) -> Vec<Matrix> + Sync,
) -> TripleResult {
    run_cluster_with(info, config(chunk), |handle| {
        let rdv = handle.allreduce_with(AllreduceAlgo::Rendezvous, mats_of(handle.rank))?;
        let ring = handle.allreduce_with(AllreduceAlgo::Ring, mats_of(handle.rank))?;
        let hd = handle.allreduce_with(AllreduceAlgo::HalvingDoubling, mats_of(handle.rank))?;
        Ok((rdv, ring, hd))
    })
    .expect("healthy cluster")
}

/// Exhaustive deterministic grid: every algorithm, every device count
/// 2..=8, every chunk size — bitwise equal to the rank-ordered fold.
#[test]
fn all_algorithms_are_bitwise_identical_across_the_grid() {
    for devices in 2..=8usize {
        let info = comm_info(devices);
        let expect = expected_sum(devices);
        for chunk in CHUNK_SIZES {
            let results = run_triple(&info, chunk, test_mats);
            for (rank, (rdv, ring, hd)) in results.iter().enumerate() {
                assert_eq!(
                    rdv, &expect,
                    "rank {rank}: rendezvous != rank-ordered fold (n={devices} chunk={chunk})"
                );
                assert_eq!(
                    ring, rdv,
                    "rank {rank}: ring != rendezvous (n={devices} chunk={chunk})"
                );
                assert_eq!(
                    hd, rdv,
                    "rank {rank}: halving-doubling != rendezvous (n={devices} chunk={chunk})"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random data, random shapes: the three algorithms still agree
    /// bitwise on every rank.
    #[test]
    fn algorithms_agree_on_random_data(
        devices in 2usize..=8,
        chunk_idx in 0usize..CHUNK_SIZES.len(),
        seed in 1u64..1000,
        rows in 1usize..40,
        cols in 1usize..8,
    ) {
        let chunk = CHUNK_SIZES[chunk_idx];
        let info = comm_info(devices);
        let mats_of = |rank: usize| -> Vec<Matrix> {
            let mut init = XavierInit::new(seed * 64 + rank as u64);
            vec![init.features(rows, cols), init.features(1, 1)]
        };
        let results = run_triple(&info, chunk, mats_of);
        let (rdv0, _, _) = &results[0];
        for (rank, (rdv, ring, hd)) in results.iter().enumerate() {
            prop_assert_eq!(rdv, rdv0, "rank {} disagrees with rank 0", rank);
            prop_assert_eq!(ring, rdv, "rank {}: ring != rendezvous", rank);
            prop_assert_eq!(hd, rdv, "rank {}: halving-doubling != rendezvous", rank);
        }
    }
}

/// Every broadcast algorithm delivers the root's matrix bit-for-bit on
/// every rank, for first and last roots across the device grid.
#[test]
fn broadcast_delivers_the_root_matrix_bitwise() {
    for devices in [2usize, 3, 5, 8] {
        let info = comm_info(devices);
        for chunk in CHUNK_SIZES {
            for root in [0, devices - 1] {
                let payload = |rank: usize| {
                    let mut m = Matrix::zeros(6, 11);
                    for (i, x) in m.as_mut_slice().iter_mut().enumerate() {
                        *x = (rank as f32 + 1.0) * (i as f32 - 31.5) * 0.125;
                    }
                    m
                };
                let results = run_cluster_with(&info, config(chunk), |handle| {
                    let flat =
                        handle.broadcast_with(BroadcastAlgo::Flat, root, payload(handle.rank))?;
                    let chain =
                        handle.broadcast_with(BroadcastAlgo::Chain, root, payload(handle.rank))?;
                    let tree = handle.broadcast_with(
                        BroadcastAlgo::BinomialTree,
                        root,
                        payload(handle.rank),
                    )?;
                    Ok((flat, chain, tree))
                })
                .expect("healthy cluster");
                let expect = payload(root);
                for (rank, (flat, chain, tree)) in results.iter().enumerate() {
                    assert_eq!(
                        flat, &expect,
                        "rank {rank}: flat broadcast (n={devices} root={root} chunk={chunk})"
                    );
                    assert_eq!(
                        chain, &expect,
                        "rank {rank}: chain broadcast (n={devices} root={root} chunk={chunk})"
                    );
                    assert_eq!(
                        tree, &expect,
                        "rank {rank}: tree broadcast (n={devices} root={root} chunk={chunk})"
                    );
                }
            }
        }
    }
}

/// Collective results must not depend on the tensor pool's
/// compute-thread count, nor on run-to-run thread scheduling.
#[test]
fn results_are_invariant_to_compute_threads_and_reruns() {
    // set_compute_threads is process-global; serialise against any
    // future test that also touches it.
    static THREADS: Mutex<()> = Mutex::new(());
    let _guard = THREADS.lock().unwrap();
    let info = comm_info(5);
    let before = pool::compute_threads();
    let mut runs = Vec::new();
    for threads in [1usize, 4, 4] {
        pool::set_compute_threads(threads);
        runs.push(run_triple(&info, 16, test_mats));
    }
    pool::set_compute_threads(before);
    for run in &runs[1..] {
        assert_eq!(run.len(), runs[0].len(), "same device count across reruns");
        for (rank, (a, b)) in runs[0].iter().zip(run).enumerate() {
            assert_eq!(a, b, "rank {rank} diverged across thread counts / reruns");
        }
    }
}

/// An empty allreduce must still participate in op accounting: ops
/// after it stay aligned across ranks, whatever algorithm they use.
#[test]
fn empty_allreduce_keeps_op_ids_aligned() {
    let info = comm_info(4);
    let expect = expected_sum(4);
    let results = run_cluster_with(&info, config(16), |handle| {
        let empty = handle.allreduce(Vec::new())?;
        assert!(empty.is_empty(), "empty in, empty out");
        // If the empty op skipped accounting on any rank, these keys
        // would no longer match across ranks and the ops would stall
        // or mispair.
        let ring = handle.allreduce_with(AllreduceAlgo::Ring, test_mats(handle.rank))?;
        let empty2 = handle.allreduce_with(AllreduceAlgo::HalvingDoubling, Vec::new())?;
        assert!(empty2.is_empty());
        let hd = handle.allreduce_with(AllreduceAlgo::HalvingDoubling, test_mats(handle.rank))?;
        Ok((ring, hd))
    })
    .expect("healthy cluster");
    for (rank, (ring, hd)) in results.iter().enumerate() {
        assert_eq!(ring, &expect, "rank {rank}: ring after empty allreduce");
        assert_eq!(
            hd, &expect,
            "rank {rank}: halving-doubling after empty allreduce"
        );
    }
}

/// Single-element and tiny vectors (fewer elements than devices) leave
/// some halving/doubling segments empty — both sides must skip them
/// symmetrically.
#[test]
fn tiny_vectors_with_empty_segments_stay_bitwise() {
    for devices in [3usize, 5, 8] {
        let info = comm_info(devices);
        for elems in [1usize, 2, 3] {
            let mats_of = move |rank: usize| {
                let mut m = Matrix::zeros(1, elems);
                for (i, x) in m.as_mut_slice().iter_mut().enumerate() {
                    *x = (rank as f32 - 1.5) * 0.3 + i as f32;
                }
                vec![m]
            };
            let results = run_triple(&info, 1, mats_of);
            for (rank, (rdv, ring, hd)) in results.iter().enumerate() {
                assert_eq!(ring, rdv, "rank {rank}: ring (n={devices} elems={elems})");
                assert_eq!(hd, rdv, "rank {rank}: hd (n={devices} elems={elems})");
            }
        }
    }
}
