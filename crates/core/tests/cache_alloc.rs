//! Counting-allocator regression test for the per-batch sampling pool.
//!
//! [`BlockPool`] exists so steady-state sampled training stops paying the
//! allocator per batch: block carcasses, chain containers and scratch all
//! recycle. This binary installs a counting `#[global_allocator]` and pins
//! the contract — **a warm pool samples a batch with zero heap
//! allocations** — so a future "harmless" `collect()` inside the hot path
//! fails CI instead of silently re-inflating allocator traffic.
//!
//! Everything lives in one `#[test]` so no sibling test can allocate
//! concurrently and pollute the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use dgcl_graph::{sample_blocks, BlockPool, CsrGraph, VertexId};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

#[test]
fn warm_pool_samples_with_zero_allocations() {
    let graph: CsrGraph = dgcl_graph::generators::hub_attachment(2_000, 20, 0.8, 7);
    let seeds: Vec<VertexId> = (0..128).map(|i| i * 13 % 2_000).collect();
    let fanouts = [Some(4), Some(3)];

    // The plain path allocates every batch — the baseline the pool beats.
    let before_plain = allocs();
    let plain = sample_blocks(&graph, &seeds, &fanouts, 1).expect("seeds in range");
    let plain_allocs = allocs() - before_plain;
    assert!(plain_allocs > 0, "unpooled sampling must hit the allocator");

    // Warm the pool over the same seed schedule the measurement replays:
    // the first pass grows every Vec to the schedule's high-water mark.
    let mut pool = BlockPool::new();
    for round in 0u64..5 {
        let chain = pool
            .sample_blocks(&graph, &seeds, &fanouts, 1 + round)
            .expect("seeds in range");
        pool.recycle(chain);
    }

    // Steady state: identical batch shapes, zero allocator traffic.
    let before = allocs();
    for round in 0u64..5 {
        let chain = pool
            .sample_blocks(&graph, &seeds, &fanouts, 1 + round)
            .expect("seeds in range");
        pool.recycle(chain);
    }
    let steady = allocs() - before;
    assert_eq!(
        steady, 0,
        "warm BlockPool allocated {steady} times over 5 batches \
         (plain path: {plain_allocs} per batch)"
    );

    // The pooled output is still the plain output, bit for bit.
    let chain = pool
        .sample_blocks(&graph, &seeds, &fanouts, 1)
        .expect("seeds in range");
    assert_eq!(chain, plain, "pooling changed the sampled blocks");
}
