//! Property suite for training checkpoints.
//!
//! The invariant elastic recovery rests on: **resuming from a
//! checkpoint is invisible**. For any crash epoch, any serialization
//! round trip, any architecture and any overlap mode, a run that stops
//! mid-training, serializes its checkpoint to bytes, deserializes and
//! resumes, is *bitwise* identical to the uninterrupted run — the same
//! loss at every later epoch and the same final outputs. Without this,
//! "recovered" training would be a different trajectory and the
//! recovery suite's parity gate meaningless.

use dgcl::trainer::{train_distributed_resumable, TrainConfig};
use dgcl::{
    build_comm_info, BuildOptions, Checkpoint, CheckpointConfig, CheckpointSink, FabricConfig,
};
use dgcl_gnn::Architecture;
use dgcl_graph::Dataset;
use dgcl_tensor::XavierInit;
use dgcl_topology::Topology;
use proptest::prelude::*;

const ARCHS: [Architecture; 3] = [Architecture::Gcn, Architecture::CommNet, Architecture::Sage];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Stop after `stop_epoch` epochs, round-trip the checkpoint
    /// through bytes, resume to the full epoch count: bitwise equal to
    /// never stopping.
    #[test]
    fn serialized_resume_is_bitwise_invisible(
        stop_epoch in 1usize..4,
        arch_idx in 0usize..ARCHS.len(),
        overlap in any::<bool>(),
        graph_seed in 1u64..4,
    ) {
        let epochs = 4;
        let graph = Dataset::WikiTalk.generate(0.0004, graph_seed);
        let n = graph.num_vertices();
        let info = build_comm_info(&graph, Topology::fig6(), BuildOptions::default());
        let mut init = XavierInit::new(graph_seed);
        let features = init.features(n, 6);
        let targets = init.features(n, 3);
        let mut cfg = TrainConfig::new(ARCHS[arch_idx], &[6, 4, 3], epochs);
        cfg.overlap = overlap;

        let uninterrupted = train_distributed_resumable(
            &info, &graph, &features, &targets, &cfg,
            FabricConfig::default(), None, None,
        ).expect("healthy cluster");

        // Prefix run to `stop_epoch`, checkpointing every epoch.
        let mut prefix_cfg = cfg.clone();
        prefix_cfg.epochs = stop_epoch;
        let ck = CheckpointConfig::default();
        train_distributed_resumable(
            &info, &graph, &features, &targets, &prefix_cfg,
            FabricConfig::default(), None, Some(&ck),
        ).expect("healthy prefix");
        let ckpt = ck.store.latest().expect("per-epoch checkpoint");
        prop_assert_eq!(ckpt.epochs_done, stop_epoch);

        // The serialization round trip must be exact...
        let revived = Checkpoint::deserialize(&ckpt.serialize()).expect("round trip");
        prop_assert_eq!(&revived, &ckpt);

        // ...and the resumed run indistinguishable ever after.
        let resumed = train_distributed_resumable(
            &info, &graph, &features, &targets, &cfg,
            FabricConfig::default(), Some(&revived), None,
        ).expect("healthy resume");
        prop_assert_eq!(&resumed.epoch_losses, &uninterrupted.epoch_losses,
            "losses diverged after resuming from epoch {}", stop_epoch);
        prop_assert_eq!(&resumed.outputs, &uninterrupted.outputs,
            "outputs diverged after resuming from epoch {}", stop_epoch);
    }

    /// The published checkpoint's loss history is exactly the prefix of
    /// the run's loss history — epoch state, not just weights.
    #[test]
    fn checkpoint_losses_are_the_run_prefix(
        every in 1usize..4,
        graph_seed in 1u64..4,
    ) {
        let graph = Dataset::WikiTalk.generate(0.0004, graph_seed);
        let n = graph.num_vertices();
        let info = build_comm_info(&graph, Topology::fig6(), BuildOptions::default());
        let mut init = XavierInit::new(graph_seed + 100);
        let features = init.features(n, 5);
        let targets = init.features(n, 2);
        let cfg = TrainConfig::new(Architecture::Gcn, &[5, 2], 5);
        let sink = dgcl::MemorySink::shared();
        let ck = CheckpointConfig {
            store: Default::default(),
            spec: Some(dgcl::CheckpointSpec { every, sink: sink.clone() }),
        };
        let report = train_distributed_resumable(
            &info, &graph, &features, &targets, &cfg,
            FabricConfig::default(), None, Some(&ck),
        ).expect("healthy cluster");
        let latest = ck.store.latest().expect("published");
        prop_assert_eq!(latest.epochs_done, cfg.epochs);
        prop_assert_eq!(&latest.losses, &report.epoch_losses);
        let from_sink = Checkpoint::deserialize(&sink.load().expect("sink written"))
            .expect("sink bytes parse");
        let k = from_sink.epochs_done;
        prop_assert_eq!(k, (cfg.epochs / every) * every, "sink cadence");
        prop_assert_eq!(&from_sink.losses[..], &report.epoch_losses[..k]);
    }
}
