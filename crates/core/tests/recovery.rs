//! Elastic-recovery chaos suite: checkpoint, evict, replan, resume.
//!
//! The invariants, from the "Elastic recovery" section of DESIGN.md:
//!
//! 1. **Bounded loss.** With per-epoch in-memory checkpoints a crash
//!    costs at most the in-flight epoch; with sink-only resume at most
//!    `every - 1` further completed epochs.
//! 2. **Recovery is restart.** The recovered run is *bitwise* equal to
//!    a fresh `train_distributed_resumable` started from the same
//!    checkpoint on the same survivor partition — eviction and replan
//!    add no numerical wiggle room.
//! 3. **No hang.** Every recovery path completes under a watchdog.

use std::time::Duration;

use dgcl::trainer::{train_distributed_resumable, TrainConfig};
use dgcl::{
    build_comm_info, train_elastic, BuildOptions, CheckpointSpec, FabricConfig, FaultEvent,
    FaultPlan, MemorySink, RecoveryConfig, ResumePolicy,
};
use dgcl_gnn::Architecture;
use dgcl_graph::{CsrGraph, Dataset};
use dgcl_tensor::{Matrix, XavierInit};
use dgcl_topology::Topology;

/// Runs `f` on a worker thread and panics if it does not finish within
/// `limit` — recovery must never trade a crash for a hang.
fn with_watchdog<T: Send + 'static>(limit: Duration, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = std::sync::mpsc::channel();
    let worker = std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    match rx.recv_timeout(limit) {
        Ok(v) => {
            worker.join().expect("watchdog worker");
            v
        }
        Err(_) => panic!("watchdog: test exceeded {limit:?} — recovery hung"),
    }
}

struct Case {
    graph: CsrGraph,
    features: Matrix,
    targets: Matrix,
    cfg: TrainConfig,
}

fn training_case(epochs: usize) -> Case {
    let graph = Dataset::WikiTalk.generate(0.0005, 3);
    let n = graph.num_vertices();
    let mut init = XavierInit::new(8);
    let features = init.features(n, 6);
    let targets = init.features(n, 3);
    let cfg = TrainConfig::new(Architecture::Gcn, &[6, 4, 3], epochs);
    Case {
        graph,
        features,
        targets,
        cfg,
    }
}

fn faulty_first_attempt(faults: FaultPlan) -> Vec<FabricConfig> {
    vec![FabricConfig {
        faults,
        collective_deadline: Duration::from_secs(10),
        ..FabricConfig::default()
    }]
}

/// The acceptance gate: recovery from an epoch-boundary crash resumes
/// on the survivors within the loss bound, and the final state is
/// bitwise identical to a fresh restart from the same checkpoint on the
/// same survivor partition.
#[test]
fn crash_at_epoch_recovers_bitwise_equal_to_fresh_restart() {
    with_watchdog(Duration::from_secs(120), || {
        let Case {
            graph,
            features,
            targets,
            cfg,
        } = training_case(5);
        let rcfg = RecoveryConfig {
            fabrics: faulty_first_attempt(FaultPlan::crash_at_epoch(2, 3)),
            ..RecoveryConfig::default()
        };
        let elastic = train_elastic(&graph, Topology::fig6(), &features, &targets, &cfg, &rcfg)
            .expect("one crash fits the default eviction budget");
        assert_eq!(elastic.events.len(), 1, "exactly one recovery round");
        let ev = &elastic.events[0];
        assert_eq!(ev.evicted, vec![2]);
        assert_eq!(ev.survivors, 3);
        // In-memory per-epoch checkpoints: all 3 completed epochs kept.
        assert_eq!(ev.resumed_epoch, 3);
        assert_eq!(elastic.total_epochs_lost(), 0);
        assert_eq!(elastic.report.epoch_losses.len(), cfg.epochs);
        assert!(ev.cause.contains("epoch 3"), "{}", ev.cause);

        // Reference: restart from the same checkpoint on the same
        // survivor CommInfo, no recovery machinery involved. The event
        // does not carry the checkpoint, but checkpoints are
        // deterministic: train the same 3-epoch prefix uninterrupted on
        // the original partition and capture it again.
        let info4 = build_comm_info(&graph, Topology::fig6(), BuildOptions::default());
        let mut pre_cfg = cfg.clone();
        pre_cfg.epochs = ev.resumed_epoch;
        let ck = dgcl::CheckpointConfig::default();
        train_distributed_resumable(
            &info4,
            &graph,
            &features,
            &targets,
            &pre_cfg,
            FabricConfig::default(),
            None,
            Some(&ck),
        )
        .expect("healthy prefix run");
        let ckpt = ck.store.latest().expect("checkpoint after 3 epochs");
        assert_eq!(ckpt.epochs_done, 3);
        let fresh = train_distributed_resumable(
            &elastic.final_info,
            &graph,
            &features,
            &targets,
            &cfg,
            FabricConfig::default(),
            Some(&ckpt),
            None,
        )
        .expect("healthy survivor cluster");
        assert_eq!(
            elastic.report.epoch_losses, fresh.epoch_losses,
            "recovered losses must be bitwise equal to a fresh restart"
        );
        assert_eq!(
            elastic.report.outputs, fresh.outputs,
            "recovered outputs must be bitwise equal to a fresh restart"
        );
    });
}

/// A mid-collective crash (the dirty half of the matrix): the epoch in
/// flight is lost, every completed epoch survives via the in-memory
/// store, and training still reaches the target.
#[test]
fn crash_mid_op_loses_at_most_the_inflight_epoch() {
    with_watchdog(Duration::from_secs(120), || {
        let Case {
            graph,
            features,
            targets,
            cfg,
        } = training_case(4);
        // Kill rank 1 deep into the second epoch's collectives.
        let rcfg = RecoveryConfig {
            fabrics: faulty_first_attempt(FaultPlan {
                events: vec![FaultEvent::CrashMidOp {
                    rank: 1,
                    at_op: 9,
                    after_actions: 3,
                }],
            }),
            ..RecoveryConfig::default()
        };
        let elastic = train_elastic(&graph, Topology::fig6(), &features, &targets, &cfg, &rcfg)
            .expect("one crash fits the budget");
        assert_eq!(elastic.events.len(), 1);
        let ev = &elastic.events[0];
        assert_eq!(ev.evicted, vec![1]);
        assert_eq!(elastic.total_epochs_lost(), 0, "completed epochs all kept");
        assert!(
            ev.resumed_epoch >= 1,
            "at least the first epoch completed before op 9"
        );
        assert_eq!(elastic.report.epoch_losses.len(), cfg.epochs);
        assert_eq!(elastic.final_devices, 3);
    });
}

/// Seeded random crashes (the chaos entry point): whatever rank and
/// epoch the seed picks, recovery completes within the loss bound.
#[test]
fn seeded_crashes_always_recover() {
    with_watchdog(Duration::from_secs(300), || {
        let Case {
            graph,
            features,
            targets,
            cfg,
        } = training_case(4);
        for seed in 0..4 {
            let rcfg = RecoveryConfig {
                fabrics: faulty_first_attempt(FaultPlan::seeded_crash(seed, 4, cfg.epochs)),
                ..RecoveryConfig::default()
            };
            let elastic = train_elastic(&graph, Topology::fig6(), &features, &targets, &cfg, &rcfg)
                .unwrap_or_else(|e| panic!("seed {seed}: recovery failed: {e}"));
            assert_eq!(elastic.events.len(), 1, "seed {seed}");
            assert_eq!(elastic.total_epochs_lost(), 0, "seed {seed}");
            assert_eq!(elastic.report.epoch_losses.len(), cfg.epochs, "seed {seed}");
            assert_eq!(elastic.final_devices, 3, "seed {seed}");
        }
    });
}

/// Two sequential failures: 4 GPUs → 3 → 2, each round evicting,
/// replanning and resuming; the loss history stays complete.
#[test]
fn sequential_failures_evict_down_to_two_gpus() {
    with_watchdog(Duration::from_secs(180), || {
        let Case {
            graph,
            features,
            targets,
            cfg,
        } = training_case(6);
        let fault0 = FaultPlan::crash_at_epoch(3, 2);
        let fault1 = FaultPlan::crash_at_epoch(0, 4);
        let rcfg = RecoveryConfig {
            fabrics: vec![
                FabricConfig {
                    faults: fault0,
                    ..FabricConfig::default()
                },
                FabricConfig {
                    faults: fault1,
                    ..FabricConfig::default()
                },
            ],
            max_evictions: 2,
            ..RecoveryConfig::default()
        };
        let elastic = train_elastic(&graph, Topology::fig6(), &features, &targets, &cfg, &rcfg)
            .expect("two crashes fit the budget");
        assert_eq!(elastic.events.len(), 2);
        assert_eq!(elastic.events[0].survivors, 3);
        assert_eq!(elastic.events[1].survivors, 2);
        assert_eq!(elastic.events[1].evicted, vec![0]);
        assert_eq!(elastic.final_devices, 2);
        assert_eq!(elastic.total_epochs_lost(), 0);
        assert_eq!(elastic.report.epoch_losses.len(), cfg.epochs);
    });
}

/// Sink-only resume (driver restart): the loss is bounded by the
/// serialization cadence, never more.
#[test]
fn sink_only_resume_bounds_loss_by_cadence() {
    with_watchdog(Duration::from_secs(120), || {
        let Case {
            graph,
            features,
            targets,
            cfg,
        } = training_case(6);
        let every = 2;
        let sink = MemorySink::shared();
        let rcfg = RecoveryConfig {
            fabrics: faulty_first_attempt(FaultPlan::crash_at_epoch(1, 5)),
            spec: Some(CheckpointSpec {
                every,
                sink: sink.clone(),
            }),
            resume: ResumePolicy::SinkOnly,
            ..RecoveryConfig::default()
        };
        let elastic = train_elastic(&graph, Topology::fig6(), &features, &targets, &cfg, &rcfg)
            .expect("one crash fits the budget");
        assert_eq!(elastic.events.len(), 1);
        let ev = &elastic.events[0];
        // Crash entering epoch 5: memory had 5 epochs, the sink 4.
        assert_eq!(ev.resumed_epoch, 4);
        assert_eq!(ev.epochs_lost, 1);
        assert!(
            ev.epochs_lost < every,
            "sink-only loss {} must stay under the cadence {every}",
            ev.epochs_lost
        );
        assert!(sink.stores() >= 2, "epochs 2 and 4 were serialized");
        assert_eq!(elastic.report.epoch_losses.len(), cfg.epochs);
    });
}

/// The warm replan must actually use the demand-class cache: the
/// recovery event's planner stats show cache commits, and the initial
/// cold plan shows none.
#[test]
fn recovery_replans_warm() {
    with_watchdog(Duration::from_secs(120), || {
        let Case {
            graph,
            features,
            targets,
            cfg,
        } = training_case(3);
        let rcfg = RecoveryConfig {
            fabrics: faulty_first_attempt(FaultPlan::crash_at_epoch(0, 1)),
            ..RecoveryConfig::default()
        };
        let cold = build_comm_info(&graph, Topology::fig6(), rcfg.build);
        assert_eq!(
            cold.plan_stats.cache_commits + cold.plan_stats.speculative_commits,
            0,
            "the initial plan is exact and cold"
        );
        let elastic = train_elastic(&graph, Topology::fig6(), &features, &targets, &cfg, &rcfg)
            .expect("one crash fits the budget");
        let stats = elastic.events[0].replan_stats;
        assert!(stats.demands > 0);
        assert!(
            stats.cache_commits + stats.speculative_commits > 0,
            "warm replan resolved no demand from the cache: {stats:?}"
        );
        assert!(
            stats.full_searches < stats.demands,
            "warm replan ran a full search per demand: {stats:?}"
        );
    });
}
