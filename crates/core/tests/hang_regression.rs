//! Regression: a non-rank-0 device dying mid-collective used to wedge
//! every peer forever (the §6.1 flag protocol has no failure story — a
//! peer that never sets its ready flag blocks its neighbours, and
//! `run_cluster`'s in-order join then blocked the whole process on rank
//! 0's thread). The abortable fabric must instead return a
//! [`dgcl::ClusterError`] naming the dead rank, on every rank, well
//! within the collective deadline.

use std::time::{Duration, Instant};

use dgcl::{build_comm_info, run_cluster_with, BuildOptions, ClusterFailure, FabricConfig};
use dgcl_graph::Dataset;
use dgcl_tensor::Matrix;
use dgcl_topology::Topology;

/// Runs `f` on a worker thread and panics if it does not finish within
/// `limit` — the explicit hang detector for this suite. A watchdog panic
/// is the regression signal; the assertions inside `f` cover the rest.
fn with_watchdog<T: Send + 'static>(limit: Duration, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = std::sync::mpsc::channel();
    let worker = std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    match rx.recv_timeout(limit) {
        Ok(v) => {
            worker.join().expect("watchdog worker");
            v
        }
        Err(_) => panic!("watchdog: test exceeded {limit:?} — the runtime hung again"),
    }
}

#[test]
fn non_rank0_panic_mid_collective_returns_err_within_deadline() {
    with_watchdog(Duration::from_secs(120), || {
        let graph = Dataset::WikiTalk.generate(0.0005, 5);
        let info = build_comm_info(&graph, Topology::fig6(), BuildOptions::default());
        let n = graph.num_vertices();
        let mut features = Matrix::zeros(n, 2);
        for v in 0..n {
            features.set_row(v, &[v as f32, 1.0]);
        }
        let per_device = info.dispatch_features(&features);
        let deadline = Duration::from_secs(10);
        let config = FabricConfig {
            collective_deadline: deadline,
            ..FabricConfig::default()
        };
        let start = Instant::now();
        let err = run_cluster_with(&info, config, |handle| {
            // Every device completes one allgather; rank 2 then dies while
            // its peers are already entering the next one.
            let full = handle.graph_allgather(&per_device[handle.rank])?;
            assert_eq!(full.rows(), handle.local_graph().num_total());
            if handle.rank == 2 {
                panic!("injected device failure on rank 2");
            }
            let full = handle.graph_allgather(&per_device[handle.rank])?;
            Ok(full.rows())
        })
        .expect_err("a dead device must fail the cluster, not hang it");
        let elapsed = start.elapsed();
        // The poison broadcast must beat the deadline by a wide margin —
        // peers unwind when woken, not by timing out.
        assert!(
            elapsed < deadline,
            "unwind took {elapsed:?}, deadline was {deadline:?}"
        );
        assert_eq!(err.rank, 2, "the originating rank is identified: {err}");
        match &err.cause {
            ClusterFailure::Panic(msg) => {
                assert!(msg.contains("injected device failure"), "{msg}")
            }
            other => panic!("expected the panic as the cause, got {other}"),
        }
        assert!(err.per_rank[2].is_some(), "rank 2 recorded as failed");
        // Every peer that was still communicating observed the poison
        // with the correct origin.
        for (rank, failure) in err.surviving_errors() {
            match failure {
                ClusterFailure::Error(dgcl::RuntimeError::Poisoned { origin, .. }) => {
                    assert_eq!(*origin, 2, "rank {rank} blames the right origin")
                }
                other => panic!("rank {rank}: expected poison, got {other}"),
            }
        }
    });
}
