//! Backend parity: the planned and CAGNET aggregation backends must
//! agree with the single-device kernels — bitwise where the design
//! guarantees it (all forwards; the CAGNET backward), tight-tolerance
//! where cross-device tree folds reassociate the sum (the planned
//! backward).

use dgcl::backend::{backend_for, BackendPolicy};
use dgcl::runtime::run_cluster;
use dgcl::{build_comm_info, BackendKind, BuildOptions, CommInfo, ExecStrategy};
use dgcl_gnn::aggregate::{
    aggregate_mean, aggregate_mean_backward, aggregate_sum, aggregate_sum_backward,
};
use dgcl_gnn::AggKind;
use dgcl_graph::generators::erdos_renyi;
use dgcl_graph::CsrGraph;
use dgcl_tensor::Matrix;
use dgcl_topology::Topology;
use proptest::prelude::*;

/// Deterministic dense matrix with rows keyed by global vertex id, so
/// dispatched slices line up with the reference rows.
fn keyed_matrix(rows: usize, cols: usize, salt: u64) -> Matrix {
    let mut m = Matrix::zeros(rows, cols);
    for v in 0..rows {
        for c in 0..cols {
            m[(v, c)] = (((v as u64 * 31 + c as u64 * 7 + salt) % 23) as f32 - 11.0) * 0.125;
        }
    }
    m
}

fn cagnet_info(graph: &CsrGraph, devices: usize, c: usize) -> CommInfo {
    build_comm_info(
        graph,
        Topology::pcie_host(devices),
        BuildOptions {
            backend: BackendPolicy::Fixed(BackendKind::Cagnet { replication: c }),
            ..BuildOptions::default()
        },
    )
}

/// Forward aggregation through both backends against the single-device
/// kernel, both aggregation kinds. Everything must match bitwise.
fn check_forward(graph: &CsrGraph, devices: usize, c: usize, cols: usize) {
    let n = graph.num_vertices();
    let info = cagnet_info(graph, devices, c);
    assert_eq!(info.backend, BackendKind::Cagnet { replication: c });
    let x = keyed_matrix(n, cols, 5);
    let per_device = info.dispatch_features(&x);
    for kind in [AggKind::Sum, AggKind::Mean] {
        let reference = match kind {
            AggKind::Sum => aggregate_sum(graph, &x, n),
            AggKind::Mean => aggregate_mean(graph, &x, n),
        };
        let results = run_cluster(&info, |handle| {
            let planned = backend_for(BackendKind::Planned, ExecStrategy::Pipelined);
            let cagnet = backend_for(info.backend, ExecStrategy::Pipelined);
            let p = planned.agg_forward(&handle, &per_device[handle.rank], kind)?;
            let g = cagnet.agg_forward(&handle, &per_device[handle.rank], kind)?;
            Ok((p, g))
        })
        .expect("healthy cluster");
        let planned: Vec<Matrix> = results.iter().map(|(p, _)| p.clone()).collect();
        let cagnet: Vec<Matrix> = results.into_iter().map(|(_, g)| g).collect();
        assert_eq!(
            info.collect_outputs(&planned),
            reference,
            "planned {kind:?} forward, p={devices} c={c} cols={cols}"
        );
        assert_eq!(
            info.collect_outputs(&cagnet),
            reference,
            "cagnet {kind:?} forward, p={devices} c={c} cols={cols}"
        );
    }
}

/// Backward aggregation: CAGNET must be bitwise against the
/// single-device kernel; the planned scatter folds remote contributions
/// along the SPST tree, so it gets a tight tolerance instead.
fn check_backward(graph: &CsrGraph, devices: usize, c: usize, cols: usize) {
    let n = graph.num_vertices();
    let info = cagnet_info(graph, devices, c);
    let grad = keyed_matrix(n, cols, 17);
    let per_device = info.dispatch_features(&grad);
    for kind in [AggKind::Sum, AggKind::Mean] {
        let reference = match kind {
            AggKind::Sum => aggregate_sum_backward(graph, &grad, n),
            AggKind::Mean => aggregate_mean_backward(graph, &grad, n),
        };
        let results = run_cluster(&info, |handle| {
            let planned = backend_for(BackendKind::Planned, ExecStrategy::Pipelined);
            let cagnet = backend_for(info.backend, ExecStrategy::Pipelined);
            let p = planned.agg_backward(&handle, &per_device[handle.rank], kind)?;
            let g = cagnet.agg_backward(&handle, &per_device[handle.rank], kind)?;
            Ok((p, g))
        })
        .expect("healthy cluster");
        let planned: Vec<Matrix> = results.iter().map(|(p, _)| p.clone()).collect();
        let cagnet: Vec<Matrix> = results.into_iter().map(|(_, g)| g).collect();
        assert_eq!(
            info.collect_outputs(&cagnet),
            reference,
            "cagnet {kind:?} backward, p={devices} c={c} cols={cols}"
        );
        let diff = info.collect_outputs(&planned).max_abs_diff(&reference);
        assert!(
            diff < 1e-4,
            "planned {kind:?} backward off by {diff}, p={devices} c={c} cols={cols}"
        );
    }
}

#[test]
fn forward_parity_across_the_grid() {
    for &(devices, c) in &[
        (2usize, 1usize),
        (2, 2),
        (3, 1),
        (4, 2),
        (4, 4),
        (6, 2),
        (8, 2),
    ] {
        let graph = erdos_renyi(41 + devices, 170, devices as u64);
        check_forward(&graph, devices, c, 3);
    }
}

#[test]
fn backward_parity_across_the_grid() {
    for &(devices, c) in &[(2usize, 1usize), (2, 2), (3, 1), (4, 2), (4, 4), (8, 2)] {
        let graph = erdos_renyi(39 + devices, 150, 100 + devices as u64);
        check_backward(&graph, devices, c, 2);
    }
}

#[test]
fn wide_features_on_eight_devices_with_replication() {
    let graph = erdos_renyi(64, 420, 9);
    check_forward(&graph, 8, 2, 16);
    check_backward(&graph, 8, 2, 16);
}

#[test]
fn backend_name_reports_which_path_runs() {
    assert_eq!(
        backend_for(BackendKind::Planned, ExecStrategy::Pipelined).name(),
        "planned"
    );
    assert_eq!(
        backend_for(
            BackendKind::Cagnet { replication: 2 },
            ExecStrategy::Pipelined
        )
        .name(),
        "cagnet"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random graphs × device counts × widths × replications: the three
    /// aggregation paths stay bitwise-identical in forward and the
    /// CAGNET path bitwise in backward.
    #[test]
    fn random_graphs_agree_across_backends(
        n in 8usize..56,
        edges in 20usize..240,
        devices in 2usize..=8,
        cols in 1usize..6,
        seed in 0u64..1000,
        c_sel in 0usize..3,
    ) {
        let candidates: Vec<usize> =
            (1..=devices).filter(|&c| devices.is_multiple_of(c) && c <= 4).collect();
        let c = candidates[c_sel % candidates.len()];
        let graph = erdos_renyi(n.max(devices + 1), edges, seed);
        check_forward(&graph, devices, c, cols);
        check_backward(&graph, devices, c, cols);
    }
}
