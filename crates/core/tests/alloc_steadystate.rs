//! Steady-state allocation budget for the compiled collectives.
//!
//! The compiled `graph_allgather` / `scatter_backward` promise no
//! per-stage heap allocation once warm: payload and scratch buffers
//! cycle through the fabric's recycle pool, stage groups and row
//! references are precompiled, and the per-op relay/accumulator
//! `HashMap`s are gone. This test pins that with a counting global
//! allocator: after a warm-up, a window of steady-state operations must
//! stay within a small per-operation allocation budget (the returned
//! output matrices themselves), and must allocate strictly less than the
//! uncompiled reference path over the same window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use dgcl::{build_comm_info, run_cluster, BuildOptions};
use dgcl_graph::Dataset;
use dgcl_tensor::Matrix;
use dgcl_topology::Topology;

struct CountingAlloc;

static COUNTING: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocations observed while every device runs `rounds` forward +
/// backward pairs after `warm` unmeasured warm-up rounds, using either
/// the compiled or the reference collectives.
fn measure(compiled: bool, warm: usize, rounds: usize) -> usize {
    let graph = Dataset::WikiTalk.generate(0.0006, 5);
    let info = build_comm_info(&graph, Topology::fig6(), BuildOptions::default());
    let n = graph.num_vertices();
    let mut features = Matrix::zeros(n, 8);
    for v in 0..n {
        features.row_mut(v)[v % 8] = v as f32;
    }
    let per_device = info.dispatch_features(&features);
    ALLOCS.store(0, Ordering::Relaxed);
    run_cluster(&info, |handle| {
        let step = |measured: bool| -> Result<(), dgcl::RuntimeError> {
            let full = if compiled {
                handle.graph_allgather(&per_device[handle.rank])?
            } else {
                handle.graph_allgather_reference(&per_device[handle.rank])?
            };
            let grads = if compiled {
                handle.scatter_backward(&full)?
            } else {
                handle.scatter_backward_reference(&full)?
            };
            assert_eq!(grads.rows(), handle.local_graph().num_local);
            let _ = measured;
            Ok(())
        };
        for _ in 0..warm {
            step(false)?;
        }
        // Barrier: no device starts its measured window before every
        // device has finished warming (so late warm-up allocations are
        // never attributed to the steady state).
        handle.allreduce(Vec::new())?;
        COUNTING.store(true, Ordering::Relaxed);
        for _ in 0..rounds {
            step(true)?;
        }
        handle.allreduce(Vec::new())?;
        COUNTING.store(false, Ordering::Relaxed);
        Ok(())
    })
    .expect("healthy cluster");
    COUNTING.store(false, Ordering::Relaxed);
    ALLOCS.load(Ordering::Relaxed)
}

#[test]
fn steady_state_allgather_stays_within_allocation_budget() {
    let warm = 3;
    let rounds = 5;
    let compiled = measure(true, warm, rounds);
    let reference = measure(false, warm, rounds);
    let devices = 4;
    let op_pairs = devices * rounds;
    // Per measured forward+backward pair the compiled path may allocate
    // the two result matrices it returns plus a small constant (ready
    // protocol, barrier bookkeeping); everything stage-level must come
    // from the recycle pool. The budget is deliberately generous — the
    // uncompiled path blows through it by orders of magnitude.
    let budget = op_pairs * 8 + 64;
    eprintln!(
        "steady-state allocations: compiled={compiled} reference={reference} budget={budget}"
    );
    assert!(
        compiled <= budget,
        "compiled collectives allocated {compiled} times in {op_pairs} op pairs (budget {budget})"
    );
    assert!(
        compiled * 4 < reference,
        "compiled path ({compiled}) should allocate far less than the reference ({reference})"
    );
}
