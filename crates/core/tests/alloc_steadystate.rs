//! Steady-state allocation budget for the compiled collectives.
//!
//! The compiled `graph_allgather` / `scatter_backward` promise no
//! per-stage heap allocation once warm: payload and scratch buffers
//! cycle through the fabric's recycle pool, stage groups and row
//! references are precompiled, and the per-op relay/accumulator
//! `HashMap`s are gone. This test pins that with a counting global
//! allocator: after a warm-up, a window of steady-state operations must
//! stay within a small per-operation allocation budget (the returned
//! output matrices themselves), and must allocate strictly less than the
//! uncompiled reference path over the same window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use dgcl::{build_comm_info, run_cluster, BuildOptions};
use dgcl_graph::Dataset;
use dgcl_tensor::Matrix;
use dgcl_topology::Topology;

struct CountingAlloc;

static COUNTING: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Which collective implementation a measurement exercises.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Chunk-pipelined compiled path (the default `graph_allgather`).
    Pipelined,
    /// Stage-barriered compiled path.
    Barriered,
    /// Uncompiled table-walking reference.
    Reference,
}

/// Allocations observed while every device runs `rounds` forward +
/// backward pairs after `warm` unmeasured warm-up rounds, using the
/// collective implementation selected by `mode`.
fn measure(mode: Mode, warm: usize, rounds: usize) -> usize {
    let graph = Dataset::WikiTalk.generate(0.0006, 5);
    let info = build_comm_info(&graph, Topology::fig6(), BuildOptions::default());
    let n = graph.num_vertices();
    let mut features = Matrix::zeros(n, 8);
    for v in 0..n {
        features.row_mut(v)[v % 8] = v as f32;
    }
    let per_device = info.dispatch_features(&features);
    ALLOCS.store(0, Ordering::Relaxed);
    run_cluster(&info, |handle| {
        let step = |measured: bool| -> Result<(), dgcl::RuntimeError> {
            let full = match mode {
                Mode::Pipelined => handle.graph_allgather(&per_device[handle.rank])?,
                Mode::Barriered => handle.graph_allgather_barriered(&per_device[handle.rank])?,
                Mode::Reference => handle.graph_allgather_reference(&per_device[handle.rank])?,
            };
            let grads = match mode {
                Mode::Pipelined => handle.scatter_backward(&full)?,
                Mode::Barriered => handle.scatter_backward_barriered(&full)?,
                Mode::Reference => handle.scatter_backward_reference(&full)?,
            };
            assert_eq!(grads.rows(), handle.local_graph().num_local);
            let _ = measured;
            Ok(())
        };
        for _ in 0..warm {
            step(false)?;
        }
        // Barrier: no device starts its measured window before every
        // device has finished warming (so late warm-up allocations are
        // never attributed to the steady state).
        handle.allreduce(Vec::new())?;
        COUNTING.store(true, Ordering::Relaxed);
        for _ in 0..rounds {
            step(true)?;
        }
        handle.allreduce(Vec::new())?;
        COUNTING.store(false, Ordering::Relaxed);
        Ok(())
    })
    .expect("healthy cluster");
    COUNTING.store(false, Ordering::Relaxed);
    ALLOCS.load(Ordering::Relaxed)
}

#[test]
fn steady_state_allgather_stays_within_allocation_budget() {
    let warm = 3;
    let rounds = 5;
    let pipelined = measure(Mode::Pipelined, warm, rounds);
    let barriered = measure(Mode::Barriered, warm, rounds);
    let reference = measure(Mode::Reference, warm, rounds);
    let devices = 4;
    let op_pairs = devices * rounds;
    // Per measured forward+backward pair a compiled path may allocate
    // the two result matrices it returns plus a small constant (ready
    // protocol, barrier bookkeeping); everything stage- and chunk-level
    // must come from the recycle pool. The budget is deliberately
    // generous — the uncompiled path blows through it by orders of
    // magnitude. Chunk pipelining must not regress the budget: every
    // per-chunk payload is checked out of and recycled back into the
    // fabric pool, and the dependency scratch is reused across ops.
    let budget = op_pairs * 8 + 64;
    eprintln!(
        "steady-state allocations: pipelined={pipelined} barriered={barriered} \
         reference={reference} budget={budget}"
    );
    assert!(
        pipelined <= budget,
        "pipelined collectives allocated {pipelined} times in {op_pairs} op pairs (budget {budget})"
    );
    assert!(
        barriered <= budget,
        "barriered collectives allocated {barriered} times in {op_pairs} op pairs (budget {budget})"
    );
    assert!(
        pipelined * 4 < reference,
        "pipelined path ({pipelined}) should allocate far less than the reference ({reference})"
    );
}
