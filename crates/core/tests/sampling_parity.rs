//! Property suite for mini-batch sampled training.
//!
//! The anchor invariant (ISSUE 9's acceptance criterion): **fanout = ∞
//! sampled training with one batch covering every vertex is bitwise
//! identical to full-batch training** — same epoch losses, same output
//! embeddings, across 2..=8 devices and both aggregation backends. The
//! exact path's masked loss zeroes diff rows outside the batch before
//! the same single-accumulator norm `mse_loss` uses, so a full mask is
//! instruction-for-instruction the barriered full-batch epoch.
//!
//! Around the anchor:
//!
//! * Finite-fanout runs are deterministic (run-to-run bitwise equal) and
//!   independent of whether feature prefetch rides the overlap worker.
//! * Sampled training still trains: losses decrease over epochs.
//! * An out-of-range training vertex surfaces as a typed
//!   [`ClusterError`] through `run_cluster` — never a rank-thread abort.

use dgcl::sampling::SamplingConfig;
use dgcl::trainer::{train_distributed, train_single, TrainConfig};
use dgcl::{build_comm_info, BackendKind, BuildOptions};
use dgcl_gnn::Architecture;
use dgcl_graph::Dataset;
use dgcl_tensor::{Matrix, XavierInit};
use dgcl_topology::Topology;
use proptest::prelude::*;

const BACKENDS: [BackendKind; 2] = [BackendKind::Planned, BackendKind::Cagnet { replication: 1 }];

const ARCHS: [Architecture; 4] = [
    Architecture::Gcn,
    Architecture::CommNet,
    Architecture::Gin,
    Architecture::Sage,
];

struct Case {
    graph: dgcl_graph::CsrGraph,
    features: Matrix,
    targets: Matrix,
}

fn case(seed: u64) -> Case {
    let graph = Dataset::WikiTalk.generate(0.0005, seed);
    let n = graph.num_vertices();
    let mut init = XavierInit::new(seed);
    let features = init.features(n, 6);
    let targets = init.features(n, 3);
    Case {
        graph,
        features,
        targets,
    }
}

fn base_cfg(arch: Architecture, epochs: usize) -> TrainConfig {
    let mut cfg = TrainConfig::new(arch, &[6, 5, 3], epochs);
    // Barriered reference: the overlap flag must not be a variable in
    // the bitwise comparison (the sampled paths run barriered anyway).
    cfg.overlap = false;
    if arch == Architecture::Gin {
        cfg.lr = 1e-6;
    }
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The anchor: one all-covering batch at fanout ∞ reproduces the
    /// full-batch run bit for bit, per backend, per device count.
    #[test]
    fn infinite_fanout_single_batch_is_bitwise_full_batch(
        devices in 2usize..=8,
        arch_idx in 0usize..ARCHS.len(),
        backend_idx in 0usize..BACKENDS.len(),
        graph_seed in 1u64..4,
    ) {
        let c = case(graph_seed);
        let info = build_comm_info(
            &c.graph,
            Topology::dgx1_subset(devices),
            BuildOptions::default(),
        );
        let mut cfg = base_cfg(ARCHS[arch_idx], 3);
        cfg.backend = Some(BACKENDS[backend_idx]);
        let full = train_distributed(&info, &c.graph, &c.features, &c.targets, &cfg)
            .expect("healthy cluster");
        // batch_size 0 = one batch of the whole seed set.
        cfg.sampling = Some(SamplingConfig::exact(0, 2));
        let sampled = train_distributed(&info, &c.graph, &c.features, &c.targets, &cfg)
            .expect("healthy cluster");
        prop_assert_eq!(
            &full.epoch_losses, &sampled.epoch_losses,
            "losses diverge on {} devices, backend {:?}", devices, BACKENDS[backend_idx]
        );
        prop_assert_eq!(
            full.outputs.max_abs_diff(&sampled.outputs), 0.0,
            "outputs diverge on {} devices, backend {:?}", devices, BACKENDS[backend_idx]
        );
    }

    /// Finite fanouts: the block path is run-to-run deterministic and
    /// numerically independent of the prefetch worker.
    #[test]
    fn block_path_is_deterministic_and_prefetch_neutral(
        devices in 2usize..=6,
        backend_idx in 0usize..BACKENDS.len(),
        fanout in 2usize..5,
        batch_size in 16usize..64,
    ) {
        let c = case(5);
        let info = build_comm_info(
            &c.graph,
            Topology::dgx1_subset(devices),
            BuildOptions::default(),
        );
        let mut cfg = base_cfg(Architecture::Gcn, 2);
        cfg.backend = Some(BACKENDS[backend_idx]);
        let mut scfg = SamplingConfig::new(batch_size, vec![Some(fanout), Some(fanout)]);
        scfg.prefetch = false;
        cfg.sampling = Some(scfg);
        let a = train_distributed(&info, &c.graph, &c.features, &c.targets, &cfg)
            .expect("healthy cluster");
        let b = train_distributed(&info, &c.graph, &c.features, &c.targets, &cfg)
            .expect("healthy cluster");
        prop_assert_eq!(&a.epoch_losses, &b.epoch_losses, "rerun diverged");
        prop_assert_eq!(a.outputs.max_abs_diff(&b.outputs), 0.0, "rerun diverged");
        cfg.sampling.as_mut().expect("set above").prefetch = true;
        let p = train_distributed(&info, &c.graph, &c.features, &c.targets, &cfg)
            .expect("healthy cluster");
        prop_assert_eq!(&a.epoch_losses, &p.epoch_losses, "prefetch changed losses");
        prop_assert_eq!(a.outputs.max_abs_diff(&p.outputs), 0.0, "prefetch changed outputs");
    }
}

#[test]
fn exact_multi_batch_matches_single_device_masked_sgd() {
    // Mini-batched SGD visits vertices in a shuffled batch order, so it
    // is *not* the full-batch trajectory — but it must match a
    // single-device replay of the same masked-batch schedule closely
    // (same batches, same order; only reduction order differs).
    let c = case(9);
    let n = c.graph.num_vertices();
    let info = build_comm_info(&c.graph, Topology::fig6(), BuildOptions::default());
    let mut cfg = base_cfg(Architecture::Gcn, 3);
    let scfg = SamplingConfig::exact(n / 3, 2);
    cfg.sampling = Some(scfg.clone());
    let dist =
        train_distributed(&info, &c.graph, &c.features, &c.targets, &cfg).expect("healthy cluster");

    // Single-device replay of the identical batch schedule.
    let mut net = dgcl_gnn::GnnNetwork::new(cfg.arch, &cfg.dims, cfg.weight_seed);
    let seeds: Vec<u32> = (0..n as u32).collect();
    let mut losses = Vec::new();
    for epoch in 0..cfg.epochs {
        let batches = dgcl_graph::seed_batches(&seeds, scfg.batch_size, scfg.seed, epoch);
        let mut epoch_loss = 0.0f32;
        for batch in &batches {
            let out = net.forward(&c.graph, &c.features);
            let mut sorted = batch.clone();
            sorted.sort_unstable();
            let mut diff = out.sub(&c.targets);
            for v in 0..n {
                if sorted.binary_search(&(v as u32)).is_err() {
                    for x in diff.row_mut(v) {
                        *x = 0.0;
                    }
                }
            }
            epoch_loss += 0.5 * diff.norm_sq();
            net.backward(&c.graph, &diff);
            net.step(cfg.lr);
        }
        losses.push(epoch_loss);
    }
    for (e, (a, b)) in losses.iter().zip(&dist.epoch_losses).enumerate() {
        assert!(
            (a - b).abs() < 1e-2 * a.abs().max(1.0),
            "epoch {e}: single-device masked loss {a} vs distributed {b}"
        );
    }
}

#[test]
fn finite_fanout_training_reduces_loss() {
    let c = case(3);
    let info = build_comm_info(&c.graph, Topology::fig6(), BuildOptions::default());
    let mut cfg = base_cfg(Architecture::Gcn, 4);
    cfg.lr = 5e-4;
    cfg.sampling = Some(SamplingConfig::new(64, vec![Some(4), Some(4)]));
    let report =
        train_distributed(&info, &c.graph, &c.features, &c.targets, &cfg).expect("healthy cluster");
    assert!(
        report.epoch_losses.last() < report.epoch_losses.first(),
        "sampled losses did not decrease: {:?}",
        report.epoch_losses
    );
}

#[test]
fn full_fanout_block_path_tracks_single_device() {
    // The block path at ∞ fanout computes on compact per-batch blocks
    // (different reduction layout than the masked path) but one batch of
    // everything is the same math as full-batch training — so it must
    // track the single-device trajectory within reduction-order noise.
    let c = case(7);
    let info = build_comm_info(&c.graph, Topology::fig6(), BuildOptions::default());
    let mut cfg = base_cfg(Architecture::Gcn, 3);
    // Mixed fanouts (one finite) force the block path even though the
    // finite fanout exceeds every degree in the graph... use a large
    // finite fanout so no edge is actually dropped.
    let huge = c.graph.num_vertices();
    cfg.sampling = Some(SamplingConfig::new(0, vec![Some(huge), Some(huge)]));
    let dist =
        train_distributed(&info, &c.graph, &c.features, &c.targets, &cfg).expect("healthy cluster");
    let single = train_single(&c.graph, &c.features, &c.targets, &cfg);
    for (e, (a, b)) in single
        .epoch_losses
        .iter()
        .zip(&dist.epoch_losses)
        .enumerate()
    {
        assert!(
            (a - b).abs() < 1e-2 * a.abs().max(1.0),
            "epoch {e}: single loss {a} vs block-path {b}"
        );
    }
    let diff = single.outputs.max_abs_diff(&dist.outputs);
    assert!(diff < 5e-3, "block-path output divergence {diff}");
}

#[test]
fn out_of_range_train_vertex_is_a_typed_cluster_error() {
    let c = case(2);
    let n = c.graph.num_vertices();
    let info = build_comm_info(&c.graph, Topology::fig6(), BuildOptions::default());
    for fanouts in [vec![None, None], vec![Some(3), Some(3)]] {
        let mut cfg = base_cfg(Architecture::Gcn, 2);
        let mut scfg = SamplingConfig::new(8, fanouts.clone());
        scfg.train_vertices = Some(vec![0, 1, n as u32 + 5]);
        cfg.sampling = Some(scfg);
        let err = train_distributed(&info, &c.graph, &c.features, &c.targets, &cfg)
            .expect_err("bad seed must fail the cluster");
        assert!(
            err.to_string().contains("out of range"),
            "fanouts {fanouts:?}: error does not name the bad seed: {err}"
        );
    }
}
