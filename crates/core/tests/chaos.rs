//! Chaos suite: deterministic fault injection against real training.
//!
//! Two invariants, straight from the failure model in DESIGN.md:
//!
//! 1. **Benign faults are invisible.** Delays, duplicates and reorders
//!    change message *timing* only; the keyed mailbox protocol and the
//!    rank-ordered allreduce make training bitwise identical to a
//!    fault-free run.
//! 2. **Crashes fail fast, everywhere.** A crashed rank produces a
//!    [`ClusterError`] naming it, on every surviving rank, within the
//!    collective deadline — never a hang.
//!
//! Every test runs under an explicit watchdog so a hang is a loud panic,
//! not a stuck CI job.

use std::time::{Duration, Instant};

use dgcl::trainer::{train_distributed, train_distributed_with, TrainConfig};
use dgcl::{
    build_comm_info, run_cluster_with, AllreduceAlgo, BroadcastAlgo, BuildOptions, ClusterFailure,
    CommInfo, FabricConfig, FaultEvent, FaultPlan, RuntimeError,
};
use dgcl_gnn::Architecture;
use dgcl_graph::{CsrGraph, Dataset};
use dgcl_sim::faults::simulate_plan_faulted;
use dgcl_tensor::{Matrix, XavierInit};
use dgcl_topology::Topology;

/// Runs `f` on a worker thread and panics if it does not finish within
/// `limit` — the explicit hang detector for this suite.
fn with_watchdog<T: Send + 'static>(limit: Duration, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = std::sync::mpsc::channel();
    let worker = std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    match rx.recv_timeout(limit) {
        Ok(v) => {
            worker.join().expect("watchdog worker");
            v
        }
        Err(_) => panic!("watchdog: test exceeded {limit:?} — the runtime hung"),
    }
}

struct Case {
    graph: CsrGraph,
    info: CommInfo,
    features: Matrix,
    targets: Matrix,
    cfg: TrainConfig,
}

fn training_case() -> Case {
    let graph = Dataset::WikiTalk.generate(0.0005, 3);
    let n = graph.num_vertices();
    let info = build_comm_info(&graph, Topology::fig6(), BuildOptions::default());
    let mut init = XavierInit::new(8);
    let features = init.features(n, 6);
    let targets = init.features(n, 3);
    let cfg = TrainConfig::new(Architecture::Gcn, &[6, 3], 2);
    Case {
        graph,
        info,
        features,
        targets,
        cfg,
    }
}

#[test]
fn benign_faults_train_bitwise_identical() {
    with_watchdog(Duration::from_secs(300), || {
        let c = training_case();
        let clean = train_distributed(&c.info, &c.graph, &c.features, &c.targets, &c.cfg)
            .expect("fault-free run");
        for seed in [1u64, 17, 99] {
            let faults = FaultPlan::seeded(seed, c.info.num_devices(), 6, Duration::from_millis(2));
            assert!(faults.is_benign() && !faults.is_empty());
            let config = FabricConfig {
                faults,
                ..FabricConfig::default()
            };
            let faulted =
                train_distributed_with(&c.info, &c.graph, &c.features, &c.targets, &c.cfg, config)
                    .unwrap_or_else(|e| panic!("benign plan (seed {seed}) must not fail: {e}"));
            // Bitwise, not approximate: benign faults move timing only,
            // never numerics.
            assert_eq!(
                clean.epoch_losses, faulted.epoch_losses,
                "losses diverged under benign faults (seed {seed})"
            );
            assert_eq!(
                clean.outputs, faulted.outputs,
                "outputs diverged under benign faults (seed {seed})"
            );
        }
    });
}

#[test]
fn crash_fault_fails_every_survivor_within_deadline() {
    with_watchdog(Duration::from_secs(120), || {
        let c = training_case();
        let deadline = Duration::from_secs(20);
        let config = FabricConfig {
            collective_deadline: deadline,
            // Op 3: rank 1 dies mid-epoch, after real collectives ran.
            faults: FaultPlan::crash(1, 3),
            ..FabricConfig::default()
        };
        let start = Instant::now();
        let err =
            train_distributed_with(&c.info, &c.graph, &c.features, &c.targets, &c.cfg, config)
                .expect_err("a crashed rank must fail training");
        assert!(
            start.elapsed() < deadline,
            "unwind took {:?}, deadline was {deadline:?}",
            start.elapsed()
        );
        assert_eq!(err.rank, 1, "{err}");
        assert!(
            matches!(
                err.cause,
                ClusterFailure::Error(RuntimeError::InjectedCrash { rank: 1, at_op: 3 })
            ),
            "{err}"
        );
        // Nothing survives a crashed peer on a connected plan: every
        // other rank reports the poison with the crashed rank as origin.
        let survivors: Vec<_> = err.surviving_errors().collect();
        assert_eq!(survivors.len(), c.info.num_devices() - 1);
        for (rank, failure) in survivors {
            match failure {
                ClusterFailure::Error(RuntimeError::Poisoned { origin, reason }) => {
                    assert_eq!(*origin, 1, "rank {rank} blames the crashed rank");
                    assert!(reason.contains("injected crash"), "{reason}");
                }
                other => panic!("rank {rank}: expected poison, got {other}"),
            }
        }
    });
}

/// Shared harness for the zoo crash cases: rank 1 dies mid-pipeline
/// during `body`'s collective; every survivor must report the poison
/// within the collective deadline.
fn crash_mid_collective_case<R: Send + std::fmt::Debug>(
    body: impl Fn(dgcl::DeviceHandle<'_>) -> Result<R, RuntimeError> + Sync,
) {
    let graph = Dataset::WikiTalk.generate(0.0005, 3);
    let info = build_comm_info(&graph, Topology::fig6(), BuildOptions::default());
    let deadline = Duration::from_secs(20);
    let config = FabricConfig {
        collective_deadline: deadline,
        // Tiny chunks: many actions in flight when rank 1 dies.
        collective_chunk: 4,
        faults: FaultPlan {
            events: vec![FaultEvent::CrashMidOp {
                rank: 1,
                at_op: 1,
                after_actions: 1,
            }],
        },
        ..FabricConfig::default()
    };
    let start = Instant::now();
    let err = run_cluster_with(&info, config, body).expect_err("crash mid-op must fail");
    assert!(
        start.elapsed() < deadline,
        "unwind took {:?}, deadline was {deadline:?}",
        start.elapsed()
    );
    assert_eq!(err.rank, 1, "{err}");
    assert!(
        matches!(
            err.cause,
            ClusterFailure::Error(RuntimeError::InjectedCrash { rank: 1, at_op: 1 })
        ),
        "{err}"
    );
    let survivors: Vec<_> = err.surviving_errors().collect();
    assert_eq!(survivors.len(), info.num_devices() - 1);
    for (rank, failure) in survivors {
        match failure {
            ClusterFailure::Error(RuntimeError::Poisoned { origin, reason }) => {
                assert_eq!(*origin, 1, "rank {rank} blames the crashed rank");
                assert!(reason.contains("injected crash"), "{reason}");
            }
            other => panic!("rank {rank}: expected poison, got {other}"),
        }
    }
}

#[test]
fn crash_mid_ring_allreduce_poisons_every_survivor() {
    with_watchdog(Duration::from_secs(120), || {
        crash_mid_collective_case(|handle| {
            let mats = vec![Matrix::full(16, 8, handle.rank as f32 + 0.5)];
            handle.allreduce_with(AllreduceAlgo::Ring, mats)
        });
    });
}

#[test]
fn crash_mid_tree_broadcast_poisons_every_survivor() {
    with_watchdog(Duration::from_secs(120), || {
        crash_mid_collective_case(|handle| {
            let mat = Matrix::full(16, 8, handle.rank as f32 + 0.5);
            let out = handle.broadcast_with(BroadcastAlgo::BinomialTree, 0, mat)?;
            // The root and its completed subtree owe nobody anything in
            // a broadcast; the next collective (as in any real training
            // step) is where they must observe the poison.
            handle.allreduce(vec![out])
        });
    });
}

#[test]
fn silent_desertion_times_out_instead_of_hanging() {
    // A rank that *returns without participating* never poisons the
    // fabric — only the deadline can unblock its peers. This is the
    // stuck-peer case the configurable deadline exists for.
    with_watchdog(Duration::from_secs(120), || {
        let graph = Dataset::WikiTalk.generate(0.0005, 3);
        let info = build_comm_info(&graph, Topology::fig6(), BuildOptions::default());
        let deadline = Duration::from_millis(300);
        let config = FabricConfig {
            collective_deadline: deadline,
            ..FabricConfig::default()
        };
        let start = Instant::now();
        let err = run_cluster_with(&info, config, |handle| {
            if handle.rank == 0 {
                return Ok(0); // Deserts the rendezvous silently.
            }
            let reduced = handle.allreduce(vec![Matrix::full(1, 1, 1.0)])?;
            Ok(reduced.len())
        })
        .expect_err("deserted allreduce must time out");
        let elapsed = start.elapsed();
        assert!(elapsed >= deadline, "peers cannot finish without rank 0");
        assert!(
            elapsed < deadline + Duration::from_secs(30),
            "timeout fired far too late: {elapsed:?}"
        );
        // Rank 0 completed; some peer's timeout is the recorded cause.
        assert!(err.per_rank[0].is_none(), "rank 0 deserted successfully");
        assert!(
            matches!(
                err.cause,
                ClusterFailure::Error(RuntimeError::Timeout {
                    op: "allreduce",
                    ..
                })
            ),
            "{err}"
        );
        assert_eq!(err.deadline, deadline);
    });
}

#[test]
fn duplicate_and_reorder_storm_on_one_link_is_absorbed() {
    // Concentrated worst case: every stage of the heaviest link both
    // duplicated and reordered, plus a delay — still bitwise clean.
    with_watchdog(Duration::from_secs(300), || {
        let c = training_case();
        let clean = train_distributed(&c.info, &c.graph, &c.features, &c.targets, &c.cfg)
            .expect("fault-free run");
        let step = c.info.plan.steps.first().expect("non-empty plan");
        let (src, dst) = (step.src, step.dst);
        let mut events = Vec::new();
        for stage in 0..c.info.plan.num_stages as u32 {
            events.push(dgcl::FaultEvent::Duplicate { src, dst, stage });
            events.push(dgcl::FaultEvent::Reorder { src, dst, stage });
            events.push(dgcl::FaultEvent::Delay {
                src,
                dst,
                stage,
                delay: Duration::from_millis(1),
            });
        }
        let config = FabricConfig {
            faults: FaultPlan { events },
            ..FabricConfig::default()
        };
        let faulted =
            train_distributed_with(&c.info, &c.graph, &c.features, &c.targets, &c.cfg, config)
                .expect("storm on one link is benign");
        assert_eq!(clean.outputs, faulted.outputs);
        assert_eq!(clean.epoch_losses, faulted.epoch_losses);
    });
}

#[test]
fn fault_plans_mirror_into_the_simulator() {
    // The same FaultPlan drives both the real runtime and the fluid
    // network model: a crash that poisons training also truncates the
    // simulated plan, and a benign plan changes neither delivery set.
    let c = training_case();
    let bytes = 4 * 64;
    let clean = simulate_plan_faulted(
        &c.info.plan,
        &c.info.topology,
        bytes,
        &FaultPlan::none().mirror_sim(),
    );
    let benign = FaultPlan::seeded(5, c.info.num_devices(), 4, Duration::from_millis(1));
    let benign_sim =
        simulate_plan_faulted(&c.info.plan, &c.info.topology, bytes, &benign.mirror_sim());
    assert!(benign_sim.failed.is_none());
    assert_eq!(benign_sim.delivered, clean.delivered);
    let crash_sim = simulate_plan_faulted(
        &c.info.plan,
        &c.info.topology,
        bytes,
        &FaultPlan::crash(1, 1).mirror_sim(),
    );
    assert_eq!(crash_sim.failed, Some((1, 0)), "crash at op 1 = stage 0");
    assert!(crash_sim.delivered.len() < clean.delivered.len());
}
