//! Physical connections and their bandwidths.

use crate::NodeId;

/// Index of a physical connection within a [`crate::Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConnId(pub u32);

impl ConnId {
    /// The index as `usize` for slice access.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The physical technology of a connection.
///
/// The default bandwidths are the measurements of Table 1 of the paper
/// (GB/s): NV2 48.35, NV1 24.22, PCIe 11.13, QPI 9.56, IB 6.37,
/// Ethernet 3.12. Host-memory attach points get a nominal DDR bandwidth so
/// they are never the bottleneck (the PCIe hop is, as in NeuGraph).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkKind {
    /// Two bonded NVLink bricks.
    NvLink2,
    /// A single NVLink brick.
    NvLink1,
    /// PCIe 3.0 x16.
    Pcie,
    /// QPI/UPI socket interconnect.
    Qpi,
    /// InfiniBand NIC-to-NIC.
    Infiniband,
    /// Ethernet NIC-to-NIC.
    Ethernet,
    /// CPU DRAM attach (swap staging).
    HostDram,
}

impl LinkKind {
    /// Default bandwidth in GB/s (Table 1 of the paper).
    pub fn bandwidth_gbps(self) -> f64 {
        match self {
            LinkKind::NvLink2 => 48.35,
            LinkKind::NvLink1 => 24.22,
            LinkKind::Pcie => 11.13,
            LinkKind::Qpi => 9.56,
            LinkKind::Infiniband => 6.37,
            LinkKind::Ethernet => 3.12,
            LinkKind::HostDram => 64.0,
        }
    }

    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            LinkKind::NvLink2 => "NV2",
            LinkKind::NvLink1 => "NV1",
            LinkKind::Pcie => "PCIe",
            LinkKind::Qpi => "QPI",
            LinkKind::Infiniband => "IB",
            LinkKind::Ethernet => "Ethernet",
            LinkKind::HostDram => "DRAM",
        }
    }

    /// Whether the connection is an NVLink variant (for the NVLink-vs-others
    /// breakdowns of Tables 2 and 7).
    pub fn is_nvlink(self) -> bool {
        matches!(self, LinkKind::NvLink1 | LinkKind::NvLink2)
    }
}

/// An undirected, full-duplex physical connection between two nodes.
///
/// Full duplex means the two directions carry traffic independently; the
/// simulator and cost model account volumes per direction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhysicalConn {
    /// This connection's id.
    pub id: ConnId,
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// Technology of the connection.
    pub kind: LinkKind,
    /// Bandwidth per direction in GB/s.
    pub bandwidth_gbps: f64,
}

impl PhysicalConn {
    /// The endpoint opposite to `from`, or `None` if `from` is not an
    /// endpoint.
    pub fn other(&self, from: NodeId) -> Option<NodeId> {
        if from == self.a {
            Some(self.b)
        } else if from == self.b {
            Some(self.a)
        } else {
            None
        }
    }

    /// Seconds to move `bytes` across this connection uncontended.
    pub fn transfer_seconds(&self, bytes: u64) -> f64 {
        bytes as f64 / (self.bandwidth_gbps * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_bandwidths() {
        assert_eq!(LinkKind::NvLink2.bandwidth_gbps(), 48.35);
        assert_eq!(LinkKind::NvLink1.bandwidth_gbps(), 24.22);
        assert_eq!(LinkKind::Pcie.bandwidth_gbps(), 11.13);
        assert_eq!(LinkKind::Qpi.bandwidth_gbps(), 9.56);
        assert_eq!(LinkKind::Infiniband.bandwidth_gbps(), 6.37);
        assert_eq!(LinkKind::Ethernet.bandwidth_gbps(), 3.12);
    }

    #[test]
    fn nvlink_classification() {
        assert!(LinkKind::NvLink1.is_nvlink());
        assert!(LinkKind::NvLink2.is_nvlink());
        assert!(!LinkKind::Qpi.is_nvlink());
    }

    #[test]
    fn other_endpoint() {
        let c = PhysicalConn {
            id: ConnId(0),
            a: NodeId(1),
            b: NodeId(2),
            kind: LinkKind::Pcie,
            bandwidth_gbps: 11.13,
        };
        assert_eq!(c.other(NodeId(1)), Some(NodeId(2)));
        assert_eq!(c.other(NodeId(2)), Some(NodeId(1)));
        assert_eq!(c.other(NodeId(3)), None);
    }

    #[test]
    fn transfer_time_scales_with_bytes() {
        let c = PhysicalConn {
            id: ConnId(0),
            a: NodeId(0),
            b: NodeId(1),
            kind: LinkKind::Qpi,
            bandwidth_gbps: 10.0,
        };
        let t = c.transfer_seconds(10_000_000_000);
        assert!((t - 1.0).abs() < 1e-9);
    }
}
