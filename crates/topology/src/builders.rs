//! Built-in topologies used by the paper's evaluation.

use crate::{LinkKind, NodeId, NodeKind, Topology};

/// The NVLink hybrid cube-mesh of the DGX-1 (V100): `(a, b, bricks)`.
///
/// Every GPU has six NVLink bricks; GPUs 0–3 form a fully connected quad,
/// GPUs 4–7 form another, and four cross links join the quads so that every
/// pair is within two NVLink hops (the property §3 of the paper exploits).
const DGX1_NVLINKS: [(usize, usize, u8); 12] = [
    (0, 1, 1),
    (0, 2, 1),
    (0, 3, 2),
    (1, 2, 2),
    (1, 3, 1),
    (2, 3, 1),
    (4, 5, 1),
    (4, 6, 1),
    (4, 7, 2),
    (5, 6, 2),
    (5, 7, 1),
    (6, 7, 1),
];

/// Cross-quad NVLink bricks of the DGX-1. Together with the quad-internal
/// degree of 4 bricks this gives every GPU its 6 NVLink bricks.
const DGX1_CROSS_NVLINKS: [(usize, usize, u8); 4] = [(0, 4, 2), (1, 5, 2), (2, 6, 2), (3, 7, 2)];

fn nvlink_kind(bricks: u8) -> LinkKind {
    match bricks {
        1 => LinkKind::NvLink1,
        2 => LinkKind::NvLink2,
        _ => panic!("unsupported NVLink brick count {bricks}"),
    }
}

/// Adds one DGX-1-style machine (PCIe tree plus optional NVLink mesh) to a
/// builder. Returns the per-machine NIC node ids (one NIC per PCIe switch,
/// as in Figure 3 of the paper).
fn add_machine(
    b: &mut crate::topology::TopologyBuilder,
    machine: u32,
    num_gpus: usize,
    rank_base: u32,
    with_nvlink: bool,
) -> Vec<NodeId> {
    assert!((1..=8).contains(&num_gpus), "a machine hosts 1-8 GPUs");
    let sockets = if num_gpus > 4 { 2 } else { 1 };
    let mut cpus = Vec::new();
    let mut mems = Vec::new();
    for s in 0..sockets {
        let cpu = b.add_node(NodeKind::CpuSocket {
            machine,
            socket: s as u32,
        });
        let mem = b.add_node(NodeKind::HostMemory {
            machine,
            socket: s as u32,
        });
        b.connect(cpu, mem, LinkKind::HostDram);
        cpus.push(cpu);
        mems.push(mem);
    }
    if sockets == 2 {
        b.connect(cpus[0], cpus[1], LinkKind::Qpi);
    }
    // Two GPUs and one NIC per PCIe switch; switches alternate sockets
    // 0,0,1,1 as in Figure 3.
    let num_switches = num_gpus.div_ceil(2);
    let mut gpus = Vec::new();
    let mut nics = Vec::new();
    for sw_idx in 0..num_switches {
        let socket = if sockets == 2 && sw_idx >= 2 { 1 } else { 0 };
        let sw = b.add_node(NodeKind::PcieSwitch { machine });
        b.connect(cpus[socket], sw, LinkKind::Pcie);
        let nic = b.add_node(NodeKind::Nic { machine });
        b.connect(sw, nic, LinkKind::Pcie);
        nics.push(nic);
        for g_idx in (sw_idx * 2)..((sw_idx * 2 + 2).min(num_gpus)) {
            let gpu = b.add_node(NodeKind::Gpu {
                rank: rank_base + g_idx as u32,
                machine,
                socket: socket as u32,
            });
            b.connect(gpu, sw, LinkKind::Pcie);
            gpus.push(gpu);
        }
    }
    if with_nvlink {
        for &(x, y, bricks) in DGX1_NVLINKS.iter().chain(DGX1_CROSS_NVLINKS.iter()) {
            if x < num_gpus && y < num_gpus {
                b.connect(gpus[x], gpus[y], nvlink_kind(bricks));
            }
        }
    }
    nics
}

impl Topology {
    /// A single DGX-1: 8 V100 GPUs, NVLink hybrid cube mesh, two sockets,
    /// four PCIe switches, QPI between the CPUs (Figure 3 of the paper).
    pub fn dgx1() -> Topology {
        Self::dgx1_subset(8)
    }

    /// The first `num_gpus` GPUs of a DGX-1 (used for the 1/2/4-GPU sweeps
    /// of Figures 8 and 9). GPUs 0–3 form an NVLink clique, so with at most
    /// 4 GPUs every pair has a direct NVLink, matching the paper's
    /// observation that DGCL equals peer-to-peer there.
    ///
    /// # Panics
    ///
    /// Panics if `num_gpus` is not in `1..=8`.
    pub fn dgx1_subset(num_gpus: usize) -> Topology {
        let mut b = Topology::builder(format!("dgx1[{num_gpus}]"));
        add_machine(&mut b, 0, num_gpus, 0, true);
        b.build()
    }

    /// Two DGX-1 machines joined by a single shared InfiniBand connection
    /// (the paper's default 16-GPU configuration). All cross-machine
    /// traffic funnels through one IB NIC pair, which is why 16-GPU
    /// training scales poorly (Figures 8 and 9).
    pub fn dgx1_pair_ib() -> Topology {
        let mut b = Topology::builder("2x dgx1 + IB");
        let nics0 = add_machine(&mut b, 0, 8, 0, true);
        let nics1 = add_machine(&mut b, 1, 8, 8, true);
        // The paper: "the GPUs on one machine communicate with peers on the
        // other machine using the same IB NIC card".
        b.connect(nics0[0], nics1[0], LinkKind::Infiniband);
        b.build()
    }

    /// A PCIe-only server with `num_gpus` 1080-Ti GPUs (the paper's second
    /// hardware configuration, Table 6): same PCIe tree as the DGX-1 but no
    /// NVLink.
    ///
    /// # Panics
    ///
    /// Panics if `num_gpus` is not in `1..=8`.
    pub fn pcie_host(num_gpus: usize) -> Topology {
        let mut b = Topology::builder(format!("pcie[{num_gpus}]"));
        add_machine(&mut b, 0, num_gpus, 0, false);
        b.build()
    }

    /// The 4-GPU example of Figure 6: `d1-d2` and `d3-d4` joined by NVLink,
    /// each pair under its own PCIe switch and CPU socket, QPI in between.
    pub fn fig6() -> Topology {
        let mut b = Topology::builder("fig6");
        let cpu0 = b.add_node(NodeKind::CpuSocket {
            machine: 0,
            socket: 0,
        });
        let cpu1 = b.add_node(NodeKind::CpuSocket {
            machine: 0,
            socket: 1,
        });
        b.connect(cpu0, cpu1, LinkKind::Qpi);
        let sw0 = b.add_node(NodeKind::PcieSwitch { machine: 0 });
        let sw1 = b.add_node(NodeKind::PcieSwitch { machine: 0 });
        b.connect(cpu0, sw0, LinkKind::Pcie);
        b.connect(cpu1, sw1, LinkKind::Pcie);
        let mut gpus = Vec::new();
        for rank in 0..4u32 {
            let socket = rank / 2;
            let gpu = b.add_node(NodeKind::Gpu {
                rank,
                machine: 0,
                socket,
            });
            b.connect(gpu, if socket == 0 { sw0 } else { sw1 }, LinkKind::Pcie);
            gpus.push(gpu);
        }
        b.connect(gpus[0], gpus[1], LinkKind::NvLink1);
        b.connect(gpus[2], gpus[3], LinkKind::NvLink1);
        b.build()
    }

    /// Picks the evaluation topology for a GPU count the way the paper
    /// does: a DGX-1 subset up to 8 GPUs, two IB-connected DGX-1s for 16.
    ///
    /// # Panics
    ///
    /// Panics if `num_gpus` is not one of 1, 2, 4, 8, 16.
    pub fn for_gpu_count(num_gpus: usize) -> Topology {
        match num_gpus {
            1 | 2 | 4 | 8 => Topology::dgx1_subset(num_gpus),
            16 => Topology::dgx1_pair_ib(),
            _ => panic!("the evaluation uses 1/2/4/8/16 GPUs, got {num_gpus}"),
        }
    }

    /// An NVSwitch-style machine (DGX-2 generation, beyond the paper's
    /// hardware): every GPU connects to a central switch fabric with the
    /// full NV2 bandwidth, making the GPU network a non-blocking crossbar.
    /// Useful as a control: on a flat, homogeneous fabric SPST has little
    /// left to exploit over peer-to-peer.
    ///
    /// # Panics
    ///
    /// Panics if `num_gpus` is 0 or above 16.
    pub fn nvswitch(num_gpus: usize) -> Topology {
        assert!((1..=16).contains(&num_gpus), "1-16 GPUs per NVSwitch");
        let mut b = Topology::builder(format!("nvswitch[{num_gpus}]"));
        let cpu = b.add_node(NodeKind::CpuSocket {
            machine: 0,
            socket: 0,
        });
        let mem = b.add_node(NodeKind::HostMemory {
            machine: 0,
            socket: 0,
        });
        b.connect(cpu, mem, LinkKind::HostDram);
        // Model the switch fabric as a PCIe-switch node with NV2 spokes.
        let fabric = b.add_node(NodeKind::PcieSwitch { machine: 0 });
        b.connect(cpu, fabric, LinkKind::Pcie);
        for rank in 0..num_gpus as u32 {
            let gpu = b.add_node(NodeKind::Gpu {
                rank,
                machine: 0,
                socket: 0,
            });
            b.connect(gpu, fabric, LinkKind::NvLink2);
        }
        b.build()
    }

    /// A flat Ethernet cluster: `machines` single-GPU boxes joined by a
    /// shared switch (modelled as a NIC star). The topology commodity
    /// clusters have — every link slow and uniform.
    ///
    /// # Panics
    ///
    /// Panics if `machines` is 0.
    pub fn ethernet_cluster(machines: usize) -> Topology {
        assert!(machines >= 1, "need at least one machine");
        let mut b = Topology::builder(format!("ethernet[{machines}]"));
        let hub = b.add_node(NodeKind::Nic {
            machine: machines as u32,
        });
        for m in 0..machines {
            let cpu = b.add_node(NodeKind::CpuSocket {
                machine: m as u32,
                socket: 0,
            });
            let mem = b.add_node(NodeKind::HostMemory {
                machine: m as u32,
                socket: 0,
            });
            b.connect(cpu, mem, LinkKind::HostDram);
            let gpu = b.add_node(NodeKind::Gpu {
                rank: m as u32,
                machine: m as u32,
                socket: 0,
            });
            b.connect(gpu, cpu, LinkKind::Pcie);
            let nic = b.add_node(NodeKind::Nic { machine: m as u32 });
            b.connect(cpu, nic, LinkKind::Pcie);
            b.connect(nic, hub, LinkKind::Ethernet);
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dgx1_shape() {
        let t = Topology::dgx1();
        assert_eq!(t.num_gpus(), 8);
        assert_eq!(t.num_machines(), 1);
        // NVLink bricks per GPU must be 6 on a full DGX-1.
        for rank in 0..8 {
            let gpu = t.gpu_node(rank);
            let bricks: usize = t
                .conns()
                .iter()
                .filter(|c| c.a == gpu || c.b == gpu)
                .map(|c| match c.kind {
                    LinkKind::NvLink1 => 1,
                    LinkKind::NvLink2 => 2,
                    _ => 0,
                })
                .sum();
            assert_eq!(bricks, 6, "GPU {rank} has {bricks} NVLink bricks");
        }
    }

    #[test]
    fn dgx1_every_pair_within_two_nvlink_hops() {
        // §3: "all GPU pairs in Figure 3 can be connected within two hops
        // of NVLink". Verify on the adjacency, not the route (routes do
        // not relay through GPUs).
        let t = Topology::dgx1();
        for a in 0..8 {
            for bk in 0..8 {
                if a == bk {
                    continue;
                }
                let direct = t.is_nvlink_pair(a, bk);
                let relayed = (0..8).any(|m| {
                    m != a && m != bk && t.is_nvlink_pair(a, m) && t.is_nvlink_pair(m, bk)
                });
                assert!(direct || relayed, "GPUs {a},{bk} beyond 2 NVLink hops");
            }
        }
    }

    #[test]
    fn dgx1_cross_socket_route_goes_through_qpi() {
        let t = Topology::dgx1();
        // GPU 1 and GPU 7 have no NVLink (cross links are 0-4,1-5,2-6,3-7);
        // their direct route crosses the QPI.
        assert!(!t.is_nvlink_pair(1, 7));
        let r = t.route(1, 7);
        assert!(r.hops.iter().any(|h| t.conn(h.conn).kind == LinkKind::Qpi));
        assert_eq!(r.bottleneck_gbps, LinkKind::Qpi.bandwidth_gbps());
    }

    #[test]
    fn quad_is_nvlink_clique() {
        let t = Topology::dgx1_subset(4);
        for a in 0..4 {
            for bk in 0..4 {
                if a != bk {
                    assert!(t.is_nvlink_pair(a, bk), "{a}-{bk} not NVLink");
                }
            }
        }
    }

    #[test]
    fn pair_topology_crosses_ib_exactly_once() {
        let t = Topology::dgx1_pair_ib();
        assert_eq!(t.num_gpus(), 16);
        assert_eq!(t.num_machines(), 2);
        let r = t.route(0, 8);
        let ib_hops = r
            .hops
            .iter()
            .filter(|h| t.conn(h.conn).kind == LinkKind::Infiniband)
            .count();
        assert_eq!(ib_hops, 1);
        assert_eq!(r.bottleneck_gbps, LinkKind::Infiniband.bandwidth_gbps());
    }

    #[test]
    fn pcie_host_has_no_nvlink() {
        let t = Topology::pcie_host(8);
        assert!(t.conns().iter().all(|c| !c.kind.is_nvlink()));
        assert_eq!(t.num_gpus(), 8);
    }

    #[test]
    fn fig6_matches_paper_example() {
        let t = Topology::fig6();
        assert_eq!(t.num_gpus(), 4);
        assert!(t.is_nvlink_pair(0, 1));
        assert!(t.is_nvlink_pair(2, 3));
        assert!(!t.is_nvlink_pair(0, 2));
        // d1 -> d3 goes PCIe - QPI - PCIe.
        let r = t.route(0, 2);
        assert!(r.hops.iter().any(|h| t.conn(h.conn).kind == LinkKind::Qpi));
    }

    #[test]
    fn host_memory_reachable_for_swap() {
        let t = Topology::dgx1();
        for rank in 0..8 {
            let mem = t.host_memory_of(rank).expect("dgx1 has host memory");
            let route = t.route_nodes(t.gpu_node(rank), mem).expect("reachable");
            assert!(!route.hops.is_empty());
        }
    }

    #[test]
    fn for_gpu_count_selects_topology() {
        assert_eq!(Topology::for_gpu_count(2).num_gpus(), 2);
        assert_eq!(Topology::for_gpu_count(16).num_gpus(), 16);
    }

    #[test]
    #[should_panic(expected = "1/2/4/8/16")]
    fn for_gpu_count_rejects_odd_counts() {
        let _ = Topology::for_gpu_count(3);
    }

    #[test]
    fn nvswitch_is_a_flat_crossbar() {
        let t = Topology::nvswitch(8);
        assert_eq!(t.num_gpus(), 8);
        for a in 0..8 {
            for bk in 0..8 {
                if a == bk {
                    continue;
                }
                let r = t.route(a, bk);
                assert_eq!(r.hops.len(), 2, "{a}->{bk}");
                assert_eq!(r.bottleneck_gbps, LinkKind::NvLink2.bandwidth_gbps());
            }
        }
    }

    #[test]
    fn ethernet_cluster_routes_through_the_hub() {
        let t = Topology::ethernet_cluster(4);
        assert_eq!(t.num_gpus(), 4);
        assert_eq!(t.num_machines(), 5); // 4 boxes + the hub's pseudo-machine.
        let r = t.route(0, 3);
        let eth_hops = r
            .hops
            .iter()
            .filter(|h| t.conn(h.conn).kind == LinkKind::Ethernet)
            .count();
        assert_eq!(eth_hops, 2);
        assert_eq!(r.bottleneck_gbps, LinkKind::Ethernet.bandwidth_gbps());
    }
}
