//! Device nodes of the topology graph.

/// Index of a node within a [`crate::Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The index as `usize` for slice access.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The kind of a device node.
///
/// `machine` numbers machines in a cluster; `socket` numbers CPU sockets
/// (NUMA nodes) within a machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// A GPU; `rank` is its global rank used by the planner.
    Gpu {
        /// Global GPU rank (0-based, dense).
        rank: u32,
        /// Machine the GPU belongs to.
        machine: u32,
        /// CPU socket the GPU hangs off.
        socket: u32,
    },
    /// A CPU socket (NUMA node).
    CpuSocket {
        /// Machine the socket belongs to.
        machine: u32,
        /// Socket index within the machine.
        socket: u32,
    },
    /// A PCIe switch.
    PcieSwitch {
        /// Machine the switch belongs to.
        machine: u32,
    },
    /// A network interface card.
    Nic {
        /// Machine the NIC belongs to.
        machine: u32,
    },
    /// Host (CPU) memory attached to a socket, used by the swap baseline.
    HostMemory {
        /// Machine the memory belongs to.
        machine: u32,
        /// Socket the memory is local to.
        socket: u32,
    },
}

impl NodeKind {
    /// The machine this node belongs to.
    pub fn machine(self) -> u32 {
        match self {
            NodeKind::Gpu { machine, .. }
            | NodeKind::CpuSocket { machine, .. }
            | NodeKind::PcieSwitch { machine }
            | NodeKind::Nic { machine }
            | NodeKind::HostMemory { machine, .. } => machine,
        }
    }

    /// Whether the node is a GPU.
    pub fn is_gpu(self) -> bool {
        matches!(self, NodeKind::Gpu { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_extraction() {
        assert_eq!(NodeKind::Nic { machine: 3 }.machine(), 3);
        assert_eq!(
            NodeKind::Gpu {
                rank: 0,
                machine: 1,
                socket: 0
            }
            .machine(),
            1
        );
    }

    #[test]
    fn gpu_detection() {
        assert!(NodeKind::Gpu {
            rank: 0,
            machine: 0,
            socket: 0
        }
        .is_gpu());
        assert!(!NodeKind::PcieSwitch { machine: 0 }.is_gpu());
    }
}
