//! Routes: the physical path realising a GPU-to-GPU link.

use crate::ConnId;

/// One physical connection traversed in a specific direction.
///
/// `forward` is true when traffic flows from the connection's `a` endpoint
/// to its `b` endpoint. The two directions of a full-duplex connection are
/// independent capacity, so contention accounting keys on `(conn, forward)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DirectedHop {
    /// The physical connection.
    pub conn: ConnId,
    /// Direction of traversal (`a -> b` when true).
    pub forward: bool,
}

/// The physical path a direct GPU-to-GPU transfer takes.
#[derive(Debug, Clone, PartialEq)]
pub struct Route {
    /// Directed physical hops from source to destination, in order.
    pub hops: Vec<DirectedHop>,
    /// Bottleneck bandwidth of the path in GB/s.
    pub bottleneck_gbps: f64,
}

impl Route {
    /// Whether this route uses no physical connections (source equals
    /// destination).
    pub fn is_local(&self) -> bool {
        self.hops.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_route_detection() {
        let local = Route {
            hops: vec![],
            bottleneck_gbps: f64::INFINITY,
        };
        assert!(local.is_local());
        let hop = Route {
            hops: vec![DirectedHop {
                conn: ConnId(0),
                forward: true,
            }],
            bottleneck_gbps: 10.0,
        };
        assert!(!hop.is_local());
    }
}
