//! The topology graph and its routing.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::{ConnId, DirectedHop, LinkKind, NodeId, NodeKind, PhysicalConn, Route};

/// A cluster communication topology: device nodes joined by physical
/// connections, with precomputed GPU-to-GPU routes.
///
/// Construct one with the built-in builders ([`Topology::dgx1`],
/// [`Topology::dgx1_pair_ib`], [`Topology::pcie_host`], [`Topology::fig6`])
/// or assemble a custom one through [`Topology::builder`].
#[derive(Debug, Clone)]
pub struct Topology {
    name: String,
    nodes: Vec<NodeKind>,
    conns: Vec<PhysicalConn>,
    adjacency: Vec<Vec<ConnId>>,
    gpus: Vec<NodeId>,
    routes: Vec<Vec<Route>>,
}

/// Incrementally assembles a [`Topology`].
#[derive(Debug, Default)]
pub struct TopologyBuilder {
    name: String,
    nodes: Vec<NodeKind>,
    conns: Vec<PhysicalConn>,
}

impl TopologyBuilder {
    /// Creates an empty builder with a display name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            nodes: Vec::new(),
            conns: Vec::new(),
        }
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self, kind: NodeKind) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(kind);
        id
    }

    /// Adds a full-duplex connection with the kind's default bandwidth.
    pub fn connect(&mut self, a: NodeId, b: NodeId, kind: LinkKind) -> ConnId {
        self.connect_with_bandwidth(a, b, kind, kind.bandwidth_gbps())
    }

    /// Adds a full-duplex connection with an explicit bandwidth in GB/s.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is unknown, the endpoints coincide, or the
    /// bandwidth is not positive.
    pub fn connect_with_bandwidth(
        &mut self,
        a: NodeId,
        b: NodeId,
        kind: LinkKind,
        bandwidth_gbps: f64,
    ) -> ConnId {
        assert!(a.index() < self.nodes.len(), "unknown node {a:?}");
        assert!(b.index() < self.nodes.len(), "unknown node {b:?}");
        assert_ne!(a, b, "self-connections are not allowed");
        assert!(bandwidth_gbps > 0.0, "bandwidth must be positive");
        let id = ConnId(self.conns.len() as u32);
        self.conns.push(PhysicalConn {
            id,
            a,
            b,
            kind,
            bandwidth_gbps,
        });
        id
    }

    /// Finalises the topology, computing all GPU-to-GPU routes.
    ///
    /// # Panics
    ///
    /// Panics if the builder holds no GPU, GPU ranks are not dense from 0,
    /// or some GPU pair is unreachable.
    pub fn build(self) -> Topology {
        let mut gpus: Vec<(u32, NodeId)> = self
            .nodes
            .iter()
            .enumerate()
            .filter_map(|(i, kind)| match kind {
                NodeKind::Gpu { rank, .. } => Some((*rank, NodeId(i as u32))),
                _ => None,
            })
            .collect();
        gpus.sort_unstable();
        assert!(!gpus.is_empty(), "topology must contain at least one GPU");
        for (expect, &(rank, _)) in gpus.iter().enumerate() {
            assert_eq!(
                rank as usize, expect,
                "GPU ranks must be dense starting at 0"
            );
        }
        let gpus: Vec<NodeId> = gpus.into_iter().map(|(_, id)| id).collect();
        let mut adjacency = vec![Vec::new(); self.nodes.len()];
        for conn in &self.conns {
            adjacency[conn.a.index()].push(conn.id);
            adjacency[conn.b.index()].push(conn.id);
        }
        let mut topo = Topology {
            name: self.name,
            nodes: self.nodes,
            conns: self.conns,
            adjacency,
            gpus,
            routes: Vec::new(),
        };
        topo.routes = (0..topo.gpus.len())
            .map(|src| {
                (0..topo.gpus.len())
                    .map(|dst| {
                        topo.route_nodes(topo.gpus[src], topo.gpus[dst])
                            .unwrap_or_else(|| panic!("GPU {src} cannot reach GPU {dst}"))
                    })
                    .collect()
            })
            .collect();
        topo
    }
}

/// Heap entry for widest-path routing: order by larger bottleneck first,
/// then fewer hops.
#[derive(PartialEq)]
struct WidestEntry {
    bottleneck: f64,
    hops: usize,
    node: NodeId,
}

impl Eq for WidestEntry {}

impl Ord for WidestEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.bottleneck
            .partial_cmp(&other.bottleneck)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.hops.cmp(&self.hops))
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for WidestEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Topology {
    /// Starts building a custom topology.
    pub fn builder(name: impl Into<String>) -> TopologyBuilder {
        TopologyBuilder::new(name)
    }

    /// Display name of the topology.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of GPUs.
    pub fn num_gpus(&self) -> usize {
        self.gpus.len()
    }

    /// Number of nodes of any kind.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// All physical connections.
    pub fn conns(&self) -> &[PhysicalConn] {
        &self.conns
    }

    /// A physical connection by id.
    pub fn conn(&self, id: ConnId) -> &PhysicalConn {
        &self.conns[id.index()]
    }

    /// The node kind at `id`.
    pub fn node(&self, id: NodeId) -> NodeKind {
        self.nodes[id.index()]
    }

    /// The node id of the GPU with `rank`.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is out of range.
    pub fn gpu_node(&self, rank: usize) -> NodeId {
        self.gpus[rank]
    }

    /// The machine hosting the GPU with `rank`.
    pub fn machine_of(&self, rank: usize) -> u32 {
        self.node(self.gpus[rank]).machine()
    }

    /// The socket hosting the GPU with `rank`.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is out of range.
    pub fn socket_of(&self, rank: usize) -> u32 {
        match self.node(self.gpus[rank]) {
            NodeKind::Gpu { socket, .. } => socket,
            _ => unreachable!("gpu table always points at GPU nodes"),
        }
    }

    /// Number of distinct machines in the topology.
    pub fn num_machines(&self) -> usize {
        let mut machines: Vec<u32> = self.nodes.iter().map(|n| n.machine()).collect();
        machines.sort_unstable();
        machines.dedup();
        machines.len()
    }

    /// GPU ranks grouped by machine, machines in ascending order.
    pub fn gpus_by_machine(&self) -> Vec<Vec<usize>> {
        let machines: Vec<u32> = (0..self.num_gpus()).map(|r| self.machine_of(r)).collect();
        let mut distinct = machines.clone();
        distinct.sort_unstable();
        distinct.dedup();
        distinct
            .iter()
            .map(|&m| {
                machines
                    .iter()
                    .enumerate()
                    .filter(|&(_, &gm)| gm == m)
                    .map(|(r, _)| r)
                    .collect()
            })
            .collect()
    }

    /// The precomputed direct route between two GPU ranks.
    ///
    /// # Panics
    ///
    /// Panics if a rank is out of range.
    pub fn route(&self, src_rank: usize, dst_rank: usize) -> &Route {
        &self.routes[src_rank][dst_rank]
    }

    /// Finds the direct route between two arbitrary nodes, or `None` if
    /// unreachable.
    ///
    /// The route maximises the bottleneck bandwidth and, among equals,
    /// minimises the hop count. Intermediate nodes are never GPUs or host
    /// memory: hardware peer-to-peer transfers are not relayed through
    /// other GPUs, and DRAM staging is an explicit planner decision.
    pub fn route_nodes(&self, src: NodeId, dst: NodeId) -> Option<Route> {
        if src == dst {
            return Some(Route {
                hops: Vec::new(),
                bottleneck_gbps: f64::INFINITY,
            });
        }
        let n = self.nodes.len();
        let mut best_bw = vec![0.0f64; n];
        let mut best_hops = vec![usize::MAX; n];
        let mut back: Vec<Option<(NodeId, ConnId)>> = vec![None; n];
        let mut heap = BinaryHeap::new();
        best_bw[src.index()] = f64::INFINITY;
        best_hops[src.index()] = 0;
        heap.push(WidestEntry {
            bottleneck: f64::INFINITY,
            hops: 0,
            node: src,
        });
        while let Some(WidestEntry {
            bottleneck,
            hops,
            node,
        }) = heap.pop()
        {
            if bottleneck < best_bw[node.index()]
                || (bottleneck == best_bw[node.index()] && hops > best_hops[node.index()])
            {
                continue;
            }
            if node == dst {
                break;
            }
            // Only the source and destination may be GPUs or host memory.
            let relay_forbidden = node != src
                && matches!(
                    self.nodes[node.index()],
                    NodeKind::Gpu { .. } | NodeKind::HostMemory { .. }
                );
            if relay_forbidden {
                continue;
            }
            for &cid in &self.adjacency[node.index()] {
                let conn = &self.conns[cid.index()];
                let next = conn.other(node).expect("adjacency is consistent");
                let nb = bottleneck.min(conn.bandwidth_gbps);
                let nh = hops + 1;
                if nb > best_bw[next.index()]
                    || (nb == best_bw[next.index()] && nh < best_hops[next.index()])
                {
                    best_bw[next.index()] = nb;
                    best_hops[next.index()] = nh;
                    back[next.index()] = Some((node, cid));
                    heap.push(WidestEntry {
                        bottleneck: nb,
                        hops: nh,
                        node: next,
                    });
                }
            }
        }
        if best_bw[dst.index()] == 0.0 {
            return None;
        }
        let mut hops = Vec::new();
        let mut cur = dst;
        while cur != src {
            let (prev, cid) = back[cur.index()].expect("back-pointers reach the source");
            let conn = &self.conns[cid.index()];
            hops.push(DirectedHop {
                conn: cid,
                forward: conn.a == prev,
            });
            cur = prev;
        }
        hops.reverse();
        Some(Route {
            hops,
            bottleneck_gbps: best_bw[dst.index()],
        })
    }

    /// The topology that remains after evicting the GPUs in `dead`:
    /// surviving GPUs are renumbered densely in ascending old-rank order,
    /// every non-GPU node survives, and every connection not touching an
    /// evicted GPU is kept with its bandwidth. Routes are recomputed.
    ///
    /// GPUs are never route relays, so removing one cannot disconnect the
    /// survivors — this is what makes eviction always well-formed. The
    /// elastic-recovery driver uses it to shrink the cluster after a rank
    /// failure before repartitioning and replanning.
    ///
    /// # Panics
    ///
    /// Panics if `dead` names an out-of-range rank or would leave no GPU.
    pub fn evict_gpus(&self, dead: &[usize]) -> Topology {
        for &r in dead {
            assert!(r < self.num_gpus(), "evicted rank {r} out of range");
        }
        let survivors: Vec<usize> = (0..self.num_gpus()).filter(|r| !dead.contains(r)).collect();
        assert!(!survivors.is_empty(), "eviction would leave no GPU");
        let mut b = Topology::builder(format!("{}-{}", self.name, survivors.len()));
        // Old NodeId -> new NodeId for every surviving node.
        let mut remap: Vec<Option<NodeId>> = vec![None; self.nodes.len()];
        for (id, kind) in self.nodes.iter().enumerate() {
            let new_kind = match *kind {
                NodeKind::Gpu {
                    rank,
                    machine,
                    socket,
                } => match survivors.binary_search(&(rank as usize)) {
                    Ok(new_rank) => NodeKind::Gpu {
                        rank: new_rank as u32,
                        machine,
                        socket,
                    },
                    Err(_) => continue,
                },
                other => other,
            };
            remap[id] = Some(b.add_node(new_kind));
        }
        for conn in &self.conns {
            if let (Some(a), Some(bn)) = (remap[conn.a.index()], remap[conn.b.index()]) {
                b.connect_with_bandwidth(a, bn, conn.kind, conn.bandwidth_gbps);
            }
        }
        b.build()
    }

    /// The host-memory node local to the GPU with `rank`, if the topology
    /// has one (used by the swap baseline).
    pub fn host_memory_of(&self, rank: usize) -> Option<NodeId> {
        let machine = self.machine_of(rank);
        let socket = self.socket_of(rank);
        self.nodes
            .iter()
            .enumerate()
            .find(|(_, k)| {
                matches!(k, NodeKind::HostMemory { machine: m, socket: s }
                    if *m == machine && *s == socket)
            })
            .map(|(i, _)| NodeId(i as u32))
    }

    /// Whether two GPU ranks share an NVLink-connected route.
    pub fn is_nvlink_pair(&self, a: usize, b: usize) -> bool {
        let route = self.route(a, b);
        !route.hops.is_empty()
            && route
                .hops
                .iter()
                .all(|h| self.conn(h.conn).kind.is_nvlink())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_gpu_line() -> Topology {
        let mut b = Topology::builder("line");
        let g0 = b.add_node(NodeKind::Gpu {
            rank: 0,
            machine: 0,
            socket: 0,
        });
        let g1 = b.add_node(NodeKind::Gpu {
            rank: 1,
            machine: 0,
            socket: 0,
        });
        b.connect(g0, g1, LinkKind::NvLink1);
        b.build()
    }

    #[test]
    fn single_hop_route() {
        let t = two_gpu_line();
        let r = t.route(0, 1);
        assert_eq!(r.hops.len(), 1);
        assert_eq!(r.bottleneck_gbps, LinkKind::NvLink1.bandwidth_gbps());
        assert!(r.hops[0].forward);
        assert!(!t.route(1, 0).hops[0].forward);
    }

    #[test]
    fn local_route_is_empty() {
        let t = two_gpu_line();
        assert!(t.route(0, 0).is_local());
    }

    #[test]
    fn routing_prefers_wider_path() {
        // g0 - g1 via slow direct Ethernet, or via switch with fast PCIe.
        let mut b = Topology::builder("widest");
        let g0 = b.add_node(NodeKind::Gpu {
            rank: 0,
            machine: 0,
            socket: 0,
        });
        let g1 = b.add_node(NodeKind::Gpu {
            rank: 1,
            machine: 0,
            socket: 0,
        });
        let sw = b.add_node(NodeKind::PcieSwitch { machine: 0 });
        b.connect(g0, g1, LinkKind::Ethernet);
        b.connect(g0, sw, LinkKind::Pcie);
        b.connect(sw, g1, LinkKind::Pcie);
        let t = b.build();
        let r = t.route(0, 1);
        assert_eq!(r.hops.len(), 2);
        assert_eq!(r.bottleneck_gbps, LinkKind::Pcie.bandwidth_gbps());
    }

    #[test]
    fn routing_never_relays_through_gpus() {
        // g0 - g1 - g2 NVLink chain plus a slow switch path g0 - sw - g2.
        // The direct route g0 -> g2 must avoid g1 even though NVLink is
        // faster: hardware p2p cannot bounce through a third GPU.
        let mut b = Topology::builder("norelay");
        let g0 = b.add_node(NodeKind::Gpu {
            rank: 0,
            machine: 0,
            socket: 0,
        });
        let g1 = b.add_node(NodeKind::Gpu {
            rank: 1,
            machine: 0,
            socket: 0,
        });
        let g2 = b.add_node(NodeKind::Gpu {
            rank: 2,
            machine: 0,
            socket: 0,
        });
        let sw = b.add_node(NodeKind::PcieSwitch { machine: 0 });
        b.connect(g0, g1, LinkKind::NvLink2);
        b.connect(g1, g2, LinkKind::NvLink2);
        b.connect(g0, sw, LinkKind::Pcie);
        b.connect(sw, g2, LinkKind::Pcie);
        let t = b.build();
        let r = t.route(0, 2);
        assert_eq!(r.bottleneck_gbps, LinkKind::Pcie.bandwidth_gbps());
        assert_eq!(r.hops.len(), 2);
    }

    #[test]
    #[should_panic(expected = "cannot reach")]
    fn unreachable_pair_panics() {
        let mut b = Topology::builder("split");
        b.add_node(NodeKind::Gpu {
            rank: 0,
            machine: 0,
            socket: 0,
        });
        b.add_node(NodeKind::Gpu {
            rank: 1,
            machine: 0,
            socket: 0,
        });
        let _ = b.build();
    }

    #[test]
    fn evict_renumbers_and_keeps_connectivity() {
        let t = crate::Topology::dgx1();
        let s = t.evict_gpus(&[2, 5]);
        assert_eq!(s.num_gpus(), 6);
        // Survivors 0,1,3,4,6,7 renumber to 0..6; machines unchanged.
        for new_rank in 0..6 {
            let old = [0usize, 1, 3, 4, 6, 7][new_rank];
            assert_eq!(s.machine_of(new_rank), t.machine_of(old));
            assert_eq!(s.socket_of(new_rank), t.socket_of(old));
        }
        // Every surviving pair still routes.
        for a in 0..6 {
            for b in 0..6 {
                let r = s.route(a, b);
                assert!(a == b || !r.hops.is_empty(), "{a}->{b}");
            }
        }
        // NVLink structure is preserved where both endpoints survive:
        // old 0-1 (new 0-1) keeps its direct NVLink.
        assert!(s.is_nvlink_pair(0, 1));
    }

    #[test]
    fn evict_preserves_cross_machine_links() {
        let t = crate::Topology::dgx1_pair_ib();
        let s = t.evict_gpus(&[0]);
        assert_eq!(s.num_gpus(), 15);
        assert_eq!(s.num_machines(), 2);
        // New rank 7 is old rank 8 — first GPU of machine 1.
        assert_eq!(s.machine_of(7), 1);
        let r = s.route(0, 7);
        assert!(!r.hops.is_empty());
    }

    #[test]
    #[should_panic(expected = "no GPU")]
    fn evicting_everyone_panics() {
        let t = two_gpu_line();
        let _ = t.evict_gpus(&[0, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn evicting_unknown_rank_panics() {
        let t = two_gpu_line();
        let _ = t.evict_gpus(&[9]);
    }

    #[test]
    #[should_panic(expected = "dense")]
    fn non_dense_ranks_panic() {
        let mut b = Topology::builder("gap");
        b.add_node(NodeKind::Gpu {
            rank: 1,
            machine: 0,
            socket: 0,
        });
        let _ = b.build();
    }
}
