//! Hardware communication topology model.
//!
//! Models the device graphs of modern GPU servers (Figure 3 of the paper):
//! GPUs, CPU sockets, PCIe switches, NICs and host memory as nodes, and
//! physical connections (NVLink, PCIe, QPI, InfiniBand, Ethernet) as edges
//! with the measured bandwidths of Table 1.
//!
//! A *link* between two GPUs is the path of physical connections that a
//! direct peer-to-peer transfer would take — never relayed through another
//! GPU; multi-GPU forwarding is a planning-level decision made by
//! `dgcl-plan`, not a property of the hardware.
//!
//! # Examples
//!
//! ```
//! use dgcl_topology::Topology;
//!
//! let topo = Topology::dgx1();
//! assert_eq!(topo.num_gpus(), 8);
//! // GPUs 0 and 1 share an NVLink; the route is a single hop.
//! assert_eq!(topo.route(0, 1).hops.len(), 1);
//! // GPUs 0 and 4 sit under different sockets in the PCIe tree but are
//! // connected directly with two NVLink bricks.
//! assert_eq!(topo.route(0, 4).hops.len(), 1);
//! ```

mod builders;
mod conn;
mod device;
mod route;
mod topology;

pub use conn::{ConnId, LinkKind, PhysicalConn};
pub use device::{NodeId, NodeKind};
pub use route::{DirectedHop, Route};
pub use topology::Topology;
