//! Criterion bench for the threaded graph-allgather runtime (one real
//! data exchange across simulated devices, Table 6's operation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dgcl::{build_comm_info, run_cluster, BuildOptions};
use dgcl_bench::RunContext;
use dgcl_graph::Dataset;
use dgcl_tensor::Matrix;
use dgcl_topology::Topology;

fn bench_allgather(c: &mut Criterion) {
    let mut ctx = RunContext::new(false);
    let mut group = c.benchmark_group("allgather");
    group.sample_size(10);
    for dataset in [Dataset::WikiTalk] {
        let graph = ctx.graph(dataset);
        for gpus in [4usize, 8] {
            let topo = Topology::for_gpu_count(gpus);
            let info = build_comm_info(&graph, topo, BuildOptions::default());
            let locals: Vec<Matrix> = (0..info.num_devices())
                .map(|d| Matrix::full(info.pg.local[d].len(), 32, 1.0))
                .collect();
            group.bench_with_input(BenchmarkId::new(dataset.name(), gpus), &gpus, |b, _| {
                b.iter(|| {
                    run_cluster(&info, |handle| {
                        Ok(handle.graph_allgather(&locals[handle.rank])?.rows())
                    })
                    .expect("healthy cluster")
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_allgather);
criterion_main!(benches);
