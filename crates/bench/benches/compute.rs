//! Criterion bench for the parallel compute engine (the `compute`
//! experiment's measurement).
//!
//! Covers the three hot-path kernel families at explicit worker counts,
//! so the pool-scaling win and the algorithmic wins (gather-form
//! backward vs per-vertex scatter, compiled schedules vs the uncompiled
//! table walk) are visible separately.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dgcl::{build_comm_info, BuildOptions};
use dgcl_bench::RunContext;
use dgcl_gnn::aggregate::{
    aggregate_sum_backward_scatter, aggregate_sum_backward_threads, aggregate_sum_threads,
};
use dgcl_graph::Dataset;
use dgcl_tensor::XavierInit;
use dgcl_topology::Topology;

fn bench_matmul(c: &mut Criterion) {
    let mut init = XavierInit::new(42);
    let a = init.features(512, 256);
    let b = init.features(256, 128);
    let mut group = c.benchmark_group("matmul");
    group.sample_size(20);
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("512x256x128", threads),
            &threads,
            |bch, &t| bch.iter(|| a.matmul_threads(&b, t)),
        );
    }
    group.finish();
}

fn bench_aggregate(c: &mut Criterion) {
    let mut ctx = RunContext::new(false);
    let graph = ctx.graph(Dataset::WikiTalk);
    let nv = graph.num_vertices();
    let mut init = XavierInit::new(42);
    let h = init.features(nv, 64);
    graph.reversed(); // Exclude the one-off transpose build from timings.
    let mut group = c.benchmark_group("aggregate");
    group.sample_size(20);
    for threads in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("fwd", threads), &threads, |b, &t| {
            b.iter(|| aggregate_sum_threads(&graph, &h, nv, t))
        });
        group.bench_with_input(
            BenchmarkId::new("bwd-gather", threads),
            &threads,
            |b, &t| b.iter(|| aggregate_sum_backward_threads(&graph, &h, nv, t)),
        );
    }
    group.bench_function("bwd-scatter", |b| {
        b.iter(|| aggregate_sum_backward_scatter(&graph, &h, nv))
    });
    group.finish();
}

fn bench_allgather(c: &mut Criterion) {
    let mut ctx = RunContext::new(false);
    let graph = ctx.graph(Dataset::WebGoogle);
    let info = build_comm_info(&graph, Topology::fig6(), BuildOptions::default());
    let mut init = XavierInit::new(42);
    let feat = init.features(graph.num_vertices(), 64);
    let per_device = info.dispatch_features(&feat);
    let mut group = c.benchmark_group("allgather");
    group.sample_size(10);
    group.bench_function("compiled", |b| {
        b.iter(|| {
            dgcl::run_cluster(&info, |hdl| {
                let full = hdl.graph_allgather(&per_device[hdl.rank])?;
                hdl.scatter_backward(&full)
            })
            .expect("healthy cluster")
        })
    });
    group.bench_function("reference", |b| {
        b.iter(|| {
            dgcl::run_cluster(&info, |hdl| {
                let full = hdl.graph_allgather_reference(&per_device[hdl.rank])?;
                hdl.scatter_backward_reference(&full)
            })
            .expect("healthy cluster")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_matmul, bench_aggregate, bench_allgather);
criterion_main!(benches);
