//! Criterion bench for the SPST planner (Table 8's measurement).
//!
//! Benchmarks the exact sequential planner against the batched fast
//! path (`SpstConfig::batched`) at one and several threads, so the
//! demand-class-reuse win and the thread-scaling win are visible
//! separately.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dgcl_bench::RunContext;
use dgcl_graph::Dataset;
use dgcl_plan::{spst_plan, spst_plan_with_config, SpstConfig};
use dgcl_sim::epoch::partition_for;
use dgcl_topology::Topology;

fn bench_spst(c: &mut Criterion) {
    let mut ctx = RunContext::new(false);
    let mut group = c.benchmark_group("spst");
    group.sample_size(10);
    for dataset in [Dataset::WebGoogle, Dataset::WikiTalk] {
        let graph = ctx.graph(dataset);
        for gpus in [4usize, 8] {
            let topo = Topology::for_gpu_count(gpus);
            let pg = partition_for(&graph, &topo, ctx.seed);
            group.bench_with_input(
                BenchmarkId::new(format!("{}-seq", dataset.name()), gpus),
                &gpus,
                |b, _| b.iter(|| spst_plan(&pg, &topo, 1024, 42)),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("{}-batched1", dataset.name()), gpus),
                &gpus,
                |b, _| {
                    b.iter(|| spst_plan_with_config(&pg, &topo, 1024, 42, SpstConfig::batched(1)))
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("{}-batched4", dataset.name()), gpus),
                &gpus,
                |b, _| {
                    b.iter(|| spst_plan_with_config(&pg, &topo, 1024, 42, SpstConfig::batched(4)))
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_spst);
criterion_main!(benches);
