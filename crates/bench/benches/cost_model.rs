//! Criterion bench for cost-model evaluation and the incremental delta
//! query that SPST calls in its inner loop.

use criterion::{criterion_group, criterion_main, Criterion};
use dgcl_plan::CostState;
use dgcl_topology::Topology;

fn bench_cost_model(c: &mut Criterion) {
    let topo = Topology::dgx1();
    let routes: Vec<_> = (0..8)
        .flat_map(|i| (0..8).filter(move |&j| j != i).map(move |j| (i, j)))
        .collect();
    c.bench_function("cost_state_add_56_links", |b| {
        b.iter(|| {
            let mut cs = CostState::new(&topo, 7);
            for (k, &(i, j)) in routes.iter().enumerate() {
                cs.add(k % 7, topo.route(i, j), 4096);
            }
            cs.total_time()
        })
    });
    c.bench_function("cost_state_delta", |b| {
        let mut cs = CostState::new(&topo, 7);
        for (k, &(i, j)) in routes.iter().enumerate() {
            cs.add(k % 7, topo.route(i, j), 4096);
        }
        let route = topo.route(0, 7);
        b.iter(|| cs.delta(3, route, 4096))
    });
}

criterion_group!(benches, bench_cost_model);
criterion_main!(benches);
