//! Criterion bench for the synthetic graph generators.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dgcl_graph::generators::{barabasi_albert, erdos_renyi, rmat, RmatConfig};

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("rmat", "10k/80k"), &(), |b, ()| {
        b.iter(|| rmat(10_000, 80_000, RmatConfig::social(), 42))
    });
    group.bench_with_input(BenchmarkId::new("ba", "10k/m3"), &(), |b, ()| {
        b.iter(|| barabasi_albert(10_000, 3, 42))
    });
    group.bench_with_input(BenchmarkId::new("er", "10k/80k"), &(), |b, ()| {
        b.iter(|| erdos_renyi(10_000, 80_000, 42))
    });
    group.finish();
}

criterion_group!(benches, bench_generators);
criterion_main!(benches);
