//! Criterion bench for the multilevel partitioner.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dgcl_bench::RunContext;
use dgcl_graph::Dataset;
use dgcl_partition::multilevel::kway;

fn bench_partition(c: &mut Criterion) {
    let mut ctx = RunContext::new(false);
    let mut group = c.benchmark_group("partition");
    group.sample_size(10);
    for dataset in [Dataset::WebGoogle, Dataset::WikiTalk] {
        let graph = ctx.graph(dataset);
        for k in [4usize, 8] {
            group.bench_with_input(BenchmarkId::new(dataset.name(), k), &k, |b, &k| {
                b.iter(|| kway(&graph, k, 42))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_partition);
criterion_main!(benches);
