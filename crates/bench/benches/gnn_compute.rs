//! Criterion bench for the numeric GNN layers (forward + backward).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dgcl_gnn::{Architecture, Layer};
use dgcl_graph::generators::barabasi_albert;
use dgcl_tensor::XavierInit;

fn bench_layers(c: &mut Criterion) {
    let graph = barabasi_albert(2000, 3, 7);
    let mut group = c.benchmark_group("gnn_layer");
    group.sample_size(10);
    for arch in [Architecture::Gcn, Architecture::CommNet, Architecture::Gin] {
        let mut init = XavierInit::new(1);
        let h = init.features(2000, 64);
        group.bench_with_input(
            BenchmarkId::new("fwd_bwd", arch.name()),
            &arch,
            |b, &arch| {
                b.iter(|| {
                    let mut layer = Layer::new(arch, 64, 64, &mut XavierInit::new(2));
                    let out = layer.forward(&graph, &h, 2000);
                    layer.backward(&graph, &out)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_layers);
criterion_main!(benches);
