//! Shared harness for the experiment reproduction binary and the
//! Criterion benches.
//!
//! Every table and figure of the paper's evaluation (§7) has a matching
//! experiment in [`experiments`]; run them with
//! `cargo run -p dgcl-bench --release --bin repro -- <id> [--full]`.
//!
//! Experiments run on scaled-down dataset instances by default (the
//! planner and simulator are scale-invariant in structure; payloads,
//! work and memory are projected back to full scale via the `upscale`
//! factor, see `dgcl-sim`). `--full` regenerates the paper-scale graphs —
//! slower, same shapes.

pub mod experiments;
pub mod harness;

pub use harness::RunContext;
