//! Experiment plumbing: dataset scales, graph caching and table printing.

use std::collections::HashMap;

use dgcl_graph::{CsrGraph, Dataset};
use dgcl_sim::{EpochConfig, GnnModel};

/// Context shared by all experiments: the scale regime and a graph cache
/// so repeated experiments reuse generated datasets.
pub struct RunContext {
    full: bool,
    cache: HashMap<(Dataset, u64), CsrGraph>,
    /// Seed used for generation, partitioning and planning.
    pub seed: u64,
}

impl RunContext {
    /// Creates a context; `full` regenerates paper-scale graphs.
    pub fn new(full: bool) -> Self {
        Self {
            full,
            cache: HashMap::new(),
            seed: 42,
        }
    }

    /// The generation scale for a dataset under this context.
    ///
    /// Default scales keep each experiment in seconds while preserving
    /// density and skew; `--full` uses 1.0 (paper scale).
    pub fn scale(&self, d: Dataset) -> f64 {
        if self.full {
            return 1.0;
        }
        match d {
            Dataset::Reddit => 0.02,
            Dataset::ComOrkut => 0.008,
            Dataset::WebGoogle => 0.02,
            Dataset::WikiTalk => 0.015,
        }
    }

    /// The full-scale projection factor (1 / scale).
    pub fn upscale(&self, d: Dataset) -> f64 {
        1.0 / self.scale(d)
    }

    /// Generates (or returns the cached) graph for `d`.
    pub fn graph(&mut self, d: Dataset) -> CsrGraph {
        let seed = self.seed;
        let scale = self.scale(d);
        self.cache
            .entry((d, seed))
            .or_insert_with(|| d.generate(scale, seed))
            .clone()
    }

    /// The simulation config for a dataset/model pair, with the paper's
    /// feature and hidden sizes (Table 4) and this context's upscale.
    pub fn epoch_config(&self, d: Dataset, model: GnnModel) -> EpochConfig {
        let stats = d.stats();
        let mut cfg = EpochConfig::new(model, stats.feature_size, stats.hidden_size);
        cfg.upscale = self.upscale(d);
        cfg.seed = self.seed;
        cfg
    }
}

/// Formats seconds as milliseconds with sensible precision.
pub fn ms(seconds: f64) -> String {
    let v = seconds * 1e3;
    if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

/// Prints an aligned text table: `header` then `rows`, all cells
/// pre-formatted.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n## {title}\n");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let joined: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>w$}", w = widths.get(i).copied().unwrap_or(8)))
            .collect();
        println!("  {}", joined.join("  "));
    };
    line(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_full_under_full_flag() {
        let ctx = RunContext::new(true);
        assert_eq!(ctx.scale(Dataset::Reddit), 1.0);
        assert_eq!(ctx.upscale(Dataset::Reddit), 1.0);
    }

    #[test]
    fn graph_cache_returns_same_graph() {
        let mut ctx = RunContext::new(false);
        let a = ctx.graph(Dataset::WikiTalk);
        let b = ctx.graph(Dataset::WikiTalk);
        assert_eq!(a, b);
    }

    #[test]
    fn ms_formatting() {
        assert_eq!(ms(0.1234), "123");
        assert_eq!(ms(0.01234), "12.3");
        assert_eq!(ms(0.001234), "1.23");
    }

    #[test]
    fn epoch_config_uses_table4_dims() {
        let ctx = RunContext::new(false);
        let cfg = ctx.epoch_config(Dataset::Reddit, GnnModel::Gcn);
        assert_eq!(cfg.feature_size, 602);
        assert_eq!(cfg.hidden_size, 256);
    }
}
