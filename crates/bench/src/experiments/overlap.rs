//! Overlap benchmark: pipelined chunked collectives vs the barriered
//! schedule.
//!
//! Two views of the same optimisation:
//!
//! * **Simulated** — [`simulate_overlap`] runs the fluid network model
//!   twice per (dataset, device-count) cell: once with PR 2's barriered
//!   stage schedule, once with fixed-chunk pipelining plus the trainer's
//!   bucketed-allreduce overlap (gradient-apply hidden behind backward
//!   compute). This is the hardware projection — it models V100-class
//!   links, so the pipelined column must come out strictly below the
//!   barriered one.
//! * **Measured** — one real threaded training run per dataset with
//!   `TrainConfig::overlap` off then on. Both paths are
//!   bitwise-deterministic and produce identical losses; the wall-clock
//!   delta is only meaningful with spare cores (the JSON records `cpus`
//!   so a 1-CPU runner documents its ceiling instead of faking a win).
//!
//! Results go to `BENCH_overlap.json`. Set `DGCL_BENCH_SMOKE=1` to
//! shrink sizes and repetitions for CI smoke runs.

use std::fmt::Write as _;
use std::time::Instant;

use dgcl::trainer::{train_distributed, TrainConfig};
use dgcl::{build_comm_info, BuildOptions};
use dgcl_gnn::Architecture;
use dgcl_graph::Dataset;
use dgcl_sim::{simulate_overlap, GnnModel};
use dgcl_tensor::XavierInit;
use dgcl_topology::Topology;

use crate::harness::{ms, print_table, RunContext};

/// Chunk size (rows) used for every pipelined cell; matches
/// `BuildOptions::default().chunk_rows`.
const CHUNK_ROWS: usize = 64;

/// Device counts for the simulated sweep.
const DEVICES: [usize; 3] = [2, 4, 8];

/// One simulated (dataset, device-count) cell.
struct SimRecord {
    dataset: &'static str,
    devices: usize,
    barriered_seconds: f64,
    pipelined_seconds: f64,
    hidden_apply_seconds: f64,
    speedup: f64,
}

/// One measured training run (barriered vs overlapped wall clock).
struct MeasuredRecord {
    dataset: &'static str,
    barriered_seconds: f64,
    overlapped_seconds: f64,
    speedup: f64,
}

fn smoke() -> bool {
    std::env::var("DGCL_BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0")
}

fn cpus() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Median-of-`reps` wall time of `body` in seconds.
fn time<F: FnMut()>(reps: usize, mut body: F) -> f64 {
    let mut samples: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let t = Instant::now();
            body();
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

pub fn run(ctx: &mut RunContext) {
    let smoke = smoke();

    // Simulated sweep: both datasets the acceptance gate names, at every
    // device count, pipelined vs barriered on the fluid-flow model.
    let mut sims: Vec<SimRecord> = Vec::new();
    let mut rows = Vec::new();
    for dataset in [Dataset::WikiTalk, Dataset::WebGoogle] {
        let graph = ctx.graph(dataset);
        let cfg = ctx.epoch_config(dataset, GnnModel::Gcn);
        for devices in DEVICES {
            let topo = Topology::dgx1_subset(devices);
            let b = simulate_overlap(&graph, &topo, &cfg, CHUNK_ROWS);
            let barriered = b.barriered_epoch_seconds();
            let pipelined = b.pipelined_epoch_seconds();
            let speedup = barriered / pipelined.max(1e-12);
            rows.push(vec![
                dataset.name().to_string(),
                devices.to_string(),
                ms(barriered),
                ms(pipelined),
                ms(b.hidden_apply_seconds),
                format!("{speedup:.2}x"),
            ]);
            sims.push(SimRecord {
                dataset: dataset.name(),
                devices,
                barriered_seconds: barriered,
                pipelined_seconds: pipelined,
                hidden_apply_seconds: b.hidden_apply_seconds,
                speedup,
            });
        }
    }
    print_table(
        "Overlap: simulated epoch, barriered vs chunk-pipelined (V100 model)",
        &[
            "Dataset",
            "GPUs",
            "Barriered (ms)",
            "Pipelined (ms)",
            "Hidden (ms)",
            "Speedup",
        ],
        &rows,
    );
    println!(
        "  (fluid-flow network model; pipelined = fixed-chunk relay forwarding\n   plus gradient-apply hidden behind backward compute. chunk_rows = {CHUNK_ROWS}.)"
    );

    // Measured: the real threaded trainer, overlap off vs on. Identical
    // losses by construction; only the schedule differs.
    let mut measured: Vec<MeasuredRecord> = Vec::new();
    let mut measured_rows = Vec::new();
    let reps = if smoke { 1 } else { 3 };
    let epochs = if smoke { 1 } else { 2 };
    let mut init = XavierInit::new(ctx.seed);
    for dataset in [Dataset::WikiTalk, Dataset::WebGoogle] {
        let graph = ctx.graph(dataset);
        let nv = graph.num_vertices();
        let feats = if smoke { 16 } else { 32 };
        let features = init.features(nv, feats);
        let targets = init.features(nv, 8);
        let info = build_comm_info(&graph, Topology::fig6(), BuildOptions::default());
        let mut cfg = TrainConfig::new(Architecture::Gcn, &[feats, 8], epochs);
        cfg.overlap = false;
        let barriered = time(reps, || {
            std::hint::black_box(
                train_distributed(&info, &graph, &features, &targets, &cfg)
                    .expect("healthy cluster"),
            );
        });
        cfg.overlap = true;
        let overlapped = time(reps, || {
            std::hint::black_box(
                train_distributed(&info, &graph, &features, &targets, &cfg)
                    .expect("healthy cluster"),
            );
        });
        let speedup = barriered / overlapped.max(1e-12);
        measured_rows.push(vec![
            dataset.name().to_string(),
            ms(barriered),
            ms(overlapped),
            format!("{speedup:.2}x"),
        ]);
        measured.push(MeasuredRecord {
            dataset: dataset.name(),
            barriered_seconds: barriered,
            overlapped_seconds: overlapped,
            speedup,
        });
    }
    print_table(
        "Overlap: measured training wall clock (4 simulated GPUs, threads)",
        &["Dataset", "Barriered (ms)", "Overlapped (ms)", "Speedup"],
        &measured_rows,
    );
    println!(
        "  (threaded shared-memory fabric; overlap needs spare cores to show a\n   wall-clock win — the JSON records `cpus` so CI can tell a regression\n   from a 1-CPU ceiling. Losses are bitwise identical either way.)"
    );

    match std::fs::write("BENCH_overlap.json", render_json(smoke, &sims, &measured)) {
        Ok(()) => println!("  wrote BENCH_overlap.json"),
        Err(e) => println!("  could not write BENCH_overlap.json: {e}"),
    }
}

/// Hand-rolled JSON (the workspace is offline; no serde).
fn render_json(smoke: bool, sims: &[SimRecord], measured: &[MeasuredRecord]) -> String {
    let cpus = cpus();
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"bench\": \"overlap\",");
    let _ = writeln!(out, "  \"cpus\": {cpus},");
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    let _ = writeln!(out, "  \"chunk_rows\": {CHUNK_ROWS},");
    let _ = writeln!(
        out,
        "  \"note\": \"{}\",",
        if cpus == 1 {
            "single-cpu machine: measured wall-clock overlap is ceiling-limited at ~1x; \
             the simulated columns model V100-class links and hold regardless"
        } else {
            "simulated columns use the fluid-flow V100 model; measured columns are \
             real threaded wall clock and need spare cores to show overlap"
        }
    );
    let _ = writeln!(out, "  \"simulated\": [");
    for (i, r) in sims.iter().enumerate() {
        let comma = if i + 1 == sims.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"dataset\": \"{}\", \"devices\": {}, \"barriered_seconds\": {:.6}, \"pipelined_seconds\": {:.6}, \"hidden_apply_seconds\": {:.6}, \"speedup\": {:.3}}}{}",
            r.dataset,
            r.devices,
            r.barriered_seconds,
            r.pipelined_seconds,
            r.hidden_apply_seconds,
            r.speedup,
            comma,
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"measured\": [");
    for (i, r) in measured.iter().enumerate() {
        let comma = if i + 1 == measured.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"dataset\": \"{}\", \"barriered_seconds\": {:.6}, \"overlapped_seconds\": {:.6}, \"speedup\": {:.3}}}{}",
            r.dataset, r.barriered_seconds, r.overlapped_seconds, r.speedup, comma,
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = write!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_well_formed_enough() {
        let sims = [SimRecord {
            dataset: "wiki-talk",
            devices: 4,
            barriered_seconds: 2.0,
            pipelined_seconds: 1.5,
            hidden_apply_seconds: 0.1,
            speedup: 4.0 / 3.0,
        }];
        let measured = [MeasuredRecord {
            dataset: "web-google",
            barriered_seconds: 0.5,
            overlapped_seconds: 0.4,
            speedup: 1.25,
        }];
        let json = render_json(true, &sims, &measured);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"bench\": \"overlap\""));
        assert!(json.contains("\"devices\": 4"));
        assert!(json.contains("\"pipelined_seconds\": 1.500000"));
        assert!(json.contains("\"overlapped_seconds\": 0.400000"));
        assert!(json.contains("\"smoke\": true"));
    }

    #[test]
    fn median_timer_is_positive() {
        let s = time(3, || {
            std::hint::black_box((0..1000).sum::<u64>());
        });
        assert!(s >= 0.0);
    }
}
