//! Backend crossover benchmark: SPST-planned gather vs CAGNET block
//! SpMM, and the offline [`BackendSelector`] that arbitrates between
//! them.
//!
//! For every (graph family, topology) cell the experiment partitions
//! the graph exactly as `build_comm_info` would (hierarchically), prices
//! the planned gather on the resulting communication relation, prices
//! every CAGNET replication factor that divides the device count, and
//! records which backend the selector picks. Two graph families pin the
//! two regimes:
//!
//! * **community** — `community_rmat` with strong locality. The
//!   partitioner finds the blocks, the vertex cut stays small, and the
//!   planned gather's cut-proportional volume wins.
//! * **high-cut** — Erdős–Rényi. There is no structure to find; the
//!   relation approaches a full allgather, and CAGNET's cut-oblivious
//!   `O(n·f/c)` panels win once enough devices amplify the cut.
//!
//! The claims checked in CI (and by the unit tests below): the planner
//! wins every community cell, CAGNET wins every high-cut cell at 8+
//! devices (below that the cut cannot pay for CAGNET's barriered
//! rounds), and the selector's pick is within 10% of the per-cell best
//! over the *full* replication sweep — including factors outside its
//! own `c² ≤ p` candidate set, so the bound is not true by construction.
//!
//! Results go to `BENCH_cagnet.json`. Set `DGCL_BENCH_SMOKE=1` to
//! shrink the graphs for CI smoke runs.

use std::fmt::Write as _;

use dgcl_graph::generators::{community_rmat, erdos_renyi, RmatConfig};
use dgcl_graph::CsrGraph;
use dgcl_partition::hierarchical::hierarchical;
use dgcl_partition::PartitionedGraph;
use dgcl_sim::{cagnet_aggregate_cost, BackendKind, BackendSelector};
use dgcl_topology::Topology;

use crate::harness::{ms, print_table, RunContext};

/// Embedding payload priced per vertex: 4 bytes × 64 features.
const BYTES_PER_VERTEX: u64 = 4 * 64;

/// One (graph family, topology) cell of the sweep.
struct Record {
    graph: &'static str,
    topology: &'static str,
    devices: usize,
    /// Priced cut volume of the relation, in vertices (diagnostic).
    cut_vertices: u64,
    planned_seconds: f64,
    /// Every replication factor dividing the device count, priced.
    cagnet: Vec<(usize, f64)>,
    /// The selector's verdict on the same inputs.
    chosen: BackendKind,
    chosen_seconds: f64,
}

impl Record {
    /// Cheapest CAGNET candidate over the full divisor sweep.
    fn best_cagnet(&self) -> (usize, f64) {
        self.cagnet
            .iter()
            .copied()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("c = 1 always divides")
    }

    /// Per-cell best over both backends and the full sweep.
    fn best_seconds(&self) -> f64 {
        self.planned_seconds.min(self.best_cagnet().1)
    }
}

fn smoke() -> bool {
    std::env::var("DGCL_BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// The benchmark topologies, 2 → 16 devices: flat PCIe hosts at the
/// small end, the NVLink DGX-1, and two IB-connected machines.
fn topologies() -> Vec<(&'static str, Topology, usize)> {
    vec![
        ("pcie-host-2", Topology::pcie_host(2), 2),
        ("pcie-host-4", Topology::pcie_host(4), 4),
        ("dgx1", Topology::dgx1(), 8),
        ("dual-machine", Topology::dgx1_pair_ib(), 16),
    ]
}

/// The two graph families: builders keyed by family name.
fn graphs(smoke: bool) -> Vec<(&'static str, CsrGraph)> {
    let n = if smoke { 2048 } else { 16384 };
    let edges = 8 * n;
    vec![
        (
            "community",
            community_rmat(n, edges, 16, 0.95, 0.05, RmatConfig::social(), 7),
        ),
        ("high-cut", erdos_renyi(n, edges, 7)),
    ]
}

/// Prices one cell: hierarchical partition → relation → both backends.
fn price_cell(
    graph_name: &'static str,
    graph: &CsrGraph,
    topo_name: &'static str,
    topology: &Topology,
    devices: usize,
) -> Record {
    let sizes: Vec<usize> = topology.gpus_by_machine().iter().map(|g| g.len()).collect();
    let partition = hierarchical(graph, &sizes, 42);
    let pg = PartitionedGraph::new(graph, partition, devices);
    let mut cut_vertices = 0u64;
    let demand_pairs: Vec<(usize, usize, u64)> = pg
        .demands
        .iter()
        .enumerate()
        .flat_map(|(i, row)| {
            row.iter()
                .enumerate()
                .map(move |(j, vs)| (i, j, vs.len() as u64 * BYTES_PER_VERTEX))
        })
        .inspect(|&(_, _, bytes)| cut_vertices += bytes / BYTES_PER_VERTEX)
        .collect();
    let choice = BackendSelector::choose(
        topology,
        devices,
        graph.num_vertices(),
        BYTES_PER_VERTEX,
        &demand_pairs,
    );
    // The full sweep prices every divisor of the device count — a strict
    // superset of the selector's own candidates, so "chosen within 10%
    // of best" is a real claim about the candidate restriction.
    let cagnet: Vec<(usize, f64)> = (1..=devices)
        .filter(|&c| devices.is_multiple_of(c))
        .map(|c| {
            (
                c,
                cagnet_aggregate_cost(topology, devices, c, graph.num_vertices(), BYTES_PER_VERTEX),
            )
        })
        .collect();
    Record {
        graph: graph_name,
        topology: topo_name,
        devices,
        cut_vertices,
        planned_seconds: choice.planned_seconds,
        cagnet,
        chosen: choice.kind,
        chosen_seconds: choice.chosen_seconds(),
    }
}

/// Prices the full grid.
fn sweep(smoke: bool) -> Vec<Record> {
    let graphs = graphs(smoke);
    let mut records = Vec::new();
    for (topo_name, topology, devices) in topologies() {
        for (graph_name, graph) in &graphs {
            records.push(price_cell(graph_name, graph, topo_name, &topology, devices));
        }
    }
    records
}

pub fn run(_ctx: &mut RunContext) {
    let smoke = smoke();
    let records = sweep(smoke);
    let rows: Vec<Vec<String>> = records
        .iter()
        .map(|r| {
            let (bc, bs) = r.best_cagnet();
            vec![
                r.graph.to_string(),
                format!("{} ({})", r.topology, r.devices),
                r.cut_vertices.to_string(),
                ms(r.planned_seconds),
                format!("c={bc}: {}", ms(bs)),
                r.chosen.label(),
                format!("{:.2}", r.chosen_seconds / r.best_seconds().max(1e-12)),
            ]
        })
        .collect();
    print_table(
        "CAGNET crossover: planned vs block-SpMM aggregation, per-cell selector verdicts",
        &[
            "Graph",
            "Topology",
            "Cut (vertices)",
            "Planned",
            "Best CAGNET",
            "Chosen",
            "Chosen/Best",
        ],
        &rows,
    );
    match std::fs::write("BENCH_cagnet.json", render_json(smoke, &records)) {
        Ok(()) => println!("  wrote BENCH_cagnet.json"),
        Err(e) => println!("  could not write BENCH_cagnet.json: {e}"),
    }
}

/// Hand-rolled JSON (the workspace is offline; no serde).
fn render_json(smoke: bool, records: &[Record]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"bench\": \"cagnet\",");
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    let _ = writeln!(out, "  \"bytes_per_vertex\": {BYTES_PER_VERTEX},");
    let _ = writeln!(
        out,
        "  \"note\": \"predicted per-layer aggregation cost from the dgcl-sim models; \
         chosen = the offline BackendSelector's verdict per cell\","
    );
    let _ = writeln!(out, "  \"records\": [");
    for (i, r) in records.iter().enumerate() {
        let comma = if i + 1 == records.len() { "" } else { "," };
        let cagnet: Vec<String> = r
            .cagnet
            .iter()
            .map(|(c, s)| format!("{{\"c\": {c}, \"seconds\": {s:.9}}}"))
            .collect();
        let _ = writeln!(
            out,
            "    {{\"graph\": \"{}\", \"topology\": \"{}\", \"devices\": {}, \
             \"cut_vertices\": {}, \"planned_seconds\": {:.9}, \
             \"cagnet\": [{}], \
             \"chosen\": \"{}\", \"chosen_seconds\": {:.9}}}{}",
            r.graph,
            r.topology,
            r.devices,
            r.cut_vertices,
            r.planned_seconds,
            cagnet.join(", "),
            r.chosen.label(),
            r.chosen_seconds,
            comma,
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = write!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The full-size sweep is partition-dominated; price it once and
    /// share it across the three claim tests.
    fn full_sweep() -> &'static [Record] {
        static SWEEP: std::sync::OnceLock<Vec<Record>> = std::sync::OnceLock::new();
        SWEEP.get_or_init(|| sweep(false))
    }

    /// The crossover itself: locality → planner, no locality at scale →
    /// CAGNET. Priced at full size: the smoke-sized grid is barrier-
    /// dominated and the crossover only appears once volume amortises
    /// the per-round barriers.
    #[test]
    fn planner_wins_community_and_cagnet_wins_high_cut() {
        for r in full_sweep() {
            match r.graph {
                "community" => assert_eq!(
                    r.chosen,
                    BackendKind::Planned,
                    "{} on {}: planner should win a low-cut graph \
                     (planned {:.6}s vs cagnet {:.6}s)",
                    r.graph,
                    r.topology,
                    r.planned_seconds,
                    r.best_cagnet().1,
                ),
                "high-cut" if r.devices >= 8 => assert!(
                    matches!(r.chosen, BackendKind::Cagnet { .. }),
                    "{} on {}: CAGNET should win a cut-dominated graph \
                     (planned {:.6}s vs cagnet {:.6}s)",
                    r.graph,
                    r.topology,
                    r.planned_seconds,
                    r.best_cagnet().1,
                ),
                _ => {}
            }
        }
    }

    /// The acceptance gate: the selector's verdict is within 10% of the
    /// per-cell best over the full replication sweep in every cell.
    #[test]
    fn chosen_within_10pct_of_per_cell_best() {
        for r in full_sweep() {
            assert!(
                r.chosen_seconds <= 1.10 * r.best_seconds(),
                "{} on {}: chosen {} ({:.6}s) not within 10% of best ({:.6}s)",
                r.graph,
                r.topology,
                r.chosen.label(),
                r.chosen_seconds,
                r.best_seconds(),
            );
        }
    }

    /// Both backends must win somewhere, or the second backend (and the
    /// selector) would be dead weight.
    #[test]
    fn no_backend_dominates_the_grid() {
        let records = full_sweep();
        let planned = records
            .iter()
            .filter(|r| r.chosen == BackendKind::Planned)
            .count();
        assert!(
            planned > 0 && planned < records.len(),
            "one backend won every cell: {planned}/{} planned",
            records.len()
        );
    }

    #[test]
    fn json_is_well_formed_enough() {
        let records = [Record {
            graph: "community",
            topology: "dgx1",
            devices: 8,
            cut_vertices: 1234,
            planned_seconds: 0.001,
            cagnet: vec![(1, 0.004), (2, 0.003)],
            chosen: BackendKind::Planned,
            chosen_seconds: 0.001,
        }];
        let json = render_json(true, &records);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"bench\": \"cagnet\""));
        assert!(json.contains("\"chosen\": \"planned\""));
        assert!(json.contains("\"smoke\": true"));
    }
}
