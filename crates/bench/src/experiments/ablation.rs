//! Ablations (beyond the paper): how much each SPST design choice
//! contributes, under the staged cost model on the DGX-1.
//!
//! * `no fusion` — every (vertex, destination) demand is an isolated
//!   unicast, serialised per destination.
//! * `no forwarding` — direct source-to-destination trees only
//!   (equivalent to peer-to-peer for this relation).
//! * `sorted order` — SPST without the random vertex shuffle (processing
//!   vertices in id order), isolating the contribution of shuffling to
//!   load balance.

use dgcl_graph::Dataset;
use dgcl_plan::baselines::{peer_to_peer, unicast_plan};
use dgcl_plan::{spst_plan, spst_plan_with_order, VertexOrder};
use dgcl_sim::epoch::partition_for;
use dgcl_topology::Topology;

use crate::harness::{ms, print_table, RunContext};

pub fn run(ctx: &mut RunContext) {
    let topo = Topology::dgx1();
    let mut rows = Vec::new();
    for dataset in Dataset::all() {
        let graph = ctx.graph(dataset);
        let pg = partition_for(&graph, &topo, ctx.seed);
        let bytes = (4.0 * dataset.stats().hidden_size as f64 * ctx.upscale(dataset)) as u64;
        let spst = spst_plan(&pg, &topo, bytes, ctx.seed);
        let t_spst = spst.cost.total_time();
        let t_p2p = peer_to_peer(&pg).estimated_time(&topo, bytes);
        let t_uni = unicast_plan(&pg).estimated_time(&topo, bytes);
        rows.push(vec![
            dataset.name().to_string(),
            ms(t_spst),
            ms(t_p2p),
            ms(t_uni),
            format!("{:.2}x", t_p2p / t_spst),
            format!("{:.2}x", t_uni / t_spst),
        ]);
    }
    print_table(
        "Ablation: one allgather under the cost model, 8 GPUs",
        &[
            "Dataset",
            "SPST",
            "No forwarding (p2p)",
            "No fusion (unicast)",
            "p2p/SPST",
            "unicast/SPST",
        ],
        &rows,
    );

    // Vertex-ordering ablation: the paper shuffles; alternatives change
    // the greedy outcome only marginally when load balancing works.
    let mut rows = Vec::new();
    for dataset in Dataset::all() {
        let graph = ctx.graph(dataset);
        let pg = partition_for(&graph, &topo, ctx.seed);
        let bytes = (4.0 * dataset.stats().hidden_size as f64 * ctx.upscale(dataset)) as u64;
        let t = |order| {
            spst_plan_with_order(&pg, &topo, bytes, ctx.seed, order)
                .cost
                .total_time()
        };
        let shuffled = t(VertexOrder::Shuffled);
        let by_id = t(VertexOrder::ById);
        let by_fanout = t(VertexOrder::ByFanoutDesc);
        rows.push(vec![
            dataset.name().to_string(),
            ms(shuffled),
            ms(by_id),
            ms(by_fanout),
        ]);
    }
    print_table(
        "Ablation: SPST vertex processing order (allgather cost, ms)",
        &["Dataset", "Shuffled (paper)", "By id", "By fanout desc"],
        &rows,
    );

    // Control: on a flat NVSwitch crossbar every pair has the same fast
    // link, so topology-aware planning has little left to exploit and
    // DGCL should roughly match peer-to-peer — evidence that its gains on
    // the DGX-1 come from heterogeneity, not from an unrelated advantage.
    let flat = Topology::nvswitch(8);
    let mut rows = Vec::new();
    for dataset in Dataset::all() {
        let graph = ctx.graph(dataset);
        let pg = partition_for(&graph, &flat, ctx.seed);
        let bytes = (4.0 * dataset.stats().hidden_size as f64 * ctx.upscale(dataset)) as u64;
        let spst = spst_plan(&pg, &flat, bytes, ctx.seed);
        let t_spst = spst.cost.total_time();
        let t_p2p = peer_to_peer(&pg).estimated_time(&flat, bytes);
        rows.push(vec![
            dataset.name().to_string(),
            ms(t_spst),
            ms(t_p2p),
            format!("{:.2}x", t_p2p / t_spst),
        ]);
    }
    print_table(
        "Control: flat NVSwitch crossbar, 8 GPUs (DGCL should ~match p2p)",
        &["Dataset", "SPST", "Peer-to-peer", "p2p/SPST"],
        &rows,
    );
}
