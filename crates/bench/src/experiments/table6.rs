//! Table 6: one graphAllgather on the PCIe-only (no NVLink) server.
//!
//! Shape: DGCL still beats Peer-to-peer (through contention avoidance and
//! load balance rather than fast-link exploitation — the advantage is
//! smaller than with NVLink), and Swap collapses on the large graphs.

use dgcl_graph::Dataset;
use dgcl_plan::baselines::{peer_to_peer, swap};
use dgcl_plan::spst_plan;
use dgcl_sim::epoch::partition_for;
use dgcl_sim::network::simulate_plan;
use dgcl_sim::{simulate_flows, Flow};
use dgcl_topology::Topology;

use crate::harness::{ms, print_table, RunContext};

pub fn run(ctx: &mut RunContext) {
    let topo = Topology::pcie_host(8);
    let feature = 128usize; // The paper fixes feature size 128 here.
    let mut rows = Vec::new();
    for dataset in Dataset::all() {
        let graph = ctx.graph(dataset);
        let pg = partition_for(&graph, &topo, ctx.seed);
        let bytes = (4.0 * feature as f64 * ctx.upscale(dataset)) as u64;
        let dgcl = spst_plan(&pg, &topo, bytes, ctx.seed);
        let t_dgcl = simulate_plan(&dgcl.plan, &topo, bytes).total_seconds;
        let t_p2p = simulate_plan(&peer_to_peer(&pg), &topo, bytes).total_seconds;
        let sp = swap(&pg, bytes);
        let t_swap = swap_time(&sp, &topo);
        rows.push(vec![
            dataset.name().to_string(),
            ms(t_dgcl),
            ms(t_swap),
            ms(t_p2p),
        ]);
    }
    print_table(
        "Table 6: one graphAllgather (ms), 8 GPUs, PCIe only, feature 128",
        &["Dataset", "DGCL", "Swap", "Peer-to-peer"],
        &rows,
    );
    println!(
        "  (paper: DGCL 14.3/128/7.84/5.86; Swap 14.5/1220/116/317; P2P 17.9/179/8.72/8.51\n   for Reddit/Com-Orkut/Web-Google/Wiki-Talk)"
    );
}

fn swap_time(sp: &dgcl_plan::baselines::SwapPlan, topo: &Topology) -> f64 {
    let mut total = 0.0;
    let dump: Vec<Flow> = sp
        .dump_bytes
        .iter()
        .enumerate()
        .filter(|&(_, &b)| b > 0)
        .map(|(gpu, &bytes)| Flow {
            route: topo
                .route_nodes(topo.gpu_node(gpu), topo.host_memory_of(gpu).expect("mem"))
                .expect("reachable"),
            bytes,
            overhead_seconds: 15e-6,
            tag: gpu,
        })
        .collect();
    total += simulate_flows(topo, &dump).0;
    let load: Vec<Flow> = sp
        .loads
        .iter()
        .enumerate()
        .map(|(i, &(owner, loader, bytes))| Flow {
            route: topo
                .route_nodes(
                    topo.host_memory_of(owner).expect("mem"),
                    topo.gpu_node(loader),
                )
                .expect("reachable"),
            bytes,
            overhead_seconds: 15e-6,
            tag: i,
        })
        .collect();
    total += simulate_flows(topo, &load).0;
    total
}
