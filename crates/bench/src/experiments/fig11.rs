//! Figure 11: memory of the send/receive tables relative to training
//! memory.
//!
//! Shape: the ratio stays below 0.002 (2 per mille) everywhere — the
//! tables store vertex ids, not embeddings, and are reused across layers.

use dgcl_graph::Dataset;
use dgcl_plan::{spst_plan, SendRecvTables};
use dgcl_sim::epoch::partition_for;
use dgcl_sim::memory::training_bytes;
use dgcl_topology::Topology;

use crate::harness::{print_table, RunContext};

pub fn run(ctx: &mut RunContext) {
    for gpus in [8usize, 16] {
        let topo = Topology::for_gpu_count(gpus);
        let mut rows = Vec::new();
        for dataset in Dataset::all() {
            let graph = ctx.graph(dataset);
            let stats = dataset.stats();
            let pg = partition_for(&graph, &topo, ctx.seed);
            let outcome = spst_plan(&pg, &topo, 1024, ctx.seed);
            let tables = SendRecvTables::from_plan(&outcome.plan);
            let up = ctx.upscale(dataset);
            let table_bytes = (tables.memory_bytes() as f64 * up) as u64;
            let train_bytes: u64 = (0..gpus)
                .map(|d| {
                    let lg = pg.local_graph(d);
                    training_bytes(
                        (lg.num_total() as f64 * up) as u64,
                        (lg.graph.num_edges() as f64 * up) as u64,
                        stats.feature_size,
                        stats.hidden_size,
                        2,
                    )
                })
                .sum();
            let ratio = table_bytes as f64 / train_bytes as f64 * 1000.0;
            rows.push(vec![dataset.name().to_string(), format!("{ratio:.3}")]);
        }
        print_table(
            &format!("Figure 11 ({gpus} GPUs): table memory / training memory (per mille)"),
            &["Dataset", "Ratio (‰)"],
            &rows,
        );
    }
    println!("  (paper: 0.935/0.096/1.880/0.350 at 8 GPUs; below 2 per mille everywhere)");
}
