//! Table 5: DGCL vs DGCL-R (cross-machine replication) on 16 GPUs.
//!
//! Shape: DGCL-R wins decisively for GCN on the sparse Web-Google (IB
//! dominates the plain-DGCL epoch), but loses for the compute-heavy GIN
//! (replication duplicates computation) and does not pay off on dense
//! Reddit (it replicates almost the whole graph per machine).

use dgcl_graph::Dataset;
use dgcl_sim::{simulate_epoch, GnnModel, Method};
use dgcl_topology::Topology;

use crate::harness::{ms, print_table, RunContext};

pub fn run(ctx: &mut RunContext) {
    let topo = Topology::dgx1_pair_ib();
    let mut rows = Vec::new();
    for model in [GnnModel::Gcn, GnnModel::Gin] {
        let mut row = vec![model.name().to_string()];
        for dataset in [Dataset::WebGoogle, Dataset::Reddit] {
            let graph = ctx.graph(dataset);
            let cfg = ctx.epoch_config(dataset, model);
            let dgcl = simulate_epoch(Method::Dgcl, &graph, &topo, &cfg);
            let dgcl_r = simulate_epoch(Method::DgclR, &graph, &topo, &cfg);
            row.push(if dgcl.oom {
                "OOM".into()
            } else {
                ms(dgcl.total_seconds())
            });
            row.push(if dgcl_r.oom {
                "OOM".into()
            } else {
                ms(dgcl_r.total_seconds())
            });
        }
        rows.push(row);
    }
    print_table(
        "Table 5: per-epoch (ms) on 16 GPUs",
        &[
            "Model",
            "Web-Google DGCL",
            "Web-Google DGCL-R",
            "Reddit DGCL",
            "Reddit DGCL-R",
        ],
        &rows,
    );
    println!(
        "  (paper: GCN/Web-Google 54.0 vs 26.7 — DGCL-R wins; GIN/Web-Google 94.8 vs\n   107 and GIN/Reddit 53.1 vs 71.9 — DGCL wins; GCN/Reddit 88.4 vs 86.4 — close)"
    );
}
