//! Collectives benchmark: the cost-model autotuner against the
//! algorithm zoo.
//!
//! For each topology the paper's evaluation cares about — the NVLink
//! DGX-1, a PCIe-only host, and two IB-connected machines — this
//! experiment tunes an [`AlgorithmSelector`] offline (the same call the
//! trainer makes), then sweeps allreduce message sizes on a *finer*
//! grid than the tuner saw and records the predicted latency of the
//! tuned choice against the per-size best and worst algorithms.
//!
//! The claims checked in CI (and by the unit tests below): the tuned
//! choice is within 10% of the per-size best everywhere and strictly
//! beats the per-size worst — i.e. the selector interpolates sensibly
//! between its tuning points instead of memorising them.
//!
//! Results go to `BENCH_collectives.json`. Set `DGCL_BENCH_SMOKE=1` to
//! shrink the size grid for CI smoke runs.

use std::fmt::Write as _;

use dgcl_sim::{allreduce_costs, AlgorithmSelector, AllreduceAlgo};
use dgcl_topology::Topology;

use crate::harness::{ms, print_table, RunContext};

/// Pipelining granularity in bytes: the fabric's default
/// `collective_chunk` (4096 f32 elements).
const CHUNK_BYTES: u64 = 4 * 4096;

/// One (topology, message size) cell of the sweep.
struct Record {
    topology: &'static str,
    devices: usize,
    bytes: u64,
    chosen: AllreduceAlgo,
    chosen_seconds: f64,
    best: AllreduceAlgo,
    best_seconds: f64,
    worst: AllreduceAlgo,
    worst_seconds: f64,
}

fn smoke() -> bool {
    std::env::var("DGCL_BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// The three benchmark topologies: name, topology, device count.
fn topologies() -> Vec<(&'static str, Topology, usize)> {
    vec![
        ("dgx1", Topology::dgx1(), 8),
        ("pcie-host", Topology::pcie_host(8), 8),
        ("dual-machine", Topology::dgx1_pair_ib(), 16),
    ]
}

/// Message sizes swept: 4 KiB → 64 MiB at every half octave (powers of
/// two plus the `3·2^k` midpoints). The midpoints sit between the
/// tuner's grid points, so the within-10%-of-best claim exercises
/// interpolation, not table lookup.
fn sizes(smoke: bool) -> Vec<u64> {
    if smoke {
        vec![64 << 10, 96 << 10, 1 << 20, 16 << 20]
    } else {
        let mut v: Vec<u64> = Vec::new();
        for p in 12..=26u32 {
            v.push(1u64 << p);
            if p < 26 {
                v.push(3u64 << (p - 1));
            }
        }
        v.sort_unstable();
        v
    }
}

/// Sweeps one topology with a freshly tuned selector.
fn sweep(
    name: &'static str,
    topology: &Topology,
    devices: usize,
    sizes: &[u64],
) -> (AlgorithmSelector, Vec<Record>) {
    let selector = AlgorithmSelector::tune(topology, devices, CHUNK_BYTES);
    let records = sizes
        .iter()
        .map(|&bytes| {
            let costs = allreduce_costs(topology, devices, bytes, CHUNK_BYTES);
            let chosen = selector.pick(bytes);
            let chosen_seconds = costs
                .iter()
                .find(|(a, _)| *a == chosen)
                .expect("chosen algorithm is in the sweep")
                .1;
            let (best, best_seconds) = costs
                .iter()
                .copied()
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .expect("non-empty cost list");
            let (worst, worst_seconds) = costs
                .iter()
                .copied()
                .max_by(|a, b| a.1.total_cmp(&b.1))
                .expect("non-empty cost list");
            Record {
                topology: name,
                devices,
                bytes,
                chosen,
                chosen_seconds,
                best,
                best_seconds,
                worst,
                worst_seconds,
            }
        })
        .collect();
    (selector, records)
}

pub fn run(_ctx: &mut RunContext) {
    let smoke = smoke();
    let sizes = sizes(smoke);
    let mut all: Vec<Record> = Vec::new();
    for (name, topology, devices) in topologies() {
        let (selector, records) = sweep(name, &topology, devices, &sizes);
        let rows: Vec<Vec<String>> = records
            .iter()
            .map(|r| {
                vec![
                    human_bytes(r.bytes),
                    r.chosen.name().to_string(),
                    ms(r.chosen_seconds),
                    r.best.name().to_string(),
                    ms(r.best_seconds),
                    r.worst.name().to_string(),
                    ms(r.worst_seconds),
                    format!("{:.2}", r.chosen_seconds / r.best_seconds.max(1e-12)),
                ]
            })
            .collect();
        print_table(
            &format!("Collectives: allreduce on {name} ({devices} GPUs), tuned vs best vs worst"),
            &[
                "Size",
                "Chosen",
                "ms",
                "Best",
                "ms",
                "Worst",
                "ms",
                "Chosen/Best",
            ],
            &rows,
        );
        let table: Vec<String> = selector
            .table()
            .iter()
            .map(|&(upper, algo)| format!("<={}: {}", human_bytes(upper), algo.name()))
            .collect();
        println!("  tuned table: {}", table.join(", "));
        all.extend(records);
    }
    match std::fs::write("BENCH_collectives.json", render_json(smoke, &all)) {
        Ok(()) => println!("  wrote BENCH_collectives.json"),
        Err(e) => println!("  could not write BENCH_collectives.json: {e}"),
    }
}

/// `4.0KiB` / `16.0MiB`-style size label.
fn human_bytes(bytes: u64) -> String {
    if bytes >= 1 << 20 {
        format!("{:.1}MiB", bytes as f64 / (1 << 20) as f64)
    } else {
        format!("{:.1}KiB", bytes as f64 / (1 << 10) as f64)
    }
}

/// Hand-rolled JSON (the workspace is offline; no serde).
fn render_json(smoke: bool, records: &[Record]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"bench\": \"collectives\",");
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    let _ = writeln!(out, "  \"chunk_bytes\": {CHUNK_BYTES},");
    let _ = writeln!(
        out,
        "  \"note\": \"predicted allreduce latency from the dgcl-sim cost model; \
         chosen = the offline-tuned selector's pick at each size\","
    );
    let _ = writeln!(out, "  \"records\": [");
    for (i, r) in records.iter().enumerate() {
        let comma = if i + 1 == records.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"topology\": \"{}\", \"devices\": {}, \"bytes\": {}, \
             \"chosen\": \"{}\", \"chosen_seconds\": {:.9}, \
             \"best\": \"{}\", \"best_seconds\": {:.9}, \
             \"worst\": \"{}\", \"worst_seconds\": {:.9}}}{}",
            r.topology,
            r.devices,
            r.bytes,
            r.chosen.name(),
            r.chosen_seconds,
            r.best.name(),
            r.best_seconds,
            r.worst.name(),
            r.worst_seconds,
            comma,
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = write!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance gate: on every benchmark topology, at every swept
    /// size, the tuned choice is within 10% of the per-size best and
    /// strictly beats the per-size worst.
    #[test]
    fn selector_chosen_within_10pct_of_best_and_beats_worst() {
        let sizes = sizes(false);
        for (name, topology, devices) in topologies() {
            let (_, records) = sweep(name, &topology, devices, &sizes);
            for r in &records {
                assert!(
                    r.chosen_seconds <= 1.10 * r.best_seconds,
                    "{name} @ {} bytes: chosen {} ({:.6}s) not within 10% of best {} ({:.6}s)",
                    r.bytes,
                    r.chosen.name(),
                    r.chosen_seconds,
                    r.best.name(),
                    r.best_seconds,
                );
                assert!(
                    r.chosen_seconds < r.worst_seconds,
                    "{name} @ {} bytes: chosen {} ({:.6}s) does not beat worst {} ({:.6}s)",
                    r.bytes,
                    r.chosen.name(),
                    r.chosen_seconds,
                    r.worst.name(),
                    r.worst_seconds,
                );
            }
        }
    }

    /// The zoo must actually matter: no single algorithm is chosen
    /// everywhere across the benchmark grid.
    #[test]
    fn no_single_algorithm_dominates_the_grid() {
        let sizes = sizes(false);
        let mut chosen: Vec<AllreduceAlgo> = Vec::new();
        for (name, topology, devices) in topologies() {
            let (_, records) = sweep(name, &topology, devices, &sizes);
            chosen.extend(records.iter().map(|r| r.chosen));
        }
        chosen.dedup();
        assert!(
            chosen.len() > 1,
            "one algorithm won every cell — the zoo is pointless: {chosen:?}"
        );
    }

    #[test]
    fn json_is_well_formed_enough() {
        let records = [Record {
            topology: "dgx1",
            devices: 8,
            bytes: 1 << 20,
            chosen: AllreduceAlgo::Ring,
            chosen_seconds: 0.001,
            best: AllreduceAlgo::Ring,
            best_seconds: 0.001,
            worst: AllreduceAlgo::Rendezvous,
            worst_seconds: 0.004,
        }];
        let json = render_json(true, &records);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"bench\": \"collectives\""));
        assert!(json.contains("\"chosen\": \"ring\""));
        assert!(json.contains("\"worst\": \"rendezvous\""));
        assert!(json.contains("\"smoke\": true"));
    }
}
