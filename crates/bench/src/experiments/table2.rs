//! Table 2: where peer-to-peer spends its time — NVLink pairs finish far
//! sooner than pairs stuck on PCIe/QPI, so the slow links gate the layer.

use dgcl_graph::Dataset;
use dgcl_plan::baselines::peer_to_peer;
use dgcl_sim::epoch::partition_for;
use dgcl_sim::network::simulate_plan;
use dgcl_topology::Topology;

use crate::harness::{ms, print_table, RunContext};

pub fn run(ctx: &mut RunContext) {
    let topo = Topology::dgx1();
    let mut rows = Vec::new();
    for dataset in [Dataset::WebGoogle, Dataset::Reddit, Dataset::WikiTalk] {
        let graph = ctx.graph(dataset);
        let pg = partition_for(&graph, &topo, ctx.seed);
        let plan = peer_to_peer(&pg);
        let bytes = (4.0 * dataset.stats().hidden_size as f64 * ctx.upscale(dataset)) as u64;
        let report = simulate_plan(&plan, &topo, bytes);
        let (nvlink, others) = report.nvlink_split(&plan, &topo);
        rows.push(vec![
            dataset.name().to_string(),
            ms(nvlink),
            ms(others),
            format!("{:.1}x", others / nvlink.max(1e-9)),
        ]);
    }
    print_table(
        "Table 2: peer-to-peer time per link class, one GCN layer, 8 GPUs",
        &["Dataset", "NVLink (ms)", "Others (ms)", "Slowdown"],
        &rows,
    );
    println!("  (paper: Web-Google 0.99 vs 6.20, Reddit 1.70 vs 18.1, Wiki-Talk 1.39 vs 6.13)");
}
