//! Table 9: backward graphAllgather with atomic versus non-atomic
//! gradient accumulation (8 GPUs, hidden dimension 128 as in the paper).
//!
//! Shape: the sub-stage split removes the atomic penalty and wins even
//! after paying the extra sub-stage barriers (the paper measures 25-36%
//! improvements).

use dgcl_graph::Dataset;
use dgcl_plan::{spst_plan, SendRecvTables};
use dgcl_sim::epoch::partition_for;
use dgcl_sim::network::simulate_plan;
use dgcl_sim::transport::stage_barrier_seconds;
use dgcl_sim::GpuProfile;
use dgcl_topology::Topology;

use crate::harness::{ms, print_table, RunContext};

pub fn run(ctx: &mut RunContext) {
    let topo = Topology::dgx1();
    let profile = GpuProfile::v100();
    let hidden = 128usize;
    let mut rows = Vec::new();
    for dataset in Dataset::all() {
        let graph = ctx.graph(dataset);
        let pg = partition_for(&graph, &topo, ctx.seed);
        let bytes = (4.0 * hidden as f64 * ctx.upscale(dataset)) as u64;
        let outcome = spst_plan(&pg, &topo, bytes, ctx.seed);
        let reversed = outcome.plan.reversed();
        let network = simulate_plan(&reversed, &topo, bytes).total_seconds;
        let recv_max = outcome
            .plan
            .sent_bytes_per_gpu(bytes)
            .into_iter()
            .max()
            .unwrap_or(0);
        let atomic = network * profile.atomic_comm_slowdown()
            + profile.gradient_apply_seconds(recv_max, true);
        let substages = SendRecvTables::from_plan(&reversed)
            .split_substages()
            .num_substages;
        let non_atomic = network
            + profile.gradient_apply_seconds(recv_max, false)
            + (substages - 1) as f64 * stage_barrier_seconds();
        rows.push(vec![
            dataset.name().to_string(),
            ms(atomic),
            ms(non_atomic),
            format!("{:.0}%", (1.0 - non_atomic / atomic) * 100.0),
        ]);
    }
    print_table(
        "Table 9: backward graphAllgather (ms), 8 GPUs, hidden 128",
        &["Dataset", "Atomic", "Non-atomic", "Improvement"],
        &rows,
    );
    println!(
        "  (paper: 1.72->1.28 Reddit, 14.3->9.16 Com-Orkut, 1.11->0.83 Web-Google,\n   0.99->0.71 Wiki-Talk — 25-36% improvement)"
    );
}
