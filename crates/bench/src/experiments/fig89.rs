//! Figures 8 and 9: per-epoch and communication time versus GPU count.
//!
//! Figure 8 trains GCN on Reddit, Figure 9 trains GIN on Web-Google, for
//! 1/2/4/8/16 GPUs. Shapes: DGCL always has the shortest per-epoch time;
//! DGCL equals Peer-to-peer at <= 4 GPUs (full NVLink clique); Swap is
//! skipped at 16 GPUs (it is single-machine only, as in the paper); 16
//! GPUs scale poorly due to the shared IB link.

use dgcl_graph::Dataset;
use dgcl_sim::{simulate_epoch, GnnModel, Method};
use dgcl_topology::Topology;

use crate::harness::{ms, print_table, RunContext};

pub fn run_fig8(ctx: &mut RunContext) {
    sweep(
        ctx,
        Dataset::Reddit,
        GnnModel::Gcn,
        "Figure 8 (GCN on Reddit)",
    );
}

pub fn run_fig9(ctx: &mut RunContext) {
    sweep(
        ctx,
        Dataset::WebGoogle,
        GnnModel::Gin,
        "Figure 9 (GIN on Web-Google)",
    );
}

fn sweep(ctx: &mut RunContext, dataset: Dataset, model: GnnModel, title: &str) {
    let graph = ctx.graph(dataset);
    let cfg = ctx.epoch_config(dataset, model);
    let methods = [
        Method::Dgcl,
        Method::Swap,
        Method::PeerToPeer,
        Method::Replication,
    ];
    let mut rows = Vec::new();
    for gpus in [1usize, 2, 4, 8, 16] {
        let topo = Topology::for_gpu_count(gpus);
        let mut row = vec![gpus.to_string()];
        for method in methods {
            // The paper skips Swap at 16 GPUs (NeuGraph is single-machine).
            if method == Method::Swap && gpus == 16 {
                row.push("n/a".into());
                row.push("-".into());
                continue;
            }
            let out = simulate_epoch(method, &graph, &topo, &cfg);
            if out.oom {
                row.push("OOM".into());
                row.push("-".into());
            } else {
                row.push(ms(out.total_seconds()));
                row.push(ms(out.comm_seconds));
            }
        }
        rows.push(row);
    }
    print_table(
        &format!("{title}: per-epoch / comm (ms)"),
        &[
            "GPUs", "DGCL", "(comm)", "Swap", "(comm)", "P2P", "(comm)", "Repl", "(comm)",
        ],
        &rows,
    );
    println!(
        "  (paper shapes: DGCL shortest; DGCL == P2P comm at <=4 GPUs; poor 16-GPU\n   scaling due to the shared IB)"
    );
}
