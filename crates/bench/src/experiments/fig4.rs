//! Figure 4: replication factor for 1/2/3-hop neighbourhoods as the GPU
//! count grows.
//!
//! Shape to reproduce: the factor rises with both GPU count and hop
//! count; on the dense Reddit the 2-hop closure already covers nearly the
//! whole graph (2-hop and 3-hop curves coincide), while the sparser
//! Web-Google still exceeds 3 at 16 GPUs with 3 hops.

use dgcl_graph::khop::replication_factor;
use dgcl_graph::Dataset;
use dgcl_partition::multilevel::kway;

use crate::harness::{print_table, RunContext};

pub fn run(ctx: &mut RunContext) {
    for dataset in [Dataset::WebGoogle, Dataset::Reddit] {
        let graph = ctx.graph(dataset);
        let mut rows = Vec::new();
        for gpus in [2usize, 4, 8, 16] {
            let parts = kway(&graph, gpus, ctx.seed);
            let mut row = vec![gpus.to_string()];
            for hops in 1..=3usize {
                let f = replication_factor(&graph, &parts, gpus, hops)
                    .expect("kway partition is well formed");
                row.push(format!("{f:.2}"));
            }
            rows.push(row);
        }
        print_table(
            &format!("Figure 4 ({}): replication factor", dataset.name()),
            &["GPUs", "1-hop", "2-hop", "3-hop"],
            &rows,
        );
    }
    println!("  (paper: grows with GPUs and hops; Reddit 2-hop ~= 3-hop ~= GPU count)");
}
