//! Compute-engine benchmark: the training hot path measured directly.
//!
//! Three kernel families, each timed sequentially and on the threaded
//! compute pool at 1/2/4/8 workers:
//!
//! * `matmul` — the cache-blocked threaded dense kernel of
//!   `dgcl-tensor` (forward projection shape);
//! * `aggregate` — row-parallel CSR neighbour aggregation plus the
//!   gather-form (reverse-CSR) backward against the original per-vertex
//!   scatter;
//! * `allgather` — the compiled-schedule `graph_allgather` /
//!   `scatter_backward` against the uncompiled table-walking reference.
//!
//! All parallel kernels are bitwise-deterministic, so speedups come with
//! no numeric drift; thread-scaling numbers are only meaningful when the
//! machine has spare cores (the JSON records `cpus` so CI can tell a
//! genuine regression from a 1-CPU ceiling). The run also times one
//! distributed training epoch per dataset and emits everything as
//! `BENCH_compute.json` in the style of `BENCH_spst.json`.
//!
//! Set `DGCL_BENCH_SMOKE=1` to shrink problem sizes and repetitions for
//! CI smoke runs.

use std::fmt::Write as _;
use std::time::Instant;

use dgcl::trainer::{train_distributed, TrainConfig};
use dgcl::{build_comm_info, BuildOptions};
use dgcl_gnn::aggregate::{
    aggregate_sum_backward_scatter, aggregate_sum_backward_threads, aggregate_sum_threads,
};
use dgcl_gnn::Architecture;
use dgcl_graph::Dataset;
use dgcl_tensor::XavierInit;
use dgcl_topology::Topology;

use crate::harness::{ms, print_table, RunContext};

/// Thread counts every kernel is measured at.
const THREADS: [usize; 4] = [1, 2, 4, 8];

/// One timed kernel configuration.
struct KernelRecord {
    kernel: &'static str,
    threads: usize,
    seconds: f64,
    baseline_seconds: f64,
    speedup: f64,
}

/// One timed training epoch.
struct EpochRecord {
    dataset: &'static str,
    arch: &'static str,
    epoch_seconds: f64,
}

fn smoke() -> bool {
    std::env::var("DGCL_BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0")
}

fn cpus() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Median-of-`reps` wall time of `body` in seconds.
fn time<F: FnMut()>(reps: usize, mut body: F) -> f64 {
    let mut samples: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let t = Instant::now();
            body();
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

pub fn run(ctx: &mut RunContext) {
    let smoke = smoke();
    let reps = if smoke { 3 } else { 7 };
    let mut records: Vec<KernelRecord> = Vec::new();
    let mut rows = Vec::new();
    let push = |records: &mut Vec<KernelRecord>,
                rows: &mut Vec<Vec<String>>,
                kernel: &'static str,
                threads: usize,
                seconds: f64,
                baseline: f64| {
        let speedup = baseline / seconds.max(1e-12);
        rows.push(vec![
            kernel.to_string(),
            threads.to_string(),
            ms(seconds),
            format!("{speedup:.2}x"),
        ]);
        records.push(KernelRecord {
            kernel,
            threads,
            seconds,
            baseline_seconds: baseline,
            speedup,
        });
    };

    // Dense matmul, forward-projection shape (visible rows × feature ×
    // hidden).
    let (m, k, n) = if smoke {
        (192, 64, 64)
    } else {
        (1024, 256, 128)
    };
    let mut init = XavierInit::new(ctx.seed);
    let a = init.features(m, k);
    let b = init.features(k, n);
    std::hint::black_box(a.matmul_threads(&b, 1)); // Warm caches/pages.
    let times: Vec<f64> = THREADS
        .iter()
        .map(|&t| {
            time(reps, || {
                std::hint::black_box(a.matmul_threads(&b, t));
            })
        })
        .collect();
    for (&t, &s) in THREADS.iter().zip(&times) {
        push(&mut records, &mut rows, "matmul", t, s, times[0]);
    }

    // CSR aggregation forward on a generated power-law graph.
    let graph = ctx.graph(Dataset::WikiTalk);
    let nv = graph.num_vertices();
    let cols = if smoke { 32 } else { 128 };
    let h = init.features(nv, cols);
    std::hint::black_box(aggregate_sum_threads(&graph, &h, nv, 1)); // Warm-up.
    let times: Vec<f64> = THREADS
        .iter()
        .map(|&t| {
            time(reps, || {
                std::hint::black_box(aggregate_sum_threads(&graph, &h, nv, t));
            })
        })
        .collect();
    for (&t, &s) in THREADS.iter().zip(&times) {
        push(&mut records, &mut rows, "aggregate_fwd", t, s, times[0]);
    }

    // Aggregation backward: reverse-CSR gather vs the original
    // allocate-per-vertex scatter (an algorithmic win independent of the
    // thread count; the scatter is the baseline at every row).
    graph.reversed(); // Warm the cache so timings exclude the one-off build.
    std::hint::black_box(aggregate_sum_backward_scatter(&graph, &h, nv)); // Warm-up.
    let scatter = time(reps, || {
        std::hint::black_box(aggregate_sum_backward_scatter(&graph, &h, nv));
    });
    for t in THREADS {
        let s = time(reps, || {
            std::hint::black_box(aggregate_sum_backward_threads(&graph, &h, nv, t));
        });
        push(&mut records, &mut rows, "aggregate_bwd", t, s, scatter);
    }

    // Graph allgather + backward: compiled schedules vs the table-walking
    // reference (also thread-count independent — the win is the removal
    // of per-op filtering, id resolution and heap churn).
    let ag_graph = ctx.graph(Dataset::WebGoogle);
    let info = build_comm_info(&ag_graph, Topology::fig6(), BuildOptions::default());
    let feat = init.features(ag_graph.num_vertices(), cols);
    let per_device = info.dispatch_features(&feat);
    let ops = if smoke { 2 } else { 5 };
    dgcl::run_cluster(&info, |hdl| {
        // Warm the fabric pool and per-thread state before timing.
        let full = hdl.graph_allgather(&per_device[hdl.rank])?;
        std::hint::black_box(hdl.scatter_backward(&full)?);
        Ok(())
    })
    .expect("healthy cluster");
    let reference = time(reps, || {
        dgcl::run_cluster(&info, |hdl| {
            for _ in 0..ops {
                let full = hdl.graph_allgather_reference(&per_device[hdl.rank])?;
                std::hint::black_box(hdl.scatter_backward_reference(&full)?);
            }
            Ok(())
        })
        .expect("healthy cluster");
    });
    let compiled = time(reps, || {
        dgcl::run_cluster(&info, |hdl| {
            for _ in 0..ops {
                let full = hdl.graph_allgather(&per_device[hdl.rank])?;
                std::hint::black_box(hdl.scatter_backward(&full)?);
            }
            Ok(())
        })
        .expect("healthy cluster");
    });
    push(&mut records, &mut rows, "allgather", 1, compiled, reference);

    print_table(
        &format!(
            "Compute engine: hot-path kernels, median of {reps} ({} cpus{})",
            cpus(),
            if smoke { ", smoke" } else { "" }
        ),
        &["Kernel", "Threads", "Median (ms)", "Speedup"],
        &rows,
    );
    println!(
        "  (baselines: matmul/aggregate_fwd at 1 thread; aggregate_bwd vs the\n   per-vertex scatter; allgather vs the uncompiled table walk. Thread\n   speedups need spare cores — the JSON records `cpus` so a 1-CPU box\n   documents its ceiling instead of faking scaling.)"
    );

    // One distributed training epoch per dataset: the end-to-end number
    // the kernel wins roll up into.
    let mut epoch_rows = Vec::new();
    let mut epochs: Vec<EpochRecord> = Vec::new();
    for dataset in [Dataset::WikiTalk, Dataset::WebGoogle] {
        let g = ctx.graph(dataset);
        let nv = g.num_vertices();
        let stats = dataset.stats();
        let feats = if smoke { 16 } else { stats.hidden_size.min(64) };
        let features = init.features(nv, feats);
        let targets = init.features(nv, 8);
        let info = build_comm_info(&g, Topology::fig6(), BuildOptions::default());
        let cfg = TrainConfig::new(Architecture::Gcn, &[feats, 8], 1);
        let secs = time(if smoke { 1 } else { 3 }, || {
            std::hint::black_box(
                train_distributed(&info, &g, &features, &targets, &cfg).expect("healthy cluster"),
            );
        });
        epoch_rows.push(vec![
            dataset.name().to_string(),
            "gcn".to_string(),
            ms(secs),
        ]);
        epochs.push(EpochRecord {
            dataset: dataset.name(),
            arch: "gcn",
            epoch_seconds: secs,
        });
    }
    print_table(
        "Compute engine: distributed GCN epoch (4 simulated GPUs)",
        &["Dataset", "Model", "Epoch (ms)"],
        &epoch_rows,
    );

    match std::fs::write("BENCH_compute.json", render_json(smoke, &records, &epochs)) {
        Ok(()) => println!("  wrote BENCH_compute.json"),
        Err(e) => println!("  could not write BENCH_compute.json: {e}"),
    }
}

/// Hand-rolled JSON (the workspace is offline; no serde).
fn render_json(smoke: bool, records: &[KernelRecord], epochs: &[EpochRecord]) -> String {
    let cpus = cpus();
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"bench\": \"compute_engine\",");
    let _ = writeln!(out, "  \"cpus\": {cpus},");
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    let _ = writeln!(
        out,
        "  \"note\": \"{}\",",
        if cpus == 1 {
            "single-cpu machine: thread-scaling speedups are ceiling-limited at ~1x; \
             aggregate_bwd and allgather speedups are algorithmic and hold regardless"
        } else {
            "thread columns measure pool scaling; aggregate_bwd and allgather \
             speedups are algorithmic"
        }
    );
    let _ = writeln!(out, "  \"kernels\": [");
    for (i, r) in records.iter().enumerate() {
        let comma = if i + 1 == records.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"kernel\": \"{}\", \"threads\": {}, \"seconds\": {:.6}, \"baseline_seconds\": {:.6}, \"speedup\": {:.3}}}{}",
            r.kernel, r.threads, r.seconds, r.baseline_seconds, r.speedup, comma,
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"epochs\": [");
    for (i, e) in epochs.iter().enumerate() {
        let comma = if i + 1 == epochs.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"dataset\": \"{}\", \"arch\": \"{}\", \"epoch_seconds\": {:.6}}}{}",
            e.dataset, e.arch, e.epoch_seconds, comma,
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = write!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_well_formed_enough() {
        let records = [KernelRecord {
            kernel: "matmul",
            threads: 4,
            seconds: 0.5,
            baseline_seconds: 1.5,
            speedup: 3.0,
        }];
        let epochs = [EpochRecord {
            dataset: "wiki-talk",
            arch: "gcn",
            epoch_seconds: 0.25,
        }];
        let json = render_json(true, &records, &epochs);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"kernel\": \"matmul\""));
        assert!(json.contains("\"speedup\": 3.000"));
        assert!(json.contains("\"smoke\": true"));
        assert!(json.contains("\"epoch_seconds\": 0.250000"));
    }

    #[test]
    fn median_timer_is_positive() {
        let s = time(3, || {
            std::hint::black_box((0..1000).sum::<u64>());
        });
        assert!(s >= 0.0);
    }
}
