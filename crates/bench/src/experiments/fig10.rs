//! Figure 10: cost-model estimate versus simulated actual time for one
//! graphAllgather, communicating random vertex subsets of varying size
//! (as the paper does).
//!
//! Shape: a near-linear relation; the paper reports divergence from a
//! fitted line below 5% in most cases.

use dgcl_graph::Dataset;
use dgcl_plan::{spst_plan, CommPlan};
use dgcl_sim::epoch::partition_for;
use dgcl_sim::network::simulate_plan;
use dgcl_topology::Topology;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::harness::{ms, print_table, RunContext};

/// Keeps each step's vertices independently with probability `keep`,
/// dropping emptied steps — the structural analogue of communicating only
/// some vertices.
fn subsample(plan: &CommPlan, keep: f64, seed: u64) -> CommPlan {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut steps = Vec::new();
    for step in &plan.steps {
        let vertices: Vec<_> = step
            .vertices
            .iter()
            .copied()
            .filter(|_| rng.gen_bool(keep))
            .collect();
        if !vertices.is_empty() {
            let mut s = step.clone();
            s.vertices = vertices;
            steps.push(s);
        }
    }
    CommPlan {
        num_gpus: plan.num_gpus,
        num_stages: plan.num_stages,
        steps,
    }
}

pub fn run(ctx: &mut RunContext) {
    let topo = Topology::dgx1();
    for dataset in [Dataset::WebGoogle, Dataset::Reddit] {
        let graph = ctx.graph(dataset);
        let pg = partition_for(&graph, &topo, ctx.seed);
        let bytes = (4.0 * dataset.stats().hidden_size as f64 * ctx.upscale(dataset)) as u64;
        let outcome = spst_plan(&pg, &topo, bytes, ctx.seed);
        let mut points = Vec::new();
        for (i, pct) in [0.2f64, 0.35, 0.5, 0.65, 0.8, 1.0].iter().enumerate() {
            let plan = subsample(&outcome.plan, *pct, ctx.seed + i as u64);
            let est = plan.estimated_time(&topo, bytes);
            let act = simulate_plan(&plan, &topo, bytes).total_seconds;
            points.push((est, act));
        }
        // Least-squares fit act = a * est + b.
        let n = points.len() as f64;
        let sx: f64 = points.iter().map(|p| p.0).sum();
        let sy: f64 = points.iter().map(|p| p.1).sum();
        let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
        let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
        let a = (n * sxy - sx * sy) / (n * sxx - sx * sx);
        let b = (sy - a * sx) / n;
        let mut rows = Vec::new();
        let mut max_div = 0.0f64;
        for &(est, act) in &points {
            let fit = a * est + b;
            let div = ((act - fit) / fit).abs() * 100.0;
            max_div = max_div.max(div);
            rows.push(vec![ms(est), ms(act), format!("{div:.1}%")]);
        }
        print_table(
            &format!(
                "Figure 10 ({}): estimated cost vs simulated time, 8 GPUs",
                dataset.name()
            ),
            &["Estimate (ms)", "Actual (ms)", "Divergence from fit"],
            &rows,
        );
        println!(
            "  fit: actual = {a:.3} * estimate + {:.3} ms; max divergence {max_div:.1}%",
            b * 1e3
        );
    }
    println!("  (paper: linear relation, divergence below 5% in most cases)");
}
