//! Figure 7: per-epoch and communication time for the three models on
//! the four datasets with 8 GPUs, across all four methods.
//!
//! Shapes to reproduce: DGCL has the shortest communication and per-epoch
//! time everywhere; Replication OOMs on Com-Orkut and Wiki-Talk and loses
//! badly on dense Reddit but beats Peer-to-peer/Swap on small sparse
//! Web-Google; Swap is worst on the three larger graphs.

use dgcl_graph::Dataset;
use dgcl_sim::{simulate_epoch, GnnModel, Method};
use dgcl_topology::Topology;

use crate::harness::{ms, print_table, RunContext};

pub fn run(ctx: &mut RunContext) {
    let topo = Topology::dgx1();
    let methods = [
        Method::Dgcl,
        Method::Swap,
        Method::PeerToPeer,
        Method::Replication,
    ];
    for dataset in Dataset::all() {
        let graph = ctx.graph(dataset);
        let mut rows = Vec::new();
        for model in GnnModel::all() {
            let cfg = ctx.epoch_config(dataset, model);
            let mut row = vec![model.name().to_string()];
            for method in methods {
                let out = simulate_epoch(method, &graph, &topo, &cfg);
                if out.oom {
                    row.push("OOM".to_string());
                    row.push("-".to_string());
                } else {
                    row.push(ms(out.total_seconds()));
                    row.push(ms(out.comm_seconds));
                }
            }
            rows.push(row);
        }
        print_table(
            &format!(
                "Figure 7 ({}): 8 GPUs, per-epoch / comm (ms)",
                dataset.name()
            ),
            &[
                "Model", "DGCL", "(comm)", "Swap", "(comm)", "P2P", "(comm)", "Repl", "(comm)",
            ],
            &rows,
        );
    }
    println!(
        "  (paper shapes: DGCL fastest everywhere; Replication OOM on Com-Orkut and\n   Wiki-Talk, worst on Reddit, competitive on Web-Google; Swap worst on the\n   three larger graphs; paper headline: p2p comm avg 4.45x of DGCL)"
    );
}
