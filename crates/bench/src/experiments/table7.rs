//! Table 7: DGCL's communication-time breakdown between NVLink and other
//! links — SPST balances the two, so measured in isolation they take
//! similar time (relative difference of a few percent in the paper).

use dgcl_graph::Dataset;
use dgcl_plan::spst_plan;
use dgcl_sim::epoch::partition_for;
use dgcl_topology::Topology;

use crate::harness::{ms, print_table, RunContext};

pub fn run(ctx: &mut RunContext) {
    let topo = Topology::dgx1();
    let mut rows = Vec::new();
    for dataset in Dataset::all() {
        let graph = ctx.graph(dataset);
        let pg = partition_for(&graph, &topo, ctx.seed);
        let bytes = (4.0 * dataset.stats().hidden_size as f64 * ctx.upscale(dataset)) as u64;
        let outcome = spst_plan(&pg, &topo, bytes, ctx.seed);
        let (nvlink, others) = outcome.cost.time_by_nvlink_split(&topo);
        let rel = (nvlink - others).abs() / nvlink.max(others).max(1e-12) * 100.0;
        rows.push(vec![
            dataset.name().to_string(),
            ms(nvlink),
            ms(others),
            format!("{rel:.1}%"),
        ]);
    }
    print_table(
        "Table 7: DGCL allgather time per link class (ms), 8 GPUs",
        &["Dataset", "NVLink", "Others", "Relative difference"],
        &rows,
    );
    println!("  (paper: 0.787/0.821, 1.16/1.07, 7.43/7.30, 0.783/0.882 — differences 1.8-12.6%)");
}
