//! Table 1: the speed of common communication links.
//!
//! The paper measures these on hardware; the reproduction's topology model
//! takes them as parameters, so this experiment verifies that a simulated
//! point-to-point transfer over each connection type attains the
//! configured bandwidth (i.e. the simulator does not distort uncontended
//! transfers).

use dgcl_sim::{simulate_flows, Flow};
use dgcl_topology::{LinkKind, NodeKind, Topology};

use crate::harness::{print_table, RunContext};

pub fn run(_ctx: &mut RunContext) {
    let kinds = [
        LinkKind::NvLink2,
        LinkKind::NvLink1,
        LinkKind::Pcie,
        LinkKind::Qpi,
        LinkKind::Infiniband,
        LinkKind::Ethernet,
    ];
    let mut rows = Vec::new();
    for kind in kinds {
        // A two-GPU topology joined by exactly this connection.
        let mut b = Topology::builder(format!("probe-{}", kind.label()));
        let g0 = b.add_node(NodeKind::Gpu {
            rank: 0,
            machine: 0,
            socket: 0,
        });
        let g1 = b.add_node(NodeKind::Gpu {
            rank: 1,
            machine: 0,
            socket: 0,
        });
        b.connect(g0, g1, kind);
        let topo = b.build();
        let bytes = 1u64 << 30;
        let (t, _) = simulate_flows(
            &topo,
            &[Flow {
                route: topo.route(0, 1).clone(),
                bytes,
                overhead_seconds: 0.0,
                tag: 0,
            }],
        );
        let measured = bytes as f64 / t / 1e9;
        rows.push(vec![
            kind.label().to_string(),
            format!("{:.2}", kind.bandwidth_gbps()),
            format!("{measured:.2}"),
        ]);
    }
    print_table(
        "Table 1: link speed (GB/s) per connection type",
        &["Type", "Configured (paper)", "Simulated"],
        &rows,
    );
    println!("  (paper: NV2 48.35, NV1 24.22, PCIe 11.13, QPI 9.56, IB 6.37, Ethernet 3.12)");
}
