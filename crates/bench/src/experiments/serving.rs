//! Serving benchmark: micro-batched vs unbatched inference under
//! synthetic open-loop load.
//!
//! The question the `dgcl::serving` micro-batcher must answer: does
//! coalescing concurrent requests into one flush buy throughput *and*
//! tail latency once the offered load passes what serial flushes can
//! sustain? The driver here is open-loop — requests arrive on a fixed
//! schedule whether or not earlier ones finished, so a server slower
//! than the arrival rate accumulates backlog and its tail latency shows
//! it (closed-loop drivers hide exactly this, the coordinated-omission
//! trap). The request mix is hot-key skewed (90% of queries on a
//! 12-vertex hot set), the concentration real inference traffic shows;
//! a flush dedups repeated seeds and overlapping closures, which is the
//! work an unbatched server redoes per request.
//!
//! Procedure per (graph, load) cell:
//!
//! 1. Calibrate: measure the unbatched server's sequential capacity
//!    (closed-loop, one request at a time).
//! 2. Offer `1.5x` and `3x` that capacity to both an unbatched server
//!    (`max_batch = 1`) and a micro-batched one, same request schedule.
//! 3. Record p50/p99 end-to-end latency and sustained QPS
//!    (requests / span from first enqueue to last completion).
//!
//! The batched server must beat the unbatched one on sustained QPS and
//! p99 in every cell (asserted). Results go to `BENCH_serving.json`;
//! `DGCL_BENCH_SMOKE=1` shrinks request counts for CI.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use dgcl::serving::{InferenceServer, ServedFuture, ServingConfig};
use dgcl_gnn::{Architecture, GnnNetwork};
use dgcl_graph::{CsrGraph, Dataset, VertexId};
use dgcl_tensor::XavierInit;

use crate::harness::{ms, print_table, RunContext};

/// One (graph, load, policy) measurement.
struct ServingRecord {
    dataset: &'static str,
    load: &'static str,
    offered_qps: f64,
    policy: &'static str,
    requests: usize,
    p50_seconds: f64,
    p99_seconds: f64,
    sustained_qps: f64,
    mean_batch: f64,
}

fn smoke() -> bool {
    std::env::var("DGCL_BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0")
}

fn cpus() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// splitmix64 — deterministic request targets without a rand crate.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Hot vertices in the skewed request mix.
const HOT_SET: u64 = 12;
/// Requests (out of 10) landing on the hot set.
const HOT_OUT_OF_10: u64 = 9;

/// Skewed request target: 90% of queries hit a 12-vertex hot set, the
/// rest are uniform — the hot-key concentration of real inference
/// traffic, and the regime where a micro-batch dedups repeated seeds
/// and overlapping closures instead of recomputing them per request.
fn target_vertex(seed: u64, i: usize, n: usize) -> VertexId {
    let h = mix(seed ^ i as u64);
    if h % 10 < HOT_OUT_OF_10 {
        let slot = (h >> 32) % HOT_SET.min(n as u64);
        // Spread hot vertices across the id range so they do not all
        // share one partition-local neighborhood.
        ((slot * (n as u64 / HOT_SET.min(n as u64))) % n as u64) as VertexId
    } else {
        ((h >> 16) % n as u64) as VertexId
    }
}

/// Closed-loop sequential capacity of a server: serve `requests` one at
/// a time, return requests per second.
fn sequential_capacity(server: &InferenceServer, requests: usize, seed: u64) -> f64 {
    let n = server.num_vertices();
    let t = Instant::now();
    for i in 0..requests {
        let v = target_vertex(seed, i, n);
        server
            .query(v)
            .expect("in range")
            .wait()
            .expect("server alive");
    }
    requests as f64 / t.elapsed().as_secs_f64().max(1e-9)
}

/// Open-loop driver: enqueue `requests` queries on a fixed `offered_qps`
/// schedule, then wait for every reply. Returns (p50, p99, sustained
/// QPS, mean flush batch size).
fn drive_open_loop(
    server: &InferenceServer,
    requests: usize,
    offered_qps: f64,
    seed: u64,
) -> (f64, f64, f64, f64) {
    let n = server.num_vertices();
    let interval = Duration::from_secs_f64(1.0 / offered_qps);
    let start = Instant::now();
    let mut inflight: Vec<(Instant, ServedFuture)> = Vec::with_capacity(requests);
    for i in 0..requests {
        let due = start + interval * i as u32;
        // Hybrid wait: coarse sleep, then spin. Arrival intervals here
        // are tens of microseconds — below thread::sleep granularity —
        // and a driver that oversleeps throttles the offered load,
        // turning the open-loop measurement into a closed-loop one.
        let now = Instant::now();
        if due > now + Duration::from_micros(200) {
            std::thread::sleep(due - now - Duration::from_micros(100));
        }
        while Instant::now() < due {
            std::hint::spin_loop();
        }
        let v = target_vertex(seed, i, n);
        let enqueued = Instant::now();
        let fut = server.query(v).expect("in range");
        inflight.push((enqueued, fut));
    }
    let mut latencies = Vec::with_capacity(requests);
    let mut last_done = start;
    let mut batch_sum = 0usize;
    for (enqueued, fut) in inflight {
        let reply = fut.wait().expect("server alive");
        latencies.push((reply.completed - enqueued).as_secs_f64());
        if reply.completed > last_done {
            last_done = reply.completed;
        }
        batch_sum += reply.batch_size;
    }
    latencies.sort_by(f64::total_cmp);
    let pick = |q: f64| latencies[((latencies.len() - 1) as f64 * q) as usize];
    let sustained = requests as f64 / (last_done - start).as_secs_f64().max(1e-9);
    let mean_batch = batch_sum as f64 / requests as f64;
    (pick(0.50), pick(0.99), sustained, mean_batch)
}

pub fn run(ctx: &mut RunContext) {
    let smoke = smoke();
    // Enough requests that an over-capacity server's backlog clearly
    // outgrows the batched server's bounded queue delay in the p99.
    let requests = if smoke { 300 } else { 900 };
    let calibration = if smoke { 60 } else { 200 };
    // A tight flush deadline: under backlog the size trigger fires
    // anyway, and the deadline only prices the final partial flush —
    // leaving it long would hand the batched p99 to the timer.
    let batched_cfg = ServingConfig {
        max_batch: 32,
        max_delay: Duration::from_micros(300),
        cache_rows: None,
    };

    let mut records: Vec<ServingRecord> = Vec::new();
    let mut rows = Vec::new();
    let mut violations: Vec<String> = Vec::new();
    for dataset in [Dataset::WikiTalk, Dataset::WebGoogle] {
        let graph: CsrGraph = ctx.graph(dataset);
        let nv = graph.num_vertices();
        // Wide layers so per-flush compute dominates thread wake-ups:
        // the regime where batching's closure-overlap amortization is
        // visible rather than drowned in channel latency.
        let mut init = XavierInit::new(ctx.seed);
        let features = init.features(nv, 64);
        let net = GnnNetwork::new(Architecture::Gcn, &[64, 64, 32], ctx.seed);

        // Calibrate against the unbatched server's own serial ceiling;
        // best-of-3 so one cold run does not depress the offered load.
        let capacity = {
            let server =
                InferenceServer::spawn(&graph, &features, &net, ServingConfig::unbatched());
            (0..3)
                .map(|_| sequential_capacity(&server, calibration, ctx.seed))
                .fold(0.0f64, f64::max)
        };

        for (load, factor) in [("1.5x", 1.5f64), ("3x", 3.0)] {
            let offered = capacity * factor;
            let mut cell: Vec<&ServingRecord> = Vec::new();
            // Best-of-4 per metric, with the two policies' drives
            // interleaved inside each rep: a noisy scheduler period
            // then taxes both policies instead of deciding the cell.
            let policies = [
                ("unbatched", ServingConfig::unbatched()),
                ("batched", batched_cfg),
            ];
            let mut best = [(f64::MAX, f64::MAX, 0.0f64, 0.0f64); 2];
            for rep in 0..4u64 {
                for (slot, (_, cfg)) in policies.iter().enumerate() {
                    let server = InferenceServer::spawn(&graph, &features, &net, *cfg);
                    let (a, b, q, mb) = drive_open_loop(&server, requests, offered, ctx.seed ^ rep);
                    let e = &mut best[slot];
                    e.0 = e.0.min(a);
                    e.1 = e.1.min(b);
                    e.2 = e.2.max(q);
                    e.3 = e.3.max(mb);
                }
            }
            for (slot, (policy, _)) in policies.iter().enumerate() {
                let (p50, p99, sustained, mean_batch) = best[slot];
                let policy = *policy;
                rows.push(vec![
                    dataset.name().to_string(),
                    load.to_string(),
                    format!("{offered:.0}"),
                    policy.to_string(),
                    ms(p50),
                    ms(p99),
                    format!("{sustained:.0}"),
                    format!("{mean_batch:.1}"),
                ]);
                records.push(ServingRecord {
                    dataset: dataset.name(),
                    load,
                    offered_qps: offered,
                    policy,
                    requests,
                    p50_seconds: p50,
                    p99_seconds: p99,
                    sustained_qps: sustained,
                    mean_batch,
                });
            }
            let len = records.len();
            cell.push(&records[len - 2]);
            cell.push(&records[len - 1]);
            if cell[1].sustained_qps <= cell[0].sustained_qps {
                violations.push(format!(
                    "{} {load}: batched QPS {:.0} must beat unbatched {:.0}",
                    dataset.name(),
                    cell[1].sustained_qps,
                    cell[0].sustained_qps
                ));
            }
            if cell[1].p99_seconds >= cell[0].p99_seconds {
                violations.push(format!(
                    "{} {load}: batched p99 {:.4}s must beat unbatched {:.4}s",
                    dataset.name(),
                    cell[1].p99_seconds,
                    cell[0].p99_seconds
                ));
            }
        }
    }
    print_table(
        "Serving: open-loop load, unbatched vs micro-batched (max_batch 32, 300us deadline)",
        &[
            "Dataset", "Load", "QPS in", "Policy", "p50 (ms)", "p99 (ms)", "QPS out", "Batch",
        ],
        &rows,
    );
    println!(
        "  (load is a multiple of the unbatched server's closed-loop capacity;\n   open-loop arrivals, so backlog shows up as tail latency, not hidden throttling.)"
    );

    match std::fs::write("BENCH_serving.json", render_json(smoke, &records)) {
        Ok(()) => println!("  wrote BENCH_serving.json"),
        Err(e) => println!("  could not write BENCH_serving.json: {e}"),
    }
    assert!(
        violations.is_empty(),
        "micro-batching must win every cell:\n  {}",
        violations.join("\n  ")
    );
}

/// Hand-rolled JSON (the workspace is offline; no serde).
fn render_json(smoke: bool, records: &[ServingRecord]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"bench\": \"serving\",");
    let _ = writeln!(out, "  \"cpus\": {},", cpus());
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    let _ = writeln!(out, "  \"cells\": [");
    for (i, r) in records.iter().enumerate() {
        let comma = if i + 1 == records.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"dataset\": \"{}\", \"load\": \"{}\", \"offered_qps\": {:.1}, \"policy\": \"{}\", \"requests\": {}, \"p50_seconds\": {:.6}, \"p99_seconds\": {:.6}, \"sustained_qps\": {:.1}, \"mean_batch\": {:.2}}}{}",
            r.dataset,
            r.load,
            r.offered_qps,
            r.policy,
            r.requests,
            r.p50_seconds,
            r.p99_seconds,
            r.sustained_qps,
            r.mean_batch,
            comma,
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = write!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_well_formed_enough() {
        let records = [
            ServingRecord {
                dataset: "wiki-talk",
                load: "1.5x",
                offered_qps: 900.0,
                policy: "unbatched",
                requests: 150,
                p50_seconds: 0.004,
                p99_seconds: 0.050,
                sustained_qps: 610.0,
                mean_batch: 1.0,
            },
            ServingRecord {
                dataset: "wiki-talk",
                load: "1.5x",
                offered_qps: 900.0,
                policy: "batched",
                requests: 150,
                p50_seconds: 0.002,
                p99_seconds: 0.006,
                sustained_qps: 898.0,
                mean_batch: 9.3,
            },
        ];
        let json = render_json(true, &records);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"bench\": \"serving\""));
        assert!(json.contains("\"policy\": \"batched\""));
        assert!(json.contains("\"sustained_qps\": 898.0"));
    }

    #[test]
    fn target_vertices_are_deterministic_and_in_range() {
        for i in 0..100 {
            let a = target_vertex(7, i, 33);
            let b = target_vertex(7, i, 33);
            assert_eq!(a, b);
            assert!((a as usize) < 33);
        }
    }
}
