//! Recovery benchmark: warm replan vs cold plan, and end-to-end
//! elastic recovery.
//!
//! Two questions, straight from the elastic-recovery design:
//!
//! * **Replan cost** — after an eviction the survivors' demands fall
//!   into few demand classes, so replanning with the batched planner
//!   (demand-class cache on) should resolve most demands from cache
//!   where the exact cold planner runs a full spanning-tree search per
//!   demand. Measured per graph on the 3-GPU survivor topology:
//!   wall-clock (best of N) plus the planner's own demand-resolution
//!   counters.
//! * **Recovery cost** — one full `train_elastic` run per (graph,
//!   crash mode) with an injected crash: epochs lost to the crash,
//!   the epoch resumed from, the replan share and the end-to-end wall
//!   clock including the recovery round.
//!
//! Results go to `BENCH_recovery.json`. Set `DGCL_BENCH_SMOKE=1` to
//! shrink sizes and repetitions for CI smoke runs.

use std::fmt::Write as _;
use std::time::Instant;

use dgcl::trainer::TrainConfig;
use dgcl::{train_elastic, FabricConfig, FaultPlan, RecoveryConfig};
use dgcl_gnn::Architecture;
use dgcl_graph::Dataset;
use dgcl_plan::{spst_plan_with_config, SpstConfig};
use dgcl_sim::epoch::partition_for;
use dgcl_tensor::XavierInit;
use dgcl_topology::Topology;

use crate::harness::{ms, print_table, RunContext};

/// One per-graph replan comparison on the survivor topology.
struct ReplanRecord {
    dataset: &'static str,
    cold_seconds: f64,
    warm_seconds: f64,
    speedup: f64,
    demands: usize,
    cold_full_searches: usize,
    warm_full_searches: usize,
    warm_cache_commits: usize,
}

/// One end-to-end elastic run with an injected crash.
struct RecoveryRecord {
    dataset: &'static str,
    crash: &'static str,
    epochs: usize,
    resumed_epoch: usize,
    epochs_lost: usize,
    replan_seconds: f64,
    run_seconds: f64,
    survivors: usize,
}

fn smoke() -> bool {
    std::env::var("DGCL_BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0")
}

fn cpus() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Best-of-`reps` of a body returning its own wall time in seconds
/// (planning is minimum-meaningful: noise only ever adds).
fn best_of<F: FnMut() -> f64>(reps: usize, mut body: F) -> f64 {
    (0..reps.max(1))
        .map(|_| body())
        .fold(f64::INFINITY, f64::min)
}

pub fn run(ctx: &mut RunContext) {
    let smoke = smoke();
    let reps = if smoke { 2 } else { 5 };

    // Replan comparison: the topology recovery actually replans on —
    // fig6 with one GPU evicted. Timed at the planner (the partition
    // and table compilation around it are identical either way).
    let survivors = Topology::fig6().evict_gpus(&[2]);
    let warm_config = SpstConfig::batched(cpus().clamp(1, 8));
    let mut replans: Vec<ReplanRecord> = Vec::new();
    let mut rows = Vec::new();
    for dataset in [Dataset::WikiTalk, Dataset::WebGoogle] {
        let graph = ctx.graph(dataset);
        let pg = partition_for(&graph, &survivors, ctx.seed);
        let cold = spst_plan_with_config(&pg, &survivors, 1024, ctx.seed, SpstConfig::default());
        let warm = spst_plan_with_config(&pg, &survivors, 1024, ctx.seed, warm_config);
        let cold_seconds = best_of(reps, || {
            spst_plan_with_config(&pg, &survivors, 1024, ctx.seed, SpstConfig::default())
                .planning_seconds
        });
        let warm_seconds = best_of(reps, || {
            spst_plan_with_config(&pg, &survivors, 1024, ctx.seed, warm_config).planning_seconds
        });
        let cold_stats = cold.stats;
        let warm_stats = warm.stats;
        assert!(
            warm_stats.full_searches < cold_stats.full_searches,
            "{}: warm replan must search less than cold ({warm_stats:?} vs {cold_stats:?})",
            dataset.name()
        );
        let speedup = cold_seconds / warm_seconds.max(1e-12);
        rows.push(vec![
            dataset.name().to_string(),
            ms(cold_seconds),
            ms(warm_seconds),
            format!("{speedup:.2}x"),
            cold_stats.full_searches.to_string(),
            format!(
                "{} ({} cached)",
                warm_stats.full_searches,
                warm_stats.cache_commits + warm_stats.speculative_commits
            ),
        ]);
        replans.push(ReplanRecord {
            dataset: dataset.name(),
            cold_seconds,
            warm_seconds,
            speedup,
            demands: cold_stats.demands,
            cold_full_searches: cold_stats.full_searches,
            warm_full_searches: warm_stats.full_searches,
            warm_cache_commits: warm_stats.cache_commits + warm_stats.speculative_commits,
        });
    }
    print_table(
        "Recovery: survivor replan, cold exact vs warm batched (3 GPUs)",
        &[
            "Dataset",
            "Cold (ms)",
            "Warm (ms)",
            "Speedup",
            "Cold searches",
            "Warm searches",
        ],
        &rows,
    );
    println!(
        "  (cold = exact sequential planner, one spanning-tree search per demand;\n   warm = batched planner, demand-class cache resolving repeat classes.)"
    );

    // End-to-end: inject one crash per mode and run the elastic driver.
    let epochs = if smoke { 3 } else { 6 };
    let mut recoveries: Vec<RecoveryRecord> = Vec::new();
    let mut rec_rows = Vec::new();
    let mut init = XavierInit::new(ctx.seed);
    for dataset in [Dataset::WikiTalk, Dataset::WebGoogle] {
        let graph = ctx.graph(dataset);
        let nv = graph.num_vertices();
        let features = init.features(nv, 8);
        let targets = init.features(nv, 4);
        let cfg = TrainConfig::new(Architecture::Gcn, &[8, 4], epochs);
        for (crash, faults) in [
            ("at-epoch", FaultPlan::crash_at_epoch(1, epochs / 2)),
            ("mid-op", FaultPlan::seeded_crash(9, 4, epochs)),
        ] {
            let rcfg = RecoveryConfig {
                fabrics: vec![FabricConfig {
                    faults,
                    ..FabricConfig::default()
                }],
                ..RecoveryConfig::default()
            };
            let t = Instant::now();
            let elastic = train_elastic(&graph, Topology::fig6(), &features, &targets, &cfg, &rcfg)
                .expect("one crash fits the eviction budget");
            let run_seconds = t.elapsed().as_secs_f64();
            assert_eq!(elastic.events.len(), 1, "exactly one recovery round");
            assert_eq!(
                elastic.report.epoch_losses.len(),
                epochs,
                "training reached the epoch target"
            );
            let ev = &elastic.events[0];
            rec_rows.push(vec![
                dataset.name().to_string(),
                crash.to_string(),
                format!("{}/{epochs}", ev.resumed_epoch),
                ev.epochs_lost.to_string(),
                ms(ev.replan_seconds),
                ms(run_seconds),
                elastic.final_devices.to_string(),
            ]);
            recoveries.push(RecoveryRecord {
                dataset: dataset.name(),
                crash,
                epochs,
                resumed_epoch: ev.resumed_epoch,
                epochs_lost: ev.epochs_lost,
                replan_seconds: ev.replan_seconds,
                run_seconds,
                survivors: elastic.final_devices,
            });
        }
    }
    print_table(
        "Recovery: end-to-end elastic run with one injected crash (4 GPUs)",
        &[
            "Dataset",
            "Crash",
            "Resumed at",
            "Epochs lost",
            "Replan (ms)",
            "Run (ms)",
            "Survivors",
        ],
        &rec_rows,
    );
    println!(
        "  (per-epoch in-memory checkpoints: completed epochs are never lost;\n   `epochs lost` counts full epochs discarded, the in-flight one aside.)"
    );

    match std::fs::write(
        "BENCH_recovery.json",
        render_json(smoke, &replans, &recoveries),
    ) {
        Ok(()) => println!("  wrote BENCH_recovery.json"),
        Err(e) => println!("  could not write BENCH_recovery.json: {e}"),
    }
}

/// Hand-rolled JSON (the workspace is offline; no serde).
fn render_json(smoke: bool, replans: &[ReplanRecord], recoveries: &[RecoveryRecord]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"bench\": \"recovery\",");
    let _ = writeln!(out, "  \"cpus\": {},", cpus());
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    let _ = writeln!(out, "  \"replan\": [");
    for (i, r) in replans.iter().enumerate() {
        let comma = if i + 1 == replans.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"dataset\": \"{}\", \"cold_seconds\": {:.6}, \"warm_seconds\": {:.6}, \"speedup\": {:.3}, \"demands\": {}, \"cold_full_searches\": {}, \"warm_full_searches\": {}, \"warm_cache_commits\": {}, \"warm_beats_cold\": {}}}{}",
            r.dataset,
            r.cold_seconds,
            r.warm_seconds,
            r.speedup,
            r.demands,
            r.cold_full_searches,
            r.warm_full_searches,
            r.warm_cache_commits,
            r.warm_seconds < r.cold_seconds,
            comma,
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"recovery\": [");
    for (i, r) in recoveries.iter().enumerate() {
        let comma = if i + 1 == recoveries.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"dataset\": \"{}\", \"crash\": \"{}\", \"epochs\": {}, \"resumed_epoch\": {}, \"epochs_lost\": {}, \"replan_seconds\": {:.6}, \"run_seconds\": {:.6}, \"survivors\": {}}}{}",
            r.dataset,
            r.crash,
            r.epochs,
            r.resumed_epoch,
            r.epochs_lost,
            r.replan_seconds,
            r.run_seconds,
            r.survivors,
            comma,
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = write!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_well_formed_enough() {
        let replans = [ReplanRecord {
            dataset: "wiki-talk",
            cold_seconds: 0.02,
            warm_seconds: 0.01,
            speedup: 2.0,
            demands: 6,
            cold_full_searches: 6,
            warm_full_searches: 2,
            warm_cache_commits: 4,
        }];
        let recoveries = [RecoveryRecord {
            dataset: "web-google",
            crash: "at-epoch",
            epochs: 6,
            resumed_epoch: 3,
            epochs_lost: 0,
            replan_seconds: 0.015,
            run_seconds: 1.2,
            survivors: 3,
        }];
        let json = render_json(true, &replans, &recoveries);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"bench\": \"recovery\""));
        assert!(json.contains("\"warm_beats_cold\": true"));
        assert!(json.contains("\"crash\": \"at-epoch\""));
        assert!(json.contains("\"epochs_lost\": 0"));
    }

    #[test]
    fn best_of_picks_the_minimum() {
        let mut sample = [0.4, 0.2, 0.3].into_iter();
        let s = best_of(3, || sample.next().unwrap());
        assert_eq!(s, 0.2);
    }
}
