//! Table 8: wall-clock running time of the SPST planner.
//!
//! This is a *real* measurement of this reproduction's planner (single
//! thread), not a simulation. Shape: time grows with graph size/density
//! and roughly linearly with the GPU count.

use dgcl_graph::Dataset;
use dgcl_plan::spst_plan;
use dgcl_sim::epoch::partition_for;
use dgcl_topology::Topology;

use crate::harness::{print_table, RunContext};

pub fn run(ctx: &mut RunContext) {
    let mut rows = Vec::new();
    for gpus in [2usize, 4, 8, 16] {
        let topo = Topology::for_gpu_count(gpus);
        let mut row = vec![gpus.to_string()];
        for dataset in [
            Dataset::Reddit,
            Dataset::ComOrkut,
            Dataset::WebGoogle,
            Dataset::WikiTalk,
        ] {
            let graph = ctx.graph(dataset);
            let pg = partition_for(&graph, &topo, ctx.seed);
            let outcome = spst_plan(&pg, &topo, 1024, ctx.seed);
            row.push(format!("{:.2}", outcome.planning_seconds));
        }
        rows.push(row);
    }
    print_table(
        "Table 8: SPST planning time (s), measured on this machine",
        &["GPUs", "Reddit", "Com-Orkut", "Web-Google", "Wiki-Talk"],
        &rows,
    );
    println!(
        "  (paper, full-scale C++: 0.74-9.91 Reddit, 4.61-110 Com-Orkut, 0.78-6.76\n   Web-Google, 0.37-3.14 Wiki-Talk for 2-16 GPUs; shape: grows with size,\n   density and GPU count. Default runs use scaled graphs — compare shape.)"
    );
}
